"""Planner acceptance suite: committed tuned baselines + search contract.

Regenerates ``benchmarks/output/tuned_{perlmutter,delta}.txt``: for every
Table 2 collective on both committed machine models, the Table 5 paper
configuration, the exhaustive grid-search best, and the staged planner's
best, with the planner's stage counters.  The renders are deterministic
functions of (machine, payload), so regeneration must be byte-identical to
the committed files.

The same data backs the planner's acceptance contract:

* the staged search returns a plan no slower than the exhaustive best over
  the *whole* space — which also proves the truncated-payload halving never
  evicted the eventual winner;
* full-payload simulations cover at most a third of the candidates the
  legacy grid search prices;
* workload-aware tuning (:func:`repro.workloads.scenarios.tune_scenario`)
  improves the contended makespan over per-group isolated tuning on a
  committed scenario (``contention_mix`` on Delta, whose single NIC makes
  contention expensive).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.configs import best_config
from repro.bench.runner import run_hiccl
from repro.core.composition import FIGURE8_ORDER
from repro.machine.machines import by_name
from repro.planner import SearchSpace, plan_collective
from repro.workloads.scenarios import tune_scenario

#: Total payload per collective (Section 6.2 convention): 64 MiB.
PAYLOAD = 1 << 26

#: Pipeline depths of the searched space (the Table 5 defaults live at 16
#: and 32, so both must be reachable).
PIPELINES = (1, 4, 16, 32)

#: Two nodes keep the exhaustive reference affordable; the machine *models*
#: are the committed Perlmutter and Delta specs.
NODES = 2

SYSTEMS = ("perlmutter", "delta")


def _rows(system: str) -> list[dict]:
    machine = by_name(system, nodes=NODES)
    space = SearchSpace.build(machine, pipelines=PIPELINES)
    rows = []
    for collective in FIGURE8_ORDER:
        paper = run_hiccl(
            machine, collective, best_config(machine, collective),
            payload_bytes=PAYLOAD, warmup=0, rounds=1,
        )
        grid = plan_collective(machine, collective, PAYLOAD, space=space,
                               strategy="grid")
        staged = plan_collective(machine, collective, PAYLOAD, space=space)
        rows.append({
            "collective": collective,
            "paper": paper.seconds,
            "grid": grid.best.seconds,
            "staged": staged,
        })
    return rows


@pytest.fixture(scope="module")
def tables():
    """Paper/grid/staged measurements per system (computed once)."""
    return {system: _rows(system) for system in SYSTEMS}


def _render(system: str, rows: list[dict]) -> str:
    machine = by_name(system, nodes=NODES)
    lines = [
        f"Planner vs paper configs ({system}): staged search over "
        f"hierarchy/libraries/stripe/ring/pipeline at "
        f"{PAYLOAD >> 20} MiB on {machine.describe()}",
        f"  {'collective':16s} {'paper ms':>9s} {'grid ms':>9s} "
        f"{'planner ms':>11s} {'full/grid':>10s} {'pruned':>7s}  best plan",
    ]
    for row in rows:
        staged = row["staged"]
        stats = staged.stats
        lines.append(
            f"  {row['collective']:16s} {row['paper'] * 1e3:9.3f} "
            f"{row['grid'] * 1e3:9.3f} {staged.best.seconds * 1e3:11.3f} "
            f"{stats.full_evals:>5d}/{stats.grid_size:<4d} "
            f"{stats.pruned:7d}  {staged.best.candidate.describe()}"
        )
    tuning = tune_scenario("contention_mix", by_name(system, nodes=4),
                           PAYLOAD)
    lines.append("")
    lines.append(tuning.render())
    return "\n".join(lines)


@pytest.fixture(scope="module")
def renders(tables):
    """Committed-baseline text per system (computed once per session)."""
    return {
        system: _render(system, rows) for system, rows in tables.items()
    }


@pytest.mark.parametrize("system", SYSTEMS)
def test_tuned_baseline(system, renders, record_output):
    text = renders[system]
    record_output(f"tuned_{system}", text)
    assert "Planner vs paper configs" in text
    assert "workload planning for 'contention_mix'" in text


@pytest.mark.parametrize("system", SYSTEMS)
def test_planner_no_slower_than_exhaustive_best(system, tables):
    """Equivalence on every Table 2 collective — including that the halving
    rungs never evicted the eventual winner (else staged > grid here)."""
    for row in tables[system]:
        staged = row["staged"].best.seconds
        assert staged <= row["grid"] * (1 + 1e-12), row["collective"]
        # The Table 5 paper configuration sits inside the space, so the
        # planner can never lose to it either.
        assert staged <= row["paper"] * (1 + 1e-12), row["collective"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_full_simulation_budget(system, tables):
    """Full-payload sims on at most 1/3 of the legacy grid, every time."""
    for row in tables[system]:
        stats = row["staged"].stats
        assert stats.full_evals * 3 <= stats.grid_size, row["collective"]
        assert stats.truncated_evals > 0, row["collective"]
    assert sum(r["staged"].stats.pruned for r in tables[system]) > 0


def test_workload_tuning_improves_contended_makespan():
    """Contended tuning beats per-group isolated tuning on a committed
    scenario: Delta's single NIC makes the four-way contention_mix pay for
    plans that look optimal in isolation."""
    result = tune_scenario("contention_mix", by_name("delta", nodes=4),
                           PAYLOAD)
    assert result.tuned.makespan <= result.baseline.makespan
    assert result.improvement > 1.0
    assert any(choice.changed for choice in result.choices)


def test_committed_baselines_are_current(renders, output_dir: Path):
    """Regeneration is byte-identical to the committed baseline files."""
    for system in SYSTEMS:
        committed = (output_dir / f"tuned_{system}.txt").read_text()
        assert committed == renders[system] + "\n", (
            f"tuned_{system}.txt is stale; rerun "
            "`pytest benchmarks/test_planner.py -q -s` and commit"
        )
