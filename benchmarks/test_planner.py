"""Planner acceptance suite: committed tuned baselines + search contract.

Regenerates ``benchmarks/output/tuned_{perlmutter,delta}.txt`` through the
``repro.analysis`` registry: for every Table 2 collective on both committed
machine models, the Table 5 paper configuration, the exhaustive grid-search
best, and the staged planner's best, with the planner's stage counters.
The records are deterministic functions of (machine, payload), so
regeneration must be byte-identical to the committed files — which
``repro.analysis.check`` enforces, for both the direct render and the
JSON-round-tripped records.

The same records back the planner's acceptance contract:

* the staged search returns a plan no slower than the exhaustive best over
  the *whole* space — which also proves the truncated-payload halving never
  evicted the eventual winner;
* full-payload simulations cover at most a third of the candidates the
  legacy grid search prices;
* workload-aware tuning (:func:`repro.workloads.scenarios.tune_scenario`)
  improves the contended makespan over per-group isolated tuning on a
  committed scenario (``contention_mix`` on Delta, whose single NIC makes
  contention expensive).
"""

from __future__ import annotations

import pytest

from repro.analysis import check, generate, render

SYSTEMS = ("perlmutter", "delta")


@pytest.fixture(scope="module")
def records():
    """Registry records per system (computed once per session)."""
    return {system: generate(f"tuned_{system}") for system in SYSTEMS}


@pytest.mark.parametrize("system", SYSTEMS)
def test_tuned_baseline(system, records, record_output):
    text = render(f"tuned_{system}", records[system])
    record_output(f"tuned_{system}", text)
    assert "Planner vs paper configs" in text
    assert "workload planning for 'contention_mix'" in text


@pytest.mark.parametrize("system", SYSTEMS)
def test_planner_no_slower_than_exhaustive_best(system, records):
    """Equivalence on every Table 2 collective — including that the halving
    rungs never evicted the eventual winner (else staged > grid here)."""
    for row in (r for r in records[system] if r["row"] == "plan"):
        staged = row["staged_seconds"]
        assert staged <= row["grid_seconds"] * (1 + 1e-12), row["collective"]
        # The Table 5 paper configuration sits inside the space, so the
        # planner can never lose to it either.
        assert staged <= row["paper_seconds"] * (1 + 1e-12), row["collective"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_full_simulation_budget(system, records):
    """Full-payload sims on at most 1/3 of the legacy grid, every time."""
    plans = [r for r in records[system] if r["row"] == "plan"]
    for row in plans:
        assert row["full_evals"] * 3 <= row["grid_size"], row["collective"]
        assert row["truncated_evals"] > 0, row["collective"]
    assert sum(r["pruned"] for r in plans) > 0


def test_workload_tuning_improves_contended_makespan(records):
    """Contended tuning beats per-group isolated tuning on a committed
    scenario: Delta's single NIC makes the four-way contention_mix pay for
    plans that look optimal in isolation."""
    tuning = next(r for r in records["delta"] if r["row"] == "tuning")
    assert tuning["tuned_makespan"] <= tuning["baseline_makespan"]
    assert tuning["improvement"] > 1.0
    choices = [r for r in records["delta"] if r["row"] == "choice"]
    assert any(choice["changed"] for choice in choices)


@pytest.mark.parametrize("system", SYSTEMS)
def test_committed_baselines_are_current(system, records):
    """Regeneration is byte-identical to the committed baseline files, and
    the records survive a JSON round-trip without changing the render."""
    result = check(f"tuned_{system}", records[system])
    assert result.ok, (
        f"{result.reason}; rerun `pytest benchmarks/test_planner.py -q -s` "
        "and commit"
    )
