"""Figure 7 (bottom): hierarchical communication matrices with mixed libraries."""

from __future__ import annotations

from repro.analysis import generate, render


def test_fig7_matrices(benchmark, record_output):
    records = benchmark(generate, "fig7_matrices")
    record_output("fig7_matrices", render("fig7_matrices", records))
    cases = {r["case"]: r for r in records if r["row"] == "matrix"}

    # (a) tree {2,2,3} with {MPI, NCCL, IPC}: intra-node 3x3 diagonal blocks
    # are IPC; cross-group-of-6 traffic is MPI; node-to-node within a group
    # is NCCL — the paper's colored blocks.
    libs = cases["tree"]["library"]
    p = len(libs)
    for src in range(p):
        for dst in range(p):
            cell = libs[src][dst]
            if not cell:
                continue
            if src // 3 == dst // 3:
                assert cell == "IPC"
            elif src // 6 == dst // 6:
                assert cell == "NCCL"
            else:
                assert cell == "MPI"

    libs = cases["ring"]["library"]
    for src in range(p):
        for dst in range(p):
            cell = libs[src][dst]
            if not cell:
                continue
            if src // 3 == dst // 3:
                assert cell == "IPC"
            else:
                assert cell == "NCCL"

    # Every GPU participates (striping employs all NICs/GPUs).
    vol = cases["tree"]["volume"]
    senders = {s for s in range(p) if any(vol[s])}
    assert senders == set(range(p))
