"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and writes its
text rendering to ``benchmarks/output/<name>.txt`` so EXPERIMENTS.md can be
cross-checked against fresh runs.  ``REPRO_FULL=1`` in the environment
extends sweeps to their full (slow) ranges.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def full_sweeps() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture
def record_output(output_dir):
    """Write a figure/table rendering to the output directory and echo it."""

    def _record(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
