"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and writes its
text rendering to ``benchmarks/output/<name>.txt`` so EXPERIMENTS.md can be
cross-checked against fresh runs.  ``REPRO_FULL=1`` in the environment
extends sweeps to their full (slow) ranges.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow``.

    The figure sweeps are minutes-long synthesis grids; the smoke job
    (``pytest -x -q -m "not slow"``, see tools/smoke.sh) skips them while the
    full tier-1 run still executes everything.
    """
    bench_root = Path(__file__).parent.resolve()
    for item in items:
        if bench_root in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def full_sweeps() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture
def record_output(output_dir):
    """Write a figure/table rendering to the output directory and echo it."""

    def _record(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
