"""Figure 4 / Section 3.2-3.3: single-step vs multi-step All-reduce.

The paper motivates fences with All-reduce: the single-step form
(sum_j R(U, j, dp)) moves O(d p^2) data, while Reduce-scatter . All-gather
moves O(d p) — "functionally equivalent ... but has higher throughput."
This benchmark measures both forms on the same machine and verifies both
the volume ratio and the throughput gap.
"""

from __future__ import annotations

import pytest

from repro import Communicator, Library, machines
from repro.bench.runner import payload_count
from repro.core.composition import compose_all_reduce

PAYLOAD = 1 << 26  # 64 MB


def _build(machine, multi_step: bool):
    count = payload_count(machine, PAYLOAD)
    comm = Communicator(machine, materialize=False)
    compose_all_reduce(comm, count, multi_step=multi_step)
    comm.init(hierarchy=[2, 2, 4],
              library=[Library.NCCL, Library.NCCL, Library.IPC],
              stripe=4, pipeline=4)
    comm.run()
    return comm, count


def test_fig4_multi_step_beats_single_step(benchmark, record_output):
    machine = machines.perlmutter(nodes=4)

    def both():
        multi, count = _build(machine, multi_step=True)
        single, _ = _build(machine, multi_step=False)
        return multi, single, count

    multi, single, count = benchmark.pedantic(both, iterations=1, rounds=1)
    p = machine.world_size
    payload = p * count * 4

    vol_multi = sum(multi.schedule.volume_by_kind(machine).values())
    vol_single = sum(single.schedule.volume_by_kind(machine).values())
    thr_multi = payload / 1e9 / multi.last_elapsed
    thr_single = payload / 1e9 / single.last_elapsed

    record_output(
        "fig4_allreduce_forms",
        "Figure 4 / Table 2: All-reduce composition forms "
        f"(Perlmutter, {payload >> 20} MB)\n"
        f"  single-step  volume={vol_single / count / p:7.1f} d*p units  "
        f"throughput={thr_single:7.2f} GB/s\n"
        f"  multi-step   volume={vol_multi / count / p:7.1f} d*p units  "
        f"throughput={thr_multi:7.2f} GB/s\n"
        f"  volume ratio {vol_single / vol_multi:.1f}x, "
        f"speedup {thr_multi / thr_single:.1f}x",
    )

    # Single-step moves O(p) times the data of the two-step form...
    assert vol_single > 4 * vol_multi
    # ...and the two-step form is correspondingly faster.
    assert thr_multi > 3 * thr_single
