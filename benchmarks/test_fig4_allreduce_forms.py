"""Figure 4 / Section 3.2-3.3: single-step vs multi-step All-reduce.

The paper motivates fences with All-reduce: the single-step form
(sum_j R(U, j, dp)) moves O(d p^2) data, while Reduce-scatter . All-gather
moves O(d p) — "functionally equivalent ... but has higher throughput."
This benchmark measures both forms on the same machine and verifies both
the volume ratio and the throughput gap.
"""

from __future__ import annotations

from repro.analysis import generate, render


def test_fig4_multi_step_beats_single_step(benchmark, record_output):
    records = benchmark.pedantic(
        generate, args=("fig4_allreduce_forms",), iterations=1, rounds=1)
    record_output("fig4_allreduce_forms",
                  render("fig4_allreduce_forms", records))

    forms = {r["form"]: r for r in records if r["row"] == "form"}
    single, multi = forms["single-step"], forms["multi-step"]
    # Single-step moves O(p) times the data of the two-step form...
    assert single["volume_elements"] > 4 * multi["volume_elements"]
    # ...and the two-step form is correspondingly faster.
    assert multi["throughput"] > 3 * single["throughput"]
