"""Ablations beyond the paper's own figures (DESIGN.md Section 5).

Each ablation isolates one design choice HiCCL's evaluation folds into the
incremental bars of Figure 8:

* striping on single-NIC vs multi-NIC nodes (Section 6.3.3's split);
* binding policy at fixed g/k (the Aurora 75% effect, isolated);
* per-level library choice (IPC vs MPI intra-node);
* virtual-hierarchy mismatch (what Section 4.1's "best performance when the
  hierarchy matches the machine" costs when violated).
"""

from __future__ import annotations

from repro.analysis import generate, render


def test_ablation_striping_single_vs_multi_nic(benchmark, record_output):
    """Striping gains ~k on multi-NIC nodes, only ~1.3x on single-NIC Delta."""
    records = benchmark.pedantic(
        generate, args=("ablation_striping",), iterations=1, rounds=1)
    record_output("ablation_striping", render("ablation_striping", records))

    gains = {r["system"]: r["striped"] / r["unstriped"]
             for r in records if r["row"] == "system"}
    # Section 6.3.3: ~1.29x on Delta vs ~3.6x on Perlmutter.
    assert 1.05 < gains["delta"] < 2.0
    assert gains["perlmutter"] > 2.5
    assert gains["perlmutter"] > gains["delta"]


def test_ablation_binding_policy(benchmark, record_output):
    """Packed vs round-robin at 12 GPUs / 8 NICs: the isolated 75% effect."""
    records = benchmark.pedantic(
        generate, args=("ablation_binding",), iterations=1, rounds=1)
    record_output("ablation_binding", render("ablation_binding", records))
    thr = {r["policy"]: r["throughput"]
           for r in records if r["row"] == "policy"}
    # Packed 12-on-8 shares evenly (ceil 2 per NIC on half)... round-robin
    # overloads NICs 0-3, so packed must not be slower.
    assert thr["packed"] >= thr["round-robin"] * 0.95


def test_ablation_intra_library(benchmark, record_output):
    """IPC vs MPI for the intra-node level (Table 5 always picks IPC)."""
    records = benchmark.pedantic(
        generate, args=("ablation_libraries",), iterations=1, rounds=1)
    record_output("ablation_libraries", render("ablation_libraries", records))
    thr = {r["library"]: r["throughput"]
           for r in records if r["row"] == "library"}
    assert thr["ipc"] > thr["mpi"]


def test_ablation_hierarchy_mismatch(benchmark, record_output):
    """A virtual hierarchy that ignores the node boundary wastes bandwidth."""
    records = benchmark.pedantic(
        generate, args=("ablation_hierarchy",), iterations=1, rounds=1)
    record_output("ablation_hierarchy", render("ablation_hierarchy", records))
    thr = {r["case"]: r["throughput"]
           for r in records if r["row"] == "hierarchy"}
    assert thr["matched"] > thr["mismatched"]
    assert thr["mismatched"] > thr["flat"]
