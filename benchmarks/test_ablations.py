"""Ablations beyond the paper's own figures (DESIGN.md Section 5).

Each ablation isolates one design choice HiCCL's evaluation folds into the
incremental bars of Figure 8:

* striping on single-NIC vs multi-NIC nodes (Section 6.3.3's split);
* binding policy at fixed g/k (the Aurora 75% effect, isolated);
* per-level library choice (IPC vs MPI intra-node);
* virtual-hierarchy mismatch (what Section 4.1's "best performance when the
  hierarchy matches the machine" costs when violated).
"""

from __future__ import annotations

import pytest

from repro import Communicator, Library, machines
from repro.bench.configs import tree_config
from repro.bench.runner import payload_count, run_hiccl
from repro.machine.machines import generic
from repro.machine.nic import Binding

PAYLOAD = 1 << 28


def _bcast_throughput(machine, *, stripe, pipeline=16, hierarchy=None,
                      libraries=None, ring=1):
    count = payload_count(machine, PAYLOAD)
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(machine.world_size * count, "sendbuf")
    recv = comm.alloc(machine.world_size * count, "recvbuf")
    comm.add_multicast(send, recv, machine.world_size * count, 0,
                       list(range(machine.world_size)))
    if hierarchy is None:
        cfg = tree_config(machine, pipeline=pipeline, stripe=stripe)
        hierarchy, libraries = list(cfg.hierarchy), list(cfg.libraries)
    comm.init(hierarchy=hierarchy, library=libraries, ring=ring,
              stripe=stripe, pipeline=pipeline)
    t = comm.run()
    return machine.world_size * count * 4 / 1e9 / t


def test_ablation_striping_single_vs_multi_nic(benchmark, record_output):
    """Striping gains ~k on multi-NIC nodes, only ~1.3x on single-NIC Delta."""

    def sweep():
        out = {}
        for system in ("delta", "perlmutter"):
            m = machines.by_name(system, nodes=4)
            out[system] = {
                "unstriped": _bcast_throughput(m, stripe=1),
                "striped": _bcast_throughput(m, stripe=m.gpus_per_node),
            }
        return out

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["Ablation: multi-NIC striping (broadcast, 4 nodes)"]
    for system, vals in data.items():
        gain = vals["striped"] / vals["unstriped"]
        lines.append(
            f"  {system:12s} unstriped={vals['unstriped']:7.2f} GB/s "
            f"striped={vals['striped']:7.2f} GB/s  gain={gain:.2f}x"
        )
    record_output("ablation_striping", "\n".join(lines))

    delta_gain = data["delta"]["striped"] / data["delta"]["unstriped"]
    perl_gain = data["perlmutter"]["striped"] / data["perlmutter"]["unstriped"]
    # Section 6.3.3: ~1.29x on Delta vs ~3.6x on Perlmutter.
    assert 1.05 < delta_gain < 2.0
    assert perl_gain > 2.5
    assert perl_gain > delta_gain


def test_ablation_binding_policy(benchmark, record_output):
    """Packed vs round-robin at 12 GPUs / 8 NICs: the isolated 75% effect."""

    def sweep():
        out = {}
        for policy in (Binding.ROUND_ROBIN, Binding.PACKED):
            m = generic(4, 12, 8, binding=policy, intra_bandwidth=120.0,
                        name=f"bind-{policy.value}")
            out[policy.value] = _bcast_throughput(m, stripe=12)
        return out

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["Ablation: binding policy (12 GPUs, 8 NICs, broadcast)"]
    for policy, thr in data.items():
        lines.append(f"  {policy:12s} {thr:7.2f} GB/s")
    record_output("ablation_binding", "\n".join(lines))
    # Packed 12-on-8 shares evenly (ceil 2 per NIC on half)... round-robin
    # overloads NICs 0-3, so packed must not be slower.
    assert data["packed"] >= data["round-robin"] * 0.95


def test_ablation_intra_library(benchmark, record_output):
    """IPC vs MPI for the intra-node level (Table 5 always picks IPC)."""
    m = machines.frontier(nodes=4)

    def sweep():
        cfg = tree_config(m, pipeline=16)
        out = {}
        for label, intra in (("ipc", Library.IPC), ("mpi", Library.MPI)):
            libs = [
                lib if not lib.intra_node_only else intra
                for lib in cfg.libraries
            ]
            out[label] = _bcast_throughput(
                m, stripe=cfg.stripe, pipeline=cfg.pipeline,
                hierarchy=list(cfg.hierarchy), libraries=libs,
            )
        return out

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_output(
        "ablation_libraries",
        "Ablation: intra-node library on Frontier (broadcast)\n"
        f"  IPC intra-node: {data['ipc']:7.2f} GB/s\n"
        f"  MPI intra-node: {data['mpi']:7.2f} GB/s",
    )
    assert data["ipc"] > data["mpi"]


def test_ablation_hierarchy_mismatch(benchmark, record_output):
    """A virtual hierarchy that ignores the node boundary wastes bandwidth."""
    m = machines.perlmutter(nodes=4)

    def sweep():
        matched = _bcast_throughput(
            m, stripe=4, hierarchy=[2, 2, 4],
            libraries=[Library.NCCL, Library.NCCL, Library.IPC],
        )
        # Mismatched: pretend nodes hold 2 GPUs (groups straddle reality).
        mismatched = _bcast_throughput(
            m, stripe=4, hierarchy=[2, 4, 2],
            libraries=[Library.NCCL, Library.NCCL, Library.NCCL],
        )
        flat = _bcast_throughput(
            m, stripe=1, pipeline=1, hierarchy=[16],
            libraries=[Library.NCCL],
        )
        return {"matched": matched, "mismatched": mismatched, "flat": flat}

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record_output(
        "ablation_hierarchy",
        "Ablation: virtual hierarchy vs physical machine (Perlmutter bcast)\n"
        f"  matched {{2,2,4}}:    {data['matched']:7.2f} GB/s\n"
        f"  mismatched {{2,4,2}}: {data['mismatched']:7.2f} GB/s\n"
        f"  flat {{16}}:          {data['flat']:7.2f} GB/s",
    )
    assert data["matched"] > data["mismatched"]
    assert data["mismatched"] > data["flat"]
