"""Table 3: asymptotic collective throughput bounds.

Prints the theoretical bound per collective per system (with the binding
utilization ceiling) and verifies the formulas' relationships hold.
"""

from __future__ import annotations

import repro
from repro import machines
from repro.model.bounds import achievable_bound, binding_utilization, theoretical_bound


def test_table3_bounds(benchmark, record_output):
    def compute():
        rows = {}
        for system in machines.PAPER_SYSTEMS:
            m = machines.by_name(system, nodes=4)
            rows[system] = {
                name: (theoretical_bound(m, name), achievable_bound(m, name))
                for name in repro.FIGURE8_ORDER
            }
        return rows

    rows = benchmark(compute)

    lines = ["Table 3: asymptotic throughput bounds, GB/s (theoretical / achievable)"]
    for system, vals in rows.items():
        m = machines.by_name(system, nodes=4)
        util = binding_utilization(m)
        lines.append(f"  {system} (k*f={m.node_bandwidth:.0f}, binding util {util:.0%})")
        for name, (theo, ach) in vals.items():
            lines.append(f"    {name:16s} {theo:8.1f} / {ach:8.1f}")
    record_output("table3_bounds", "\n".join(lines))

    # Structural relations of Table 3 on every system.
    for system, vals in rows.items():
        kf = machines.by_name(system, nodes=4).node_bandwidth
        assert vals["broadcast"][0] == kf
        assert vals["reduce"][0] == kf
        assert vals["gather"][0] == vals["all_gather"][0]
        assert vals["all_reduce"][0] == vals["all_gather"][0] / 2
        assert vals["all_to_all"][0] < vals["all_reduce"][0]
        # Aurora's round-robin binding caps achievable at 75%.
        if system == "aurora":
            assert vals["broadcast"][1] == vals["broadcast"][0] * 0.75
