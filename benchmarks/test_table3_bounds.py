"""Table 3: asymptotic collective throughput bounds.

Prints the theoretical bound per collective per system (with the binding
utilization ceiling) and verifies the formulas' relationships hold.
"""

from __future__ import annotations

from repro.analysis import generate, render


def test_table3_bounds(benchmark, record_output):
    records = benchmark(generate, "table3_bounds")
    record_output("table3_bounds", render("table3_bounds", records))

    kf = {r["system"]: r["node_bandwidth"]
          for r in records if r["row"] == "system"}
    bounds: dict[str, dict[str, tuple]] = {}
    for r in records:
        if r["row"] == "bound":
            bounds.setdefault(r["system"], {})[r["collective"]] = (
                r["theoretical"], r["achievable"])

    # Structural relations of Table 3 on every system.
    for system, vals in bounds.items():
        assert vals["broadcast"][0] == kf[system]
        assert vals["reduce"][0] == kf[system]
        assert vals["gather"][0] == vals["all_gather"][0]
        assert vals["all_reduce"][0] == vals["all_gather"][0] / 2
        assert vals["all_to_all"][0] < vals["all_reduce"][0]
        # Aurora's round-robin binding caps achievable at 75%.
        if system == "aurora":
            assert vals["broadcast"][1] == vals["broadcast"][0] * 0.75
