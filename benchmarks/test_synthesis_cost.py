"""Section 7's scalability claim: initialization stays cheap at 1000+ GPUs.

The paper contrasts HiCCL's runtime factorization against MSCCL's SMT-based
synthesis: "the initialization cost of HiCCL does not take more than six
seconds on a thousand GPUs."  We verify the Python reproduction synthesizes
a broadcast for 1024 GPUs within a small multiple of that budget (pure
Python pays an interpreter tax; the point is polynomial, not solver-driven,
synthesis).
"""

from __future__ import annotations

import time

from repro import Communicator, Library, machines


def _synthesize_1024():
    machine = machines.frontier(nodes=128)  # 1024 GPUs
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(1 << 20, "sendbuf")
    recv = comm.alloc(1 << 20, "recvbuf")
    comm.add_multicast(send, recv, 1 << 20, 0, list(range(machine.world_size)))
    comm.init(
        hierarchy=[2] * 7 + [4, 2],
        library=[Library.MPI] * 7 + [Library.IPC, Library.IPC],
        stripe=8,
        pipeline=4,
    )
    return comm


def test_synthesis_cost_1024_gpus(benchmark, record_output):
    comm = benchmark.pedantic(_synthesize_1024, iterations=1, rounds=1)
    seconds = comm.synthesis_seconds
    record_output(
        "synthesis_cost",
        "Section 7: broadcast synthesis for 1024 GPUs (128 Frontier nodes)\n"
        f"  ops={len(comm.schedule)}  synthesis={seconds:.2f}s "
        "(paper: <= 6 s in C++)",
    )
    assert seconds < 30.0  # generous interpreter-tax multiple of the 6 s claim
