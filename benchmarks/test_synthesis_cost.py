"""Section 7's scalability claim: initialization stays cheap at 1000+ GPUs.

The paper contrasts HiCCL's runtime factorization against MSCCL's SMT-based
synthesis: "the initialization cost of HiCCL does not take more than six
seconds on a thousand GPUs."  We verify the Python reproduction synthesizes
a broadcast for 1024 GPUs within a small multiple of that budget (pure
Python pays an interpreter tax; the point is polynomial, not solver-driven,
synthesis).

The committed baseline carries only the deterministic op count; the
host-dependent wall-clock goes to the uncommitted
``benchmarks/output/synthesis_cost_timing.txt`` sidecar so the committed
file never churns across machines.
"""

from __future__ import annotations

from repro.analysis import check, render
from repro.analysis.structure import synthesis_records, synthesize_1024


def test_synthesis_cost_1024_gpus(benchmark, record_output, output_dir):
    comm = benchmark.pedantic(synthesize_1024, iterations=1, rounds=1)
    seconds = comm.synthesis_seconds
    records = synthesis_records(comm)
    record_output("synthesis_cost", render("synthesis_cost", records))
    (output_dir / "synthesis_cost_timing.txt").write_text(
        f"synthesis={seconds:.2f}s for {len(comm.schedule)} ops "
        "(host-dependent; uncommitted sidecar)\n"
    )
    result = check("synthesis_cost", records)
    assert result.ok, result.reason
    assert seconds < 30.0  # generous interpreter-tax multiple of the 6 s claim
