"""Figure 9: pipeline depth vs buffer size on four nodes of Perlmutter.

Tree implementations of Gather and Scatter, ring+tree implementations of
Broadcast and Reduce, across pipeline depths 1..128 and buffer sizes from
kilobytes to a gigabyte.  Checks the paper's Section 6.4 findings: deep
pipelines win at large messages, hurt at small ones, and rings need deeper
pipelines than trees to saturate.
"""

from __future__ import annotations

import pytest

from repro import machines
from repro.bench.figures import FIG9_CASES, fig9_curves, render_fig9
from repro.bench.runner import peak_throughput

MACHINE = machines.perlmutter(nodes=4)

SMALL = 1 << 16  # 64 KB
LARGE = 1 << 30  # 1 GB


@pytest.mark.parametrize("collective", sorted(FIG9_CASES))
def test_fig9_panel(benchmark, record_output, full_sweeps, collective):
    payloads = [1 << s for s in ((14, 16, 18, 20, 22, 24, 26, 28, 30)
                                 if full_sweeps else (16, 20, 24, 27, 30))]
    depths = (1, 2, 4, 8, 16, 32, 64, 128) if full_sweeps else (1, 4, 16, 64)
    curves = benchmark.pedantic(
        fig9_curves, args=(MACHINE, collective),
        kwargs={"payloads_bytes": payloads, "depths": depths},
        iterations=1, rounds=1,
    )
    record_output(f"fig9_{collective}", render_fig9(collective, curves))

    def thr(depth, payload):
        for m in curves[depth]:
            if m.payload_bytes == payload or abs(m.payload_bytes - payload) < 64:
                return m.throughput
        raise KeyError(payload)

    deep = max(depths)
    if FIG9_CASES[collective] == "ring":
        # Rings gain *algorithmically* from pipelining: deep wins big at
        # large messages (Section 6.4: "requires up to k = 32 levels").
        assert thr(deep, LARGE) > 2.0 * thr(1, LARGE)
    else:
        # Trees only need to hide intra-node stages: they saturate with a
        # shallow pipeline ("converges ... with only k = 4 stages"), so the
        # deepest pipeline must not beat the shallow ones meaningfully.
        best = max(peak_throughput(curves[d]) for d in depths)
        assert peak_throughput(curves[min(depths, key=lambda d: abs(d - 4))]) \
            > 0.8 * best
    # Excessive depth always hurts small messages (latency dominates).
    assert thr(deep, SMALL) < thr(1, SMALL) * 1.5
    # Throughput grows with buffer size at every depth (saturation sweep).
    for d in depths:
        series = [m.throughput for m in curves[d]]
        assert series[-1] == max(series)
