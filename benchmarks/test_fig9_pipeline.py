"""Figure 9: pipeline depth vs buffer size on four nodes of Perlmutter.

Tree implementations of Gather and Scatter, ring+tree implementations of
Broadcast and Reduce, across pipeline depths 1..128 and buffer sizes from
kilobytes to a gigabyte.  Checks the paper's Section 6.4 findings: deep
pipelines win at large messages, hurt at small ones, and rings need deeper
pipelines than trees to saturate.
"""

from __future__ import annotations

import pytest

from repro.analysis import generate, render
from repro.bench.figures import FIG9_CASES

SMALL = 1 << 16  # 64 KB
LARGE = 1 << 30  # 1 GB


@pytest.mark.parametrize("collective", sorted(FIG9_CASES))
def test_fig9_panel(benchmark, record_output, full_sweeps, collective):
    name = f"fig9_{collective}"
    kwargs = {}
    if full_sweeps:
        kwargs = {
            "payloads_bytes": [1 << s for s in
                               (14, 16, 18, 20, 22, 24, 26, 28, 30)],
            "depths": (1, 2, 4, 8, 16, 32, 64, 128),
        }
    records = benchmark.pedantic(
        generate, args=(name,), kwargs=kwargs, iterations=1, rounds=1)
    record_output(name, render(name, records))

    points = [r for r in records if r["row"] == "point"]
    depths = sorted({r["depth"] for r in points})

    def thr(depth, payload):
        for r in points:
            if r["depth"] == depth and (
                r["payload_bytes"] == payload
                or abs(r["payload_bytes"] - payload) < 64
            ):
                return r["throughput"]
        raise KeyError(payload)

    def peak(depth):
        return max(r["throughput"] for r in points if r["depth"] == depth)

    deep = max(depths)
    if FIG9_CASES[collective] == "ring":
        # Rings gain *algorithmically* from pipelining: deep wins big at
        # large messages (Section 6.4: "requires up to k = 32 levels").
        assert thr(deep, LARGE) > 2.0 * thr(1, LARGE)
    else:
        # Trees only need to hide intra-node stages: they saturate with a
        # shallow pipeline ("converges ... with only k = 4 stages"), so the
        # deepest pipeline must not beat the shallow ones meaningfully.
        best = max(peak(d) for d in depths)
        assert peak(min(depths, key=lambda d: abs(d - 4))) > 0.8 * best
    # Excessive depth always hurts small messages (latency dominates).
    assert thr(deep, SMALL) < thr(1, SMALL) * 1.5
    # Throughput grows with buffer size at every depth (saturation sweep).
    for d in depths:
        series = [r["throughput"] for r in points if r["depth"] == d]
        assert series[-1] == max(series)
