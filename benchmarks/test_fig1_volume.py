"""Figure 1: direct vs hierarchical broadcast volume across nodes."""

from __future__ import annotations

from repro.bench.figures import fig1_broadcast_volume, render_fig1

COUNT = 1024


def test_fig1_volume(benchmark, record_output):
    data = benchmark(fig1_broadcast_volume, 2, 3, COUNT)
    record_output("fig1_volume", render_fig1(data, COUNT))
    # Direct moves three redundant copies across nodes; hierarchical moves one
    # and distributes the rest within nodes (Figure 1's caption).
    assert data["direct"]["inter-node"] == 3 * COUNT
    assert data["hierarchical"]["inter-node"] == COUNT
    assert data["hierarchical"]["intra-node"] == 4 * COUNT
