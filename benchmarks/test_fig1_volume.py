"""Figure 1: direct vs hierarchical broadcast volume across nodes."""

from __future__ import annotations

from repro.analysis import generate, render

COUNT = 1024


def test_fig1_volume(benchmark, record_output):
    records = benchmark(generate, "fig1_volume")
    record_output("fig1_volume", render("fig1_volume", records))
    by_strategy = {r["strategy"]: r for r in records if r["row"] == "strategy"}
    # Direct moves three redundant copies across nodes; hierarchical moves one
    # and distributes the rest within nodes (Figure 1's caption).
    assert by_strategy["direct"]["inter_node"] == 3 * COUNT
    assert by_strategy["hierarchical"]["inter_node"] == COUNT
    assert by_strategy["hierarchical"]["intra_node"] == 4 * COUNT
