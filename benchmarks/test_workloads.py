"""Workload scenario suite: committed baselines for shared-timeline runs.

Regenerates ``benchmarks/output/workloads_{perlmutter,delta}.txt`` through
the ``repro.analysis`` registry.  The records are deterministic functions of
(machine, payload) — no clocks, no randomness — so regeneration must be
byte-identical to the committed files, which
``test_committed_baselines_are_current`` enforces via
``repro.analysis.check`` (render identity and JSON round-trip identity).
"""

from __future__ import annotations

import pytest

from repro.analysis import check, generate, render

SYSTEMS = ("perlmutter", "delta")


@pytest.fixture(scope="module")
def records():
    """Registry records per system (computed once per session)."""
    return {system: generate(f"workloads_{system}") for system in SYSTEMS}


def test_workloads_perlmutter(records, record_output):
    text = render("workloads_perlmutter", records["perlmutter"])
    record_output("workloads_perlmutter", text)
    assert "fsdp_step" in text and "disjoint_halves" in text


def test_workloads_delta(records, record_output):
    text = render("workloads_delta", records["delta"])
    record_output("workloads_delta", text)
    # Delta's single NIC makes the contention mix pay heavily.
    assert "contention_mix" in text


def test_scenario_slowdown_invariants(records):
    slowdowns = {r["scenario"]: r["worst_slowdown"]
                 for r in records["perlmutter"] if r["row"] == "scenario"}
    assert slowdowns["contention_mix"] > 1.0
    assert abs(slowdowns["disjoint_halves"] - 1.0) < 1e-9
    assert slowdowns["fsdp_step"] > 1.0


@pytest.mark.parametrize("system", SYSTEMS)
def test_committed_baselines_are_current(system, records):
    """Regeneration is byte-identical to the committed baseline files, and
    the records survive a JSON round-trip without changing the render."""
    result = check(f"workloads_{system}", records[system])
    assert result.ok, (
        f"{result.reason}; rerun `pytest benchmarks/test_workloads.py -q -s` "
        "and commit"
    )
