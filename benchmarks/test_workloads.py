"""Workload scenario suite: committed baselines for shared-timeline runs.

Regenerates ``benchmarks/output/workloads_{perlmutter,delta}.txt``.  The
renders are deterministic functions of (machine, payload) — no clocks, no
randomness — so regeneration must be byte-identical to the committed files,
which ``test_committed_baselines_are_current`` enforces.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.figures import render_workloads, workload_scenarios_table
from repro.machine.machines import by_name

#: Per-collective payload of the committed baselines (64 MiB).
PAYLOAD = 1 << 26

SYSTEMS = ("perlmutter", "delta")


def _render(system: str) -> str:
    machine = by_name(system, nodes=4)
    return render_workloads(machine, workload_scenarios_table(machine, PAYLOAD))


def test_workloads_perlmutter(record_output):
    text = _render("perlmutter")
    record_output("workloads_perlmutter", text)
    assert "fsdp_step" in text and "disjoint_halves" in text


def test_workloads_delta(record_output):
    text = _render("delta")
    record_output("workloads_delta", text)
    # Delta's single NIC makes the contention mix pay heavily.
    assert "contention_mix" in text


def test_scenario_slowdown_invariants():
    machine = by_name("perlmutter", nodes=4)
    results = {r.name: r for r in workload_scenarios_table(machine, PAYLOAD)}
    assert results["contention_mix"].worst_slowdown > 1.0
    assert abs(results["disjoint_halves"].worst_slowdown - 1.0) < 1e-9
    assert results["fsdp_step"].worst_slowdown > 1.0


def test_committed_baselines_are_current(output_dir: Path):
    """Regeneration is byte-identical to the committed baseline files."""
    for system in SYSTEMS:
        committed = (output_dir / f"workloads_{system}.txt").read_text()
        assert committed == _render(system) + "\n", (
            f"workloads_{system}.txt is stale; rerun "
            "`pytest benchmarks/test_workloads.py -q -s` and commit"
        )
