"""Figure 10: All-reduce scaling on Perlmutter and Frontier.

The two-step (Reduce-scatter . All-gather) composition is held fixed while
the machine grows; only the virtual hierarchy changes with the node count —
the paper's portability claim.  Ring+pipelined HiCCL throughput stays nearly
flat with node count (the O(1) asymptote of Equation 1), while the MPI
baseline falls away and shallow pipelines degrade.

The full paper sweep reaches 512 nodes; the default here stops at 16 nodes
(128 GPUs on Frontier) to keep the harness interactive — set ``REPRO_FULL=1``
for deeper sweeps.
"""

from __future__ import annotations

import pytest

from repro import machines
from repro.analysis import generate, render

#: REPRO_FULL extends the sweep to where the two-step All-reduce's O(p^2)
#: op graph stops being interactive in pure Python.
FULL_GPU_BUDGET = 256


@pytest.mark.parametrize("system", ["perlmutter", "frontier"])
def test_fig10_scaling(benchmark, record_output, full_sweeps, system):
    name = f"fig10_{system}"
    kwargs = {}
    if full_sweeps:
        factory = machines.PAPER_SYSTEMS[system]
        kwargs = {
            "node_counts": tuple(
                n for n in (2, 4, 8, 16, 32, 64)
                if factory(n).world_size <= FULL_GPU_BUDGET),
            "depths": (1, 2, 4, 8, 16, 32),
        }
    records = benchmark.pedantic(
        generate, args=(name,), kwargs=kwargs, iterations=1, rounds=1)
    record_output(name, render(name, records))

    series: dict[str, dict[int, float]] = {}
    for r in records:
        if r["row"] == "point":
            series.setdefault(r["series"], {})[r["nodes"]] = r["throughput"]
    nodes = sorted(next(iter(series.values())))
    depths = sorted(int(s[len("hiccl-m"):]) for s in series
                    if s.startswith("hiccl-m"))
    deep = f"hiccl-m{max(depths)}"
    shallow = "hiccl-m1"
    # Pipelining wins where inter-node stages dominate (small node counts);
    # at scale all depths converge onto the All-reduce bound's asymptote.
    # Frontier is intra-node-bound (Section 6.3.5), so its pipelining gain
    # is marginal — require strict gains only on network-bound Perlmutter.
    assert series[deep][nodes[0]] >= 0.99 * series[shallow][nodes[0]]
    if system == "perlmutter":
        assert series[deep][nodes[0]] > 1.05 * series[shallow][nodes[0]]
    for n in nodes:
        best = max(series[f"hiccl-m{d}"][n] for d in depths)
        assert best >= series[shallow][n] * 0.999
    # HiCCL's ring+pipeline scales nearly flat: the largest machine keeps
    # more than half of the 2-node throughput (paper: flat up to 256 nodes),
    # tracking the kf*p/(2(p-g)) bound rather than collapsing.
    assert series[deep][nodes[-1]] > 0.5 * series[deep][nodes[0]]
    # MPI is far below HiCCL throughout the sweep.
    for n in nodes:
        assert series[deep][n] > 3.0 * series["mpi"][n]
