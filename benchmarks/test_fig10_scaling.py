"""Figure 10: All-reduce scaling on Perlmutter and Frontier.

The two-step (Reduce-scatter . All-gather) composition is held fixed while
the machine grows; only the virtual hierarchy changes with the node count —
the paper's portability claim.  Ring+pipelined HiCCL throughput stays nearly
flat with node count (the O(1) asymptote of Equation 1), while the MPI
baseline falls away and shallow pipelines degrade.

The full paper sweep reaches 512 nodes; the default here stops at 16 nodes
(128 GPUs on Frontier) to keep the harness interactive — set ``REPRO_FULL=1``
for deeper sweeps.
"""

from __future__ import annotations

import pytest

from repro import machines
from repro.bench.figures import fig10_scaling, render_fig10

#: The paper saturates the network with device-memory-sized buffers
#: (8.6 GB on Perlmutter, 17.2 GB on Frontier); simulated payloads are free,
#: so we use 8 GiB.  MPI stays capped at 1 GB (its large-count limits [17]).
PAYLOAD = 8 << 30


#: Default sweeps stop where the two-step All-reduce's O(p^2) op graph stays
#: interactive in pure Python (~64 GPUs); REPRO_FULL extends them.
GPU_BUDGET = 64
FULL_GPU_BUDGET = 256


@pytest.mark.parametrize("system", ["perlmutter", "frontier"])
def test_fig10_scaling(benchmark, record_output, full_sweeps, system):
    factory = machines.PAPER_SYSTEMS[system]
    budget = FULL_GPU_BUDGET if full_sweeps else GPU_BUDGET
    nodes = tuple(n for n in (2, 4, 8, 16, 32, 64)
                  if factory(n).world_size <= budget)
    depths = (1, 2, 4, 8, 16, 32) if full_sweeps else (1, 4, 16)
    series = benchmark.pedantic(
        fig10_scaling, args=(factory,),
        kwargs={"node_counts": nodes, "payload_bytes": PAYLOAD,
                "depths": depths},
        iterations=1, rounds=1,
    )
    record_output(f"fig10_{system}", render_fig10(system, series))

    deep = f"hiccl-m{max(depths)}"
    shallow = "hiccl-m1"
    # Pipelining wins where inter-node stages dominate (small node counts);
    # at scale all depths converge onto the All-reduce bound's asymptote.
    # Frontier is intra-node-bound (Section 6.3.5), so its pipelining gain
    # is marginal — require strict gains only on network-bound Perlmutter.
    assert series[deep][nodes[0]] >= 0.99 * series[shallow][nodes[0]]
    if system == "perlmutter":
        assert series[deep][nodes[0]] > 1.05 * series[shallow][nodes[0]]
    for n in nodes:
        best = max(series[f"hiccl-m{d}"][n] for d in depths)
        assert best >= series[shallow][n] * 0.999
    # HiCCL's ring+pipeline scales nearly flat: the largest machine keeps
    # more than half of the 2-node throughput (paper: flat up to 256 nodes),
    # tracking the kf*p/(2(p-g)) bound rather than collapsing.
    assert series[deep][nodes[-1]] > 0.5 * series[deep][nodes[0]]
    # MPI is far below HiCCL throughout the sweep.
    for n in nodes:
        assert series[deep][n] > 3.0 * series["mpi"][n]
