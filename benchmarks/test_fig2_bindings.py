"""Figure 2: GPU-to-NIC binding policies and their utilization ceilings."""

from __future__ import annotations

import pytest

from repro.analysis import generate, render
from repro.machine.nic import Binding, utilization


def test_fig2_bindings(benchmark, record_output):
    records = benchmark(generate, "fig2_bindings")
    record_output("fig2_bindings", render("fig2_bindings", records))
    by_policy = {r["policy"]: r for r in records if r["row"] == "binding"}
    assert by_policy["packed"]["utilization"] == pytest.approx(1.0)
    # Figure 2(b): round-robin 3-on-2 reaches only 75% of theoretical.
    assert by_policy["round-robin"]["utilization"] == pytest.approx(0.75)
    assert by_policy["bijective"]["utilization"] == pytest.approx(1.0)


def test_aurora_binding_ceiling(benchmark):
    """Section 6.3.5: 12 GPUs round-robin on 8 NICs -> 75%."""
    util = benchmark(utilization, 12, 8, Binding.ROUND_ROBIN)
    assert util == pytest.approx(0.75)
