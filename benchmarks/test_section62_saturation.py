"""Section 6.2's measurement protocol: sweep buffer sizes until saturation.

"We vary d across large message sizes (larger than a MB) until the
throughput saturates the achievable bandwidth."  This bench runs that sweep
for the fully-optimized broadcast on each system and verifies the protocol's
premise: throughput grows monotonically(ish) with payload and flattens —
the last doubling of the payload buys almost no extra throughput.
"""

from __future__ import annotations

import pytest

from repro import machines
from repro.bench.configs import best_config
from repro.bench.runner import peak_throughput, sweep_payloads

PAYLOADS = [1 << s for s in range(20, 31, 2)]  # 1 MB .. 1 GB


@pytest.mark.parametrize("system", ["delta", "perlmutter"])
def test_saturation_sweep(benchmark, record_output, system):
    machine = machines.by_name(system, nodes=4)
    cfg = best_config(machine, "broadcast")
    sweep = benchmark.pedantic(
        sweep_payloads, args=(machine, "broadcast", cfg, PAYLOADS),
        iterations=1, rounds=1,
    )
    lines = [f"Section 6.2 sweep: broadcast on {machine.describe()}"]
    for m in sweep:
        lines.append(f"  {m.payload_bytes / (1 << 20):8.0f} MB"
                     f"  {m.throughput:8.2f} GB/s")
    record_output(f"saturation_{system}", "\n".join(lines))

    thr = [m.throughput for m in sweep]
    # Saturation: the 1 GB point is within 10% of the peak, and the peak is
    # not at the smallest size.
    assert thr[-1] > 0.9 * peak_throughput(sweep)
    assert thr[0] < 0.9 * peak_throughput(sweep)
    # Monotone growth up to noise: each doubling helps or holds.
    for a, b in zip(thr, thr[1:]):
        assert b > a * 0.95
