"""Section 6.2's measurement protocol: sweep buffer sizes until saturation.

"We vary d across large message sizes (larger than a MB) until the
throughput saturates the achievable bandwidth."  This bench runs that sweep
for the fully-optimized broadcast on each system and verifies the protocol's
premise: throughput grows monotonically(ish) with payload and flattens —
the last doubling of the payload buys almost no extra throughput.
"""

from __future__ import annotations

import pytest

from repro.analysis import generate, render


@pytest.mark.parametrize("system", ["delta", "perlmutter"])
def test_saturation_sweep(benchmark, record_output, system):
    name = f"saturation_{system}"
    records = benchmark.pedantic(
        generate, args=(name,), iterations=1, rounds=1)
    record_output(name, render(name, records))

    thr = [r["throughput"] for r in records if r["row"] == "point"]
    # Saturation: the 1 GB point is within 10% of the peak, and the peak is
    # not at the smallest size.
    assert thr[-1] > 0.9 * max(thr)
    assert thr[0] < 0.9 * max(thr)
    # Monotone growth up to noise: each doubling helps or holds.
    for a, b in zip(thr, thr[1:]):
        assert b > a * 0.95
