"""Figure 8: peak collective throughput on the four systems.

For every system (Delta, Perlmutter, Frontier, Aurora) and every collective,
measures the MPI baseline, the vendor library (NCCL / RCCL / OneCCL), and
HiCCL with incrementally enabled optimizations (direct -> hierarchical ->
striped -> pipelined), against the Table 3 theoretical frames and the
empirical two-node bounds — then checks the paper's qualitative claims and
prints the Section 6.3.1 geomean speedups.
"""

from __future__ import annotations

import pytest

from repro.analysis import generate, render
from repro.bench.report import geomean


@pytest.mark.parametrize("system", ["delta", "perlmutter", "frontier", "aurora"])
def test_fig8_panel(benchmark, record_output, system):
    name = f"fig8_{system}"
    records = benchmark.pedantic(
        generate, args=(name,), iterations=1, rounds=1)
    record_output(name, render(name, records))

    bounds = {r["collective"]: r for r in records if r["row"] == "bound"}
    mpi_ratios = {r["collective"]: r["ratio"] for r in records
                  if r["row"] == "speedup" and r["baseline"] == "MPI"}

    def thr(impl, coll):
        return next(r["throughput"] for r in records
                    if r["row"] == "bar" and r["implementation"] == impl
                    and r["collective"] == coll)

    def best_hiccl(coll):
        # Best (ring for bcast/reduce, tree otherwise) = first pipelined row.
        return next(r["throughput"] for r in records
                    if r["row"] == "bar" and r["collective"] == coll
                    and r["implementation"].startswith("hiccl-pipelined"))

    # --- Qualitative claims of Section 6.3 -------------------------------
    # (1) HiCCL beats MPI on every collective, by a large geomean factor.
    assert all(ratio > 1.0 for ratio in mpi_ratios.values())
    assert geomean(mpi_ratios.values()) > 5.0
    # (2) Optimizations are monotone on broadcast: direct <= hierarchical
    #     (strictly better once striping and pipelining land).
    assert thr("hiccl-striped", "broadcast") > thr("hiccl-direct", "broadcast")
    assert thr("hiccl-pipelined-ring", "broadcast") > thr("hiccl-striped", "broadcast")
    # (3) Nothing exceeds the Table 3 achievable frame by more than noise.
    for coll in mpi_ratios:
        assert best_hiccl(coll) <= bounds[coll]["achievable"] * 1.05
    # (4) Vendor libraries are competitive (within ~3x either way) except
    #     OneCCL, which HiCCL beats by an order of magnitude.
    if system == "aurora":
        vendor_ratios = [r["ratio"] for r in records
                         if r["row"] == "speedup" and r["baseline"] != "MPI"]
        assert vendor_ratios and geomean(vendor_ratios) > 5.0
