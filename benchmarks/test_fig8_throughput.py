"""Figure 8: peak collective throughput on the four systems.

For every system (Delta, Perlmutter, Frontier, Aurora) and every collective,
measures the MPI baseline, the vendor library (NCCL / RCCL / OneCCL), and
HiCCL with incrementally enabled optimizations (direct -> hierarchical ->
striped -> pipelined), against the Table 3 theoretical frames and the
empirical two-node bounds — then checks the paper's qualitative claims and
prints the Section 6.3.1 geomean speedups.
"""

from __future__ import annotations

import pytest

import repro
from repro import machines
from repro.bench.figures import fig8_bounds, fig8_system, render_fig8
from repro.bench.report import render_throughput_table, speedups
from repro.transport.library import VENDOR_LIBRARY

PAYLOAD = 1 << 28  # 256 MB total payload per collective

#: Paper-reported geomean speedups (Section 6.3.1) for EXPERIMENTS.md.
PAPER_MPI_SPEEDUP = {"delta": 12.52, "perlmutter": 14.22,
                     "frontier": 9.76, "aurora": 48.02}
PAPER_VENDOR_SPEEDUP = {"delta": 1.26, "perlmutter": 1.05,
                        "frontier": 1.55, "aurora": 12.01}


def _by_impl(rows, prefix):
    out = {}
    for m in rows:
        if m.implementation == prefix or (
            prefix == "vendor" and m.implementation in ("nccl", "rccl", "oneccl")
        ):
            out[m.collective] = m
        if prefix == "hiccl" and m.implementation.startswith("hiccl-pipelined"):
            # Best (ring for bcast/reduce, tree otherwise) = first pipelined row.
            out.setdefault(m.collective, m)
    return out


@pytest.mark.parametrize("system", ["delta", "perlmutter", "frontier", "aurora"])
def test_fig8_panel(benchmark, record_output, system):
    machine = machines.by_name(system, nodes=4)
    rows = benchmark.pedantic(fig8_system, args=(machine, PAYLOAD),
                              iterations=1, rounds=1)
    bounds = fig8_bounds(machine)

    hiccl = _by_impl(rows, "hiccl")
    mpi = _by_impl(rows, "mpi")
    vendor = _by_impl(rows, "vendor")

    mpi_report = speedups(hiccl, mpi, system, "MPI")
    text = [render_fig8(machine, rows, bounds), "", mpi_report.render(),
            f"  (paper: {PAPER_MPI_SPEEDUP[system]:.2f}x)"]
    if vendor:
        vendor_report = speedups(hiccl, vendor, system,
                                 VENDOR_LIBRARY[system].name)
        text += ["", vendor_report.render(),
                 f"  (paper: {PAPER_VENDOR_SPEEDUP[system]:.2f}x)"]
    record_output(f"fig8_{system}", "\n".join(text))

    # --- Qualitative claims of Section 6.3 -------------------------------
    # (1) HiCCL beats MPI on every collective, by a large geomean factor.
    assert all(r > 1.0 for r in mpi_report.per_collective.values())
    assert mpi_report.geomean_speedup > 5.0
    # (2) Optimizations are monotone on broadcast: direct <= hierarchical
    #     (strictly better once striping and pipelining land).
    def thr(impl, coll):
        return next(m.throughput for m in rows
                    if m.implementation == impl and m.collective == coll)

    assert thr("hiccl-striped", "broadcast") > thr("hiccl-direct", "broadcast")
    assert thr("hiccl-pipelined-ring", "broadcast") > thr("hiccl-striped", "broadcast")
    # (3) Nothing exceeds the Table 3 achievable frame by more than noise.
    for name, meas in hiccl.items():
        assert meas.throughput <= bounds[name]["achievable"] * 1.05
    # (4) Vendor libraries are competitive (within ~3x either way) except
    #     OneCCL, which HiCCL beats by an order of magnitude.
    if system == "aurora" and vendor:
        vr = speedups(hiccl, vendor, system, "oneccl")
        assert vr.geomean_speedup > 5.0
