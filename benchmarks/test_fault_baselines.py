"""Degraded-topology acceptance suite: committed fault baselines.

Regenerates ``benchmarks/output/faults_{perlmutter,delta}.txt``: a seeded
fault replan (healthy baseline, replayed-on-degraded time, and the degraded
search winner) plus an elastic shrink (drop the last node, re-plan on the
survivors) per committed machine model.  The probes are deterministic
functions of (machine shape, seed, payload) and the renders exclude
wall-clock times, so regeneration must be byte-identical to the committed
files.

The same probes back the fault layer's operational contract:

* the degraded-search winner is never worse than replaying the healthy
  schedule on the degraded machine (the healthy plan is merged into the
  degraded ranking, so "do nothing" is always on the table);
* replaying a healthy plan under monotone derates never *gains* time over
  the healthy baseline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.degraded import degraded_probe

SYSTEMS = ("perlmutter", "delta")


@pytest.fixture(scope="module")
def probes():
    """Replan + shrink measurements per system (computed once)."""
    return {system: degraded_probe(system) for system in SYSTEMS}


@pytest.mark.parametrize("system", SYSTEMS)
def test_faults_baseline(system, probes, record_output):
    text = probes[system].render()
    record_output(f"faults_{system}", text)
    assert "replan under FaultSet.random" in text
    assert "elastic shrink" in text


@pytest.mark.parametrize("system", SYSTEMS)
def test_replan_never_worse_than_replay(system, probes):
    """The degraded winner beats or matches replaying the healthy plan."""
    rep = probes[system].replan_report
    assert rep.replanned_seconds <= rep.replay_seconds * (1 + 1e-12)
    assert rep.replan_gain >= 1.0 - 1e-12


@pytest.mark.parametrize("system", SYSTEMS)
def test_replay_never_gains_under_derates(system, probes):
    """Monotone derates: the degraded replay of the healthy schedule is no
    faster than the healthy baseline.  (No such bound holds for the elastic
    shrink — the shrunk machine gets a *different* plan, and a flat node
    tier on 3 nodes can beat a binary tree on 4; see EXPERIMENTS.md.)"""
    rep = probes[system].replan_report
    assert rep.replay_seconds >= rep.healthy_seconds * (1 - 1e-12)
    assert rep.slowdown_vs_healthy >= 1.0 - 1e-12


@pytest.mark.parametrize("system", SYSTEMS)
def test_shrink_shape(system, probes):
    """The shrink probe drops exactly one node and keeps the payload."""
    rep = probes[system].shrink_report
    assert rep.nodes_after == rep.nodes_before - 1
    assert len(rep.rank_map) == rep.nodes_after * (
        len(rep.rank_map) // rep.nodes_after
    )
    assert rep.shrunk_seconds > 0.0
    assert rep.replan_wall_seconds > 0.0


def test_committed_baselines_are_current(probes, output_dir: Path):
    """Regeneration is byte-identical to the committed baseline files."""
    for system in SYSTEMS:
        committed = (output_dir / f"faults_{system}.txt").read_text()
        assert committed == probes[system].render() + "\n", (
            f"faults_{system}.txt is stale; rerun "
            "`pytest benchmarks/test_fault_baselines.py -q -s` and commit"
        )
