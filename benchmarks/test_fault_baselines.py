"""Degraded-topology acceptance suite: committed fault baselines.

Regenerates ``benchmarks/output/faults_{perlmutter,delta}.txt`` through the
``repro.analysis`` registry: a seeded fault replan (healthy baseline,
replayed-on-degraded time, and the degraded search winner) plus an elastic
shrink (drop the last node, re-plan on the survivors) per committed machine
model.  The records are deterministic functions of (machine shape, seed,
payload) and exclude wall-clock times, so regeneration must be
byte-identical to the committed files — enforced via
``repro.analysis.check``.

The same records back the fault layer's operational contract:

* the degraded-search winner is never worse than replaying the healthy
  schedule on the degraded machine (the healthy plan is merged into the
  degraded ranking, so "do nothing" is always on the table);
* replaying a healthy plan under monotone derates never *gains* time over
  the healthy baseline.
"""

from __future__ import annotations

import pytest

from repro.analysis import check, generate, render

SYSTEMS = ("perlmutter", "delta")


@pytest.fixture(scope="module")
def records():
    """Registry records per system (computed once per session)."""
    return {system: generate(f"faults_{system}") for system in SYSTEMS}


@pytest.mark.parametrize("system", SYSTEMS)
def test_faults_baseline(system, records, record_output):
    text = render(f"faults_{system}", records[system])
    record_output(f"faults_{system}", text)
    assert "replan under FaultSet.random" in text
    assert "elastic shrink" in text


@pytest.mark.parametrize("system", SYSTEMS)
def test_replan_never_worse_than_replay(system, records):
    """The degraded winner beats or matches replaying the healthy plan."""
    rep = next(r for r in records[system] if r["row"] == "replan")
    assert rep["replanned_seconds"] <= rep["replay_seconds"] * (1 + 1e-12)
    assert rep["replay_seconds"] / rep["replanned_seconds"] >= 1.0 - 1e-12


@pytest.mark.parametrize("system", SYSTEMS)
def test_replay_never_gains_under_derates(system, records):
    """Monotone derates: the degraded replay of the healthy schedule is no
    faster than the healthy baseline.  (No such bound holds for the elastic
    shrink — the shrunk machine gets a *different* plan, and a flat node
    tier on 3 nodes can beat a binary tree on 4; see EXPERIMENTS.md.)"""
    rep = next(r for r in records[system] if r["row"] == "replan")
    assert rep["replay_seconds"] >= rep["healthy_seconds"] * (1 - 1e-12)


@pytest.mark.parametrize("system", SYSTEMS)
def test_shrink_shape(system, records):
    """The shrink probe drops exactly one node and keeps the payload."""
    shrink = next(r for r in records[system] if r["row"] == "shrink")
    assert shrink["nodes_after"] == shrink["nodes_before"] - 1
    rank_map = shrink["rank_map"]
    assert len(rank_map) == shrink["nodes_after"] * (
        len(rank_map) // shrink["nodes_after"]
    )
    assert shrink["shrunk_seconds"] > 0.0


@pytest.mark.parametrize("system", SYSTEMS)
def test_committed_baselines_are_current(system, records):
    """Regeneration is byte-identical to the committed baseline files, and
    the records survive a JSON round-trip without changing the render."""
    result = check(f"faults_{system}", records[system])
    assert result.ok, (
        f"{result.reason}; rerun "
        "`pytest benchmarks/test_fault_baselines.py -q -s` and commit"
    )
