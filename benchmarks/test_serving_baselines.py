"""Serving latency acceptance suite: committed percentile baselines.

Regenerates ``benchmarks/output/serving_{delta,perlmutter}.txt`` through the
``repro.analysis`` registry: per-scenario latency percentile tables (p50 to
worst per request class) of seeded Poisson traffic driven through the
streaming replay engine.  Certified replays are bit-identical to the event
engine and fallbacks *are* the event engine, so the records are pure model
outputs — regeneration must be byte-identical to the committed files,
enforced via ``repro.analysis.check``.
"""

from __future__ import annotations

import pytest

from repro.analysis import check, generate, render

SYSTEMS = ("delta", "perlmutter")


@pytest.fixture(scope="module")
def records():
    """Registry records per system (computed once per session)."""
    return {system: generate(f"serving_{system}") for system in SYSTEMS}


@pytest.mark.parametrize("system", SYSTEMS)
def test_serving_baseline(system, records, record_output):
    text = render(f"serving_{system}", records[system])
    record_output(f"serving_{system}", text)
    assert "prefill_decode" in text
    assert "continuous_batch" in text
    assert "p99 us" in text


@pytest.mark.parametrize("system", SYSTEMS)
def test_latency_ladders_are_monotone(system, records):
    """p50 <= p90 <= p99 <= worst for every class row of every scenario."""
    rows = [r for r in records[system] if r["row"] == "class"]
    assert rows
    for row in rows:
        assert 0.0 < row["p50"] <= row["p90"] <= row["p99"] <= row["worst"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_size_buckets_order_the_tail(system, records):
    """Bigger continuous-batch payload buckets see equal-or-worse medians."""
    rows = {r["klass"]: r for r in records[system]
            if r["row"] == "class" and r["scenario"] == "continuous_batch"}
    assert rows["small"]["p50"] <= rows["medium"]["p50"] <= \
        rows["large"]["p50"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_committed_baselines_are_current(system, records):
    """Regeneration is byte-identical to the committed baseline files, and
    the records survive a JSON round-trip without changing the render."""
    result = check(f"serving_{system}", records[system])
    assert result.ok, (
        f"{result.reason}; rerun "
        "`pytest benchmarks/test_serving_baselines.py -q -s` and commit"
    )
