"""Table 2: composition + synthesis cost of every collective.

Benchmarks the end-to-end ``compose + init`` path (registration,
factorization, dependency analysis, event pricing) for each of the eight
collectives on a 4-node Perlmutter model under the fully optimized tree
configuration — the persistent-communicator setup cost a user pays once
(Section 5.2).
"""

from __future__ import annotations

import pytest

import repro
from repro import Communicator, machines
from repro.bench.configs import tree_config
from repro.bench.runner import payload_count

PAYLOAD = 1 << 26  # 64 MB: synthesis cost is payload-independent

MACHINE = machines.perlmutter(nodes=4)


def _synthesize(name: str):
    count = payload_count(MACHINE, PAYLOAD)
    comm = Communicator(MACHINE, materialize=False)
    repro.compose(comm, name, count)
    cfg = tree_config(MACHINE, pipeline=4)
    comm.init(**cfg.init_kwargs())
    return comm


@pytest.mark.parametrize("name", repro.FIGURE8_ORDER)
def test_table2_synthesis(benchmark, name):
    comm = benchmark(_synthesize, name)
    assert len(comm.schedule) > 0
    benchmark.extra_info["p2p_ops"] = len(comm.schedule)
    benchmark.extra_info["steps"] = comm.program.num_steps
