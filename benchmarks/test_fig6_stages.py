"""Figure 6: striped tree forms 4 stages; striped ring forms 5."""

from __future__ import annotations

from repro.bench.figures import fig6_stage_counts


def test_fig6_stage_counts(benchmark, record_output):
    counts = benchmark(fig6_stage_counts)
    lines = ["Figure 6: dependency stages of striped factorizations (4 nodes x 3 GPUs)"]
    for label, n in counts.items():
        lines.append(f"  {label:14s} {n} stages")
    record_output("fig6_stages", "\n".join(lines))
    assert counts["tree {2,2,3}"] == 4  # stages 0-3 in Figure 6(a)
    assert counts["ring {4,3}"] == 5  # stages 0-4 in Figure 6(b)
