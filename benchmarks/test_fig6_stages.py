"""Figure 6: striped tree forms 4 stages; striped ring forms 5."""

from __future__ import annotations

from repro.analysis import generate, render


def test_fig6_stage_counts(benchmark, record_output):
    records = benchmark(generate, "fig6_stages")
    record_output("fig6_stages", render("fig6_stages", records))
    counts = {r["label"]: r["stages"] for r in records if r["row"] == "stages"}
    assert counts["tree {2,2,3}"] == 4  # stages 0-3 in Figure 6(a)
    assert counts["ring {4,3}"] == 5  # stages 0-4 in Figure 6(b)
