"""Figure 5: tree structures for the six 24-GPU factor vectors."""

from __future__ import annotations

import math

from repro.analysis import generate, render


def test_fig5_trees(benchmark, record_output):
    records = benchmark(generate, "fig5_trees")
    record_output("fig5_trees", render("fig5_trees", records))
    trees = [r for r in records if r["row"] == "tree"]
    assert len(trees) == 6
    for tree in trees:
        assert tree["world_size"] == 24
        assert math.prod(tree["factors"]) == 24
    # Figure 5(e) {3,2,2,2}: four levels; (a) {3,8}: two levels.
    depths = {tree["panel"]: tree["depth"] for tree in trees}
    assert depths == {"a": 2, "b": 2, "c": 3, "d": 3, "e": 4, "f": 4}
