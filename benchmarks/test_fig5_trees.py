"""Figure 5: tree structures for the six 24-GPU factor vectors."""

from __future__ import annotations

import math

from repro.bench.figures import FIG5_FACTORIZATIONS, fig5_trees, render_fig5


def test_fig5_trees(benchmark, record_output):
    trees = benchmark(fig5_trees)
    record_output("fig5_trees", render_fig5())
    assert len(trees) == 6
    for (panel, topo), (_, factors) in zip(trees, FIG5_FACTORIZATIONS):
        assert topo.world_size == 24
        assert math.prod(topo.factors) == 24
        # Figure 5(e) {3,2,2,2}: four levels; (a) {3,8}: two levels.
    depths = {panel: topo.depth for panel, topo in trees}
    assert depths == {"a": 2, "b": 2, "c": 3, "d": 3, "e": 4, "f": 4}
