#!/usr/bin/env python
"""Visualizing pipelined execution (the top half of Figure 7).

Builds the striped ring broadcast of Figure 6(b) with a 5-deep pipeline,
then renders the engine's realized timeline as an ASCII Gantt chart: the
stage digits shift right as channels warm up, overlap through the steady
state, and wind down — exactly the pattern of Figure 7's m=5 pipeline.
Also writes a Chrome-tracing JSON for Perfetto and prints the resource
utilization report that identifies the bottleneck.

Run:  python examples/trace_visualization.py
"""

from pathlib import Path

import repro
from repro import Communicator, Library
from repro.machine.machines import generic
from repro.simulator.trace import (
    ascii_gantt,
    build_trace,
    chrome_trace,
    utilization_report,
)

# The Figure 6/7 example machine: four nodes of three GPUs, one NIC each.
machine = generic(4, 3, 1, name="fig7")
comm = Communicator(machine, materialize=False)
repro.compose(comm, "broadcast", count=1 << 16)
comm.init(hierarchy=[4, 3], library=[Library.NCCL, Library.IPC],
          ring=4, stripe=3, pipeline=5)

events = build_trace(comm.schedule, comm.timing, machine, comm.plan.libraries)

print("Striped ring broadcast, pipeline depth 5 (Figures 6b / 7b)")
print(f"  {len(events)} point-to-point ops, "
      f"makespan {comm.timing.elapsed * 1e3:.3f} ms\n")

print(ascii_gantt(events, by="rank", width=76))
print()
print(utilization_report(comm.timing).render(6))

out = Path(__file__).parent / "trace_fig7.json"
out.write_text(chrome_trace(events))
print(f"\nChrome-tracing JSON written to {out} "
      "(open in about://tracing or ui.perfetto.dev)")
