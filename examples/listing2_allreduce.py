#!/usr/bin/env python
"""The paper's Listing 2, line by line.

Composes All-reduce explicitly as a Reduce-scatter followed by a fence and
an in-place All-gather — the multi-step form of Figure 4 — using the raw
primitive API rather than a pre-built composer, with Aurora's optimization
parameters from the listing (hierarchy {numproc/12, 6, 2}, libraries
{MPI, IPC, IPC}).

Run:  python examples/listing2_allreduce.py
"""

import numpy as np

from repro import Communicator, Library, ReduceOp, machines

machine = machines.aurora(nodes=4)  # 48 GPU tiles
numproc = machine.world_size
count = 256  # elements per chunk

# persistent communicator
comm = Communicator(machine, dtype=np.float32)
sendbuf = comm.alloc(numproc * count, "sendbuf")
recvbuf = comm.alloc(numproc * count, "recvbuf")

all_ranks = list(range(numproc))

# step 1) register Reduce-scatter using primitives
for j in range(numproc):
    comm.add_reduction(sendbuf[j * count:], recvbuf[j * count:], count,
                       all_ranks, j, ReduceOp.SUM)
# step 2) register fence to express data dependency
comm.add_fence()
# step 3) register All-gather using primitives (in place: reuse recvbuf)
for i in range(numproc):
    others = [r for r in all_ranks if r != i]
    comm.add_multicast(recvbuf[i * count:], recvbuf[i * count:], count,
                       i, others)

# optimization parameters for Aurora (Listing 2 lines 13-17)
hierarchy = [numproc // 12, 6, 2]
library = [Library.MPI, Library.IPC, Library.IPC]
stripe = 8   # engage all eight NICs
ring = 1
pipeline = 4

# initialization (line 19)
comm.init(hierarchy, library, ring=ring, stripe=stripe, pipeline=pipeline)

# fill inputs, then: nonblocking start, blocking wait (lines 21-23)
rng = np.random.default_rng(42)
data = rng.integers(-4, 5, size=(numproc, numproc * count)).astype(np.float32)
comm.set_all(sendbuf, data)
comm.start()
elapsed = comm.wait()

assert np.allclose(comm.gather_all(recvbuf), data.sum(axis=0)[None, :])
print(f"Listing 2 All-reduce on {machine.describe()}")
print(f"  fine-grained fence: {comm.program.num_steps} steps, "
      f"{len(comm.schedule)} point-to-point ops")
print(f"  simulated time {elapsed * 1e3:.3f} ms "
      f"({numproc * count * 4 / 1e9 / elapsed:.2f} GB/s)")
print("  result verified against numpy.")
