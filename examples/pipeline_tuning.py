#!/usr/bin/env python
"""Choosing a pipeline depth (the Figure 9 / Section 6.4 trade-off).

Sweeps pipeline depth for a ring Broadcast across buffer sizes on a
simulated Perlmutter and compares the measured optimum with the analytic
model's prediction (Equation 1): deep pipelines win for large messages,
latency kills them for small ones.

Run:  python examples/pipeline_tuning.py
"""

import numpy as np

from repro import Communicator, Library, machines
from repro.model.perf_model import ModelParams, optimal_pipeline_depth
from repro.transport.profiles import profile

machine = machines.perlmutter(nodes=4)
p = machine.world_size
DEPTHS = (1, 4, 16, 64)
PAYLOADS = [1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 30]


def measure(payload_bytes: int, depth: int) -> float:
    count = max(1, payload_bytes // (p * 4))
    comm = Communicator(machine, dtype=np.float32, materialize=False)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    comm.add_multicast(send, recv, p * count, 0, list(range(p)))
    comm.init(hierarchy=[4, 4], library=[Library.NCCL, Library.IPC],
              ring=4, stripe=4, pipeline=depth)
    t = comm.run()
    return p * count * 4 / 1e9 / t


nccl = profile(Library.NCCL)
header = f"{'payload':>10s}" + "".join(f"  m={d:<6d}" for d in DEPTHS)
print("Ring broadcast throughput (GB/s) on 4 Perlmutter nodes")
print(header + "  best   model-suggested")
for payload in PAYLOADS:
    row = [measure(payload, d) for d in DEPTHS]
    best = DEPTHS[int(np.argmax(row))]
    params = ModelParams(
        alpha=machine.nic_latency + nccl.alpha_inter,
        nic_count=machine.nic_count,
        nic_bandwidth=machine.nic_bandwidth,
        nodes=machine.nodes,
        pipeline=1,
        intra_coefficient=1.0 / 100.0,
    )
    suggested = optimal_pipeline_depth(payload, params, "ring",
                                       candidates=DEPTHS)
    label = (f"{payload / (1 << 20):.2g}MB" if payload < (1 << 30)
             else f"{payload / (1 << 30):.2g}GB")
    cells = "".join(f"{v:9.2f}" for v in row)
    print(f"{label:>10s}{cells}   m={best:<4d} m={suggested}")

print("\nDeep pipelines pay off only once the per-channel message is large"
      " enough to amortize per-message latency (Section 6.4).")
