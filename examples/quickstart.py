#!/usr/bin/env python
"""Quickstart: an optimized All-reduce on a simulated Perlmutter.

Reproduces the workflow of the paper's Listing 2:

1. compose the collective from multicast/reduction/fence primitives
   (here via the library's Table 2 composer);
2. initialize with the machine-specific optimization parameters
   (hierarchy, per-level libraries, striping, ring, pipelining);
3. start/wait, then inspect both the *correctness* (real numpy data moved
   between the simulated GPUs) and the *performance* (simulated elapsed
   time on the modeled network).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import Communicator, Library, machines

# A 4-node Perlmutter: 4x A100 and 4 Slingshot NICs per node (Table 4).
machine = machines.perlmutter(nodes=4)
print(machine.describe())

p = machine.world_size
count = 1 << 14  # elements per chunk; total payload = p * count floats

comm = Communicator(machine, dtype=np.float32)
sendbuf, recvbuf = repro.compose(comm, "all_reduce", count)

# Optimization parameters for this machine (Table 5's Perlmutter tree row).
comm.init(
    hierarchy=[2, 2, 4],
    library=[Library.NCCL, Library.NCCL, Library.IPC],
    stripe=4,      # one branch per NIC
    ring=1,        # tree topology
    pipeline=8,    # overlap stages on 8 channels
)
print(comm.describe())

# Fill each simulated GPU's send buffer and run the collective.
rng = np.random.default_rng(0)
data = rng.standard_normal((p, p * count)).astype(np.float32)
comm.set_all(sendbuf, data)

comm.start()          # nonblocking (Listing 2 line 21)
elapsed = comm.wait()  # blocking (line 23)

expected = data.sum(axis=0)
result = comm.gather_all(recvbuf)
assert np.allclose(result, expected[None, :], rtol=1e-3, atol=1e-3)
print("all-reduce result verified against numpy on all"
      f" {p} simulated GPUs")

payload = p * count * 4
print(f"simulated time: {elapsed * 1e3:.3f} ms  "
      f"throughput: {payload / 1e9 / elapsed:.2f} GB/s  "
      f"({len(comm.schedule)} point-to-point ops)")
