#!/usr/bin/env python
"""Performance portability: one composition, four machines.

The paper's headline: "When porting between machines, only the machine
description needs to change; the specification of the logic of the
collective operation can be automatically optimized for the target network."

This example composes All-reduce ONCE (as a function of the communicator)
and runs it on Delta, Perlmutter, Frontier, and Aurora, switching only the
machine model and the Table 5 optimization parameters — then compares each
result against the machine's theoretical bound.

Run:  python examples/portability_sweep.py
"""

import numpy as np

import repro
from repro import Communicator, machines
from repro.bench.configs import best_config
from repro.model.bounds import achievable_bound

PAYLOAD = 1 << 28  # 256 MB total


def compose_all_reduce(comm: Communicator, count: int) -> None:
    """The machine-agnostic logic: identical on every system."""
    repro.compose(comm, "all_reduce", count)


print(f"{'system':12s} {'GPUs':>5s} {'config':>34s} "
      f"{'GB/s':>8s} {'bound':>8s} {'frac':>6s}")
for system in ("delta", "perlmutter", "frontier", "aurora"):
    machine = machines.by_name(system, nodes=4)
    count = PAYLOAD // (machine.world_size * 4)

    comm = Communicator(machine, dtype=np.float32, materialize=False)
    compose_all_reduce(comm, count)          # same logic everywhere...
    cfg = best_config(machine, "all_reduce")  # ...only the machine description changes
    comm.init(**cfg.init_kwargs())

    elapsed = comm.measure(warmup=1, rounds=3)
    thr = machine.world_size * count * 4 / 1e9 / elapsed
    bound = achievable_bound(machine, "all_reduce")
    print(f"{system:12s} {machine.world_size:5d} {cfg.name + str(list(cfg.hierarchy)):>34s} "
          f"{thr:8.2f} {bound:8.2f} {thr / bound:6.1%}")

print("\nThe collective logic never changed; each machine got its own "
      "hierarchy, libraries, striping, and pipeline depth.")
