#!/usr/bin/env python
"""A custom collective over a sparse GPU subset (tree pruning, Section 4.2).

HiCCL's primitives accept arbitrary leaf sets: "the leaf GPUs may be a
sparse subset of all GPUs" and "in case of custom collectives, the tree
structure is pruned according to the sparsity of the leaf GPUs."

This example builds a halo-exchange-flavoured pattern a real application
might need: GPU 0 broadcasts model metadata to one GPU per node, while two
disjoint groups independently all-reduce their own gradients — all in one
communicator, with concurrent primitives in a single step.

Run:  python examples/custom_sparse_collective.py
"""

import numpy as np

from repro import Communicator, Library, ReduceOp, machines

machine = machines.frontier(nodes=4)  # 32 GCDs
p = machine.world_size
g = machine.gpus_per_node
count = 512

comm = Communicator(machine, dtype=np.float32)
meta = comm.alloc(count, "meta")
meta_out = comm.alloc(count, "meta_out")
grads = comm.alloc(count, "grads")
grads_out = comm.alloc(count, "grads_out")

# 1) Broadcast metadata from GPU 0 to each node's first GCD only.
node_leaders = [node * g for node in range(machine.nodes)]
comm.add_multicast(meta, meta_out, count, 0, node_leaders)

# 2) Two concurrent group all-reduces (disjoint buffers => same step is fine):
#    group A = even nodes' GCDs, group B = odd nodes' GCDs.
group_a = [r for r in range(p) if machine.node_of(r) % 2 == 0]
group_b = [r for r in range(p) if machine.node_of(r) % 2 == 1]
for group in (group_a, group_b):
    for idx, j in enumerate(group):
        # Reduce-scatter within the group: member idx owns slice idx.
        chunk = count // len(group)
        comm.add_reduction(grads[idx * chunk:], grads_out[idx * chunk:],
                           chunk, group, j, ReduceOp.SUM)
comm.add_fence()
for group in (group_a, group_b):
    for idx, i in enumerate(group):
        chunk = count // len(group)
        others = [r for r in group if r != i]
        comm.add_multicast(grads_out[idx * chunk:], grads_out[idx * chunk:],
                           chunk, i, others)

comm.init(
    hierarchy=[4, 4, 2],
    library=[Library.MPI, Library.IPC, Library.IPC],
    stripe=4,
    pipeline=4,
)

rng = np.random.default_rng(1)
meta_data = rng.standard_normal((p, count)).astype(np.float32)
grad_data = rng.integers(-6, 7, size=(p, count)).astype(np.float32)
comm.set_all(meta, meta_data)
comm.set_all(grads, grad_data)
elapsed = comm.run()

# Verify: leaders got GPU 0's metadata...
out = comm.gather_all(meta_out)
for leader in node_leaders:
    assert np.allclose(out[leader], meta_data[0])
# ...and each group's all-reduce used only its own members' gradients.
gout = comm.gather_all(grads_out)
for group in (group_a, group_b):
    chunk = count // len(group)
    expected = grad_data[group].sum(axis=0)
    for member in group:
        got = gout[member][: chunk * len(group)]
        assert np.allclose(got, expected[: chunk * len(group)])

# Pruning check: nodes outside a primitive's leaf set carry no traffic for it.
print(f"custom collective on {machine.describe()}")
print(f"  {len(comm.schedule)} p2p ops, {comm.program.num_steps} steps, "
      f"simulated {elapsed * 1e6:.1f} us")
print("  metadata broadcast + two concurrent group all-reduces verified.")
