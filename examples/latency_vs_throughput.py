#!/usr/bin/env python
"""Latency- vs throughput-oriented all-reduce (Section 6.5's future work).

The paper's throughput optimizations deliberately trade latency away: deep
pipelines and multi-hop hierarchies are poison for small messages (Figure 9's
drooping curves, and the >256-node regime of Figure 10 where "latency becomes
the main bottleneck").  The paper notes latency-oriented design "can be
achieved with HiCCL's API" — this example does it, comparing three
compositions across message sizes on a simulated Perlmutter:

* recursive doubling (latency-optimal, log2 p rounds);
* the throughput-optimal two-step ring composition;
* the adaptive dispatcher that switches at the alpha-beta crossover.

Run:  python examples/latency_vs_throughput.py
"""

import numpy as np

import repro
from repro import Communicator, machines
from repro.bench.configs import best_config
from repro.core.latency import (
    adaptive_all_reduce,
    compose_all_reduce_recursive_doubling,
    crossover_bytes,
    latency_plan,
)

machine = machines.perlmutter(nodes=4)
p = machine.world_size

print(f"all-reduce on {machine.describe()}")
print(f"model crossover estimate: {crossover_bytes(machine) / 1e6:.2f} MB\n")
print(f"{'payload':>10s} {'recursive-dbl':>14s} {'two-step ring':>14s} "
      f"{'adaptive':>10s} {'picked':>11s}")

for exp in (10, 14, 18, 22, 26):
    payload = 1 << exp  # total bytes
    count = max(1, payload // (p * 4))

    lat = Communicator(machine, materialize=False)
    compose_all_reduce_recursive_doubling(lat, p * count)
    lat.init(**latency_plan(machine))
    t_lat = lat.run()

    thr = Communicator(machine, materialize=False)
    repro.compose(thr, "all_reduce", count)
    thr.init(**best_config(machine, "all_reduce").init_kwargs())
    t_thr = thr.run()

    ada, _, _, kind = adaptive_all_reduce(machine, count)
    # adaptive_all_reduce materializes by default for result access; timing
    # is identical either way.
    t_ada = ada.timing.elapsed

    label = (f"{payload >> 10}KB" if payload < (1 << 20)
             else f"{payload >> 20}MB")
    print(f"{label:>10s} {t_lat * 1e6:>11.1f} us {t_thr * 1e6:>11.1f} us "
          f"{t_ada * 1e6:>7.1f} us {kind:>11s}")

print("\nSmall messages: log2(p) rounds beat the pipelined hierarchy by an "
      "order of magnitude;\nlarge messages: the bandwidth-optimal "
      "composition wins — the dispatcher tracks the crossover.")
