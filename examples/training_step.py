#!/usr/bin/env python
"""Data-parallel training emulation: the workload the paper motivates.

"All-reduce performance is critical in scientific simulation and machine
learning applications" (Section 3.3, footnote).  This example emulates the
communication of synchronous data-parallel SGD on a simulated Frontier
partition: each simulated GPU computes local gradients for a small MLP,
HiCCL's two-step All-reduce averages them, and every rank applies the same
update — so all replicas stay bit-identical, which the example verifies
for several steps.

It also reports the communication time per step on the modeled machine and
what fraction of the step a 1 GB/s-compute workload would spend in
All-reduce with and without HiCCL's optimizations.

Run:  python examples/training_step.py
"""

import numpy as np

import repro
from repro import Communicator, Library, machines

machine = machines.frontier(nodes=2)  # 16 GCDs
p = machine.world_size

# A 2.4M-parameter MLP (~10 MB of fp32 gradients): big enough that the
# all-reduce is bandwidth- rather than latency-bound.
layer_shapes = [(256, 1024), (1024,), (1024, 2048), (2048,), (2048, 10), (10,)]
n_params = sum(int(np.prod(s)) for s in layer_shapes)
n_params += (-n_params) % p  # pad to a multiple of p for even chunking
count = n_params // p

# Persistent communicator: composed and optimized ONCE, reused every step
# (Section 5.2's memoization is the point of this design).
comm = Communicator(machine, dtype=np.float32)
grads, avg = repro.compose(comm, "all_reduce", count)
comm.init(hierarchy=[2, 4, 2],
          library=[Library.MPI, Library.IPC, Library.IPC],
          ring=2, stripe=8, pipeline=4)

rng = np.random.default_rng(0)
params = rng.standard_normal(n_params).astype(np.float32)
replicas = np.tile(params, (p, 1))
lr = 0.01

comm_time = 0.0
for step in range(5):
    # Each rank sees a different shard of the "batch": different gradients.
    local_grads = rng.standard_normal((p, n_params)).astype(np.float32)
    comm.set_all(grads, local_grads)
    comm.start()
    comm_time += comm.wait()
    summed = comm.gather_all(avg)
    # Every replica applies the same averaged gradient.
    replicas -= lr * summed / p
    spread = np.abs(replicas - replicas[0]).max()
    assert spread == 0.0, "replicas diverged!"
    print(f"step {step}: replicas identical "
          f"(param[0]={replicas[0, 0]:+.5f}, comm {comm.last_elapsed * 1e3:.3f} ms)")

payload = n_params * 4
print(f"\nmodel: {n_params} parameters ({payload / 1e6:.2f} MB), "
      f"machine: {machine.describe()}")
print(f"all-reduce per step: {comm.last_elapsed * 1e3:.3f} ms "
      f"({payload / 1e9 / comm.last_elapsed:.2f} GB/s effective)")

# What would the same step cost without hierarchical optimization?
flat = Communicator(machine, dtype=np.float32, materialize=False)
repro.compose(flat, "all_reduce", count)
flat.init(hierarchy=[p], library=[Library.MPI])
flat_t = flat.run()
print(f"flat (direct) all-reduce: {flat_t * 1e3:.3f} ms -> HiCCL is "
      f"{flat_t / comm.last_elapsed:.1f}x faster on this step")
