"""Workload layer: groups, workload runtime, and the scenario suite."""

from __future__ import annotations

import pytest

from repro.core.communicator import Communicator, SubCommunicator
from repro.core.composition import compose
from repro.errors import CompositionError, HierarchyError
from repro.machine.machines import delta, perlmutter
from repro.transport.library import Library
from repro.workloads import (
    SCENARIOS,
    Workload,
    applicable_scenarios,
    build_scenario,
    data_parallel_groups,
    pipeline_pair_groups,
    pipeline_stage_groups,
    run_scenario,
    run_scenarios,
    tensor_parallel_groups,
)

MACHINE = perlmutter(nodes=4)  # 16 ranks
PAYLOAD = 1 << 20  # 1 MiB per collective keeps the suite quick


class TestGroups:
    def test_tensor_parallel_defaults_to_whole_nodes(self):
        groups = tensor_parallel_groups(MACHINE)
        assert groups == [tuple(range(n * 4, n * 4 + 4)) for n in range(4)]

    def test_tensor_parallel_subnode(self):
        groups = tensor_parallel_groups(MACHINE, size=2)
        assert len(groups) == 8 and groups[0] == (0, 1)

    def test_tensor_parallel_size_must_divide(self):
        with pytest.raises(HierarchyError, match="divide"):
            tensor_parallel_groups(MACHINE, size=3)

    def test_pipeline_stage_blocks(self):
        stages = pipeline_stage_groups(MACHINE, 2)
        assert stages == [tuple(range(8)), tuple(range(8, 16))]

    def test_pipeline_pairs_match_positions(self):
        pairs = pipeline_pair_groups(MACHINE, 2)
        assert pairs == [(r, r + 8) for r in range(8)]

    def test_data_parallel_rails(self):
        rails = data_parallel_groups(MACHINE, nodes=[0, 1])
        assert rails == [(0, 4), (1, 5), (2, 6), (3, 7)]


class TestWorkloadRuntime:
    def _comm(self):
        comm = Communicator(MACHINE, materialize=False)
        compose(comm, "broadcast", 1 << 10)
        comm.init(hierarchy=[2, 2, 4],
                  library=[Library.NCCL, Library.NCCL, Library.IPC],
                  stripe=4, pipeline=2)
        return comm

    def test_add_rejects_uninitialized(self):
        comm = Communicator(MACHINE, materialize=False)
        with pytest.raises(Exception, match="init"):
            Workload(MACHINE).add(comm, "x")

    def test_add_rejects_foreign_machine(self):
        other = delta(nodes=2)
        comm = Communicator(other, materialize=False)
        compose(comm, "broadcast", 64)
        comm.init(hierarchy=[2, 4], library=[Library.NCCL, Library.IPC])
        with pytest.raises(CompositionError, match="machine"):
            Workload(MACHINE).add(comm, "x")

    def test_after_by_name_and_unknown_name(self):
        wl = Workload(MACHINE)
        comm = self._comm()
        wl.add(comm, "first")
        wl.add(comm, "second", after=("first",))
        with pytest.raises(CompositionError, match="unknown job"):
            wl.add(comm, "third", after=("missing",))

    def test_run_requires_jobs(self):
        with pytest.raises(CompositionError, match="no jobs"):
            Workload(MACHINE).run()

    def test_result_lookup_and_render(self):
        wl = Workload(MACHINE, "pair")
        comm = self._comm()
        wl.add(comm, "a")
        wl.add(comm, "b")
        result = wl.run()
        assert result.job("a").slowdown >= 1.0
        with pytest.raises(KeyError):
            result.job("zzz")
        text = result.render()
        assert "pair" in text and "slowdown" in text and "busiest" in text
        # Deterministic rendering: repeated runs are byte-identical.
        assert wl.run().render() == text


class TestScenarioSuite:
    def test_registry_has_at_least_four_scenarios(self):
        assert len(SCENARIOS) >= 4

    def test_all_applicable_scenarios_run_end_to_end(self):
        names = applicable_scenarios(MACHINE)
        assert len(names) >= 4
        for name in names:
            result = run_scenario(name, MACHINE, PAYLOAD)
            assert result.makespan > 0
            assert all(job.isolated > 0 for job in result.jobs)
            assert all(job.slowdown > 0 for job in result.jobs)
            assert result.utilization, f"{name}: no resource utilization"

    def test_same_nic_contention_scenario_reports_slowdown(self):
        result = run_scenario("contention_mix", MACHINE, PAYLOAD)
        assert result.worst_slowdown > 1.0

    def test_disjoint_scenario_reports_unit_slowdown(self):
        result = run_scenario("disjoint_halves", MACHINE, PAYLOAD)
        for job in result.jobs:
            assert job.slowdown == pytest.approx(1.0, abs=1e-9)

    def test_fsdp_prefetch_overlap_contends(self):
        result = run_scenario("fsdp_step", MACHINE, PAYLOAD)
        # The backward grad-sync overlaps the parameter prefetch on the same
        # NICs; at least one overlapped job must pay for it.
        assert result.worst_slowdown > 1.0
        # The purely sequential forward all-gathers do not contend.
        assert result.job("fwd-allgather-L0").slowdown == pytest.approx(1.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(CompositionError, match="unknown scenario"):
            build_scenario("nope", MACHINE, PAYLOAD)

    def test_unsupported_machine_rejected(self):
        single = perlmutter(nodes=1)
        with pytest.raises(CompositionError, match="does not fit"):
            build_scenario("disjoint_halves", single, PAYLOAD)

    def test_llm3d_requires_four_nodes(self):
        two = perlmutter(nodes=2)
        assert "llm3d_step" not in applicable_scenarios(two)
        with pytest.raises(CompositionError, match="does not fit"):
            build_scenario("llm3d_step", two, PAYLOAD)


class TestScenarioDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        a = run_scenario("moe_layer", MACHINE, PAYLOAD)
        b = run_scenario("moe_layer", MACHINE, PAYLOAD)
        assert a.render() == b.render()


class TestMoeTokenMatrix:
    def test_zero_skew_is_the_historical_matrix(self):
        from repro.workloads.scenarios import ELEM_BYTES, moe_token_matrix

        p, payload = 8, 1 << 20
        matrix = moe_token_matrix(p, payload)
        base = max(1, payload // (ELEM_BYTES * p * p * 3))
        assert matrix == [
            [base * (1 + (3 * i + 5 * j) % 4) for j in range(p)]
            for i in range(p)
        ]
        assert matrix == moe_token_matrix(p, payload, skew=0.0, seed=99)

    def test_skew_is_seeded_and_deterministic(self):
        from repro.workloads.scenarios import moe_token_matrix

        p, payload = 8, 1 << 20
        a = moe_token_matrix(p, payload, skew=1.2, seed=3)
        assert a == moe_token_matrix(p, payload, skew=1.2, seed=3)
        assert a != moe_token_matrix(p, payload, skew=1.2, seed=4)
        assert a != moe_token_matrix(p, payload)

    def test_skew_concentrates_traffic_on_hot_experts(self):
        from repro.workloads.scenarios import moe_token_matrix

        p, payload = 8, 1 << 20
        flat = moe_token_matrix(p, payload)
        hot = moe_token_matrix(p, payload, skew=1.5, seed=0)
        assert all(len(row) == p for row in hot)
        assert all(v >= 1 for row in hot for v in row)
        # Zipf reweighting widens the spread of per-expert column volume.
        def spread(matrix):
            cols = [sum(row[j] for row in matrix) for j in range(p)]
            return max(cols) / min(cols)

        assert spread(hot) > spread(flat)
        # Renormalization keeps total volume in the same ballpark.
        total = sum(map(sum, flat))
        assert 0.5 * total < sum(map(sum, hot)) < 2.0 * total


@pytest.mark.slow
class TestParallelScenarios:
    def test_run_scenarios_across_workers_matches_serial(self):
        names = ["contention_mix", "disjoint_halves"]
        serial = run_scenarios(names, MACHINE, PAYLOAD, jobs=1)
        parallel = run_scenarios(names, MACHINE, PAYLOAD, jobs=2)
        assert [r.render() for r in serial] == [r.render() for r in parallel]
