"""Elastic-shrink workload: N -> N-k re-planning on drained nodes.

The heavyweight committed baselines live in ``benchmarks/test_fault_baselines.py``;
this file locks down the fast contracts: report shape, deterministic
rendering, drained-node pricing rejection, and the non-power-of-two
fallback configuration the shrunk machine needs.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import best_config
from repro.errors import FaultError, InitializationError
from repro.machine.faults import FaultSet
from repro.machine.machines import by_name
from repro.simulator.engine import simulate
from repro.workloads.elastic import elastic_shrink, shrink_config

PAYLOAD_BYTES = 1 << 20


def test_shrink_report_shape_and_determinism():
    machine = by_name("delta", nodes=4)
    report = elastic_shrink(machine, "all_reduce", PAYLOAD_BYTES, (3,))
    assert report.nodes_before == 4
    assert report.nodes_after == 3
    assert report.drained_nodes == (3,)
    assert report.rank_map == tuple(range(12))
    assert report.healthy_seconds > 0
    assert report.shrunk_seconds > 0
    assert report.replan_wall_seconds > 0
    # The render is a pure function of the simulated quantities (no wall).
    again = elastic_shrink(machine, "all_reduce", PAYLOAD_BYTES, (3,))
    assert again.render() == report.render()
    assert "shrink: 4 -> 3 nodes" in report.render()


def test_shrink_accepts_custom_survivor_map():
    machine = by_name("perlmutter", nodes=4)
    survivors = tuple(range(4)) + tuple(range(12, 16))
    report = elastic_shrink(machine, "broadcast", PAYLOAD_BYTES, (1, 2),
                            survivors=survivors)
    assert report.rank_map == survivors
    assert report.nodes_after == 2


def test_shrink_config_handles_non_power_of_two_nodes():
    """best_config needs power-of-two nodes; the fallback must not."""
    machine = by_name("delta", nodes=3)
    with pytest.raises(InitializationError):
        best_config(machine, "all_reduce")
    cfg = shrink_config(machine, "all_reduce")
    assert cfg.hierarchy[0] == 3
    # And on power-of-two nodes the fallback defers to Table 5.
    machine4 = by_name("delta", nodes=4)
    assert shrink_config(machine4, "all_reduce") == best_config(
        machine4, "all_reduce")


def test_drained_node_pricing_is_rejected_not_mispriced():
    """A healthy schedule replayed against drained nodes must raise a
    FaultError naming the drained endpoint — never price it as traffic."""
    machine = by_name("delta", nodes=2)
    from repro.core.communicator import Communicator
    from repro.core.composition import compose

    comm = Communicator(machine, materialize=False)
    compose(comm, "all_reduce", 1 << 10)
    comm.init(**best_config(machine, "all_reduce").init_kwargs())
    drained = FaultSet(drained_nodes=(1,)).apply(machine)
    with pytest.raises(FaultError, match="drained"):
        simulate(comm.schedule, drained, comm.plan.libraries, 4)
