"""Seeded property/fuzz tests: engine equivalence + timeline invariants.

Random small schedules — random DAG shapes, payload sizes, channel and
level choices — are pushed through both simulation engines.  Three
properties are asserted on every example:

* **equivalence** — requesting the levelized engine returns the exact
  event-loop timeline (bit-identical floats), whether the certificate
  accepted or the engine fell back;
* **serial-resource exclusivity** — reconstructing every resource booking
  from the realized start times, no two occupancy windows on the same
  serial NIC/link/copy timeline overlap;
* **lower bound** — the makespan never beats the analytic dependency-chain
  bound (:func:`repro.planner.score.critical_path_seconds`).

``derandomize=True`` keeps the examples seeded and reproducible in CI.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ops import ReduceOp
from repro.core.schedule import ScheduleBuilder
from repro.machine.machines import generic
from repro.planner.score import critical_path_seconds
from repro.simulator.engine import simulate
from repro.simulator.level import _bookings
from repro.simulator.timing import price_schedule_columns
from repro.transport.library import Library

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

MACHINE = generic(2, 4, 2, name="fuzz")
LIBS = (Library.MPI, Library.IPC)
REGION = 1 << 16


@st.composite
def random_dag_schedule(draw):
    """Random valid schedule: random endpoints, payloads, channels, deps.

    Writes land in disjoint per-op regions of a shared buffer so the
    builder's race detection never fires; dependencies point backward.
    """
    n_ops = draw(st.integers(1, 25))
    b = ScheduleBuilder(MACHINE.world_size)
    uids: list[int] = []
    for i in range(n_ops):
        src = draw(st.integers(0, MACHINE.world_size - 1))
        dst = draw(st.integers(0, MACHINE.world_size - 1))
        count = draw(st.sampled_from([1, 7, 1024, 1 << 16]))
        channel = draw(st.integers(0, 2))
        n_deps = draw(st.integers(0, min(3, len(uids))))
        deps = tuple(sorted(set(
            draw(st.sampled_from(uids)) for _ in range(n_deps)
        ))) if uids else ()
        region = i * REGION
        if src == dst:
            uid = b.copy(src, ("src", region), ("dst", region), count,
                         deps=deps, channel=channel)
        else:
            same_node = src // MACHINE.gpus_per_node == dst // MACHINE.gpus_per_node
            uid = b.send(src, dst, ("src", region), ("dst", region), count,
                         level=1 if same_node else 0, channel=channel,
                         deps=deps)
        uids.append(uid)
    return b.build()


@st.composite
def chained_schedule(draw):
    """A pure dependency chain — the class the certificate always accepts."""
    n_ops = draw(st.integers(1, 20))
    count = draw(st.sampled_from([64, 1024, 1 << 12]))
    b = ScheduleBuilder(MACHINE.world_size)
    prev = None
    for i in range(n_ops):
        src = draw(st.integers(0, MACHINE.world_size - 1))
        dst = draw(st.integers(0, MACHINE.world_size - 1))
        deps = (prev,) if prev is not None else ()
        region = i * REGION
        reduce_op = draw(st.sampled_from([None, ReduceOp.SUM]))
        if src == dst:
            prev = b.copy(src, ("src", region), ("dst", region), count,
                          deps=deps)
        else:
            same_node = src // MACHINE.gpus_per_node == dst // MACHINE.gpus_per_node
            prev = b.send(src, dst, ("src", region), ("dst", region), count,
                          level=1 if same_node else 0, deps=deps,
                          reduce_op=reduce_op)
    return b.build()


def _assert_no_overlap(sched, timing):
    """Reconstructed bookings on each serial resource never overlap."""
    cols = price_schedule_columns(sched, MACHINE, LIBS, 4)
    rid, starts, occ = _bookings(cols, np.asarray(timing.start_times))
    ends = starts + occ
    same = rid[1:] == rid[:-1]
    gap_ok = starts[1:] >= ends[:-1]
    assert bool((gap_ok | ~same).all()), "overlapping bookings on a serial resource"


class TestRandomDags:
    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_engines_equivalent(self, sched):
        """engine='level' is observationally the event loop, always."""
        event = simulate(sched, MACHINE, LIBS, 4, engine="event")
        level = simulate(sched, MACHINE, LIBS, 4, engine="level")
        assert level.start_times == event.start_times
        assert level.completion_times == event.completion_times
        assert level.elapsed == event.elapsed
        assert level.resource_busy == event.resource_busy

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_no_resource_overlap(self, sched):
        timing = simulate(sched, MACHINE, LIBS, 4, engine="level")
        _assert_no_overlap(sched, timing)

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_makespan_at_least_critical_path(self, sched):
        """Resources only ever delay; the dep-chain bound is sound for
        both engines."""
        timing = simulate(sched, MACHINE, LIBS, 4, engine="level")
        bound = critical_path_seconds(sched, MACHINE, LIBS)
        assert timing.elapsed >= bound - 1e-12


class TestChains:
    @settings(**SETTINGS)
    @given(sched=chained_schedule())
    def test_chains_certify_and_match(self, sched):
        """A pure dependency chain always passes the certificate, and the
        levelized result is still bit-identical to the event loop."""
        event = simulate(sched, MACHINE, LIBS, 4, engine="event")
        level = simulate(sched, MACHINE, LIBS, 4, engine="level")
        assert level.engine == "level"
        assert level.start_times == event.start_times
        assert level.completion_times == event.completion_times
        assert level.elapsed == event.elapsed
        assert level.resource_busy == event.resource_busy
        _assert_no_overlap(sched, level)
