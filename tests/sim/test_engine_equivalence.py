"""Differential harness: event loop vs levelized engine, bit for bit.

The levelized batch engine is only allowed to exist because it is
observationally identical to the event loop: when its serialization
certificate accepts, it must reproduce the exact same per-op start/finish
times and makespans (float-for-float, no tolerance), and when the
certificate rejects it must fall back to the event loop transparently.
This module drives every committed collective, all five workload
scenarios, and both full-system aggregate machine models through both
engines and asserts exactly that.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import best_config
from repro.bench.figures import pipeline_stage_schedule
from repro.bench.runner import payload_count
from repro.core.communicator import Communicator
from repro.core.composition import FIGURE8_ORDER, compose
from repro.core.passes import lower_program
from repro.core.plan import OptimizationPlan
from repro.machine.machines import by_name
from repro.simulator.engine import simulate
from repro.transport.library import Library
from repro.workloads.scenarios import SCENARIOS, build_scenario

#: Testbeds of the committed fig8/workload baselines, at a reduced node
#: count so the full collective x machine matrix stays test-suite friendly.
SYSTEMS = ("delta", "perlmutter")
NODES = 2
PAYLOAD_BYTES = 1 << 22


def _lowered(machine, collective):
    comm = Communicator(machine, materialize=False)
    compose(comm, collective, payload_count(machine, PAYLOAD_BYTES))
    cfg = best_config(machine, collective)
    kw = cfg.init_kwargs()
    plan = OptimizationPlan.create(
        machine, kw["hierarchy"], kw["library"],
        stripe=kw["stripe"], ring=kw["ring"], pipeline=kw["pipeline"],
    )
    return lower_program(comm.program, plan), plan


def assert_identical(schedule, machine, libraries, elem_bytes=4):
    """Both engines agree float-for-float; returns the level-path result."""
    event = simulate(schedule, machine, libraries, elem_bytes,
                     engine="event")
    level = simulate(schedule, machine, libraries, elem_bytes,
                     engine="level")
    assert event.engine == "event"
    assert level.start_times == event.start_times
    assert level.completion_times == event.completion_times
    assert level.elapsed == event.elapsed
    assert level.resource_busy == event.resource_busy
    return level


class TestCollectives:
    """Every committed collective x both baseline testbeds, both engines."""

    @pytest.mark.parametrize("system", SYSTEMS)
    @pytest.mark.parametrize("collective", FIGURE8_ORDER)
    def test_best_config_identical(self, system, collective):
        machine = by_name(system, nodes=NODES)
        schedule, plan = _lowered(machine, collective)
        assert_identical(schedule, machine, plan.libraries)

    def test_contended_collective_falls_back(self):
        """Bandwidth-saturating composed collectives share NICs by design,
        so the optimistic certificate is rejected and the event loop stays
        the engine of record."""
        machine = by_name("perlmutter", nodes=NODES)
        schedule, plan = _lowered(machine, "all_reduce")
        level = simulate(schedule, machine, plan.libraries, 4,
                         engine="level")
        assert level.engine == "event"


class TestScenarios:
    """All five workload scenarios, both engines, on the shared timeline."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_identical(self, name):
        machine = by_name("perlmutter", nodes=4)
        workload = build_scenario(name, machine, 1 << 22)
        event = workload.run(engine="event")
        level = workload.run(engine="level")
        assert event.makespan == level.makespan
        for a, b in zip(event.jobs, level.jobs):
            assert (a.name, a.start, a.finish) == (b.name, b.start, b.finish)
        assert event.utilization == level.utilization


class TestAggregateMachines:
    """Both full-system aggregate models, on a schedule the level engine
    genuinely accepts (dependency-chained pipeline parallelism)."""

    @pytest.mark.parametrize("system,nodes", [
        ("frontier-full", 8),
        ("aurora-full", 8),
    ])
    def test_chained_pipeline_runs_levelized(self, system, nodes):
        machine = by_name(system, nodes=nodes)
        schedule = pipeline_stage_schedule(machine, microbatches=2,
                                           count=1 << 16)
        level = assert_identical(schedule, machine,
                                 (Library.MPI, Library.IPC))
        assert level.engine == "level"

    def test_aggregate_default_scale(self):
        """The aggregates default to their deployed node counts."""
        assert by_name("frontier-full", nodes=None).world_size == 9408 * 8
        assert by_name("aurora-full", nodes=None).world_size == 10624 * 12
