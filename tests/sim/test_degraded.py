"""Degraded-topology metamorphic suite for the simulation engines.

Properties asserted on both committed machine models (Delta, Perlmutter):

* **monotonicity** — for a fixed schedule, degrading any single resource
  (one NIC down, one NIC derated, one link derated, one straggling GPU)
  grows every per-resource busy total *exactly* (op durations are
  elementwise monotone in the fault scales) and never decreases the
  makespan beyond a documented scheduling-anomaly tolerance: the event
  engine is a HEFT-style greedy list scheduler, so slowing one resource
  can reorder priorities into a slightly tighter packing (a Graham
  anomaly, observed at most ~0.4% here); severe faults (a DOWN_SCALE NIC)
  must strictly slow the schedule;
* **identity** — an empty fault set is a literal no-op, and a scale-1.0
  derate reproduces the healthy timeline float for float while still
  fingerprinting as a distinct machine;
* **engine equivalence** — the levelized engine reproduces the event loop
  bit for bit on a degraded machine whenever its certificate accepts
  (asymmetric per-resource durations flow through the shared
  PricedColumns, so straggler jitter must not break the batch path);
* **busy-total summaries** — per-resource serialized-GB figures convert
  each busy total at that resource's own (possibly derated) rate: the
  wire portion of the traffic then matches the healthy summary instead of
  being overstated by the derate factor (the alpha-occupancy portion
  legitimately shrinks with the rate, so the degraded figure is bounded
  above by the healthy one).
"""

from __future__ import annotations

import pytest

from repro.bench.configs import best_config
from repro.bench.figures import pipeline_stage_schedule
from repro.bench.runner import payload_count
from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.core.plancache import machine_fingerprint
from repro.machine.faults import FaultSet, resource_rate
from repro.machine.machines import by_name
from repro.simulator.engine import busy_gigabytes, simulate
from repro.transport.library import Library

PAYLOAD_BYTES = 1 << 22
SYSTEMS = ("delta", "perlmutter")
RTOL = 1e-12

#: Greedy list scheduling is not exactly monotone in op durations (Graham
#: anomalies): degrading one resource may reorder HEFT priorities into a
#: slightly tighter packing.  Observed worst case on the committed models
#: is ~0.4%; busy totals below are asserted exactly.
ANOMALY_TOL = 0.01


@pytest.fixture(scope="module")
def lowered():
    """Healthy all_reduce schedule + timing per system (lowered once)."""
    out = {}
    for system in SYSTEMS:
        machine = by_name(system, nodes=2)
        comm = Communicator(machine, materialize=False)
        compose(comm, "all_reduce", payload_count(machine, PAYLOAD_BYTES))
        comm.init(**best_config(machine, "all_reduce").init_kwargs())
        out[system] = (machine, comm)
    return out


def _single_degradations(machine):
    """Every single-resource fault set the monotonicity sweep replays."""
    cases = []
    for node in range(machine.nodes):
        for nic in range(machine.nic_count):
            cases.append(FaultSet(down_nics=((node, nic),)))
            cases.append(FaultSet(nic_derate=((node, nic, 0.7),)))
    for rank in range(machine.world_size):
        cases.append(FaultSet(stragglers=((rank, 0.8),)))
        for lvl in range(len(machine.levels)):
            cases.append(FaultSet(link_derate=((rank, lvl, 0.6),)))
    return cases


@pytest.mark.parametrize("system", SYSTEMS)
def test_degrading_never_decreases_busy_or_makespan(system, lowered):
    machine, comm = lowered[system]
    healthy = comm.timing
    for faults in _single_degradations(machine):
        degraded = faults.apply(machine)
        timing = simulate(comm.schedule, degraded, comm.plan.libraries, 4)
        # Durations are elementwise monotone in the fault scales, so every
        # per-resource busy total grows exactly — no anomaly tolerance.
        for key, busy in healthy.resource_busy.items():
            assert timing.resource_busy[key] >= busy * (1 - RTOL), (
                f"{faults.describe()} shrank busy on {key}"
            )
        assert timing.elapsed >= healthy.elapsed * (1 - ANOMALY_TOL), (
            f"{faults.describe()} made the fixed schedule faster: "
            f"{timing.elapsed} < {healthy.elapsed}"
        )


@pytest.mark.parametrize("system", SYSTEMS)
def test_severe_faults_strictly_slow_the_schedule(system, lowered):
    """A down NIC (DOWN_SCALE) is far outside anomaly territory."""
    machine, comm = lowered[system]
    degraded = FaultSet(down_nics=((0, 0),)).apply(machine)
    timing = simulate(comm.schedule, degraded, comm.plan.libraries, 4)
    assert timing.elapsed > comm.timing.elapsed * 1.05


@pytest.mark.parametrize("system", SYSTEMS)
def test_deeper_derate_never_beats_shallower(system, lowered):
    """Metamorphic: scaling the same NIC down further only slows things
    (up to the scheduling-anomaly tolerance), and a severe derate ends
    strictly above healthy."""
    machine, comm = lowered[system]
    times = []
    for scale in (1.0, 0.7, 0.4, 0.1):
        degraded = FaultSet(nic_derate=((0, 0, scale),)).apply(machine)
        timing = simulate(comm.schedule, degraded, comm.plan.libraries, 4)
        times.append(timing.elapsed)
    for weaker, stronger in zip(times, times[1:]):
        assert stronger >= weaker * (1 - ANOMALY_TOL)
    assert times[-1] > times[0] * 1.05


@pytest.mark.parametrize("system", SYSTEMS)
def test_empty_fault_set_is_identity(system, lowered):
    machine, comm = lowered[system]
    unfaulted = FaultSet().apply(machine)
    assert unfaulted is machine
    assert machine_fingerprint(unfaulted) == machine_fingerprint(machine)


@pytest.mark.parametrize("system", SYSTEMS)
def test_scale_one_derate_reproduces_healthy_timeline(system, lowered):
    """Numerically healthy faults: byte-identical timeline, distinct key."""
    machine, comm = lowered[system]
    degraded = FaultSet(
        nic_derate=tuple(
            (node, nic, 1.0)
            for node in range(machine.nodes)
            for nic in range(machine.nic_count)
        ),
        stragglers=tuple((r, 1.0) for r in range(machine.world_size)),
    ).apply(machine)
    timing = simulate(comm.schedule, degraded, comm.plan.libraries, 4)
    healthy = comm.timing
    assert timing.elapsed == healthy.elapsed
    assert timing.start_times == healthy.start_times
    assert timing.completion_times == healthy.completion_times
    assert timing.resource_busy == healthy.resource_busy
    assert machine_fingerprint(degraded) != machine_fingerprint(machine)


@pytest.mark.parametrize("system", SYSTEMS)
def test_event_vs_level_equivalence_under_straggler_jitter(system):
    """The levelized engine stays bit-identical on a degraded machine —
    and its certificate still *accepts* the contention-free pipeline chain
    (no silent fallback hiding the comparison)."""
    machine = by_name(system, nodes=2)
    degraded = FaultSet(
        stragglers=((1, 0.62), (5, 0.87)),
        link_derate=((2, 0, 0.75),),
    ).apply(machine)
    schedule = pipeline_stage_schedule(degraded, microbatches=3,
                                       count=1 << 14)
    libraries = (Library.MPI, Library.IPC)
    event = simulate(schedule, degraded, libraries, 4, engine="event")
    level = simulate(schedule, degraded, libraries, 4, engine="level")
    assert level.engine == "level"
    assert level.elapsed == event.elapsed
    assert level.start_times == event.start_times
    assert level.completion_times == event.completion_times
    assert level.resource_busy == event.resource_busy
    # The jitter actually moved the timeline vs healthy.
    healthy = simulate(schedule, machine, libraries, 4, engine="event")
    assert event.elapsed > healthy.elapsed


@pytest.mark.parametrize("system", SYSTEMS)
def test_busy_totals_convert_at_derated_rates(system, lowered):
    """Regression: serialized-GB summaries price each resource at its own
    derated rate, never at the machine's uniform healthy NIC rate."""
    machine, comm = lowered[system]
    scale = 0.5
    degraded = FaultSet(
        nic_derate=tuple(
            (node, nic, scale)
            for node in range(machine.nodes)
            for nic in range(machine.nic_count)
        ),
    ).apply(machine)
    timing = simulate(comm.schedule, degraded, comm.plan.libraries, 4)
    moved = timing.moved_gigabytes(degraded)
    healthy_moved = comm.timing.moved_gigabytes(machine)
    nic_keys = [k for k in moved if k[0] in ("nic_tx", "nic_rx")]
    assert nic_keys
    for key in nic_keys:
        busy = timing.resource_busy[key]
        assert moved[key] == pytest.approx(
            busy * resource_rate(degraded, key))
        # The uniform-rate conversion would overstate by exactly 1/scale.
        assert moved[key] == pytest.approx(
            busy * machine.nic_bandwidth * scale)
        assert moved[key] < busy * machine.nic_bandwidth
        # The wire portion (bytes / rate * rate) is conserved exactly and
        # the alpha-occupancy portion shrinks with the rate, so the
        # degraded summary never exceeds the healthy one — the uniform
        # conversion instead *grew* it by 1/scale.
        assert moved[key] <= healthy_moved[key] * (1 + 1e-9)
    # And the healthy machine path is unchanged.
    assert busy_gigabytes(comm.timing.resource_busy, machine) == healthy_moved
