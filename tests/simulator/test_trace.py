"""Tests for execution tracing, Gantt rendering, and utilization reports."""

from __future__ import annotations

import json

import pytest

import repro
from repro import Communicator, Library
from repro.machine.machines import generic
from repro.simulator.trace import (
    ascii_gantt,
    build_trace,
    chrome_trace,
    resource_timeline,
    utilization_report,
)


@pytest.fixture
def traced():
    machine = generic(4, 3, 1, name="trace")
    comm = Communicator(machine, materialize=False)
    repro.compose(comm, "broadcast", 1 << 16)
    comm.init(hierarchy=[4, 3], library=[Library.MPI, Library.IPC],
              ring=4, stripe=3, pipeline=5)
    events = build_trace(comm.schedule, comm.timing, machine,
                         comm.plan.libraries)
    return machine, comm, events


class TestBuildTrace:
    def test_one_event_per_op(self, traced):
        _, comm, events = traced
        assert len(events) == len(comm.schedule)
        assert all(ev.finish >= ev.start for ev in events)

    def test_times_match_engine(self, traced):
        _, comm, events = traced
        makespan = max(ev.finish for ev in events)
        assert makespan == pytest.approx(comm.timing.elapsed)

    def test_channels_and_stages_carried(self, traced):
        _, comm, events = traced
        assert {ev.channel for ev in events} == set(range(5))
        assert max(ev.stage for ev in events) == 4  # Figure 6(b): 5 stages


class TestResourceTimeline:
    def test_grouped_and_sorted(self, traced):
        _, _, events = traced
        timeline = resource_timeline(events)
        assert timeline
        for key, evs in timeline.items():
            starts = [e.start for e in evs]
            assert starts == sorted(starts)

    def test_nic_rows_exist(self, traced):
        _, _, events = traced
        kinds = {key[0] for key in resource_timeline(events)}
        assert {"nic_tx", "nic_rx", "link_tx", "link_rx"} <= kinds


class TestAsciiGantt:
    def test_by_rank(self, traced):
        _, _, events = traced
        art = ascii_gantt(events, by="rank")
        assert "ms" in art
        # All 12 ranks participate (striping employs every GPU).
        assert art.count("|") >= 2 * 12

    def test_pipeline_overlap_visible(self, traced):
        """In the steady state, different stages run at the same time —
        some column must contain two different stage digits."""
        _, _, events = traced
        art = ascii_gantt(events, by="rank", width=60)
        rows = [line.split("|")[1] for line in art.splitlines() if "|" in line]
        overlapped = 0
        for col in range(60):
            digits = {row[col] for row in rows if row[col] != " "}
            if len(digits) > 1:
                overlapped += 1
        assert overlapped > 5

    def test_by_resource(self, traced):
        _, _, events = traced
        art = ascii_gantt(events, by="resource", max_rows=8)
        assert "more rows" in art or art.count("|") > 0

    def test_bad_axis_rejected(self, traced):
        _, _, events = traced
        with pytest.raises(ValueError):
            ascii_gantt(events, by="banana")

    def test_empty_trace(self):
        assert "empty" in ascii_gantt([])


class TestChromeTrace:
    def test_valid_json_with_all_events(self, traced):
        _, comm, events = traced
        doc = json.loads(chrome_trace(events))
        assert len(doc["traceEvents"]) == len(comm.schedule)
        ev = doc["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "tid", "args"} <= set(ev)
        assert ev["ph"] == "X"


class TestUtilizationReport:
    def test_fractions_bounded(self, traced):
        _, comm, _ = traced
        rep = utilization_report(comm.timing)
        assert rep.makespan == comm.timing.elapsed
        assert all(0 <= frac <= 1.0 + 1e-9 for frac in rep.busy_fraction.values())

    def test_bottleneck_is_network_for_ring_broadcast(self, traced):
        """A striped pipelined ring broadcast should be NIC/injection-bound."""
        _, comm, _ = traced
        rep = utilization_report(comm.timing)
        top_kind = rep.bottlenecks(1)[0][0][0]
        assert top_kind in ("nic_tx", "nic_rx", "inj_tx", "inj_rx")

    def test_render(self, traced):
        _, comm, _ = traced
        text = utilization_report(comm.timing).render(3)
        assert "makespan" in text and "%" in text
