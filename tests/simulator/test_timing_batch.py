"""Batch pricing must be bit-identical to the scalar reference.

DESIGN.md promises that :func:`repro.simulator.timing.price_ops` equals
mapping :func:`price_op` elementwise — same float64 operations in the same
order — so the vectorized cost model can never silently drift from the
documented scalar one.  These tests pin that contract on real lowered
schedules across machine models, NIC bindings, reductions, and both the
above- and below-threshold paths.
"""

from __future__ import annotations

import pytest

from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.machine.machines import aurora, delta, frontier, generic, perlmutter
from repro.simulator.timing import BATCH_MIN_OPS, price_op, price_ops
from repro.transport.library import Library


def _schedule(machine, collective, count, **init_kwargs):
    comm = Communicator(machine, materialize=False)
    compose(comm, collective, count)
    comm.init(use_cache=False, **init_kwargs)
    return comm.schedule, comm.plan.libraries


CASES = [
    # (machine, collective, init kwargs) — spans all four paper systems,
    # packed/bijective/round-robin bindings, dual-die intra levels,
    # reductions, striping, rings, and pipelining.
    (perlmutter(nodes=4), "all_reduce",
     dict(hierarchy=[4, 4], library=[Library.NCCL, Library.IPC],
          stripe=4, ring=1, pipeline=4)),
    (perlmutter(nodes=2), "broadcast",
     dict(hierarchy=[2, 4], library=[Library.NCCL, Library.IPC],
          stripe=4, ring=2, pipeline=8)),
    (delta(nodes=2), "reduce",
     dict(hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
          stripe=2, ring=1, pipeline=8)),
    (frontier(nodes=2), "all_gather",
     dict(hierarchy=[2, 4, 2], library=[Library.MPI, Library.IPC, Library.IPC],
          stripe=4, ring=1, pipeline=2)),
    (aurora(nodes=2), "gather",
     dict(hierarchy=[2, 6, 2], library=[Library.MPI, Library.IPC, Library.IPC],
          stripe=4, ring=1, pipeline=1)),
    (generic(2, 3, 2, name="oddshape"), "all_to_all",
     dict(hierarchy=[2, 3], library=[Library.MPI, Library.IPC],
          stripe=1, ring=1, pipeline=4)),
]


@pytest.mark.parametrize("machine,collective,kwargs",
                         CASES, ids=[f"{m.name}-{c}" for m, c, _ in CASES])
@pytest.mark.parametrize("elem_bytes", [4, 8])
def test_price_ops_elementwise_equal(machine, collective, kwargs, elem_bytes):
    schedule, libraries = _schedule(machine, collective, 1 << 12, **kwargs)
    assert len(schedule) >= BATCH_MIN_OPS  # the numpy path, not the fallback
    batch = price_ops(schedule.ops, machine, libraries, elem_bytes)
    scalar = [price_op(op, machine, libraries, elem_bytes)
              for op in schedule.ops]
    assert batch == scalar  # PricedOp is frozen: exact float + resource keys


def test_small_schedules_take_the_scalar_path():
    machine = generic(2, 2, 1, name="tiny")
    schedule, libraries = _schedule(
        machine, "broadcast", 8,
        hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
    assert len(schedule) < BATCH_MIN_OPS
    assert price_ops(schedule.ops, machine, libraries, 4) == [
        price_op(op, machine, libraries, 4) for op in schedule.ops]


def test_invalid_level_raises_same_error():
    machine = perlmutter(nodes=2)
    schedule, libraries = _schedule(
        machine, "broadcast", 1 << 12,
        hierarchy=[2, 4], library=[Library.NCCL, Library.IPC], pipeline=4)
    with pytest.raises(ValueError, match="no valid library level"):
        price_ops(schedule.ops, machine, (), 4)
