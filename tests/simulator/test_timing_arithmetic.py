"""Exact arithmetic checks of the alpha-beta-gamma pricing model."""

from __future__ import annotations

import pytest

from repro.core.ops import ReduceOp
from repro.core.schedule import ScheduleBuilder
from repro.machine.machines import generic, perlmutter
from repro.simulator.timing import RESOURCE_ALPHA_FRACTION, price_op
from repro.transport.library import Library
from repro.transport.profiles import profile

MB = 1 << 20


def _op(machine, src, dst, count, reduce_op=None):
    b = ScheduleBuilder(machine.world_size)
    if src == dst:
        b.copy(src, ("a", 0), ("b", 0), count, reduce_op=reduce_op)
    else:
        b.send(src, dst, ("a", 0), ("b", 0), count, reduce_op=reduce_op, level=0)
    return b.build().ops[0]


class TestInterNodePricing:
    def test_wire_vs_endpoint_durations(self):
        machine = perlmutter(nodes=2)
        priced = price_op(_op(machine, 0, 4, 25 * MB), machine,
                          (Library.NCCL,), 4)
        nbytes = 25 * MB * 4
        keys = dict(priced.resources)
        wire = nbytes / 1e9 / machine.nic_bandwidth
        prof = profile(Library.NCCL)
        flow = nbytes / 1e9 / (machine.nic_bandwidth * prof.eff_inter)
        assert keys[("nic_tx", 0, 0)] == pytest.approx(wire)
        assert keys[("nic_rx", 1, 0)] == pytest.approx(wire)
        assert keys[("inj_tx", 0)] == pytest.approx(flow)
        assert keys[("inj_rx", 4)] == pytest.approx(flow)
        # Endpoints are slower than the wire: striping's opportunity.
        assert flow > wire

    def test_alpha_is_path_plus_library(self):
        machine = perlmutter(nodes=2)
        priced = price_op(_op(machine, 0, 4, MB), machine, (Library.MPI,), 4)
        prof = profile(Library.MPI)
        assert priced.alpha == pytest.approx(machine.nic_latency + prof.alpha_inter)

    def test_overhead_fraction(self):
        machine = perlmutter(nodes=2)
        priced = price_op(_op(machine, 0, 4, MB), machine, (Library.MPI,), 4)
        assert priced.overhead == pytest.approx(
            priced.alpha * RESOURCE_ALPHA_FRACTION
        )


class TestIntraNodePricing:
    def test_level_bandwidth_and_efficiency(self):
        machine = perlmutter(nodes=2)
        priced = price_op(_op(machine, 0, 1, 25 * MB), machine,
                          (Library.IPC,), 4)
        nbytes = 25 * MB * 4
        level_bw = machine.levels[0].bandwidth  # IPC eff_intra = 1.0
        expected = nbytes / 1e9 / level_bw
        for _key, dur in priced.resources:
            assert dur == pytest.approx(expected)

    def test_die_level_faster_than_device_level(self):
        from repro.machine.machines import frontier

        machine = frontier(nodes=1)
        die = price_op(_op(machine, 0, 1, MB), machine, (Library.IPC,), 4)
        dev = price_op(_op(machine, 0, 2, MB), machine, (Library.IPC,), 4)
        assert die.transfer_time < dev.transfer_time


class TestLocalAndGamma:
    def test_local_copy_uses_copy_engine(self):
        machine = generic(1, 2, 1, name="lc")
        priced = price_op(_op(machine, 0, 0, MB), machine, (Library.MPI,), 4)
        assert priced.resources[0][0] == ("copy", 0)
        assert priced.gamma == 0.0

    def test_gamma_scales_with_bytes_and_kernel(self):
        machine = perlmutter(nodes=2)
        small = price_op(_op(machine, 0, 4, MB, ReduceOp.SUM), machine,
                         (Library.NCCL,), 4)
        large = price_op(_op(machine, 0, 4, 16 * MB, ReduceOp.SUM), machine,
                         (Library.NCCL,), 4)
        assert large.gamma > small.gamma
        mpi = price_op(_op(machine, 0, 4, MB, ReduceOp.SUM), machine,
                       (Library.MPI,), 4)
        assert mpi.gamma > small.gamma  # kernel_scale 2.5 vs 0.35

    def test_elem_bytes_scales_linearly(self):
        machine = perlmutter(nodes=2)
        f32 = price_op(_op(machine, 0, 4, MB), machine, (Library.NCCL,), 4)
        f64 = price_op(_op(machine, 0, 4, MB), machine, (Library.NCCL,), 8)
        assert f64.transfer_time == pytest.approx(2 * f32.transfer_time)


class TestInjectionCap:
    def test_delta_flow_capped_by_injection(self):
        from repro.machine.machines import delta

        machine = delta(nodes=2)
        priced = price_op(_op(machine, 0, 4, 25 * MB), machine,
                          (Library.NCCL,), 4)
        keys = dict(priced.resources)
        nbytes = 25 * MB * 4
        prof = profile(Library.NCCL)
        flow = nbytes / 1e9 / (machine.injection_bandwidth * prof.eff_inter)
        assert keys[("inj_tx", 0)] == pytest.approx(flow)
        # Injection cap (20 GB/s) binds before the NIC (25 GB/s).
        assert keys[("inj_tx", 0)] > keys[("nic_tx", 0, 0)]
