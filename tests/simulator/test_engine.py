"""Tests for the discrete-event engine: determinism, contention, shapes."""

from __future__ import annotations

import pytest

from repro.core.ops import ReduceOp
from repro.core.schedule import ScheduleBuilder
from repro.machine.machines import generic, perlmutter
from repro.simulator.engine import simulate
from repro.simulator.timing import price_op
from repro.transport.library import Library
from repro.transport.profiles import profile

MB = 1 << 20
LIBS = (Library.MPI,)


def _one_send(machine, src, dst, count):
    b = ScheduleBuilder(machine.world_size)
    b.send(src, dst, ("a", 0), ("b", 0), count, level=0)
    return b.build()


class TestSingleTransfer:
    def test_inter_node_time_matches_flow_bandwidth(self):
        machine = generic(2, 2, 1, name="e1")
        count = 64 * MB  # elements; 4 bytes each
        sched = _one_send(machine, 0, 2, count)
        res = simulate(sched, machine, LIBS, 4)
        prof = profile(Library.MPI)
        flow = min(machine.nic_bandwidth, machine.injection_bandwidth) * prof.eff_inter
        expected = count * 4 / 1e9 / flow
        assert res.elapsed == pytest.approx(expected, rel=0.05)

    def test_intra_node_faster_than_inter(self):
        machine = generic(2, 2, 1, name="e2")
        count = 16 * MB
        t_intra = simulate(_one_send(machine, 0, 1, count), machine, LIBS, 4).elapsed
        t_inter = simulate(_one_send(machine, 0, 2, count), machine, LIBS, 4).elapsed
        assert t_intra < t_inter

    def test_local_copy_cheapest(self):
        machine = generic(2, 2, 1, name="e3")
        b = ScheduleBuilder(4)
        b.copy(0, ("a", 0), ("b", 0), 16 * MB)
        t_copy = simulate(b.build(), machine, LIBS, 4).elapsed
        t_intra = simulate(_one_send(machine, 0, 1, 16 * MB), machine, LIBS, 4).elapsed
        assert t_copy < t_intra

    def test_latency_dominates_small_messages(self):
        machine = generic(2, 2, 1, name="e4")
        t_small = simulate(_one_send(machine, 0, 2, 1), machine, LIBS, 4).elapsed
        prof = profile(Library.MPI)
        assert t_small >= machine.nic_latency + prof.alpha_inter

    def test_empty_schedule(self):
        machine = generic(2, 2, 1, name="e5")
        b = ScheduleBuilder(4)
        res = simulate(b.build(), machine, LIBS, 4)
        assert res.elapsed == 0.0


class TestContention:
    def test_shared_nic_serializes(self):
        """Two flows through one NIC take ~2x one flow (wire-limited)."""
        machine = generic(2, 2, 1, name="c1")
        count = 64 * MB
        t_one = simulate(_one_send(machine, 0, 2, count), machine, LIBS, 4).elapsed
        b = ScheduleBuilder(4)
        b.send(0, 2, ("a", 0), ("b", 0), count, level=0)
        b.send(1, 3, ("a", 0), ("b", 0), count, level=0)
        t_two = simulate(b.build(), machine, LIBS, 4).elapsed
        assert t_two > 1.5 * t_one

    def test_separate_nics_parallel(self):
        """Bijective binding: two same-node flows ride different NICs."""
        machine = generic(2, 2, 2, name="c2")
        count = 64 * MB
        t_one = simulate(_one_send(machine, 0, 2, count), machine, LIBS, 4).elapsed
        b = ScheduleBuilder(4)
        b.send(0, 2, ("a", 0), ("b", 0), count, level=0)
        b.send(1, 3, ("a", 0), ("b", 0), count, level=0)
        t_two = simulate(b.build(), machine, LIBS, 4).elapsed
        assert t_two == pytest.approx(t_one, rel=0.1)

    def test_round_robin_imbalance(self):
        """3 GPUs on 2 NICs: equal flows finish at the doubled-up NIC's pace."""
        machine = generic(2, 3, 2, name="c3")
        count = 32 * MB
        b = ScheduleBuilder(6)
        for local in range(3):
            b.send(local, 3 + local, ("a", 0), ("b", 0), count, level=0)
        res = simulate(b.build(), machine, LIBS, 4)
        t_one = simulate(_one_send(machine, 0, 3, count), machine, LIBS, 4).elapsed
        # NIC 0 carries GPUs 0 and 2 -> ~2x a single flow, not ~1x.
        assert res.elapsed > 1.5 * t_one

    def test_dependencies_serialize(self):
        machine = generic(2, 2, 1, name="c4")
        count = 16 * MB
        b = ScheduleBuilder(4)
        u = b.send(0, 2, ("a", 0), ("b", 0), count, level=0)
        b.send(2, 1, ("b", 0), ("c", 0), count, level=0, deps=(u,))
        t_chain = simulate(b.build(), machine, LIBS, 4).elapsed
        t_one = simulate(_one_send(machine, 0, 2, count), machine, LIBS, 4).elapsed
        assert t_chain > 1.5 * t_one


class TestDeterminism:
    def test_repeated_simulation_identical(self):
        machine = perlmutter(nodes=2)
        b = ScheduleBuilder(machine.world_size)
        prev = ()
        for i in range(20):
            u = b.send(i % 4, 4 + (i % 4), ("a", i * 10 * MB),
                       ("b", i * 10 * MB), 10 * MB, level=0, deps=prev)
            prev = (u,)
        sched = b.build()
        times = [simulate(sched, machine, (Library.NCCL,), 4).elapsed
                 for _ in range(3)]
        assert times[0] == times[1] == times[2]


class TestReductionCosts:
    def test_reduce_op_adds_kernel_time(self):
        machine = generic(2, 2, 1, name="k")
        count = 64 * MB
        b = ScheduleBuilder(4)
        b.send(0, 2, ("a", 0), ("b", 0), count, level=0)
        t_plain = simulate(b.build(), machine, LIBS, 4).elapsed
        b2 = ScheduleBuilder(4)
        b2.send(0, 2, ("a", 0), ("b", 0), count, level=0, reduce_op=ReduceOp.SUM)
        t_red = simulate(b2.build(), machine, LIBS, 4).elapsed
        assert t_red > t_plain

    def test_nccl_kernel_cheaper_than_mpi(self):
        machine = generic(2, 2, 1, name="k2")
        b = ScheduleBuilder(4)
        b.send(0, 2, ("a", 0), ("b", 0), 1024, level=0, reduce_op=ReduceOp.SUM)
        sched = b.build()
        t_mpi = simulate(sched, machine, (Library.MPI,), 4).elapsed
        t_nccl = simulate(sched, machine, (Library.NCCL,), 4).elapsed
        assert t_nccl < t_mpi


class TestPricing:
    def test_priced_resources_inter(self):
        machine = perlmutter(nodes=2)
        b = ScheduleBuilder(8)
        b.send(1, 5, ("a", 0), ("b", 0), MB, level=0)
        op = b.build().ops[0]
        priced = price_op(op, machine, (Library.NCCL,), 4)
        kinds = {key[0] for key, _ in priced.resources}
        assert kinds == {"nic_tx", "nic_rx", "inj_tx", "inj_rx"}
        # Bijective binding: GPU 1 uses NIC 1 on node 0, GPU 5 NIC 1 on node 1.
        keys = dict(priced.resources)
        assert ("nic_tx", 0, 1) in keys
        assert ("nic_rx", 1, 1) in keys

    def test_priced_resources_intra(self):
        machine = perlmutter(nodes=2)
        b = ScheduleBuilder(8)
        b.send(1, 2, ("a", 0), ("b", 0), MB, level=0)
        op = b.build().ops[0]
        priced = price_op(op, machine, (Library.IPC,), 4)
        kinds = {key[0] for key, _ in priced.resources}
        assert kinds == {"link_tx", "link_rx"}

    def test_bad_level_rejected(self):
        machine = perlmutter(nodes=2)
        b = ScheduleBuilder(8)
        b.send(1, 2, ("a", 0), ("b", 0), MB, level=0)
        op = b.build().ops[0]
        with pytest.raises(ValueError):
            price_op(op, machine, (), 4)

    def test_throughput_helper(self):
        machine = generic(2, 2, 1, name="th")
        res = simulate(_one_send(machine, 0, 2, MB), machine, LIBS, 4)
        assert res.throughput(MB * 4) == pytest.approx(
            MB * 4 / 1e9 / res.elapsed
        )
