"""Property-based tests for the discrete-event engine on random DAGs."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schedule import ScheduleBuilder
from repro.machine.machines import generic
from repro.simulator.engine import simulate
from repro.simulator.timing import price_op
from repro.transport.library import Library

SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MACHINE = generic(2, 4, 2, name="prop")
LIBS = (Library.MPI,)


@st.composite
def random_dag_schedule(draw):
    """A random valid schedule: ops with random endpoints and backward deps.

    Writes land in disjoint per-op regions of a shared buffer so the builder's
    race detection never fires; dependencies are drawn from earlier uids.
    """
    n_ops = draw(st.integers(1, 30))
    b = ScheduleBuilder(MACHINE.world_size)
    uids: list[int] = []
    for i in range(n_ops):
        src = draw(st.integers(0, MACHINE.world_size - 1))
        dst = draw(st.integers(0, MACHINE.world_size - 1))
        count = draw(st.sampled_from([1, 1024, 1 << 16]))
        n_deps = draw(st.integers(0, min(3, len(uids))))
        deps = tuple(sorted(set(
            draw(st.sampled_from(uids)) for _ in range(n_deps)
        ))) if uids else ()
        region = i * (1 << 16)
        if src == dst:
            uid = b.copy(src, ("src", region), ("dst", region), count,
                         deps=deps)
        else:
            uid = b.send(src, dst, ("src", region), ("dst", region), count,
                         level=0, deps=deps)
        uids.append(uid)
    return b.build()


class TestEngineInvariants:
    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_makespan_at_least_critical_path(self, sched):
        """The makespan can never beat the dependency-chain lower bound."""
        result = simulate(sched, MACHINE, LIBS, 4)
        priced = [price_op(op, MACHINE, LIBS, 4) for op in sched.ops]
        best_finish = {}
        for op in sched.ops:
            ready = max((best_finish[d] for d in op.deps), default=0.0)
            best_finish[op.uid] = ready + priced[op.uid].total_time
        assert result.elapsed >= max(best_finish.values()) - 1e-12

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_deps_respected_in_time(self, sched):
        result = simulate(sched, MACHINE, LIBS, 4)
        for op in sched.ops:
            for dep in op.deps:
                assert (result.start_times[op.uid]
                        >= result.completion_times[dep] - 1e-12)

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_resource_exclusivity(self, sched):
        """No two ops occupy the same serial resource at the same time."""
        result = simulate(sched, MACHINE, LIBS, 4)
        windows: dict[tuple, list[tuple[float, float]]] = {}
        for op in sched.ops:
            priced = price_op(op, MACHINE, LIBS, 4)
            start = result.start_times[op.uid]
            for key, dur in priced.resources:
                windows.setdefault(key, []).append(
                    (start, start + priced.overhead + dur)
                )
        for key, spans in windows.items():
            spans.sort()
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12, f"overlap on {key}"

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_busy_never_exceeds_makespan(self, sched):
        result = simulate(sched, MACHINE, LIBS, 4)
        for key, busy in result.resource_busy.items():
            assert busy <= result.elapsed + 1e-9

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule())
    def test_determinism(self, sched):
        r1 = simulate(sched, MACHINE, LIBS, 4)
        r2 = simulate(sched, MACHINE, LIBS, 4)
        assert r1.elapsed == r2.elapsed
        assert r1.start_times == r2.start_times

    @settings(**SETTINGS)
    @given(sched=random_dag_schedule(), scale=st.sampled_from([2, 4, 8]))
    def test_throughput_monotone_in_element_size(self, sched, scale):
        """Bigger elements (same op graph) can only take longer."""
        small = simulate(sched, MACHINE, LIBS, 4).elapsed
        large = simulate(sched, MACHINE, LIBS, 4 * scale).elapsed
        assert large >= small - 1e-12
