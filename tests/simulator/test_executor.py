"""Tests for the functional executor and dependency completeness."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import check_collective, make_input

from repro import Communicator, Library
from repro.core.composition import compose
from repro.core.ops import ReduceOp
from repro.core.schedule import ScheduleBuilder
from repro.errors import ExecutionError
from repro.machine.machines import generic
from repro.simulator.executor import (
    critical_path_length,
    execute,
    random_topological_order,
)
from repro.simulator.process import MemoryPool


class TestMemoryPool:
    def test_symmetric_alloc(self):
        pool = MemoryPool(3)
        pool.alloc_symmetric("a", 8)
        assert pool.array(0, "a").shape == (8,)
        assert pool.gather_all("a").shape == (3, 8)

    def test_double_alloc_rejected(self):
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        with pytest.raises(ExecutionError):
            pool.alloc_symmetric("a", 4)

    def test_missing_buffer(self):
        pool = MemoryPool(2)
        with pytest.raises(ExecutionError):
            pool.array(0, "nope")

    def test_out_of_bounds_slice(self):
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        with pytest.raises(ExecutionError):
            pool.slice(0, "a", 2, 3)

    def test_set_all_shape_check(self):
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        with pytest.raises(ExecutionError):
            pool.set_all("a", np.zeros((3, 4)))

    def test_scratch_idempotent_and_grows(self):
        pool = MemoryPool(2)
        pool.ensure_scratch("_s0", 1, 4)
        pool.ensure_scratch("_s0", 1, 8)
        assert pool.array(1, "_s0").size == 8

    def test_free_scratch_keeps_symmetric(self):
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        pool.ensure_scratch("_s0", 0, 4)
        pool.free_scratch()
        pool.array(0, "a")
        with pytest.raises(ExecutionError):
            pool.array(0, "_s0")


class TestExecute:
    def _simple_schedule(self):
        b = ScheduleBuilder(2)
        b.send(0, 1, ("a", 0), ("b", 0), 4, level=0)
        return b.build()

    def test_moves_data(self):
        sched = self._simple_schedule()
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        pool.alloc_symmetric("b", 4)
        pool.array(0, "a")[:] = [1, 2, 3, 4]
        execute(sched, pool)
        assert pool.array(1, "b").tolist() == [1, 2, 3, 4]

    def test_reduce_op_accumulates(self):
        b = ScheduleBuilder(2)
        u = b.copy(1, ("a", 0), ("acc", 0), 4)
        b.send(0, 1, ("a", 0), ("acc", 0), 4, level=0,
               reduce_op=ReduceOp.SUM, deps=(u,))
        sched = b.build()
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        pool.alloc_symmetric("acc", 4)
        pool.array(0, "a")[:] = 1
        pool.array(1, "a")[:] = 10
        execute(sched, pool)
        assert pool.array(1, "acc").tolist() == [11.0] * 4

    def test_bad_order_rejected(self):
        b = ScheduleBuilder(2)
        u = b.send(0, 1, ("a", 0), ("b", 0), 4, level=0)
        b.send(1, 0, ("b", 0), ("c", 0), 4, level=0, deps=(u,))
        sched = b.build()
        pool = MemoryPool(2)
        for name in ("a", "b", "c"):
            pool.alloc_symmetric(name, 4)
        with pytest.raises(ExecutionError):
            execute(sched, pool, order=[1, 0])

    def test_non_permutation_rejected(self):
        sched = self._simple_schedule()
        pool = MemoryPool(2)
        pool.alloc_symmetric("a", 4)
        pool.alloc_symmetric("b", 4)
        with pytest.raises(ExecutionError):
            execute(sched, pool, order=[0, 0])


class TestDependencyCompleteness:
    """Any topological order must give the same result (Section 3.3).

    This is the strongest property test of the fence analysis: if a single
    needed dependency is missing, some shuffled linearization will reorder
    the conflicting ops and corrupt the output.
    """

    @pytest.mark.parametrize("name", ["broadcast", "all_reduce", "all_gather",
                                      "reduce_scatter", "all_to_all"])
    def test_random_linearizations_match(self, name):
        machine = generic(2, 3, 1, name="lin")
        count = 12
        comm = Communicator(machine)
        compose(comm, name, count)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC],
                  stripe=3, pipeline=2)
        rng = np.random.default_rng(11)
        data = make_input(name, 6, count, rng)

        comm.set_all("sendbuf", data)
        execute(comm.schedule, comm.pool)
        reference = comm.gather_all("recvbuf").copy()

        for trial in range(5):
            comm.set_all("sendbuf", data)
            # recv buffers may hold stale values; reset.
            comm.set_all("recvbuf", np.zeros_like(comm.gather_all("recvbuf")))
            order = random_topological_order(
                comm.schedule, np.random.default_rng(trial)
            )
            execute(comm.schedule, comm.pool, order=order)
            np.testing.assert_array_equal(comm.gather_all("recvbuf"), reference)


class TestCriticalPath:
    def test_chain_length(self):
        b = ScheduleBuilder(4)
        u = b.send(0, 1, ("a", 0), ("b", 0), 4, level=0)
        u = b.send(1, 2, ("b", 0), ("c", 0), 4, level=0, deps=(u,))
        b.send(2, 3, ("c", 0), ("d", 0), 4, level=0, deps=(u,))
        assert critical_path_length(b.build()) == 3

    def test_parallel_ops_depth_one(self):
        b = ScheduleBuilder(4)
        b.send(0, 1, ("a", 0), ("b", 0), 4, level=0)
        b.send(2, 3, ("a", 0), ("b", 0), 4, level=0)
        assert critical_path_length(b.build()) == 1

    def test_hierarchical_shorter_than_flat_for_alltoall(self):
        """Direct all-to-all has depth ~1; staged has a bounded constant."""
        machine = generic(2, 2, 1, name="cp")
        count = 8
        flat = Communicator(machine, materialize=False)
        compose(flat, "all_to_all", count)
        flat.init(hierarchy=[4], library=[Library.MPI])
        assert critical_path_length(flat.schedule) <= 2
