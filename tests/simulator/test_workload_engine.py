"""Shared-timeline engine: contention invariants of simulate_workload."""

from __future__ import annotations

import pytest

from repro.core.communicator import Communicator, SubCommunicator
from repro.core.composition import compose
from repro.errors import ExecutionError
from repro.machine.machines import generic, perlmutter
from repro.simulator.engine import JobSpec, simulate, simulate_workload
from repro.transport.library import Library

MACHINE = perlmutter(nodes=2)
COUNT = 1 << 12


def _world_comm(collective: str = "all_reduce", count: int = COUNT):
    comm = Communicator(MACHINE, materialize=False)
    compose(comm, collective, count)
    comm.init(hierarchy=[2, 4], library=[Library.NCCL, Library.IPC],
              stripe=4, pipeline=4)
    return comm


def _job(comm, **kwargs) -> JobSpec:
    return JobSpec(comm.global_schedule, comm.plan.libraries,
                   comm.dtype.itemsize, **kwargs)


class TestSingleJob:
    def test_single_job_reproduces_simulate_exactly(self):
        comm = _world_comm()
        isolated = simulate(comm.schedule, MACHINE, comm.plan.libraries,
                            comm.dtype.itemsize)
        result = simulate_workload([_job(comm, name="solo")], MACHINE)
        assert result.makespan == isolated.elapsed
        assert result.jobs[0].start == 0.0
        assert result.jobs[0].elapsed == isolated.elapsed
        assert result.jobs[0].op_start_times == isolated.start_times
        assert result.jobs[0].op_completion_times == isolated.completion_times

    def test_offset_shifts_the_whole_job(self):
        comm = _world_comm()
        base = simulate_workload([_job(comm)], MACHINE)
        shifted = simulate_workload([_job(comm, offset=1.5)], MACHINE)
        assert shifted.jobs[0].start == 1.5
        assert shifted.jobs[0].elapsed == pytest.approx(base.jobs[0].elapsed)
        assert shifted.makespan == pytest.approx(1.5 + base.makespan)

    def test_empty_workload(self):
        result = simulate_workload([], MACHINE)
        assert result.makespan == 0.0 and result.jobs == []


class TestContentionInvariants:
    def test_disjoint_resources_compose_with_zero_slowdown(self):
        # Two all-reduces confined to different nodes share no NIC, link, or
        # copy engine; the shared timeline must price both exactly at their
        # isolated times.
        lo = SubCommunicator(MACHINE, range(0, 4), materialize=False)
        hi = SubCommunicator(MACHINE, range(4, 8), materialize=False)
        for comm in (lo, hi):
            compose(comm, "all_reduce", COUNT)
            comm.init(hierarchy=[4], library=[Library.IPC], pipeline=2)
        result = simulate_workload(
            [_job(lo, name="lo"), _job(hi, name="hi")], MACHINE
        )
        assert result.jobs[0].elapsed == lo.timing.elapsed
        assert result.jobs[1].elapsed == hi.timing.elapsed

    def test_same_nic_schedules_never_finish_faster_than_isolated(self):
        # Bandwidth-bound payload so the NIC contention is visible.
        comm = _world_comm("broadcast", 1 << 17)
        isolated = comm.timing.elapsed
        result = simulate_workload(
            [_job(comm, name="a"), _job(comm, name="b")], MACHINE
        )
        for job in result.jobs:
            assert job.elapsed >= isolated
        # And the pair genuinely contends: at least one pays visibly.
        assert max(job.elapsed for job in result.jobs) > 1.5 * isolated

    def test_contended_beats_sequential_lower_bound(self):
        # Sharing a machine can never beat perfect overlap (max of isolated
        # times) nor lose to full serialization (sum of isolated times).
        a = _world_comm("broadcast")
        b = _world_comm("all_reduce")
        result = simulate_workload(
            [_job(a, name="a"), _job(b, name="b")], MACHINE
        )
        iso = (a.timing.elapsed, b.timing.elapsed)
        assert result.makespan >= max(iso)
        assert result.makespan <= sum(iso) * (1 + 1e-9)


class TestDependencies:
    def test_after_serializes_jobs(self):
        comm = _world_comm()
        result = simulate_workload(
            [_job(comm, name="first"), _job(comm, after=(0,), name="second")],
            MACHINE,
        )
        first, second = result.jobs
        assert second.start == first.finish
        assert second.elapsed == pytest.approx(first.elapsed)

    def test_after_combines_with_offset(self):
        comm = _world_comm()
        iso = comm.timing.elapsed
        late = simulate_workload(
            [_job(comm), _job(comm, offset=10 * iso, after=(0,))], MACHINE
        )
        assert late.jobs[1].start == pytest.approx(10 * iso)

    def test_forward_dependency_rejected(self):
        comm = _world_comm()
        with pytest.raises(ExecutionError, match="earlier jobs"):
            simulate_workload(
                [_job(comm, after=(0,)), _job(comm)], MACHINE
            )

    def test_negative_offset_rejected(self):
        comm = _world_comm()
        with pytest.raises(ExecutionError, match="offset"):
            simulate_workload([_job(comm, offset=-1.0)], MACHINE)

    def test_wrong_world_size_rejected(self):
        small = generic(1, 2, 1, name="tiny")
        comm = Communicator(small, materialize=False)
        compose(comm, "broadcast", 64)
        comm.init(hierarchy=[2], library=[Library.IPC])
        with pytest.raises(ExecutionError, match="rank space"):
            simulate_workload([_job(comm)], MACHINE)


class TestAccounting:
    def test_resource_busy_sums_both_jobs(self):
        comm = _world_comm("broadcast")
        solo = simulate_workload([_job(comm)], MACHINE)
        duo = simulate_workload([_job(comm), _job(comm)], MACHINE)
        for key, busy in solo.resource_busy.items():
            assert duo.resource_busy[key] == pytest.approx(2 * busy)

    def test_utilization_bounded_by_one(self):
        comm = _world_comm("broadcast")
        duo = simulate_workload([_job(comm), _job(comm)], MACHINE)
        util = duo.utilization()
        assert util
        assert all(0.0 < frac <= 1.0 + 1e-9 for frac in util.values())
