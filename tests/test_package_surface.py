"""Public API surface checks: exports, docstrings, and error hierarchy."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

MODULES = [
    "repro",
    "repro.cli",
    "repro.collectives",
    "repro.errors",
    "repro.core",
    "repro.core.autotune",
    "repro.core.buffers",
    "repro.core.communicator",
    "repro.core.composition",
    "repro.core.factorize",
    "repro.core.intervals",
    "repro.core.latency",
    "repro.core.ops",
    "repro.core.plan",
    "repro.core.plancache",
    "repro.core.primitives",
    "repro.core.schedule",
    "repro.core.vcollectives",
    "repro.machine",
    "repro.machine.machines",
    "repro.machine.nic",
    "repro.machine.rankmap",
    "repro.machine.spec",
    "repro.machine.topology",
    "repro.model",
    "repro.model.bounds",
    "repro.model.perf_model",
    "repro.simulator",
    "repro.simulator.engine",
    "repro.simulator.executor",
    "repro.simulator.level",
    "repro.simulator.process",
    "repro.simulator.timing",
    "repro.simulator.trace",
    "repro.transport",
    "repro.transport.library",
    "repro.transport.profiles",
    "repro.baselines",
    "repro.baselines.base",
    "repro.baselines.ccl_like",
    "repro.baselines.direct",
    "repro.baselines.mpi_like",
    "repro.baselines.oneccl_like",
    "repro.bench",
    "repro.bench.configs",
    "repro.bench.figures",
    "repro.bench.parallel",
    "repro.bench.report",
    "repro.bench.runner",
    "repro.workloads",
    "repro.workloads.groups",
    "repro.workloads.scenarios",
    "repro.workloads.workload",
    "repro.planner",
    "repro.planner.space",
    "repro.planner.score",
    "repro.planner.search",
    "repro.planner.workload",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_with_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, f"{name} lacks a docstring"


def test_all_exports_resolve():
    for name in MODULES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_public_functions_documented():
    """Every public callable in the core packages carries a docstring."""
    undocumented = []
    for name in MODULES:
        mod = importlib.import_module(name)
        for attr_name, attr in vars(mod).items():
            if attr_name.startswith("_"):
                continue
            if getattr(attr, "__module__", None) != name:
                continue  # re-export; documented at origin
            if inspect.isfunction(attr) or inspect.isclass(attr):
                if not (attr.__doc__ or "").strip():
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_error_hierarchy():
    from repro.errors import (
        CompositionError,
        ExecutionError,
        HicclError,
        HierarchyError,
        InitializationError,
        LibraryAssignmentError,
        RaceConditionError,
        ScheduleError,
    )

    assert issubclass(CompositionError, HicclError)
    assert issubclass(RaceConditionError, CompositionError)
    assert issubclass(HierarchyError, InitializationError)
    assert issubclass(LibraryAssignmentError, InitializationError)
    assert issubclass(ExecutionError, HicclError)
    assert issubclass(ScheduleError, HicclError)


def test_version():
    assert repro.__version__


def test_figure8_order_covers_all_collectives():
    assert set(repro.FIGURE8_ORDER) == set(repro.COLLECTIVES)
    assert len(repro.FIGURE8_ORDER) == 8
