"""End-to-end plan service: socket serving, determinism, faults, stats."""

from __future__ import annotations

import threading

import pytest

from repro.errors import FaultError, HicclError
from repro.machine.faults import FaultSet
from repro.machine.machines import by_name
from repro.service.client import PlanClient
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import PlanServer, PlanService, socket_alive
from repro.service.traffic import synthetic_traffic, traffic_universe

PAYLOAD = 1 << 22

#: A small deterministic stream over both committed paper systems.
STREAM = synthetic_traffic(
    seed=11,
    n_requests=10,
    universe=traffic_universe(
        systems=("delta", "perlmutter"),
        nodes=(2,),
        fault_seeds=(None,),
        collectives=("all_reduce", "all_gather"),
        payloads=(PAYLOAD,),
    ),
    zipf_a=1.5,
)


@pytest.fixture()
def fresh_cache():
    """Memory-only plan cache so no state leaks between tests."""
    from repro.core import plancache

    plancache.configure(disk_dir=None)
    yield
    plancache.reset()


@pytest.fixture()
def service(fresh_cache):
    svc = PlanService(jobs=1)
    yield svc
    svc.close()


@pytest.fixture()
def server(tmp_path, fresh_cache):
    """A live socket server plus a connected client factory."""
    socket_path = tmp_path / "svc.sock"
    svc = PlanService(jobs=1)
    srv = PlanServer(socket_path, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield socket_path, svc
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


def _replay(service: PlanService, stream) -> list[dict]:
    responses = []
    for i, req in enumerate(stream):
        from repro.service.protocol import machine_to_dict

        responses.append(service.handle({
            "id": i, "type": "plan",
            "machine": machine_to_dict(req.machine()),
            "collective": req.collective,
            "payload_bytes": req.payload_bytes,
        }))
    return responses


def test_seeded_stream_is_deterministic_across_fresh_services(fresh_cache):
    """Two fresh services replaying the same seeded stream agree exactly."""
    assert {r.system for r in STREAM} == {"delta", "perlmutter"}
    first_svc = PlanService(jobs=1)
    try:
        first = _replay(first_svc, STREAM)
    finally:
        first_svc.close()
    second_svc = PlanService(jobs=1)
    try:
        second = _replay(second_svc, STREAM)
    finally:
        second_svc.close()
    for a, b in zip(first, second):
        assert a["status"] == b["status"] == "ok"
        assert a["winner"] == b["winner"]
        assert a["plan_seconds"] == b["plan_seconds"]
        assert a["source"] == b["source"]


def test_duplicate_request_hits_cache(service):
    [first, second] = _replay(service, [STREAM[0], STREAM[0]])
    assert first["source"] in ("cold", "warm")
    assert second["source"] == "hit"
    assert second["winner"] == first["winner"]
    assert service.stats.planned == 1
    assert service.stats.hits == 1


def test_warm_start_engages_across_similar_machines(service):
    """Planning delta:3 after delta:4 warm-starts from the recorded winner.

    The pair matters: the donor's translated winner must not coincide with
    a candidate the staged search seeds anyway (then ``warm_seeds`` is
    rightly 0 — the seed added no new information).  delta 4 -> 3 is one of
    the committed benchmark pairs where the seed is genuinely additional.
    """
    from repro.service.protocol import machine_to_dict

    def plan(nodes):
        return service.handle({
            "id": nodes, "type": "plan",
            "machine": machine_to_dict(by_name("delta", nodes=nodes)),
            "collective": "all_reduce",
            "payload_bytes": PAYLOAD,
        })

    donor = plan(4)
    target = plan(3)
    assert donor["source"] == "cold"
    assert target["source"] == "warm"
    assert target["warm_seeds"] >= 1
    assert service.stats.warm_started == 1


def test_drained_machine_rejected_with_fault_error(server):
    socket_path, _svc = server
    machine = by_name("delta", nodes=4)
    drained = FaultSet(drained_nodes=(1,)).apply(machine)
    with PlanClient(socket_path) as client:
        with pytest.raises(FaultError, match="drained"):
            client.plan(drained, "all_reduce", PAYLOAD)
        # The connection survives the error frame and still serves.
        assert client.ping()["protocol"] == PROTOCOL_VERSION


def test_server_round_trip_and_stats(server):
    socket_path, svc = server
    machine = by_name("perlmutter", nodes=2)
    with PlanClient(socket_path) as client:
        first = client.plan(machine, "all_reduce", PAYLOAD)
        assert first["status"] == "ok"
        assert first["source"] == "cold"
        assert first["winner"]["hierarchy"]
        second = client.plan(machine, "all_reduce", PAYLOAD)
        assert second["source"] == "hit"
        assert second["winner"] == first["winner"]
        stats = client.stats()
        assert stats["service"]["requests"] == 2
        assert stats["service"]["planned"] == 1
        assert stats["service"]["hits"] == 1
        assert stats["cache"]["total"]["entries"] == 1
        assert len(stats["cache"]["shards"]) == svc.cache.num_shards
        assert stats["batcher"]["planned"] == 1


def test_unknown_request_type_is_error_frame(server):
    socket_path, _svc = server
    with PlanClient(socket_path) as client:
        with pytest.raises(HicclError, match="unknown request type"):
            client.call({"type": "nonsense"})


def test_malformed_plan_request_is_error_frame(server):
    socket_path, _svc = server
    with PlanClient(socket_path) as client:
        with pytest.raises(HicclError, match="malformed"):
            client.call({"type": "plan", "collective": "all_reduce"})


def test_concurrent_clients_share_one_planning_pass(server):
    """Eight clients, one key: exactly one plan, everyone gets the winner."""
    socket_path, svc = server
    machine = by_name("delta", nodes=2)
    barrier = threading.Barrier(8)
    winners, failures = [], []

    def client_thread():
        try:
            with PlanClient(socket_path, timeout=120.0) as client:
                barrier.wait(timeout=30)
                response = client.plan(machine, "all_gather", PAYLOAD)
                winners.append(response["winner"])
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=client_thread) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures
    assert len(winners) == 8
    assert all(w == winners[0] for w in winners)
    # The batcher proves the plan was synthesized exactly once: every
    # request either planned it, coalesced onto it, or hit the cache.
    assert svc.batcher.planned == 1
    assert svc.stats.planned == 1
    assert svc.stats.coalesced + svc.stats.hits == 7


def test_shutdown_frame_stops_server(tmp_path, fresh_cache):
    socket_path = tmp_path / "svc.sock"
    svc = PlanService(jobs=1)
    srv = PlanServer(socket_path, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    assert socket_alive(socket_path)
    with PlanClient(socket_path) as client:
        assert client.shutdown()["status"] == "ok"
    thread.join(timeout=10)
    assert not thread.is_alive()
    srv.server_close()
    assert not socket_alive(socket_path)
