"""Sharded response cache: partitioning, counters, eviction, admission."""

from __future__ import annotations

import pytest

from repro.service.protocol import machine_digest
from repro.machine.machines import by_name
from repro.service.shards import (
    FrequencySketch,
    ShardedPlanCache,
    response_nbytes,
)


def _body(tag: int, pad: int = 0) -> dict:
    return {"winner": {"tag": tag}, "pad": "x" * pad}


def test_shard_index_stable_and_in_range():
    cache = ShardedPlanCache(num_shards=4)
    for system in ("delta", "perlmutter", "frontier", "aurora"):
        digest = machine_digest(by_name(system, nodes=4))
        idx = cache.shard_index(digest)
        assert 0 <= idx < 4
        assert cache.shard_index(digest) == idx  # deterministic


def test_different_machines_spread_over_shards():
    cache = ShardedPlanCache(num_shards=4)
    digests = [
        machine_digest(by_name(system, nodes=nodes))
        for system in ("delta", "perlmutter", "frontier", "aurora")
        for nodes in (2, 3, 4, 8)
    ]
    indices = {cache.shard_index(d) for d in digests}
    assert len(indices) > 1, "16 machine digests all mapped to one shard"


def test_counters_track_hits_misses_stores():
    cache = ShardedPlanCache(num_shards=2)
    digest = machine_digest(by_name("delta", nodes=2))
    assert cache.get(digest, "k") is None
    assert cache.put(digest, "k", _body(1))
    assert cache.get(digest, "k") == _body(1)
    stats = cache.stats()["total"]
    assert stats["lookups"] == 2
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["stores"] == 1
    assert stats["entries"] == 1
    assert stats["bytes"] == response_nbytes(_body(1))
    assert stats["hit_rate"] == pytest.approx(0.5)
    # The other shard stayed untouched.
    per_shard = cache.stats()["shards"]
    idx = cache.shard_index(digest)
    other = per_shard[1 - idx]
    assert other["lookups"] == 0 and other["entries"] == 0


def test_byte_budget_evicts_and_counts():
    small = response_nbytes(_body(0, pad=64))
    cache = ShardedPlanCache(
        num_shards=1, capacity=64, max_bytes=2 * small + 1, admission=False
    )
    digest = machine_digest(by_name("delta", nodes=2))
    for i in range(4):
        assert cache.put(digest, f"k{i}", _body(i, pad=64))
    stats = cache.stats()["total"]
    assert stats["evictions"] >= 2
    assert stats["bytes"] <= 2 * small + 1
    # Newest entry always survives its own insert.
    assert cache.get(digest, "k3") == _body(3, pad=64)


def test_admission_protects_hot_key_from_one_shot_scan():
    cache = ShardedPlanCache(num_shards=1, capacity=1, max_bytes=1 << 20)
    digest = machine_digest(by_name("delta", nodes=2))
    assert cache.put(digest, "hot", _body(0))
    for _ in range(10):  # make "hot" popular in the sketch
        cache.get(digest, "hot")
    # A cold key that would evict the hot incumbent is rejected...
    assert not cache.put(digest, "cold", _body(1))
    assert cache.get(digest, "hot") == _body(0)
    # ...but earns admission once it is requested often enough.
    for _ in range(20):
        cache.get(digest, "cold")
    assert cache.put(digest, "cold", _body(1))
    assert cache.get(digest, "cold") == _body(1)
    stats = cache.stats()["total"]
    assert stats["admission_rejected"] >= 1


def test_admission_disabled_is_plain_lru():
    cache = ShardedPlanCache(
        num_shards=1, capacity=1, max_bytes=1 << 20, admission=False
    )
    digest = machine_digest(by_name("delta", nodes=2))
    assert cache.put(digest, "hot", _body(0))
    for _ in range(10):
        cache.get(digest, "hot")
    assert cache.put(digest, "cold", _body(1))  # evicts despite cold
    assert cache.get(digest, "hot") is None


def test_updating_existing_key_never_needs_admission():
    cache = ShardedPlanCache(num_shards=1, capacity=1, max_bytes=1 << 20)
    digest = machine_digest(by_name("delta", nodes=2))
    assert cache.put(digest, "k", _body(0))
    assert cache.put(digest, "k", _body(1))  # overwrite, no eviction
    assert cache.get(digest, "k") == _body(1)
    assert cache.stats()["total"]["admission_rejected"] == 0


def test_sketch_estimates_and_ages():
    sketch = FrequencySketch(width=64, sample_size=100)
    for _ in range(10):
        sketch.increment("popular")
    sketch.increment("rare")
    assert sketch.estimate("popular") >= 10
    assert sketch.estimate("popular") > sketch.estimate("rare")
    assert sketch.estimate("never-seen-key") <= sketch.estimate("popular")
    # Aging: after sample_size total increments, counts halve.
    for _ in range(100):
        sketch.increment("filler")
    assert sketch.estimate("popular") <= 10


def test_sketch_rejects_tiny_width():
    with pytest.raises(ValueError):
        FrequencySketch(width=4)


def test_rejects_zero_shards():
    with pytest.raises(ValueError):
        ShardedPlanCache(num_shards=0)
