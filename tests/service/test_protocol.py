"""Protocol layer: frame codec, machine transport, request keying."""

from __future__ import annotations

import json

import pytest

from repro.core.plancache import machine_fingerprint
from repro.machine.faults import FaultSet
from repro.machine.machines import by_name
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    machine_digest,
    machine_from_dict,
    machine_to_dict,
    request_key,
)


def _wire_roundtrip(machine):
    """Through an actual JSON encode/decode, like the socket path does."""
    return machine_from_dict(json.loads(json.dumps(machine_to_dict(machine))))


@pytest.mark.parametrize("system", ["delta", "perlmutter"])
@pytest.mark.parametrize("nodes", [2, 4])
def test_machine_roundtrip_preserves_fingerprint(system, nodes):
    machine = by_name(system, nodes=nodes)
    rebuilt = _wire_roundtrip(machine)
    assert machine_fingerprint(rebuilt) == machine_fingerprint(machine)
    assert machine_digest(rebuilt) == machine_digest(machine)


def test_degraded_machine_roundtrip_preserves_fingerprint():
    machine = by_name("delta", nodes=4)
    faults = FaultSet(
        down_nics=((1, 0),),
        nic_derate=((0, 0, 0.5),),
        link_derate=((3, 0, 0.8),),
        stragglers=((5, 0.7),),
        drained_nodes=(2,),
    )
    degraded = faults.apply(machine)
    rebuilt = _wire_roundtrip(degraded)
    assert machine_fingerprint(rebuilt) == machine_fingerprint(degraded)
    assert rebuilt.faults is not None
    assert rebuilt.faults.drained_nodes == (2,)


def test_healthy_and_degraded_key_differently():
    machine = by_name("delta", nodes=2)
    degraded = FaultSet(down_nics=((0, 0),)).apply(machine)
    assert machine_digest(machine) != machine_digest(degraded)


def test_frame_codec_roundtrip():
    frame = {"id": 7, "type": "plan", "payload_bytes": 1 << 20, "nested": {"a": [1, 2]}}
    encoded = encode_frame(frame)
    assert encoded.endswith(b"\n")
    assert b"\n" not in encoded[:-1]
    assert decode_frame(encoded) == frame


@pytest.mark.parametrize("bad", [b"", b"   \n", b"not json\n", b"[1,2]\n", b'"str"\n'])
def test_decode_rejects_malformed_frames(bad):
    with pytest.raises(ProtocolError):
        decode_frame(bad)


def test_error_frame_names_exception_class():
    frame = error_frame(3, ProtocolError("nope"))
    assert frame == {
        "id": 3, "status": "error", "error": "ProtocolError", "message": "nope",
    }


def test_request_key_canonicalizes_options():
    machine = by_name("delta", nodes=2)
    a = request_key(machine, "all_reduce", 1 << 20,
                    options={"pipelines": [1, 4]})
    b = request_key(machine, "all_reduce", 1 << 20,
                    options={"pipelines": (1, 4)})
    assert a == b


def test_request_key_distinguishes_inputs():
    m2, m4 = by_name("delta", nodes=2), by_name("delta", nodes=4)
    base = request_key(m2, "all_reduce", 1 << 20)
    assert request_key(m4, "all_reduce", 1 << 20) != base
    assert request_key(m2, "all_gather", 1 << 20) != base
    assert request_key(m2, "all_reduce", 1 << 21) != base
    assert request_key(m2, "all_reduce", 1 << 20, dtype="float64") != base
    assert request_key(
        m2, "all_reduce", 1 << 20, options={"search_libraries": True}
    ) != base


def test_malformed_machine_raises_protocol_error():
    with pytest.raises(ProtocolError):
        machine_from_dict({"name": "x"})
