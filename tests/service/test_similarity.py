"""Machine similarity: feature distance, nearest index, seed translation."""

from __future__ import annotations

import pytest

from repro.machine.faults import FaultSet
from repro.machine.machines import by_name
from repro.planner.space import SearchSpace
from repro.service.protocol import machine_digest
from repro.service.similarity import (
    MachineIndex,
    machine_distance,
    machine_features,
    translate_candidate,
)


def test_distance_is_a_metric_on_committed_machines():
    delta = by_name("delta", nodes=4)
    perlmutter = by_name("perlmutter", nodes=4)
    assert machine_distance(delta, delta) == 0.0
    assert machine_distance(delta, perlmutter) > 0.0
    assert machine_distance(delta, perlmutter) == pytest.approx(
        machine_distance(perlmutter, delta)
    )


def test_same_system_closer_than_different_system():
    delta4 = by_name("delta", nodes=4)
    delta3 = by_name("delta", nodes=3)
    perlmutter4 = by_name("perlmutter", nodes=4)
    assert machine_distance(delta4, delta3) < machine_distance(
        delta4, perlmutter4
    )


def test_degraded_twin_closer_than_healthy_stranger():
    delta = by_name("delta", nodes=4)
    degraded = FaultSet(down_nics=((0, 0),)).apply(delta)
    perlmutter = by_name("perlmutter", nodes=4)
    assert machine_distance(delta, degraded) < machine_distance(
        delta, perlmutter
    )
    assert machine_distance(delta, degraded) > 0.0


def test_features_fixed_length_across_machines():
    lengths = {
        len(machine_features(by_name(system, nodes=4)))
        for system in ("delta", "perlmutter", "frontier", "aurora")
    }
    assert len(lengths) == 1


def test_index_nearest_excludes_self_and_orders_by_distance():
    index = MachineIndex()
    machines = {
        name: by_name(*spec)
        for name, spec in {
            "delta3": ("delta", 3),
            "delta4": ("delta", 4),
            "perlmutter4": ("perlmutter", 4),
        }.items()
    }
    digests = {name: machine_digest(m) for name, m in machines.items()}
    for name, machine in machines.items():
        index.add(digests[name], machine)
    assert len(index) == 3

    hits = index.nearest(
        machines["delta4"], exclude=digests["delta4"], k=2
    )
    assert [digest for digest, _, _ in hits] == [
        digests["delta3"], digests["perlmutter4"],
    ]
    assert hits[0][2] < hits[1][2]


def test_index_add_is_idempotent():
    index = MachineIndex()
    machine = by_name("delta", nodes=2)
    digest = machine_digest(machine)
    index.add(digest, machine)
    index.add(digest, machine)
    assert len(index) == 1


def test_empty_index_returns_no_neighbors():
    index = MachineIndex()
    assert index.nearest(by_name("delta", nodes=2)) == []


def test_translate_lands_in_target_space():
    donor_space = SearchSpace.build(
        by_name("delta", nodes=4), pipelines=(1, 4), search_libraries=False
    )
    target_space = SearchSpace.build(
        by_name("delta", nodes=3), pipelines=(1, 4), search_libraries=False
    )
    for donor in donor_space.candidates():
        translated = translate_candidate(target_space, donor)
        assert translated in target_space.candidates()


def test_translate_preserves_transferable_structure():
    space = SearchSpace.build(
        by_name("delta", nodes=4), pipelines=(1, 4), search_libraries=False
    )
    # A donor already valid in the space translates to itself-or-equal
    # structure: same library set, same pipeline depth.
    donor = space.candidates()[0]
    translated = translate_candidate(space, donor)
    assert translated is not None
    assert {lib for lib in translated.libraries} == set(donor.libraries)
    assert translated.pipeline == donor.pipeline


def test_translate_is_deterministic():
    donor_space = SearchSpace.build(
        by_name("perlmutter", nodes=4), pipelines=(1, 4), search_libraries=True
    )
    target_space = SearchSpace.build(
        by_name("perlmutter", nodes=2), pipelines=(1, 4), search_libraries=True
    )
    donor = donor_space.candidates()[-1]
    first = translate_candidate(target_space, donor)
    second = translate_candidate(target_space, donor)
    assert first == second
