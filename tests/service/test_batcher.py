"""Request coalescing: duplicate in-flight keys provably plan once."""

from __future__ import annotations

import threading

import pytest

from repro.bench.parallel import TaskPool
from repro.service.batcher import PlanBatcher


class GatedTask:
    """A fake plan task that blocks until released and counts executions."""

    def __init__(self, gate: threading.Event, counter: dict, value):
        self.gate = gate
        self.counter = counter
        self.value = value

    def run(self):
        """Wait for the gate, tally the execution, return the payload."""
        self.gate.wait(timeout=30)
        with self.counter["lock"]:
            self.counter["runs"] += 1
        return self.value


@pytest.fixture()
def pool():
    with TaskPool(jobs=1) as p:
        yield p


def _counter():
    return {"runs": 0, "lock": threading.Lock()}


def test_duplicate_inflight_key_plans_exactly_once(pool):
    """N concurrent submits of one key -> one execution, N-1 coalesced."""
    batcher = PlanBatcher(pool)
    gate = threading.Event()
    counter = _counter()
    n = 6

    results = []
    submitted = threading.Barrier(n + 1)

    def client():
        future, created = batcher.submit(
            "key", lambda: GatedTask(gate, counter, {"winner": "w"})
        )
        submitted.wait(timeout=30)
        results.append((future.result(timeout=30), created))

    threads = [threading.Thread(target=client) for _ in range(n)]
    for t in threads:
        t.start()
    # All six submits have happened; the task is still gated, so every
    # duplicate was necessarily coalesced onto the single in-flight future.
    submitted.wait(timeout=30)
    assert batcher.planned == 1
    assert batcher.coalesced == n - 1
    assert batcher.inflight() == 1
    gate.set()
    for t in threads:
        t.join()

    assert counter["runs"] == 1
    assert sum(1 for _, created in results if created) == 1
    assert all(value == {"winner": "w"} for value, _ in results)


def test_distinct_keys_do_not_coalesce(pool):
    batcher = PlanBatcher(pool)
    gate = threading.Event()
    gate.set()
    counter = _counter()
    futures = []
    for i in range(4):
        future, created = batcher.submit(
            ("key", i), lambda i=i: GatedTask(gate, counter, i)
        )
        assert created
        futures.append(future)
    assert [f.result(timeout=30) for f in futures] == [0, 1, 2, 3]
    assert batcher.planned == 4
    assert batcher.coalesced == 0
    assert counter["runs"] == 4


def test_key_retires_after_completion(pool):
    """Once the future resolves, the same key plans afresh (cache's job)."""
    batcher = PlanBatcher(pool)
    gate = threading.Event()
    gate.set()
    counter = _counter()

    first, created_first = batcher.submit(
        "key", lambda: GatedTask(gate, counter, 1)
    )
    assert first.result(timeout=30) == 1
    # The done-callback retires the key; poll briefly for it to land.
    for _ in range(100):
        if batcher.inflight() == 0:
            break
        threading.Event().wait(0.01)
    assert batcher.inflight() == 0

    second, created_second = batcher.submit(
        "key", lambda: GatedTask(gate, counter, 2)
    )
    assert created_first and created_second
    assert second.result(timeout=30) == 2
    assert batcher.planned == 2


class FailingTask:
    """A fake task whose run() always raises."""

    def run(self):
        """Raise to exercise error propagation through the future."""
        raise RuntimeError("boom")


def test_failure_propagates_to_every_waiter(pool):
    batcher = PlanBatcher(pool)
    gate = threading.Event()
    counter = _counter()

    # Hold one gated task in flight so the failing submit can coalesce.
    blocker, _ = batcher.submit("k1", lambda: GatedTask(gate, counter, 0))
    failing, created = batcher.submit("k2", lambda: FailingTask())
    dup, dup_created = batcher.submit("k2", lambda: FailingTask())
    assert created and not dup_created
    assert dup is failing
    gate.set()
    assert blocker.result(timeout=30) == 0
    with pytest.raises(RuntimeError, match="boom"):
        failing.result(timeout=30)
    with pytest.raises(RuntimeError, match="boom"):
        dup.result(timeout=30)


def test_snapshot_reports_counters(pool):
    batcher = PlanBatcher(pool)
    gate = threading.Event()
    counter = _counter()
    batcher.submit("key", lambda: GatedTask(gate, counter, 0))
    batcher.submit("key", lambda: GatedTask(gate, counter, 0))
    snap = batcher.snapshot()
    assert snap["planned"] == 1
    assert snap["coalesced"] == 1
    assert snap["inflight"] == 1
    gate.set()
