"""CLI surface of the plan service: serve, request, cache --socket/--json."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.service.server import PlanServer, PlanService


@pytest.fixture(autouse=True)
def fresh_cache():
    """Memory-only plan cache so CLI runs stay hermetic."""
    from repro.core import plancache

    plancache.configure(disk_dir=None)
    yield
    plancache.reset()


@pytest.fixture()
def live_socket(tmp_path):
    """A served socket path backed by a single-job service."""
    socket_path = tmp_path / "svc.sock"
    srv = PlanServer(socket_path, PlanService(jobs=1))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield str(socket_path)
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=10)


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.jobs == 1
        assert args.shards >= 1
        assert args.no_warm_start is False
        assert args.no_admission is False

    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--jobs", "2", "--shards", "8",
            "--shard-bytes", "4M", "--no-warm-start", "--no-admission",
        ])
        assert args.jobs == 2
        assert args.shards == 8
        assert args.shard_bytes == "4M"
        assert args.no_warm_start is True
        assert args.no_admission is True

    def test_request_defaults(self):
        args = build_parser().parse_args(["request", "all_reduce"])
        assert args.system == "perlmutter"
        assert args.nodes == 4

    def test_cache_flags(self):
        args = build_parser().parse_args(["cache", "--json"])
        assert args.json is True
        assert args.socket is None


class TestRequest:
    def test_request_plans_then_hits(self, live_socket, capsys):
        argv = ["request", "all_reduce", "--system", "delta", "--nodes", "2",
                "--payload", "4M", "--socket", live_socket]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cold" in first or "warm" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "hit" in second

    def test_request_json_output(self, live_socket, capsys):
        rc = main(["request", "all_gather", "--system", "delta",
                   "--nodes", "2", "--payload", "4M",
                   "--socket", live_socket, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "ok"
        assert doc["winner"]["hierarchy"]
        assert doc["plan_seconds"] > 0

    def test_request_dead_socket_fails(self, tmp_path, capsys):
        rc = main(["request", "all_reduce", "--socket",
                   str(tmp_path / "nothing.sock")])
        assert rc != 0


class TestCache:
    def test_cache_json_local(self, capsys):
        assert main(["cache", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "in_process" in doc
        assert "disk" in doc

    def test_cache_socket_shows_shards(self, live_socket, capsys):
        main(["request", "all_reduce", "--system", "delta", "--nodes", "2",
              "--payload", "4M", "--socket", live_socket])
        capsys.readouterr()
        assert main(["cache", "--socket", live_socket]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert main(["cache", "--socket", live_socket, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["service"]["requests"] >= 1
        assert len(doc["cache"]["shards"]) >= 1


class TestShutdown:
    def test_request_shutdown_stops_server(self, tmp_path, capsys):
        from repro.service.server import socket_alive

        socket_path = tmp_path / "svc.sock"
        srv = PlanServer(socket_path, PlanService(jobs=1))
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        assert socket_alive(socket_path)
        assert main(["request", "--shutdown",
                     "--socket", str(socket_path)]) == 0
        thread.join(timeout=10)
        assert not thread.is_alive()
        srv.server_close()
