"""Property-based tests: random machines, compositions, and plans.

Hypothesis drives the full pipeline — random machine shapes, random
optimization parameters, random primitives — and checks the invariants the
paper's design rests on:

* functional correctness of every lowered collective;
* conservation of data (schedules never invent or lose elements);
* dependency completeness (random linearizations agree);
* hierarchical inter-node volume optimality for broadcast.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import check_collective, make_input

import repro
from repro import Communicator, Library
from repro.core.ops import ReduceOp
from repro.machine.machines import generic
from repro.simulator.executor import execute, random_topological_order

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def machine_and_plan(draw):
    """A random small machine plus a valid optimization plan for it."""
    nodes = draw(st.sampled_from([1, 2, 3, 4]))
    gpus = draw(st.sampled_from([1, 2, 3, 4]))
    if nodes * gpus < 2:
        gpus = 2
    nics = draw(st.sampled_from([1, 2])) if gpus % 2 == 0 else 1
    nics = min(nics, gpus)
    machine = generic(nodes, gpus, nics, name=f"h{nodes}x{gpus}")
    p = machine.world_size

    # Hierarchy: either flat, physical, or a random factorization of p.
    choice = draw(st.integers(0, 2))
    if choice == 0:
        hierarchy = [p]
    elif choice == 1:
        hierarchy = [nodes, gpus] if nodes > 1 else [gpus]
    else:
        hierarchy = []
        rest = p
        while rest > 1:
            divisors = [d for d in range(2, rest + 1) if rest % d == 0]
            f = draw(st.sampled_from(divisors))
            hierarchy.append(f)
            rest //= f
        if not hierarchy:
            hierarchy = [p]
    libraries = [Library.MPI] * len(hierarchy)
    stripe = draw(st.integers(1, gpus))
    ring = draw(st.sampled_from([1, hierarchy[0]])) if len(hierarchy) > 1 else 1
    pipeline = draw(st.sampled_from([1, 2, 3, 5]))
    return machine, dict(hierarchy=hierarchy, library=libraries,
                         stripe=stripe, ring=ring, pipeline=pipeline)


class TestRandomPlansCorrect:
    @settings(**SETTINGS)
    @given(mp=machine_and_plan(), data=st.data())
    def test_any_collective_any_plan(self, mp, data):
        machine, plan = mp
        name = data.draw(st.sampled_from(sorted(repro.COLLECTIVES)))
        count = data.draw(st.sampled_from([1, 3, 8, 17]))
        comm = Communicator(machine)
        repro.compose(comm, name, count)
        comm.init(**plan)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        payload = make_input(name, machine.world_size, count, rng)
        check_collective(comm, name, payload, count)

    @settings(**SETTINGS)
    @given(mp=machine_and_plan(), data=st.data())
    def test_random_multicast_subsets(self, mp, data):
        """Sparse leaf sets with arbitrary roots stay correct (pruning)."""
        machine, plan = mp
        p = machine.world_size
        count = 16
        root = data.draw(st.integers(0, p - 1))
        leaves = data.draw(
            st.lists(st.integers(0, p - 1), min_size=1, max_size=p, unique=True)
        )
        comm = Communicator(machine)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_multicast(send, recv, count, root, leaves)
        comm.init(**plan)
        rng = np.random.default_rng(0)
        payload = rng.integers(-9, 9, size=(p, count)).astype(np.float32)
        comm.set_all(send, payload)
        comm.run()
        got = comm.gather_all(recv)
        for leaf in leaves:
            np.testing.assert_array_equal(got[leaf], payload[root])

    @settings(**SETTINGS)
    @given(mp=machine_and_plan(), data=st.data())
    def test_random_reduction_subsets(self, mp, data):
        machine, plan = mp
        p = machine.world_size
        count = 16
        root = data.draw(st.integers(0, p - 1))
        leaves = data.draw(
            st.lists(st.integers(0, p - 1), min_size=1, max_size=p, unique=True)
        )
        op = data.draw(st.sampled_from([ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN]))
        comm = Communicator(machine)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_reduction(send, recv, count, leaves, root, op)
        comm.init(**plan)
        rng = np.random.default_rng(1)
        payload = rng.integers(-9, 9, size=(p, count)).astype(np.float32)
        comm.set_all(send, payload)
        comm.run()
        from repro.core.ops import reference_reduce

        expected = reference_reduce(op, [payload[r] for r in leaves])
        np.testing.assert_array_equal(comm.gather_all(recv)[root], expected)


class TestStructuralInvariants:
    @settings(**SETTINGS)
    @given(mp=machine_and_plan())
    def test_broadcast_inter_volume_optimal(self, mp):
        """Hierarchical broadcast never moves more than (nodes-1) copies
        across the network when the hierarchy respects node boundaries."""
        machine, plan = mp
        if machine.nodes < 2:
            return
        hierarchy = plan["hierarchy"]
        # Only check when a hierarchy level aligns with physical nodes.
        sizes = [machine.world_size]
        for f in hierarchy:
            sizes.append(sizes[-1] // f)
        if machine.gpus_per_node not in sizes:
            return
        count = 60
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_multicast(send, recv, count, 0, list(range(machine.world_size)))
        comm.init(**plan)
        vols = comm.schedule.volume_by_kind(machine)
        assert vols["inter-node"] <= (machine.nodes - 1) * count + machine.nodes

    @settings(**SETTINGS)
    @given(mp=machine_and_plan(), data=st.data())
    def test_random_linearization_agrees(self, mp, data):
        machine, plan = mp
        name = data.draw(st.sampled_from(["broadcast", "all_reduce", "gather"]))
        count = 12
        comm = Communicator(machine)
        repro.compose(comm, name, count)
        comm.init(**plan)
        rng = np.random.default_rng(5)
        payload = make_input(name, machine.world_size, count, rng)
        comm.set_all("sendbuf", payload)
        execute(comm.schedule, comm.pool)
        reference = comm.gather_all("recvbuf").copy()
        comm.set_all("sendbuf", payload)
        comm.set_all("recvbuf", np.zeros_like(reference))
        order = random_topological_order(
            comm.schedule, np.random.default_rng(data.draw(st.integers(0, 999)))
        )
        execute(comm.schedule, comm.pool, order=order)
        np.testing.assert_array_equal(comm.gather_all("recvbuf"), reference)

    @settings(**SETTINGS)
    @given(mp=machine_and_plan())
    def test_simulated_time_positive_and_finite(self, mp):
        machine, plan = mp
        comm = Communicator(machine, materialize=False)
        repro.compose(comm, "all_reduce", 32)
        comm.init(**plan)
        t = comm.run()
        assert 0 < t < 10.0
        assert math.isfinite(t)
