"""Unit + property tests for the interval bookkeeping structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalMap, IntervalSet


class TestInterval:
    def test_overlaps_basic(self):
        iv = Interval(2, 5, tag=1)
        assert iv.overlaps(4, 6)
        assert iv.overlaps(0, 3)
        assert iv.overlaps(3, 4)

    def test_touching_does_not_overlap(self):
        iv = Interval(2, 5, tag=1)
        assert not iv.overlaps(5, 8)
        assert not iv.overlaps(0, 2)

    def test_empty_query_does_not_overlap(self):
        iv = Interval(2, 5, tag=1)
        assert not iv.overlaps(3, 3)


class TestIntervalMap:
    def test_single_write_and_query(self):
        m = IntervalMap()
        m.write(0, 10, tag=7)
        assert m.tags_overlapping(3, 5) == [7]
        assert m.tags_overlapping(10, 20) == []

    def test_overwrite_splits_interval(self):
        m = IntervalMap()
        m.write(0, 10, tag=1)
        m.write(3, 6, tag=2)
        assert m.tags_overlapping(0, 3) == [1]
        assert m.tags_overlapping(3, 6) == [2]
        assert m.tags_overlapping(6, 10) == [1]
        assert sorted(m.tags_overlapping(0, 10)) == [1, 2]

    def test_overwrite_spanning_multiple(self):
        m = IntervalMap()
        m.write(0, 4, tag=1)
        m.write(6, 10, tag=2)
        m.write(2, 8, tag=3)
        assert m.tags_overlapping(0, 2) == [1]
        assert m.tags_overlapping(2, 8) == [3]
        assert m.tags_overlapping(8, 10) == [2]

    def test_exact_replacement(self):
        m = IntervalMap()
        m.write(2, 5, tag=1)
        m.write(2, 5, tag=2)
        assert m.tags_overlapping(2, 5) == [2]
        assert len(m) == 1

    def test_adjacent_writes_do_not_merge_tags(self):
        m = IntervalMap()
        m.write(0, 5, tag=1)
        m.write(5, 10, tag=2)
        assert m.tags_overlapping(4, 6) == [1, 2]

    def test_empty_write_ignored(self):
        m = IntervalMap()
        m.write(5, 5, tag=1)
        assert len(m) == 0

    def test_covered(self):
        m = IntervalMap()
        m.write(0, 4, tag=1)
        m.write(4, 8, tag=2)
        assert m.covered(0, 8)
        assert m.covered(2, 6)
        assert not m.covered(0, 9)
        assert not m.covered(-1, 3)

    def test_covered_with_gap(self):
        m = IntervalMap()
        m.write(0, 3, tag=1)
        m.write(5, 8, tag=2)
        assert not m.covered(0, 8)
        assert m.covered(5, 8)

    def test_many_disjoint_writes(self):
        m = IntervalMap()
        for i in range(50):
            m.write(i * 10, i * 10 + 5, tag=i)
        assert len(m) == 50
        for i in range(50):
            assert m.tags_overlapping(i * 10, i * 10 + 1) == [i]

    @settings(max_examples=200, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 30), st.integers(0, 10**6)),
            min_size=1,
            max_size=40,
        ),
        query=st.tuples(st.integers(0, 120), st.integers(1, 30)),
    )
    def test_matches_array_model(self, writes, query):
        """The map must behave exactly like writing tags into a flat array."""
        m = IntervalMap()
        model = np.full(200, -1, dtype=np.int64)
        for start, length, tag in writes:
            m.write(start, start + length, tag)
            model[start : start + length] = tag
        qstart, qlen = query
        expected = {int(t) for t in model[qstart : qstart + qlen] if t >= 0}
        got = set(m.tags_overlapping(qstart, qstart + qlen))
        assert got == expected

    @settings(max_examples=100, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 60), st.integers(1, 20)),
            min_size=1,
            max_size=30,
        )
    )
    def test_entries_stay_disjoint_and_sorted(self, writes):
        m = IntervalMap()
        for tag, (start, length) in enumerate(writes):
            m.write(start, start + length, tag)
        entries = list(m)
        for a, b in zip(entries, entries[1:]):
            assert a.stop <= b.start


class TestIntervalSet:
    def test_add_and_query(self):
        s = IntervalSet()
        s.add(0, 5, tag=1)
        s.add(3, 8, tag=2)
        assert sorted(s.tags_overlapping(4, 5)) == [1, 2]
        assert s.tags_overlapping(6, 7) == [2]

    def test_duplicate_tags_reported_once(self):
        s = IntervalSet()
        s.add(0, 5, tag=1)
        s.add(2, 7, tag=1)
        assert s.tags_overlapping(0, 10) == [1]

    def test_remove_range_trims_partial_overlap(self):
        s = IntervalSet()
        s.add(0, 10, tag=1)
        s.remove_range(3, 6)
        assert s.tags_overlapping(3, 6) == []
        assert s.tags_overlapping(0, 3) == [1]
        assert s.tags_overlapping(6, 10) == [1]

    def test_remove_range_drops_contained(self):
        s = IntervalSet()
        s.add(4, 6, tag=1)
        s.remove_range(0, 10)
        assert len(s) == 0

    def test_empty_add_ignored(self):
        s = IntervalSet()
        s.add(5, 5, tag=1)
        assert len(s) == 0

    def test_clear(self):
        s = IntervalSet()
        s.add(0, 5, tag=1)
        s.clear()
        assert s.tags_overlapping(0, 5) == []

    @settings(max_examples=150, deadline=None)
    @given(
        adds=st.lists(
            st.tuples(st.integers(0, 80), st.integers(1, 20), st.integers(0, 5)),
            max_size=20,
        ),
        removes=st.lists(
            st.tuples(st.integers(0, 80), st.integers(1, 20)),
            max_size=8,
        ),
        query=st.tuples(st.integers(0, 100), st.integers(1, 20)),
    )
    def test_matches_set_model(self, adds, removes, query):
        """Adds then removes must match a per-element set-of-tags model."""
        s = IntervalSet()
        model = [set() for _ in range(200)]
        for start, length, tag in adds:
            s.add(start, start + length, tag)
            for i in range(start, start + length):
                model[i].add(tag)
        for start, length in removes:
            s.remove_range(start, start + length)
            for i in range(start, start + length):
                model[i].clear()
        qstart, qlen = query
        expected = set().union(*model[qstart : qstart + qlen]) if qlen else set()
        assert set(s.tags_overlapping(qstart, qstart + qlen)) == expected
