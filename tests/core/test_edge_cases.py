"""Edge cases across the stack: tiny payloads, degenerate machines, dtypes."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import check_collective, make_input

import repro
from repro import Communicator, Library
from repro.core.ops import ReduceOp
from repro.machine.machines import generic


class TestSingleElementPayloads:
    @pytest.mark.parametrize("name", sorted(repro.COLLECTIVES))
    def test_count_one(self, name):
        machine = generic(2, 2, 1, name="c1")
        comm = Communicator(machine)
        repro.compose(comm, name, 1)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                  stripe=2, pipeline=4)
        rng = np.random.default_rng(0)
        data = make_input(name, 4, 1, rng)
        check_collective(comm, name, data, 1)


class TestSingleNodeMachines:
    """One node: everything is intra-node; no NIC ever used."""

    @pytest.mark.parametrize("name", ["broadcast", "all_reduce", "all_to_all"])
    def test_intra_only(self, name):
        machine = generic(1, 4, 1, name="one-node")
        comm = Communicator(machine)
        repro.compose(comm, name, 8)
        comm.init(hierarchy=[4], library=[Library.IPC], stripe=4)
        rng = np.random.default_rng(1)
        data = make_input(name, 4, 8, rng)
        check_collective(comm, name, data, 8)
        assert comm.schedule.volume_by_kind(machine)["inter-node"] == 0

    def test_two_rank_world(self):
        machine = generic(1, 2, 1, name="pair")
        comm = Communicator(machine)
        repro.compose(comm, "all_reduce", 4)
        comm.init(hierarchy=[2], library=[Library.IPC])
        rng = np.random.default_rng(2)
        data = make_input("all_reduce", 2, 4, rng)
        check_collective(comm, "all_reduce", data, 4)


class TestWideFlatMachines:
    def test_64_ranks_flat_broadcast(self):
        machine = generic(16, 4, 1, name="wide")
        comm = Communicator(machine)
        repro.compose(comm, "broadcast", 4)
        comm.init(hierarchy=[64], library=[Library.MPI])
        rng = np.random.default_rng(3)
        data = make_input("broadcast", 64, 4, rng)
        check_collective(comm, "broadcast", data, 4)

    def test_prime_factor_hierarchy(self):
        machine = generic(3, 5, 1, name="prime")
        comm = Communicator(machine)
        repro.compose(comm, "all_reduce", 6)
        comm.init(hierarchy=[3, 5], library=[Library.MPI, Library.IPC],
                  stripe=5, pipeline=2)
        rng = np.random.default_rng(4)
        data = make_input("all_reduce", 15, 6, rng)
        check_collective(comm, "all_reduce", data, 6)


class TestDtypes:
    @pytest.mark.parametrize("dtype", [np.float64, np.int32, np.int64, np.uint8])
    def test_all_reduce_dtypes(self, dtype):
        machine = generic(2, 2, 1, name="dt")
        comm = Communicator(machine, dtype=dtype)
        repro.compose(comm, "all_reduce", 8)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(5)
        hi = 20 if np.dtype(dtype).kind == "u" else 9
        lo = 0 if np.dtype(dtype).kind == "u" else -9
        data = rng.integers(lo, hi, size=(4, 32)).astype(dtype)
        comm.set_all("sendbuf", data)
        comm.run()
        np.testing.assert_array_equal(
            comm.gather_all("recvbuf"),
            np.tile(data.sum(axis=0).astype(dtype), (4, 1)),
        )

    def test_bitwise_ops_integer_buffers(self):
        machine = generic(2, 2, 1, name="bw")
        comm = Communicator(machine, dtype=np.int32)
        send = comm.alloc(8)
        recv = comm.alloc(8)
        comm.add_reduction(send, recv, 8, [0, 1, 2, 3], 0, ReduceOp.BOR)
        comm.init(hierarchy=[4], library=[Library.MPI])
        data = np.array([[1, 2, 4, 8, 0, 0, 0, 1]] * 4, dtype=np.int32)
        data[1] = [16, 0, 0, 0, 0, 0, 0, 2]
        comm.set_all(send, data)
        comm.run()
        expected = np.bitwise_or.reduce(data, axis=0)
        np.testing.assert_array_equal(comm.gather_all(recv)[0], expected)


class TestOddShapes:
    def test_payload_not_divisible_by_stripe_or_pipeline(self):
        """count=17 with stripe 4 and pipeline 3: ragged chunks everywhere."""
        machine = generic(2, 4, 2, name="rag")
        comm = Communicator(machine)
        repro.compose(comm, "broadcast", 17)
        comm.init(hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
                  stripe=4, pipeline=3)
        rng = np.random.default_rng(6)
        data = make_input("broadcast", 8, 17, rng)
        check_collective(comm, "broadcast", data, 17)

    def test_dual_die_odd_counts(self):
        machine = generic(2, 6, 2, name="odd6")
        comm = Communicator(machine)
        repro.compose(comm, "reduce_scatter", 7)
        comm.init(hierarchy=[2, 3, 2],
                  library=[Library.MPI, Library.IPC, Library.IPC],
                  stripe=3, pipeline=2)
        rng = np.random.default_rng(7)
        data = make_input("reduce_scatter", 12, 7, rng)
        check_collective(comm, "reduce_scatter", data, 7)

    def test_root_in_last_node(self):
        machine = generic(4, 3, 1, name="lastroot")
        comm = Communicator(machine)
        repro.compose(comm, "broadcast", 9, root=11)
        comm.init(hierarchy=[4, 3], library=[Library.MPI, Library.IPC],
                  ring=4, stripe=3)
        rng = np.random.default_rng(8)
        data = make_input("broadcast", 12, 9, rng)
        check_collective(comm, "broadcast", data, 9, root=11)
