"""Tests for variable-count (v-) collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, Library
from repro.core.ops import ReduceOp
from repro.core.vcollectives import (
    compose_all_gatherv,
    compose_gatherv,
    compose_reduce_scatterv,
    compose_scatterv,
    offsets_of,
)
from repro.errors import CompositionError
from repro.machine.machines import generic

PLAN = dict(hierarchy=[2, 3], library=[Library.MPI, Library.IPC],
            stripe=2, pipeline=2)


@pytest.fixture
def machine():
    return generic(2, 3, 1, name="vc")


COUNTS = [5, 0, 12, 3, 7, 1]  # deliberately ragged, one empty


class TestOffsets:
    def test_running_sums(self):
        assert offsets_of([5, 0, 12, 3]) == [0, 5, 5, 17]

    def test_single(self):
        assert offsets_of([4]) == [0]


class TestScatterv:
    def test_ragged_chunks_delivered(self, machine):
        comm = Communicator(machine)
        send, recv = compose_scatterv(comm, COUNTS)
        comm.init(**PLAN)
        total = sum(COUNTS)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 99, size=(6, total)).astype(np.float32)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        offs = offsets_of(COUNTS)
        for j, (off, cnt) in enumerate(zip(offs, COUNTS)):
            np.testing.assert_array_equal(out[j][:cnt], data[0][off:off + cnt])

    def test_count_length_mismatch(self, machine):
        comm = Communicator(machine)
        with pytest.raises(CompositionError):
            compose_scatterv(comm, [1, 2, 3])

    def test_negative_count(self, machine):
        comm = Communicator(machine)
        with pytest.raises(CompositionError):
            compose_scatterv(comm, [1, -1, 1, 1, 1, 1])

    def test_all_zero_rejected(self, machine):
        comm = Communicator(machine)
        with pytest.raises(CompositionError):
            compose_scatterv(comm, [0] * 6)


class TestGatherv:
    def test_ragged_gather(self, machine):
        comm = Communicator(machine)
        send, recv = compose_gatherv(comm, COUNTS)
        comm.init(**PLAN)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 99, size=(6, max(COUNTS))).astype(np.float32)
        comm.set_all(send, data)
        comm.run()
        root_view = comm.gather_all(recv)[0]
        offs = offsets_of(COUNTS)
        for i, (off, cnt) in enumerate(zip(offs, COUNTS)):
            np.testing.assert_array_equal(root_view[off:off + cnt], data[i][:cnt])


class TestAllGatherv:
    def test_everyone_gets_every_ragged_chunk(self, machine):
        comm = Communicator(machine)
        send, recv = compose_all_gatherv(comm, COUNTS)
        comm.init(**PLAN)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 99, size=(6, max(COUNTS))).astype(np.float32)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        offs = offsets_of(COUNTS)
        expected = np.concatenate([data[i][:c] for i, c in enumerate(COUNTS)])
        for rank in range(6):
            np.testing.assert_array_equal(out[rank], expected)
        assert offs[-1] + COUNTS[-1] == expected.size


class TestReduceScatterv:
    def test_ragged_reduced_chunks(self, machine):
        comm = Communicator(machine)
        send, recv = compose_reduce_scatterv(comm, COUNTS, op=ReduceOp.SUM)
        comm.init(**PLAN)
        total = sum(COUNTS)
        rng = np.random.default_rng(3)
        data = rng.integers(-5, 6, size=(6, total)).astype(np.float32)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        reduced = data.sum(axis=0)
        offs = offsets_of(COUNTS)
        for j, (off, cnt) in enumerate(zip(offs, COUNTS)):
            np.testing.assert_array_equal(out[j][:cnt], reduced[off:off + cnt])

    def test_max_op(self, machine):
        counts = [4, 4, 4, 4, 4, 4]
        comm = Communicator(machine)
        send, recv = compose_reduce_scatterv(comm, counts, op=ReduceOp.MAX)
        comm.init(**PLAN)
        rng = np.random.default_rng(4)
        data = rng.integers(-50, 50, size=(6, 24)).astype(np.float32)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        reduced = data.max(axis=0)
        for j in range(6):
            np.testing.assert_array_equal(out[j][:4], reduced[4 * j:4 * j + 4])
