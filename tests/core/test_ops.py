"""Tests for reduction operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import ReduceOp, accumulate, reference_reduce, supports_dtype


class TestAccumulate:
    def test_sum(self):
        acc = np.array([1.0, 2.0], dtype=np.float32)
        accumulate(ReduceOp.SUM, acc, np.array([10.0, 20.0], dtype=np.float32))
        assert acc.tolist() == [11.0, 22.0]

    def test_prod(self):
        acc = np.array([2, 3], dtype=np.int64)
        accumulate(ReduceOp.PROD, acc, np.array([4, 5], dtype=np.int64))
        assert acc.tolist() == [8, 15]

    def test_max_min(self):
        acc = np.array([1.0, 9.0], dtype=np.float64)
        accumulate(ReduceOp.MAX, acc, np.array([5.0, 2.0]))
        assert acc.tolist() == [5.0, 9.0]
        accumulate(ReduceOp.MIN, acc, np.array([3.0, 1.0]))
        assert acc.tolist() == [3.0, 1.0]

    def test_logical_ops_cast_back_to_dtype(self):
        acc = np.array([0, 2, 0], dtype=np.int32)
        accumulate(ReduceOp.LOR, acc, np.array([0, 0, 5], dtype=np.int32))
        assert acc.tolist() == [0, 1, 1]
        assert acc.dtype == np.int32

    def test_land(self):
        acc = np.array([1, 1, 0], dtype=np.int32)
        accumulate(ReduceOp.LAND, acc, np.array([1, 0, 1], dtype=np.int32))
        assert acc.tolist() == [1, 0, 0]

    def test_bitwise(self):
        acc = np.array([0b1100], dtype=np.int32)
        accumulate(ReduceOp.BAND, acc, np.array([0b1010], dtype=np.int32))
        assert acc.tolist() == [0b1000]
        accumulate(ReduceOp.BOR, acc, np.array([0b0001], dtype=np.int32))
        assert acc.tolist() == [0b1001]

    def test_in_place_no_new_allocation(self):
        acc = np.zeros(8, dtype=np.float32)
        view = acc[:]
        accumulate(ReduceOp.SUM, view, np.ones(8, dtype=np.float32))
        assert acc.sum() == 8


class TestSupportsDtype:
    def test_bitwise_rejects_float(self):
        assert not supports_dtype(ReduceOp.BAND, np.float32)
        assert supports_dtype(ReduceOp.BAND, np.int32)

    def test_sum_supports_float_and_int(self):
        assert supports_dtype(ReduceOp.SUM, np.float64)
        assert supports_dtype(ReduceOp.SUM, np.uint8)


class TestReferenceReduce:
    def test_matches_numpy_sum(self):
        arrays = [np.arange(5, dtype=np.float64) * i for i in range(4)]
        out = reference_reduce(ReduceOp.SUM, arrays)
        np.testing.assert_allclose(out, np.sum(arrays, axis=0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reference_reduce(ReduceOp.SUM, [])

    @settings(max_examples=60, deadline=None)
    @given(
        op=st.sampled_from([ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN, ReduceOp.PROD]),
        data=st.lists(
            st.lists(st.integers(-5, 5), min_size=4, max_size=4),
            min_size=1, max_size=6,
        ),
    )
    def test_associativity_under_regrouping(self, op, data):
        """Any left-fold grouping must match — HiCCL reassociates freely."""
        arrays = [np.array(row, dtype=np.int64) for row in data]
        expected = reference_reduce(op, arrays)
        # Tree-ish regrouping: reduce halves then combine.
        if len(arrays) > 1:
            mid = len(arrays) // 2
            left = reference_reduce(op, arrays[:mid]) if mid else arrays[0]
            right = reference_reduce(op, arrays[mid:])
            combined = reference_reduce(op, [left, right] if mid else [right])
            np.testing.assert_array_equal(combined, expected)
