"""Tests for the Communicator lifecycle (Listing 2's API contract)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, Library
from repro.core.composition import compose
from repro.core.ops import ReduceOp
from repro.errors import CompositionError, InitializationError
from repro.machine.machines import generic


@pytest.fixture
def machine():
    return generic(2, 2, 1, name="comm")


class TestLifecycle:
    def test_listing2_flow(self, machine):
        """The exact flow of Listing 2: compose, init, start, wait."""
        comm = Communicator(machine, dtype=np.float32)
        p = machine.world_size
        count = 16
        send = comm.alloc(p * count)
        recv = comm.alloc(p * count)
        every = list(range(p))
        for j in range(p):
            comm.add_reduction(send[j * count:], recv[j * count:], count,
                               every, j, ReduceOp.SUM)
        comm.add_fence()
        for i in range(p):
            others = [r for r in every if r != i]
            comm.add_multicast(recv[i * count:], recv[i * count:], count,
                               i, others)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                  ring=1, stripe=2, pipeline=4)
        comm.start()
        elapsed = comm.wait()
        assert elapsed > 0
        assert comm.last_elapsed == elapsed

    def test_init_requires_primitives(self, machine):
        comm = Communicator(machine)
        with pytest.raises(InitializationError):
            comm.init(hierarchy=[4], library=[Library.MPI])

    def test_start_requires_init(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(4)
        recv = comm.alloc(4)
        comm.add_multicast(send, recv, 4, 0, [1])
        with pytest.raises(InitializationError):
            comm.start()

    def test_wait_requires_start(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(4)
        recv = comm.alloc(4)
        comm.add_multicast(send, recv, 4, 0, [1])
        comm.init(hierarchy=[4], library=[Library.MPI])
        with pytest.raises(InitializationError):
            comm.wait()

    def test_double_start_rejected(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(4)
        recv = comm.alloc(4)
        comm.add_multicast(send, recv, 4, 0, [1])
        comm.init(hierarchy=[4], library=[Library.MPI])
        comm.start()
        with pytest.raises(InitializationError):
            comm.start()
        comm.wait()

    def test_double_init_rejected(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(4)
        recv = comm.alloc(4)
        comm.add_multicast(send, recv, 4, 0, [1])
        comm.init(hierarchy=[4], library=[Library.MPI])
        with pytest.raises(InitializationError):
            comm.init(hierarchy=[4], library=[Library.MPI])

    def test_composition_frozen_after_init(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(4)
        recv = comm.alloc(4)
        comm.add_multicast(send, recv, 4, 0, [1])
        comm.init(hierarchy=[4], library=[Library.MPI])
        with pytest.raises(CompositionError):
            comm.add_fence()
        with pytest.raises(CompositionError):
            comm.add_multicast(send, recv, 4, 0, [1])
        with pytest.raises(CompositionError):
            comm.alloc(8)

    def test_persistent_reuse_is_deterministic(self, machine):
        """Section 5.2: repeated start/wait reuse the memoized schedule."""
        comm = Communicator(machine)
        compose(comm, "all_reduce", 8)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
        times = {comm.run() for _ in range(5)}
        assert len(times) == 1

    def test_measure_protocol(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
        t = comm.measure(warmup=2, rounds=3)
        assert t == comm.last_elapsed

    def test_synthesis_time_recorded(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
        assert comm.synthesis_seconds is not None
        assert comm.synthesis_seconds > 0

    def test_describe(self, machine):
        comm = Communicator(machine)
        assert "uninitialized" in comm.describe()
        compose(comm, "broadcast", 8)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                  stripe=2, pipeline=4)
        text = comm.describe()
        assert "stripe(2)" in text and "pipeline(4)" in text


class TestBufferAccess:
    def test_array_read_write(self, machine):
        comm = Communicator(machine)
        buf = comm.alloc(8)
        comm.array(buf, 2)[:] = 5.0
        assert comm.gather_all(buf)[2].tolist() == [5.0] * 8

    def test_timing_only_mode_skips_memory(self, machine):
        comm = Communicator(machine, materialize=False)
        buf = comm.alloc(1 << 20)  # would be 4 MB x 4 ranks if materialized
        recv = comm.alloc(1 << 20)
        comm.add_multicast(buf, recv, 1 << 20, 0, [1, 2, 3])
        comm.init(hierarchy=[4], library=[Library.MPI])
        t = comm.run()
        assert t > 0
        with pytest.raises(Exception):
            comm.gather_all(buf)

    def test_dtype_respected(self, machine):
        comm = Communicator(machine, dtype=np.float64)
        buf = comm.alloc(4)
        assert comm.array(buf, 0).dtype == np.float64


class TestValidationAtInit:
    def test_bad_hierarchy_product(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        with pytest.raises(Exception):
            comm.init(hierarchy=[3], library=[Library.MPI])

    def test_ring_must_match_top_factor(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        with pytest.raises(InitializationError):
            comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                      ring=3)

    def test_stripe_beyond_node_rejected(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        with pytest.raises(InitializationError):
            comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                      stripe=3)

    def test_zero_pipeline_rejected(self, machine):
        comm = Communicator(machine)
        compose(comm, "broadcast", 8)
        with pytest.raises(InitializationError):
            comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                      pipeline=0)
