"""Sub-communicators: group machines, embedding, functional correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import plancache
from repro.core.communicator import SubCommunicator, group_machine
from repro.core.composition import compose
from repro.errors import HierarchyError
from repro.machine.machines import frontier, perlmutter
from repro.machine.rankmap import embed_schedule, group_layout
from repro.simulator.executor import execute
from repro.simulator.process import MemoryPool
from repro.transport.library import Library

MACHINE = perlmutter(nodes=4)  # 4 nodes x 4 GPUs
COUNT = 256


class TestGroupLayout:
    def test_full_node_group(self):
        assert group_layout(MACHINE, range(4, 8)) == (1, 4)

    def test_one_gpu_per_node_group(self):
        assert group_layout(MACHINE, [1, 5, 9, 13]) == (4, 1)

    def test_node_block_group(self):
        assert group_layout(MACHINE, range(8)) == (2, 4)

    def test_rejects_duplicates(self):
        with pytest.raises(HierarchyError, match="duplicates"):
            group_layout(MACHINE, [0, 0, 1])

    def test_rejects_irregular_counts(self):
        with pytest.raises(HierarchyError, match="same number"):
            group_layout(MACHINE, [0, 1, 4])  # 2 ranks node 0, 1 rank node 1

    def test_rejects_interleaved_nodes(self):
        with pytest.raises(HierarchyError, match="node-major"):
            group_layout(MACHINE, [0, 4, 1, 5])

    def test_rejects_out_of_range(self):
        with pytest.raises(HierarchyError, match="out of range"):
            group_layout(MACHINE, [0, 99])


class TestGroupMachine:
    def test_full_node_keeps_levels(self):
        gm = group_machine(MACHINE, range(4))
        assert gm.nodes == 1
        assert gm.levels == MACHINE.levels
        assert gm.world_size == 4

    def test_cross_node_group_shape(self):
        gm = group_machine(MACHINE, [0, 4, 8, 12])
        assert (gm.nodes, gm.gpus_per_node) == (4, 1)
        assert gm.nic_count == 1  # clamped: at most one NIC per member

    def test_partial_node_uses_level_suffix(self):
        m = frontier(nodes=2)  # levels (device x4, die x2)
        gm = group_machine(m, [0, 1])  # one dual-die device
        assert gm.gpus_per_node == 2
        assert gm.levels == m.levels[-1:]

    def test_name_preserved_for_profile_lookup(self):
        assert group_machine(MACHINE, range(4)).name == MACHINE.name


class TestSubCommunicatorTiming:
    def _tp(self, ranks):
        comm = SubCommunicator(MACHINE, ranks, materialize=False)
        compose(comm, "all_reduce", COUNT)
        comm.init(hierarchy=[4], library=[Library.IPC], pipeline=2)
        return comm

    def test_global_schedule_lands_on_group_ranks(self):
        comm = self._tp(range(8, 12))
        endpoints = {op.src for op in comm.global_schedule.ops}
        endpoints |= {op.dst for op in comm.global_schedule.ops}
        assert endpoints <= set(range(8, 12))
        assert comm.global_schedule.world_size == MACHINE.world_size

    def test_symmetric_placements_price_identically(self):
        a, b = self._tp(range(0, 4)), self._tp(range(8, 12))
        assert a.timing.elapsed == b.timing.elapsed

    def test_group_space_plan_shared_across_placements(self):
        self._tp(range(0, 4))
        hits_before = plancache.get_cache().stats.memory_hits
        self._tp(range(4, 8))  # same shape, different node
        assert plancache.get_cache().stats.memory_hits > hits_before

    def test_cross_node_group_prices_nic_traffic(self):
        dp = SubCommunicator(MACHINE, [2, 6, 10, 14], materialize=False)
        compose(dp, "all_reduce", COUNT)
        dp.init(hierarchy=[2, 2, 1],
                library=[Library.NCCL, Library.NCCL, Library.IPC])
        nic_keys = [key for key in dp.timing.resource_busy
                    if key[0] in ("nic_tx", "nic_rx")]
        assert nic_keys, "cross-node group traffic must book parent NICs"

    def test_global_rank_mapping(self):
        comm = self._tp([8, 9, 10, 11])
        assert comm.global_rank(0) == 8
        assert comm.world_size == 4


class TestFunctionalRemapping:
    """The satellite invariant: executing the *embedded* schedule on a
    machine-wide pool produces the group-local collective's results on
    exactly the group's global ranks."""

    def test_embedded_all_reduce_matches_reference(self):
        ranks = (4, 5, 6, 7)
        comm = SubCommunicator(MACHINE, ranks, materialize=False)
        compose(comm, "all_reduce", COUNT)
        comm.init(hierarchy=[4], library=[Library.IPC], pipeline=2)

        pool = MemoryPool(MACHINE.world_size)
        rng = np.random.default_rng(7)
        values = rng.standard_normal((4, 4 * COUNT)).astype(np.float32)
        for name in ("sendbuf", "recvbuf"):
            pool.alloc_symmetric(name, 4 * COUNT)
        for g, rank in enumerate(ranks):
            pool.array(rank, "sendbuf")[:] = values[g]

        execute(comm.global_schedule, pool)

        want = values.sum(axis=0)
        for rank in ranks:
            np.testing.assert_allclose(
                pool.array(rank, "recvbuf"), want, rtol=1e-5
            )
        # Ranks outside the group were never written.
        for rank in set(range(MACHINE.world_size)) - set(ranks):
            assert not pool.array(rank, "recvbuf").any()

    def test_group_space_execution_through_start_wait(self):
        ranks = (0, 4, 8, 12)
        comm = SubCommunicator(MACHINE, ranks)
        compose(comm, "all_reduce", COUNT)
        comm.init(hierarchy=[4, 1],
                  library=[Library.NCCL, Library.IPC])
        values = np.arange(4 * 4 * COUNT, dtype=np.float32).reshape(4, -1)
        comm.set_all("sendbuf", values)
        elapsed = comm.run()
        assert elapsed > 0
        np.testing.assert_allclose(
            comm.gather_all("recvbuf"),
            np.tile(values.sum(axis=0), (4, 1)),
            rtol=1e-5,
        )

    def test_embed_schedule_validates_mapping(self):
        comm = SubCommunicator(MACHINE, range(4), materialize=False)
        compose(comm, "broadcast", 64)
        comm.init(hierarchy=[4], library=[Library.IPC])
        with pytest.raises(HierarchyError, match="distinct"):
            embed_schedule(comm.schedule, [0, 0, 1, 2], MACHINE.world_size)
        with pytest.raises(HierarchyError, match="names"):
            embed_schedule(comm.schedule, [0, 1], MACHINE.world_size)
        with pytest.raises(HierarchyError, match="out of range"):
            embed_schedule(comm.schedule, [0, 1, 2, 99], 16)
