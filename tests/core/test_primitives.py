"""Tests for primitive registration and program structure (Section 3)."""

from __future__ import annotations

import pytest

from repro.core.buffers import BufferHandle
from repro.core.ops import ReduceOp
from repro.core.primitives import Multicast, Program, Reduction
from repro.errors import CompositionError


@pytest.fixture
def bufs():
    return BufferHandle("send", 64), BufferHandle("recv", 64)


class TestRegistration:
    def test_multicast_registers(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prim = prog.add_multicast(send, recv, 16, 0, [1, 2, 3])
        assert isinstance(prim, Multicast)
        assert prim.leaves == (1, 2, 3)
        assert prog.num_steps == 1

    def test_reduction_registers(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prim = prog.add_reduction(send, recv, 16, [0, 1, 2, 3], 2, ReduceOp.MAX)
        assert isinstance(prim, Reduction)
        assert prim.op is ReduceOp.MAX
        assert prim.root == 2

    def test_root_out_of_range(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_multicast(send, recv, 8, 4, [0])

    def test_leaf_out_of_range(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_multicast(send, recv, 8, 0, [5])

    def test_duplicate_leaves_rejected(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_multicast(send, recv, 8, 0, [1, 1])

    def test_empty_leaves_rejected(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_multicast(send, recv, 8, 0, [])

    def test_count_exceeding_view_rejected(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_multicast(send[60:], recv, 8, 0, [1])

    def test_bad_op_rejected(self, bufs):
        send, recv = bufs
        prog = Program(4)
        with pytest.raises(CompositionError):
            prog.add_reduction(send, recv, 8, [0, 1], 0, "sum")


class TestFences:
    def test_fence_starts_new_step(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prog.add_multicast(send, recv, 8, 0, [1])
        prog.add_fence()
        prog.add_multicast(recv, recv, 8, 1, [2])
        assert prog.num_steps == 2
        assert len(prog.steps[0]) == 1
        assert len(prog.steps[1]) == 1

    def test_leading_fence_is_noop(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prog.add_fence()
        prog.add_multicast(send, recv, 8, 0, [1])
        assert prog.num_steps == 1

    def test_double_fence_collapses(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prog.add_multicast(send, recv, 8, 0, [1])
        prog.add_fence()
        prog.add_fence()
        prog.add_multicast(send, recv, 8, 1, [2])
        assert prog.num_steps == 2


class TestSlicing:
    def test_multicast_slice_shifts_views(self, bufs):
        send, recv = bufs
        mc = Multicast(send.view(), recv.view(), 32, 0, (1, 2))
        sub = mc.sliced(8, 4)
        assert sub.sendbuf.offset == 8
        assert sub.recvbuf.offset == 8
        assert sub.count == 4
        assert sub.leaves == (1, 2)

    def test_reduction_slice(self, bufs):
        send, recv = bufs
        rd = Reduction(send.view(), recv.view(), 32, (0, 1), 1, ReduceOp.SUM)
        sub = rd.sliced(16, 16)
        assert sub.sendbuf.offset == 16
        assert sub.op is ReduceOp.SUM

    def test_point_to_point_detection(self, bufs):
        send, recv = bufs
        assert Multicast(send.view(), recv.view(), 8, 0, (1,)).is_point_to_point
        assert not Multicast(send.view(), recv.view(), 8, 0, (1, 2)).is_point_to_point


class TestProgramQueries:
    def test_participants(self, bufs):
        send, recv = bufs
        prog = Program(8)
        prog.add_multicast(send, recv, 8, 0, [3, 5])
        prog.add_reduction(send, recv, 8, [1, 2], 6, ReduceOp.SUM)
        assert prog.participants() == {0, 1, 2, 3, 5, 6}

    def test_max_count(self, bufs):
        send, recv = bufs
        prog = Program(4)
        prog.add_multicast(send, recv, 8, 0, [1])
        prog.add_multicast(send, recv, 32, 0, [1])
        assert prog.max_count() == 32

    def test_empty_program(self):
        prog = Program(4)
        assert prog.max_count() == 0
        assert prog.participants() == set()
