"""Tests for hierarchical factorization (tree, striping, ring — Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.communicator import Communicator
from repro.core.factorize import split_even
from repro.machine.machines import generic
from repro.transport.library import Library


def _broadcast_comm(machine, hierarchy, libraries, *, ring=1, stripe=1,
                    pipeline=1, root=0, leaves=None, count=240):
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(count, "sendbuf")
    recv = comm.alloc(count, "recvbuf")
    if leaves is None:
        leaves = list(range(machine.world_size))
    comm.add_multicast(send, recv, count, root, leaves)
    comm.init(hierarchy=hierarchy, library=libraries, ring=ring,
              stripe=stripe, pipeline=pipeline)
    return comm


class TestSplitEven:
    def test_exact_division(self):
        assert split_even(12, 3) == [(0, 4), (4, 4), (8, 4)]

    def test_remainder_spread_front(self):
        assert split_even(10, 3) == [(0, 4), (4, 3), (7, 3)]

    def test_more_parts_than_elements(self):
        assert split_even(2, 4) == [(0, 1), (1, 1)]

    def test_single_part(self):
        assert split_even(7, 1) == [(0, 7)]

    def test_chunks_partition_range(self):
        for count in (1, 7, 16, 100):
            for parts in (1, 2, 3, 8, 64):
                chunks = split_even(count, parts)
                assert chunks[0][0] == 0
                assert sum(c for _, c in chunks) == count
                for (o1, c1), (o2, _c2) in zip(chunks, chunks[1:]):
                    assert o1 + c1 == o2


class TestFig1Volumes:
    """Figure 1: hierarchical broadcast moves one inter-node copy, not g."""

    def test_direct_moves_g_copies_across(self):
        machine = generic(2, 3, 1, name="fig1")
        comm = _broadcast_comm(machine, [6], [Library.MPI], count=100)
        vols = comm.schedule.volume_by_kind(machine)
        # Direct: leaves 3,4,5 each receive the full payload across nodes.
        assert vols["inter-node"] == 3 * 100

    def test_hierarchical_moves_one_copy_across(self):
        machine = generic(2, 3, 1, name="fig1")
        comm = _broadcast_comm(machine, [2, 3], [Library.MPI, Library.IPC],
                               count=100)
        vols = comm.schedule.volume_by_kind(machine)
        assert vols["inter-node"] == 100
        # Both nodes then distribute internally: 2 + 2 copies (Figure 1b).
        assert vols["intra-node"] == 4 * 100

    def test_hierarchical_inter_volume_scales_with_nodes_only(self):
        machine = generic(4, 4, 1, name="v")
        comm = _broadcast_comm(machine, [4, 4], [Library.MPI, Library.IPC],
                               count=64)
        vols = comm.schedule.volume_by_kind(machine)
        assert vols["inter-node"] == (machine.nodes - 1) * 64


class TestFig6Stages:
    """Figure 6: striped tree has 4 stages; striped ring has 5."""

    def test_tree_223_stripe3_has_4_stages(self):
        machine = generic(4, 3, 1, name="fig6")
        comm = _broadcast_comm(machine, [2, 2, 3],
                               [Library.MPI, Library.MPI, Library.IPC],
                               stripe=3, count=240)
        assert comm.schedule.stage_count() == 4

    def test_ring_43_stripe3_has_5_stages(self):
        machine = generic(4, 3, 1, name="fig6")
        comm = _broadcast_comm(machine, [4, 3], [Library.MPI, Library.IPC],
                               ring=4, stripe=3, count=240)
        assert comm.schedule.stage_count() == 5

    def test_striping_engages_all_gpus_of_root_node(self):
        machine = generic(4, 3, 1, name="fig6")
        comm = _broadcast_comm(machine, [4, 3], [Library.MPI, Library.IPC],
                               ring=4, stripe=3, count=240)
        senders = {op.src for op in comm.schedule.ops
                   if not machine.same_node(op.src, op.dst)}
        # All three GPUs of the root node inject inter-node traffic.
        assert {0, 1, 2} <= senders

    def test_unstriped_root_node_single_injector(self):
        machine = generic(4, 3, 1, name="fig6")
        comm = _broadcast_comm(machine, [4, 3], [Library.MPI, Library.IPC],
                               ring=1, stripe=1, count=240)
        node0_senders = {
            op.src for op in comm.schedule.ops
            if machine.node_of(op.src) == 0 and not machine.same_node(op.src, op.dst)
        }
        assert node0_senders == {0}


class TestRingStructure:
    def test_ring_chains_node_hops(self):
        """ring(n) sends across consecutive node pairs, not a tree."""
        machine = generic(4, 2, 1, name="ring")
        comm = _broadcast_comm(machine, [4, 2], [Library.MPI, Library.IPC],
                               ring=4, count=16)
        node_hops = {
            (machine.node_of(op.src), machine.node_of(op.dst))
            for op in comm.schedule.ops
            if not machine.same_node(op.src, op.dst)
        }
        assert node_hops == {(0, 1), (1, 2), (2, 3)}

    def test_tree_fans_out_from_root_block(self):
        machine = generic(4, 2, 1, name="tree")
        comm = _broadcast_comm(machine, [2, 2, 2],
                               [Library.MPI, Library.MPI, Library.IPC],
                               count=16)
        node_hops = {
            (machine.node_of(op.src), machine.node_of(op.dst))
            for op in comm.schedule.ops
            if not machine.same_node(op.src, op.dst)
        }
        # Binary tree: 0->2 (top level), 0->1 and 2->3 (second level).
        assert node_hops == {(0, 2), (0, 1), (2, 3)}


class TestSparseLeaves:
    """Section 4.2: the tree is pruned to the sparsity of the leaf set."""

    def test_untouched_nodes_see_no_traffic(self):
        machine = generic(4, 2, 1, name="sparse")
        leaves = [0, 1, 3]  # nodes 0 and 1 only
        comm = _broadcast_comm(machine, [4, 2], [Library.MPI, Library.IPC],
                               leaves=leaves, count=16)
        touched = {op.src for op in comm.schedule.ops}
        touched |= {op.dst for op in comm.schedule.ops}
        assert all(machine.node_of(r) in (0, 1) for r in touched)

    def test_single_leaf_is_point_to_point(self):
        machine = generic(2, 2, 1, name="p2p")
        comm = _broadcast_comm(machine, [2, 2], [Library.MPI, Library.IPC],
                               leaves=[3], count=16)
        remote = [op for op in comm.schedule.ops if not op.is_local]
        # One inter-node hop (possibly staged through the position-matched
        # peer), nothing touching node 0 beyond the root.
        assert all(op.src in (0, 2, 3) and op.dst in (2, 3) for op in remote)


class TestPipelineChannels:
    def test_channels_partition_payload(self):
        machine = generic(2, 2, 1, name="pipe")
        comm = _broadcast_comm(machine, [2, 2], [Library.MPI, Library.IPC],
                               pipeline=4, count=64)
        channels = {op.channel for op in comm.schedule.ops}
        assert channels == {0, 1, 2, 3}
        # Inter-node hops per channel carry count/m elements each.
        for ch in channels:
            vols = [op.count for op in comm.schedule.ops
                    if op.channel == ch and not machine.same_node(op.src, op.dst)]
            assert all(v == 16 for v in vols)

    def test_deeper_than_payload_truncates(self):
        machine = generic(2, 2, 1, name="pipe")
        comm = _broadcast_comm(machine, [2, 2], [Library.MPI, Library.IPC],
                               pipeline=64, count=8)
        channels = {op.channel for op in comm.schedule.ops}
        assert len(channels) == 8  # no empty channels emitted

    def test_cross_channel_independence(self):
        """Channels touch disjoint slices, so no cross-channel deps exist."""
        machine = generic(2, 2, 1, name="pipe")
        comm = _broadcast_comm(machine, [2, 2], [Library.MPI, Library.IPC],
                               pipeline=4, count=64)
        ops = comm.schedule.ops
        for op in ops:
            for dep in op.deps:
                assert ops[dep].channel == op.channel


class TestPositionMatching:
    def test_full_broadcast_hops_are_nic_aligned(self):
        """Inter-node hops connect same-local-index GPUs (multi-rail)."""
        machine = generic(2, 4, 4, name="rail")
        comm = _broadcast_comm(machine, [2, 4], [Library.MPI, Library.IPC],
                               stripe=4, count=64)
        for op in comm.schedule.ops:
            if not machine.same_node(op.src, op.dst):
                assert machine.local_index(op.src) == machine.local_index(op.dst)
