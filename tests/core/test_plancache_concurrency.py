"""PlanCache under concurrent access: locked LRU, atomic unique-temp stores.

The regression this file locks down: disk stores used a temp file named
only by *pid*, so two writers in one process (threads, or two PlanCache
instances sharing a directory — exactly what the plan service's shards and
the sweep workers do) storing the same key interleaved their ``np.savez``
streams into a single temp file and renamed a corrupt archive into place.
The threaded stress below fails on that code (corrupt loads / disk-error
counts) and passes with per-writer unique temp names.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.core.plancache import CachedPlan, PlanCache, plan_key, plan_nbytes
from repro.machine.machines import generic
from repro.transport.library import Library

MACHINE = generic(2, 4, 2, name="concurrency")

#: Enough per-key bytes that a store takes a little while — interleaved
#: writers (the pre-fix failure mode) get caught with high probability.
COUNT = 1 << 12
PIPELINE = 8


def _plan_and_key(count=COUNT, pipeline=PIPELINE, tag=0):
    """A real lowered plan plus its key (tag varies the program)."""
    comm = Communicator(MACHINE, materialize=False)
    compose(comm, "all_reduce", count + tag)
    comm.init(
        hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
        stripe=1, ring=1, pipeline=pipeline,
    )
    key = plan_key(
        comm.program, MACHINE, [2, 4], [Library.MPI, Library.IPC],
        stripe=1, ring=1, pipeline=pipeline, elem_bytes=4,
        dtype_name="float32",
    )
    return key, CachedPlan(comm.schedule, comm.timing, 1.0)


def test_same_key_concurrent_disk_stores_never_corrupt(tmp_path):
    """Two caches sharing a disk dir, hammering the same keys, stay clean.

    This is the plan-service topology: several PlanCache instances in one
    process pointed at one directory.  Pre-fix, their shared pid-named
    temp file interleaves two ``np.savez`` streams; the renamed archive is
    corrupt, which shows up either as writer disk errors or as a fresh
    reader failing to load the key.
    """
    disk = tmp_path / "shared"
    writers = [PlanCache(disk_dir=disk) for _ in range(2)]
    plans = [_plan_and_key(tag=i) for i in range(3)]
    rounds = 6
    barrier = threading.Barrier(2 * len(plans))
    failures: list[BaseException] = []

    def hammer(cache: PlanCache, key, plan):
        try:
            for _ in range(rounds):
                barrier.wait(timeout=30)
                cache.put(key, plan)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(cache, key, plan))
        for cache in writers
        for key, plan in plans
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    assert sum(c.stats.disk_errors for c in writers) == 0

    reader = PlanCache(disk_dir=disk)
    for key, plan in plans:
        loaded = reader.get(key)
        assert loaded is not None, f"key {key.digest[:12]} failed to load"
        assert len(loaded.schedule) == len(plan.schedule)
        np.testing.assert_array_equal(
            loaded.schedule.src, plan.schedule.src
        )
        assert loaded.timing.elapsed == plan.timing.elapsed
    assert reader.stats.disk_errors == 0


def test_threaded_get_put_internal_consistency(tmp_path):
    """Mixed get/put traffic from many threads keeps the LRU invariants."""
    cache = PlanCache(capacity=4, disk_dir=tmp_path / "d")
    plans = [_plan_and_key(count=1 << 8, pipeline=2, tag=i) for i in range(8)]
    failures: list[BaseException] = []

    def worker(offset: int):
        try:
            for i in range(40):
                key, plan = plans[(offset + i) % len(plans)]
                if i % 3 == 0:
                    cache.put(key, plan)
                else:
                    cache.get(key)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    assert len(cache) <= 4
    expected_max = max(plan_nbytes(p) for _, p in plans) * 4
    assert 0 <= cache.total_bytes() <= expected_max
    stats = cache.stats
    assert stats.lookups == stats.memory_hits + stats.disk_hits + stats.misses


def test_eviction_accounting_matches_byte_budget():
    """Byte-budget evictions keep exact accounting (just-inserted survives)."""
    small = _plan_and_key(count=1 << 8, pipeline=2, tag=0)
    budget = plan_nbytes(small[1]) + 1  # roughly one small plan
    cache = PlanCache(capacity=64, max_total_bytes=budget)
    keys = [_plan_and_key(count=1 << 8, pipeline=2, tag=i) for i in range(4)]
    for key, plan in keys:
        cache.put(key, plan)
        # The just-inserted plan always survives, even over budget.
        assert cache.get(key) is not None
    assert cache.stats.evictions >= 3
    assert cache.total_bytes() <= max(budget, plan_nbytes(keys[-1][1]))
