"""User-facing validation: race detection and bad configurations.

The paper: "If there are any race conditions between primitives the result
is undefined" (Section 3.2).  This reproduction detects overlapping writes
during synthesis and raises instead of silently producing garbage.
"""

from __future__ import annotations

import pytest

from repro import Communicator, Library, ReduceOp
from repro.errors import (
    HierarchyError,
    InitializationError,
    LibraryAssignmentError,
    RaceConditionError,
)
from repro.machine.machines import generic


@pytest.fixture
def machine():
    return generic(2, 2, 1, name="races")


class TestRaceDetection:
    def test_two_multicasts_same_destination(self, machine):
        """Two roots broadcasting into the same recv region: undefined."""
        comm = Communicator(machine)
        send = comm.alloc(16)
        recv = comm.alloc(16)
        comm.add_multicast(send, recv, 16, 0, [2, 3])
        comm.add_multicast(send, recv, 16, 1, [2, 3])
        with pytest.raises(RaceConditionError):
            comm.init(hierarchy=[4], library=[Library.MPI])

    def test_partially_overlapping_multicasts(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(32)
        recv = comm.alloc(32)
        comm.add_multicast(send, recv, 20, 0, [2])
        comm.add_multicast(send[16:], recv[16:], 16, 1, [2])
        with pytest.raises(RaceConditionError):
            comm.init(hierarchy=[4], library=[Library.MPI])

    def test_disjoint_regions_no_race(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(32)
        recv = comm.alloc(32)
        comm.add_multicast(send, recv, 16, 0, [2])
        comm.add_multicast(send[16:], recv[16:], 16, 1, [2])
        comm.init(hierarchy=[4], library=[Library.MPI])  # no raise

    def test_same_region_different_ranks_no_race(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(16)
        recv = comm.alloc(16)
        comm.add_multicast(send, recv, 16, 0, [2])
        comm.add_multicast(send, recv, 16, 1, [3])
        comm.init(hierarchy=[4], library=[Library.MPI])  # no raise

    def test_fence_resolves_race(self, machine):
        """The same conflicting pair is legal once ordered by a fence."""
        comm = Communicator(machine)
        send = comm.alloc(16)
        recv = comm.alloc(16)
        comm.add_multicast(send, recv, 16, 0, [2, 3])
        comm.add_fence()
        comm.add_multicast(send, recv, 16, 1, [2, 3])
        comm.init(hierarchy=[4], library=[Library.MPI])  # no raise

    def test_reduction_vs_multicast_conflict(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(16)
        recv = comm.alloc(16)
        comm.add_reduction(send, recv, 16, [0, 1, 2, 3], 2, ReduceOp.SUM)
        comm.add_multicast(send, recv, 16, 3, [2])
        with pytest.raises(RaceConditionError):
            comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])


class TestInitValidation:
    def _comm(self, machine):
        comm = Communicator(machine)
        send = comm.alloc(16)
        recv = comm.alloc(16)
        comm.add_multicast(send, recv, 16, 0, [1, 2, 3])
        return comm

    def test_hierarchy_product_mismatch(self, machine):
        with pytest.raises(HierarchyError):
            self._comm(machine).init(hierarchy=[3], library=[Library.MPI])

    def test_library_vector_length(self, machine):
        with pytest.raises(LibraryAssignmentError):
            self._comm(machine).init(hierarchy=[2, 2], library=[Library.MPI])

    def test_ipc_cannot_cross_nodes(self, machine):
        with pytest.raises(LibraryAssignmentError):
            self._comm(machine).init(hierarchy=[2, 2],
                                     library=[Library.IPC, Library.IPC])

    def test_negative_stripe(self, machine):
        with pytest.raises(InitializationError):
            self._comm(machine).init(hierarchy=[4], library=[Library.MPI],
                                     stripe=-1)

    def test_ring_without_matching_factor(self, machine):
        with pytest.raises(InitializationError):
            self._comm(machine).init(hierarchy=[2, 2],
                                     library=[Library.MPI, Library.IPC],
                                     ring=4)
