"""Tests for the schedule builder: fence dependencies and race detection."""

from __future__ import annotations

import pytest

from repro.core.ops import ReduceOp
from repro.core.schedule import P2POp, Schedule, ScheduleBuilder
from repro.errors import RaceConditionError, ScheduleError


class TestBasicEmission:
    def test_send_and_copy_uids_sequential(self):
        b = ScheduleBuilder(4)
        u0 = b.send(0, 1, ("a", 0), ("b", 0), 8, level=0)
        u1 = b.copy(1, ("b", 0), ("c", 0), 8, deps=(u0,))
        assert (u0, u1) == (0, 1)
        sched = b.build()
        assert len(sched) == 2
        assert sched.ops[1].deps == (0,)

    def test_send_to_self_rejected(self):
        b = ScheduleBuilder(2)
        with pytest.raises(ScheduleError):
            b.send(1, 1, ("a", 0), ("b", 0), 4, level=0)

    def test_zero_count_rejected(self):
        b = ScheduleBuilder(2)
        with pytest.raises(ScheduleError):
            b.send(0, 1, ("a", 0), ("b", 0), 0, level=0)

    def test_scratch_names_unique(self):
        b = ScheduleBuilder(2)
        loc1 = b.alloc_scratch(0, 16)
        loc2 = b.alloc_scratch(1, 32)
        assert loc1[0] != loc2[0]
        sched = b.build()
        assert sched.scratch[loc1[0]] == {0: 16}
        assert sched.scratch[loc2[0]] == {1: 32}


class TestFenceDependencies:
    def test_raw_across_fence(self):
        """An op after a fence depends on the prior writer of what it reads."""
        b = ScheduleBuilder(4)
        w = b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        b.end_step()
        r = b.send(1, 2, ("buf", 0), ("y", 0), 8, level=0)
        sched = b.build()
        assert w in sched.ops[r].deps

    def test_fine_grained_not_barrier(self):
        """Figure 4's property: M0 depends on R0, not on R1."""
        b = ScheduleBuilder(4)
        r0 = b.send(0, 1, ("s", 0), ("acc", 0), 8, level=0)
        r1 = b.send(0, 2, ("s", 8), ("acc", 8), 8, level=0)
        b.end_step()
        m0 = b.send(1, 3, ("acc", 0), ("out", 0), 8, level=0)
        sched = b.build()
        assert r0 in sched.ops[m0].deps
        assert r1 not in sched.ops[m0].deps

    def test_partial_overlap_creates_dep(self):
        b = ScheduleBuilder(4)
        w = b.send(0, 1, ("x", 0), ("buf", 0), 10, level=0)
        b.end_step()
        r = b.send(1, 2, ("buf", 5), ("y", 0), 10, level=0)
        sched = b.build()
        assert w in sched.ops[r].deps

    def test_disjoint_ranges_no_dep(self):
        b = ScheduleBuilder(4)
        w = b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        b.end_step()
        r = b.send(1, 2, ("buf", 8), ("y", 0), 8, level=0)
        sched = b.build()
        assert w not in sched.ops[r].deps

    def test_different_rank_same_offset_no_dep(self):
        """Buffers are per-rank: rank 1's write doesn't order rank 2's read."""
        b = ScheduleBuilder(4)
        w = b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        b.end_step()
        r = b.send(2, 3, ("buf", 0), ("y", 0), 8, level=0)
        sched = b.build()
        assert w not in sched.ops[r].deps

    def test_war_across_fence(self):
        """Overwriting a range read in the previous step orders after readers."""
        b = ScheduleBuilder(4)
        reader = b.send(1, 2, ("buf", 0), ("y", 0), 8, level=0)
        b.end_step()
        writer = b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        sched = b.build()
        assert reader in sched.ops[writer].deps

    def test_waw_across_fence(self):
        b = ScheduleBuilder(4)
        w1 = b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        b.end_step()
        w2 = b.send(2, 1, ("y", 0), ("buf", 0), 8, level=0)
        sched = b.build()
        assert w1 in sched.ops[w2].deps

    def test_reduce_op_reads_destination(self):
        """An accumulate reads its destination, so RAW applies to it too."""
        b = ScheduleBuilder(4)
        w = b.send(0, 1, ("x", 0), ("acc", 0), 8, level=0)
        b.end_step()
        acc = b.send(2, 1, ("y", 0), ("acc", 0), 8, level=0,
                     reduce_op=ReduceOp.SUM)
        sched = b.build()
        assert w in sched.ops[acc].deps


class TestRaceDetection:
    def test_concurrent_overlapping_writes_race(self):
        """Two same-step ops writing the same bytes -> undefined -> error."""
        b = ScheduleBuilder(4)
        b.send(0, 2, ("x", 0), ("buf", 0), 8, level=0)
        with pytest.raises(RaceConditionError):
            b.send(1, 2, ("y", 0), ("buf", 4), 8, level=0)

    def test_ordered_overlapping_writes_allowed(self):
        b = ScheduleBuilder(4)
        u = b.send(0, 2, ("x", 0), ("buf", 0), 8, level=0)
        b.send(1, 2, ("y", 0), ("buf", 0), 8, level=0, deps=(u,),
               reduce_op=ReduceOp.SUM)
        assert len(b.build()) == 2

    def test_read_of_concurrent_write_race(self):
        b = ScheduleBuilder(4)
        b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)
        with pytest.raises(RaceConditionError):
            b.send(1, 2, ("buf", 0), ("y", 0), 8, level=0)

    def test_write_under_concurrent_read_race(self):
        b = ScheduleBuilder(4)
        b.send(1, 2, ("buf", 0), ("y", 0), 8, level=0)
        with pytest.raises(RaceConditionError):
            b.send(0, 1, ("x", 0), ("buf", 0), 8, level=0)

    def test_accumulate_chain_no_false_positive(self):
        """Serialized accumulates into one region must not be flagged."""
        b = ScheduleBuilder(8)
        last = b.copy(0, ("s", 0), ("acc", 0), 8)
        for src in range(1, 5):
            last = b.send(src, 0, ("s", 0), ("acc", 0), 8, level=0,
                          reduce_op=ReduceOp.SUM, deps=(last,))
        assert len(b.build()) == 5

    def test_concurrent_reads_fine(self):
        b = ScheduleBuilder(4)
        b.send(0, 1, ("s", 0), ("a", 0), 8, level=0)
        b.send(0, 2, ("s", 0), ("b", 0), 8, level=0)
        b.send(0, 3, ("s", 0), ("c", 0), 8, level=0)
        assert len(b.build()) == 3


class TestScheduleValidation:
    def test_forward_dep_rejected(self):
        sched = Schedule(2, [P2POp(0, 0, 1, "a", 0, "b", 0, 4, None, 0, 0, 0, (1,))], {})
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_wrong_uid_order_rejected(self):
        sched = Schedule(2, [P2POp(1, 0, 1, "a", 0, "b", 0, 4, None, 0, 0, 0, ())], {})
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_stats(self):
        b = ScheduleBuilder(4)
        u = b.send(0, 1, ("a", 0), ("b", 0), 6, level=0)
        b.copy(1, ("b", 0), ("c", 0), 4, deps=(u,))
        sched = b.build()
        assert sched.total_elements() == 10
        mat = sched.comm_matrix()
        assert mat[0][1] == 6
        assert mat[1][1] == 0  # local copies excluded
