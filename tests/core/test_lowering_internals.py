"""White-box tests of the lowering internals (stripe peers, accumulators,
position matching, scratch accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, Library
from repro.core.factorize import Accumulator, Lowering, split_even
from repro.core.ops import ReduceOp
from repro.core.plan import OptimizationPlan
from repro.core.schedule import ScheduleBuilder
from repro.machine.machines import frontier, generic
from repro.simulator.executor import execute
from repro.simulator.process import MemoryPool


def _plan(machine, hierarchy, libs, **kw):
    return OptimizationPlan.create(machine, hierarchy, libs, **kw)


class TestStripePeers:
    def test_rotation_keeps_root_first(self):
        machine = generic(2, 4, 4, name="sp")
        plan = _plan(machine, [2, 4], [Library.MPI, Library.IPC], stripe=4)
        low = Lowering(plan)
        assert low._stripe_peers(0, 4) == [0, 1, 2, 3]
        assert low._stripe_peers(2, 4) == [2, 3, 0, 1]
        assert low._stripe_peers(5, 3) == [5, 6, 7]

    def test_peers_stay_in_node(self):
        machine = generic(3, 4, 2, name="sp2")
        plan = _plan(machine, [3, 4], [Library.MPI, Library.IPC], stripe=4)
        low = Lowering(plan)
        for root in range(machine.world_size):
            peers = low._stripe_peers(root, 4)
            assert all(machine.node_of(x) == machine.node_of(root) for x in peers)

    def test_effective_stripe_capped_by_count(self):
        machine = generic(2, 4, 4, name="sp3")
        plan = _plan(machine, [2, 4], [Library.MPI, Library.IPC], stripe=4)
        low = Lowering(plan)
        assert low._effective_stripe(2) == 2
        assert low._effective_stripe(100) == 4


class TestPositionMatch:
    def test_same_offset_across_blocks(self):
        machine = generic(4, 4, 4, name="pm")
        plan = _plan(machine, [4, 4], [Library.MPI, Library.IPC])
        low = Lowering(plan)
        # Rank 5 (block 1, offset 1) matched into block 3 -> rank 13.
        assert low._position_match(5, 3, 1) == 13
        assert low._position_match(0, 2, 1) == 8

    def test_multi_node_blocks(self):
        machine = generic(4, 3, 1, name="pm2")
        plan = _plan(machine, [2, 2, 3],
                     [Library.MPI, Library.MPI, Library.IPC])
        low = Lowering(plan)
        # Depth-1 blocks span 6 ranks (two nodes); offset is preserved.
        assert low._position_match(4, 1, 1) == 10


class TestAccumulator:
    def test_first_contribution_initializes(self):
        b = ScheduleBuilder(4)
        acc = Accumulator(0, ("acc", 0), 8, ReduceOp.SUM)
        acc.contribute_local(b, ("send", 0))
        assert acc.initialized
        sched = b.build()
        assert sched.ops[0].reduce_op is None  # plain write, not accumulate

    def test_later_contributions_accumulate_and_chain(self):
        b = ScheduleBuilder(4)
        acc = Accumulator(0, ("acc", 0), 8, ReduceOp.SUM)
        acc.contribute_local(b, ("send", 0))
        acc.contribute_remote(b, 1, ("send", 0), level=0)
        acc.contribute_remote(b, 2, ("send", 0), level=0)
        sched = b.build()
        assert sched.ops[1].reduce_op is ReduceOp.SUM
        assert sched.ops[0].uid in sched.ops[1].deps
        assert sched.ops[1].uid in sched.ops[2].deps

    def test_in_place_skips_copy(self):
        b = ScheduleBuilder(4)
        acc = Accumulator(0, ("buf", 0), 8, ReduceOp.SUM)
        acc.contribute_local(b, ("buf", 0))  # same location: no op emitted
        assert acc.initialized
        assert len(b.build()) == 0

    def test_functional_result(self):
        b = ScheduleBuilder(4)
        acc = Accumulator(0, ("acc", 0), 4, ReduceOp.SUM)
        acc.contribute_local(b, ("send", 0))
        for r in (1, 2, 3):
            acc.contribute_remote(b, r, ("send", 0), level=0)
        sched = b.build()
        pool = MemoryPool(4)
        pool.alloc_symmetric("send", 4)
        pool.alloc_symmetric("acc", 4)
        for r in range(4):
            pool.array(r, "send")[:] = r + 1
        execute(sched, pool)
        assert pool.array(0, "acc").tolist() == [10.0] * 4


class TestScratchAccounting:
    def test_reduction_allocates_scratch_on_uploaders(self):
        machine = frontier(nodes=2)
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(64, "sendbuf")
        recv = comm.alloc(64, "recvbuf")
        comm.add_reduction(send, recv, 64, list(range(16)), 0, ReduceOp.SUM)
        comm.init(hierarchy=[2, 4, 2],
                  library=[Library.MPI, Library.IPC, Library.IPC])
        assert comm.schedule.scratch  # intermediate partials need staging
        assert comm.schedule.max_scratch_elements() > 0

    def test_flat_multicast_needs_no_scratch(self):
        machine = generic(2, 2, 1, name="ns")
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(16, "sendbuf")
        recv = comm.alloc(16, "recvbuf")
        comm.add_multicast(send, recv, 16, 0, [1, 2, 3])
        comm.init(hierarchy=[4], library=[Library.MPI])
        assert not comm.schedule.scratch


class TestSplitEvenEdges:
    def test_zero_parts_clamped(self):
        assert split_even(5, 0) == [(0, 5)]

    def test_zero_count(self):
        assert split_even(0, 4) == []

    @pytest.mark.parametrize("count,parts", [(1, 1), (1, 9), (97, 13)])
    def test_sizes_differ_by_at_most_one(self, count, parts):
        sizes = [c for _, c in split_even(count, parts)]
        assert max(sizes) - min(sizes) <= 1
