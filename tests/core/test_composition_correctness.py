"""End-to-end correctness: every collective x optimization configuration.

This is the central integration suite: compose each Table 2 collective,
lower it under a grid of optimization plans (tree depths, striping, ring,
pipelining, mixed libraries), execute functionally, and compare against
numpy reference semantics.  If factorization, striping, rings, pipelining,
or the fence dependency analysis mis-handle any case, data lands in the
wrong place and these tests fail.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import check_collective, make_input

import repro
from repro import Communicator, Library
from repro.core.composition import COLLECTIVES, compose
from repro.core.ops import ReduceOp
from repro.machine.machines import frontier, generic, perlmutter

COUNT = 24  # elements per chunk: small but not trivially aligned


def _run_case(machine, name, hierarchy, libraries, *, ring=1, stripe=1,
              pipeline=1, count=COUNT, seed=0, op=ReduceOp.SUM):
    comm = Communicator(machine)
    compose(comm, name, count) if name != "reduce_scatter" or op is ReduceOp.SUM \
        else compose(comm, name, count, op=op)
    comm.init(hierarchy=hierarchy, library=libraries, ring=ring,
              stripe=stripe, pipeline=pipeline)
    rng = np.random.default_rng(seed)
    data = make_input(name, machine.world_size, count, rng)
    check_collective(comm, name, data, count, op=op)
    return comm


ALL_NAMES = sorted(COLLECTIVES)


class TestFlatLowering:
    """hierarchy = {p}: the degenerate direct case must still be correct."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_flat(self, name):
        machine = generic(2, 3, 1, name="flat")
        _run_case(machine, name, [6], [Library.MPI])


class TestTwoLevelTree:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_nodes_by_gpus(self, name):
        machine = generic(2, 3, 1, name="t2")
        _run_case(machine, name, [2, 3], [Library.MPI, Library.IPC])


class TestDeepTree:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_binary_tree(self, name):
        machine = generic(4, 4, 2, name="t4")
        _run_case(machine, name, [2, 2, 4],
                  [Library.NCCL, Library.NCCL, Library.IPC])

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_dual_die_machine(self, name):
        machine = frontier(nodes=2)  # 16 GPUs, {2, 4, 2}
        _run_case(machine, name, [2, 4, 2],
                  [Library.MPI, Library.IPC, Library.IPC])


class TestStriping:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_full_stripe(self, name):
        machine = generic(2, 4, 4, name="s4")
        _run_case(machine, name, [2, 4], [Library.NCCL, Library.IPC], stripe=4)

    @pytest.mark.parametrize("name", ["broadcast", "reduce", "all_reduce"])
    def test_partial_stripe(self, name):
        machine = generic(2, 4, 2, name="s2")
        _run_case(machine, name, [2, 4], [Library.NCCL, Library.IPC], stripe=2)

    def test_stripe_wider_than_payload(self):
        machine = generic(2, 4, 4, name="sw")
        _run_case(machine, "broadcast", [2, 4], [Library.NCCL, Library.IPC],
                  stripe=4, count=1)


class TestRing:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_ring_over_nodes(self, name):
        machine = generic(4, 3, 1, name="r4")
        _run_case(machine, name, [4, 3], [Library.MPI, Library.IPC],
                  ring=4, stripe=3)

    @pytest.mark.parametrize("name", ["broadcast", "reduce", "all_reduce"])
    def test_ring_on_dual_die(self, name):
        machine = frontier(nodes=4)
        _run_case(machine, name, [4, 4, 2],
                  [Library.MPI, Library.IPC, Library.IPC],
                  ring=4, stripe=8)


class TestPipelining:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_pipelined_tree(self, name):
        machine = generic(2, 3, 1, name="p")
        _run_case(machine, name, [2, 3], [Library.MPI, Library.IPC],
                  pipeline=4)

    @pytest.mark.parametrize("name", ["broadcast", "all_reduce", "all_to_all"])
    def test_pipelined_striped_ring(self, name):
        machine = generic(4, 4, 4, name="psr")
        _run_case(machine, name, [4, 4], [Library.NCCL, Library.IPC],
                  ring=4, stripe=4, pipeline=8)

    def test_pipeline_deeper_than_payload(self):
        machine = generic(2, 2, 1, name="pd")
        _run_case(machine, "all_reduce", [2, 2], [Library.MPI, Library.IPC],
                  pipeline=64, count=3)


class TestTable5Configurations:
    """The exact per-system configurations used in Figure 8."""

    def test_perlmutter_tree(self):
        machine = perlmutter(nodes=4)
        for name in ALL_NAMES:
            _run_case(machine, name, [2, 2, 4],
                      [Library.NCCL, Library.NCCL, Library.IPC],
                      stripe=4, pipeline=2)

    def test_perlmutter_ring(self):
        machine = perlmutter(nodes=4)
        for name in ("broadcast", "reduce"):
            _run_case(machine, name, [4, 4], [Library.NCCL, Library.IPC],
                      ring=4, stripe=4, pipeline=4)


class TestReduceOps:
    @pytest.mark.parametrize("op", [ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN,
                                    ReduceOp.PROD])
    def test_all_reduce_ops(self, op):
        machine = generic(2, 2, 1, name="ops")
        comm = Communicator(machine)
        compose(comm, "all_reduce", COUNT, op=op)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC],
                  stripe=2, pipeline=2)
        rng = np.random.default_rng(7)
        data = make_input("all_reduce", 4, COUNT, rng)
        if op is ReduceOp.PROD:
            data = np.clip(np.abs(data), 1, 2)  # avoid overflow/zeros
        check_collective(comm, "all_reduce", data, COUNT, op=op)

    def test_integer_dtype(self):
        machine = generic(2, 2, 1, name="int")
        comm = Communicator(machine, dtype=np.int64)
        compose(comm, "reduce", COUNT)
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(3)
        data = rng.integers(-100, 100, size=(4, 4 * COUNT)).astype(np.int64)
        check_collective(comm, "reduce", data, COUNT)


class TestNonUniformRoots:
    @pytest.mark.parametrize("root", [0, 1, 5, 11])
    def test_broadcast_roots(self, root):
        machine = generic(4, 3, 1, name="roots")
        comm = Communicator(machine)
        compose(comm, "broadcast", COUNT, root=root)
        comm.init(hierarchy=[4, 3], library=[Library.MPI, Library.IPC],
                  ring=4, stripe=3, pipeline=2)
        rng = np.random.default_rng(root)
        data = make_input("broadcast", 12, COUNT, rng)
        check_collective(comm, "broadcast", data, COUNT, root=root)

    @pytest.mark.parametrize("root", [0, 4, 7])
    def test_reduce_roots(self, root):
        machine = generic(4, 2, 1, name="rroots")
        comm = Communicator(machine)
        compose(comm, "reduce", COUNT, root=root)
        comm.init(hierarchy=[2, 2, 2],
                  library=[Library.MPI, Library.MPI, Library.IPC], stripe=2)
        rng = np.random.default_rng(root)
        data = make_input("reduce", 8, COUNT, rng)
        check_collective(comm, "reduce", data, COUNT, root=root)


class TestMultiStepForms:
    """Table 2 (Multiple): alternative multi-step compositions."""

    def test_broadcast_as_allgather_scatter(self):
        from repro.core.composition import compose_broadcast_multi_step

        machine = generic(2, 3, 1, name="ms")
        comm = Communicator(machine)
        compose_broadcast_multi_step(comm, COUNT)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC],
                  stripe=2, pipeline=2)
        rng = np.random.default_rng(1)
        data = make_input("broadcast", 6, COUNT, rng)
        check_collective(comm, "broadcast", data, COUNT)

    def test_reduce_as_gather_reduce_scatter(self):
        from repro.core.composition import compose_reduce_multi_step

        machine = generic(2, 3, 1, name="ms2")
        comm = Communicator(machine)
        compose_reduce_multi_step(comm, COUNT)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(2)
        data = make_input("reduce", 6, COUNT, rng)
        check_collective(comm, "reduce", data, COUNT)

    def test_all_gather_as_broadcast_gather(self):
        from repro.core.composition import compose_all_gather_multi_step

        machine = generic(2, 3, 1, name="ms3")
        comm = Communicator(machine)
        compose_all_gather_multi_step(comm, COUNT)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(3)
        data = make_input("all_gather", 6, COUNT, rng)
        check_collective(comm, "all_gather", data, COUNT)

    def test_reduce_scatter_as_scatter_reduce(self):
        from repro.core.composition import compose_reduce_scatter_multi_step

        machine = generic(2, 3, 1, name="ms4")
        comm = Communicator(machine)
        compose_reduce_scatter_multi_step(comm, COUNT)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(4)
        data = make_input("reduce_scatter", 6, COUNT, rng)
        check_collective(comm, "reduce_scatter", data, COUNT)

    def test_single_step_all_reduce(self):
        machine = generic(2, 3, 1, name="ss")
        comm = Communicator(machine)
        compose(comm, "all_reduce", COUNT, multi_step=False)
        comm.init(hierarchy=[2, 3], library=[Library.MPI, Library.IPC])
        rng = np.random.default_rng(5)
        data = make_input("all_reduce", 6, COUNT, rng)
        check_collective(comm, "all_reduce", data, COUNT)
