"""Tests for the autotuner extension."""

from __future__ import annotations

import pytest

import repro
from repro import Library, machines
from repro.core.autotune import Candidate, TuneResult, hierarchy_candidates, tune
from repro.machine.machines import generic

PAYLOAD_COUNT = (1 << 24) // (16 * 4)  # 16 MB total on p=16


def _bcast(count=PAYLOAD_COUNT):
    def fn(comm):
        repro.compose(comm, "broadcast", count)
    return fn


class TestHierarchyCandidates:
    def test_includes_flat_and_physical(self):
        m = machines.perlmutter(4)
        cands = hierarchy_candidates(m)
        assert [16] in cands
        assert [4, 4] in cands
        assert [2, 2, 4] in cands

    def test_multi_level_nodes_get_merged_variant(self):
        m = machines.frontier(4)
        cands = hierarchy_candidates(m)
        assert [4, 4, 2] in cands  # physical
        assert [4, 8] in cands  # die level merged away

    def test_single_node(self):
        m = machines.frontier(1)
        cands = hierarchy_candidates(m)
        assert [8] in cands
        assert [4, 2] in cands

    def test_no_duplicates(self):
        m = machines.perlmutter(2)
        cands = [tuple(c) for c in hierarchy_candidates(m)]
        assert len(cands) == len(set(cands))


class TestTune:
    def test_finds_ring_for_broadcast_on_perlmutter(self):
        """The tuner rediscovers Table 5: ring {4,4}, stripe 4, deep pipeline."""
        m = machines.perlmutter(4)
        res = tune(_bcast(), m, pipelines=(1, 8, 32))
        best = res.best
        assert best.ring == 4
        assert best.stripe == 4
        assert best.pipeline >= 8
        assert list(best.hierarchy) == [4, 4]

    def test_flat_is_never_best_on_multinode(self):
        m = machines.perlmutter(4)
        res = tune(_bcast(), m, pipelines=(1, 8))
        assert list(res.best.hierarchy) != [16]
        flat = [c for c in res.candidates if list(c.hierarchy) == [16]]
        assert flat and all(c.seconds > res.best.seconds for c in flat)

    def test_candidates_sorted(self):
        m = generic(2, 2, 1, name="tn")
        res = tune(_bcast((1 << 20) // 16), m, pipelines=(1, 4))
        times = [c.seconds for c in res.candidates]
        assert times == sorted(times)

    def test_ipc_only_within_nodes(self):
        m = machines.perlmutter(4)
        res = tune(_bcast(), m, pipelines=(1,))
        for cand in res.candidates:
            # Any IPC level must sit at an intra-node depth.
            block = m.world_size
            for factor, lib in zip(cand.hierarchy, cand.libraries):
                if lib is Library.IPC:
                    assert block <= m.gpus_per_node
                block //= factor

    def test_render_and_kwargs(self):
        m = generic(2, 2, 1, name="tr")
        res = tune(_bcast((1 << 20) // 16), m, pipelines=(1,))
        text = res.render(2)
        assert "configurations evaluated" in text
        kwargs = res.best.init_kwargs()
        assert set(kwargs) == {"hierarchy", "library", "stripe", "ring", "pipeline"}

    def test_explicit_inter_library(self):
        m = machines.frontier(2)
        res = tune(_bcast((1 << 22) // 16), m, inter_library=Library.RCCL,
                   pipelines=(1,))
        assert any(Library.RCCL in c.libraries for c in res.candidates)
