"""Tests for the latency-oriented compositions (Section 6.5 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, Library, machines
from repro.core.latency import (
    adaptive_all_reduce,
    compose_all_reduce_recursive_doubling,
    compose_broadcast_binomial,
    compose_reduce_binomial,
    crossover_bytes,
    latency_plan,
)
from repro.core.ops import ReduceOp
from repro.errors import CompositionError
from repro.machine.machines import generic

COUNT = 64


def _data(p, count, seed=0):
    return np.random.default_rng(seed).integers(
        -9, 10, size=(p, count)).astype(np.float32)


class TestBinomialBroadcast:
    @pytest.mark.parametrize("p_shape", [(2, 2), (2, 3), (4, 4), (3, 5)])
    @pytest.mark.parametrize("root", [0, 1])
    def test_correct_any_p(self, p_shape, root):
        nodes, g = p_shape
        machine = generic(nodes, g, 1, name="bb")
        comm = Communicator(machine)
        send, recv = compose_broadcast_binomial(comm, COUNT, root=root)
        comm.init(**latency_plan(machine))
        data = _data(machine.world_size, COUNT)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        np.testing.assert_array_equal(out, np.tile(data[root],
                                                   (machine.world_size, 1)))

    def test_log_rounds(self):
        machine = generic(4, 4, 1, name="bb2")
        comm = Communicator(machine, materialize=False)
        compose_broadcast_binomial(comm, COUNT)
        comm.init(**latency_plan(machine))
        # Placement + 4 doubling rounds for p=16.
        assert comm.program.num_steps == 5

    def test_faster_than_pipelined_tree_for_tiny_messages(self):
        machine = machines.perlmutter(nodes=4)
        tiny = 16  # 64 bytes/rank
        lat = Communicator(machine, materialize=False)
        compose_broadcast_binomial(lat, tiny)
        lat.init(**latency_plan(machine))
        t_lat = lat.run()

        from repro.bench.configs import ring_config

        thr = Communicator(machine, materialize=False)
        send = thr.alloc(tiny, "s")
        recv = thr.alloc(tiny, "r")
        thr.add_multicast(send, recv, tiny, 0, list(range(16)))
        thr.init(**ring_config(machine, pipeline=32).init_kwargs())
        t_thr = thr.run()
        assert t_lat < t_thr


class TestBinomialReduce:
    @pytest.mark.parametrize("root", [0, 3])
    def test_correct(self, root):
        machine = generic(2, 3, 1, name="br")
        comm = Communicator(machine)
        send, recv = compose_reduce_binomial(comm, COUNT, root=root)
        comm.init(**latency_plan(machine))
        data = _data(6, COUNT, seed=1)
        comm.set_all(send, data)
        comm.run()
        np.testing.assert_array_equal(comm.gather_all(recv)[root],
                                      data.sum(axis=0))

    def test_max_op(self):
        machine = generic(2, 2, 1, name="br2")
        comm = Communicator(machine)
        send, recv = compose_reduce_binomial(comm, COUNT, op=ReduceOp.MAX)
        comm.init(**latency_plan(machine))
        data = _data(4, COUNT, seed=2)
        comm.set_all(send, data)
        comm.run()
        np.testing.assert_array_equal(comm.gather_all(recv)[0],
                                      data.max(axis=0))


class TestRecursiveDoubling:
    @pytest.mark.parametrize("shape", [(2, 2), (4, 4), (2, 8)])
    def test_correct_power_of_two(self, shape):
        nodes, g = shape
        machine = generic(nodes, g, 1, name="rd")
        comm = Communicator(machine)
        send, recv = compose_all_reduce_recursive_doubling(comm, COUNT)
        comm.init(**latency_plan(machine))
        data = _data(machine.world_size, COUNT, seed=3)
        comm.set_all(send, data)
        comm.run()
        out = comm.gather_all(recv)
        np.testing.assert_array_equal(
            out, np.tile(data.sum(axis=0), (machine.world_size, 1))
        )

    def test_non_power_of_two_rejected(self):
        machine = generic(2, 3, 1, name="rd2")
        comm = Communicator(machine)
        with pytest.raises(CompositionError):
            compose_all_reduce_recursive_doubling(comm, COUNT)

    def test_log_rounds(self):
        machine = generic(4, 4, 1, name="rd3")
        comm = Communicator(machine, materialize=False)
        compose_all_reduce_recursive_doubling(comm, COUNT)
        comm.init(**latency_plan(machine))
        assert comm.program.num_steps == 5  # placement + log2(16)


class TestAdaptiveDispatch:
    def test_tiny_payload_takes_latency_path(self):
        machine = machines.perlmutter(nodes=4)
        comm, send, recv, kind = adaptive_all_reduce(machine, count=4)
        assert kind == "latency"
        data = _data(16, 16 * 4, seed=4)
        comm.set_all(send, data)
        comm.run()
        np.testing.assert_array_equal(comm.gather_all(recv)[5],
                                      data.sum(axis=0))

    def test_large_payload_takes_throughput_path(self):
        machine = machines.perlmutter(nodes=4)
        # 64 MB payload: an order of magnitude past any sane crossover.
        comm, send, recv, kind = adaptive_all_reduce(machine, count=1 << 20)
        assert kind == "throughput"

    def test_crossover_positive_for_multinode(self):
        machine = machines.perlmutter(nodes=4)
        assert crossover_bytes(machine) > 0

    def test_crossover_zero_for_single_rank(self):
        machine = generic(1, 1, 1, name="solo")
        assert crossover_bytes(machine) == 0

    def test_adaptive_latency_beats_throughput_at_small_size(self):
        machine = machines.perlmutter(nodes=4)
        lat_comm, *_ = adaptive_all_reduce(machine, count=4)
        from repro.bench.configs import best_config
        from repro.core.composition import compose_all_reduce

        thr_comm = Communicator(machine, materialize=False)
        compose_all_reduce(thr_comm, 4)
        thr_comm.init(**best_config(machine, "all_reduce").init_kwargs())
        assert lat_comm.run() < thr_comm.run()
