"""Tests for symmetric buffer handles and views."""

from __future__ import annotations

import pytest

from repro.core.buffers import BufferHandle, BufferView, as_view
from repro.errors import CompositionError


class TestBufferHandle:
    def test_slicing_mirrors_pointer_arithmetic(self):
        buf = BufferHandle("send", 100)
        view = buf[25:]
        assert view.offset == 25
        assert view.capacity == 75

    def test_integer_index_is_offset(self):
        buf = BufferHandle("send", 10)
        assert buf[3].offset == 3

    def test_full_view_default(self):
        buf = BufferHandle("b", 8)
        assert buf.view().offset == 0
        assert buf.view().capacity == 8

    def test_strided_slice_rejected(self):
        buf = BufferHandle("b", 8)
        with pytest.raises(CompositionError):
            buf[0:8:2]

    def test_negative_count_rejected(self):
        with pytest.raises(CompositionError):
            BufferHandle("b", -1)

    def test_backward_slice_rejected(self):
        buf = BufferHandle("b", 8)
        with pytest.raises(CompositionError):
            buf[5:3]


class TestBufferView:
    def test_shifted_accumulates_offsets(self):
        buf = BufferHandle("b", 100)
        v = buf[10:].shifted(5)
        assert v.offset == 15
        assert v.name == "b"

    def test_offset_beyond_capacity_rejected(self):
        buf = BufferHandle("b", 10)
        with pytest.raises(CompositionError):
            buf[11:]

    def test_offset_at_end_allowed_with_zero_capacity(self):
        buf = BufferHandle("b", 10)
        v = buf[10:]
        assert v.capacity == 0

    def test_check_capacity(self):
        buf = BufferHandle("b", 10)
        v = buf[4:]
        v.check_capacity(6, "ok")
        with pytest.raises(CompositionError):
            v.check_capacity(7, "too much")
        with pytest.raises(CompositionError):
            v.check_capacity(-1, "negative")

    def test_loc(self):
        buf = BufferHandle("b", 10)
        assert buf[3:].loc() == ("b", 3)


class TestAsView:
    def test_handle_coerced(self):
        buf = BufferHandle("b", 4)
        v = as_view(buf)
        assert isinstance(v, BufferView)
        assert v.offset == 0

    def test_view_passthrough(self):
        v = BufferHandle("b", 4)[1:]
        assert as_view(v) is v

    def test_garbage_rejected(self):
        with pytest.raises(CompositionError):
            as_view("not a buffer")
