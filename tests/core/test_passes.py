"""Pass pipeline: semantics preservation, templates, round-trip, opt passes.

The satellite contract of the pass-based lowering refactor:

* every pass preserves data-movement semantics — the functional executor
  produces identical buffers on randomized programs, on both committed
  machine models (Perlmutter and Delta, the systems whose tuned baselines
  are committed under ``benchmarks/output/``);
* the template-replication fast path of the pipelining pass emits exactly
  the same schedule as lowering every channel explicitly;
* the array <-> object round trip is lossless;
* the optional fusion/DCE passes change only pricing, never data movement.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import plancache
from repro.core.communicator import Communicator
from repro.core.ops import ReduceOp
from repro.core.passes import PassPipeline, lower_program
from repro.core.passes import pipelining
from repro.core.plan import OptimizationPlan
from repro.core.schedule import Schedule, ScheduleBuilder
from repro.machine.machines import by_name
from repro.transport.library import Library

#: The two committed machine models (tuned baselines live in
#: benchmarks/output/tuned_{perlmutter,delta}.txt).
MACHINES = [by_name("perlmutter", nodes=2), by_name("delta", nodes=2)]


@pytest.fixture(autouse=True)
def fresh_cache():
    """Keep every lowering cold so pipelines actually run."""
    plancache.configure(disk_dir=None)
    yield
    plancache.reset()


def random_program(comm: Communicator, rng: random.Random,
                   prims: int = 4) -> list[str]:
    """Register a race-free random composition; returns the recv buffers.

    Every primitive writes its own recv buffer, so any mixture of
    multicasts and reductions across fences is race-free by construction
    while still sharing send-side ranges (fodder for fence dependencies).
    """
    p = comm.world_size
    count = rng.choice([5, 16, 33])
    send = comm.alloc(count, "sendbuf")
    recvs = []
    for i in range(prims):
        recv = comm.alloc(count, f"recv{i}")
        recvs.append(f"recv{i}")
        root = rng.randrange(p)
        leaves = rng.sample(range(p), rng.randint(1, p))
        if rng.random() < 0.5:
            comm.add_multicast(send, recv, count, root, leaves)
        else:
            op = rng.choice([ReduceOp.SUM, ReduceOp.MAX])
            comm.add_reduction(send, recv, count, leaves, root, op)
        if rng.random() < 0.4:
            comm.add_fence()
    return recvs


def random_plan(machine, rng: random.Random) -> dict:
    """A valid random optimization plan for ``machine``."""
    g = machine.gpus_per_node
    nodes = machine.nodes
    hierarchy = rng.choice([[machine.world_size], [nodes, g], [nodes, 2, g // 2]])
    libraries = [Library.MPI] * len(hierarchy)
    ring = rng.choice([1, hierarchy[0]]) if len(hierarchy) > 1 else 1
    return dict(
        hierarchy=hierarchy, library=libraries,
        stripe=rng.randint(1, g), ring=ring,
        pipeline=rng.choice([1, 3, 8]),
    )


def _buffers_after_execution(machine, seed: int, optimize=()) -> dict:
    rng = random.Random(seed)
    comm = Communicator(machine)
    recvs = random_program(comm, rng)
    plan = random_plan(machine, rng)
    comm.init(**plan, use_cache=False, optimize=optimize)
    count = comm.array("sendbuf", 0).shape[0]
    vals = np.random.default_rng(seed).integers(
        -9, 9, (machine.world_size, count)
    ).astype(np.float32)
    comm.set_all("sendbuf", vals)
    comm.run()
    return {name: comm.gather_all(name).copy() for name in recvs}


class TestSemanticsPreserved:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", range(6))
    def test_optimization_passes_preserve_data_movement(self, machine, seed):
        """fuse+dce executor output == baseline on randomized programs."""
        base = _buffers_after_execution(machine, seed)
        opt = _buffers_after_execution(machine, seed, optimize=("fuse", "dce"))
        assert base.keys() == opt.keys()
        for name in base:
            np.testing.assert_array_equal(base[name], opt[name])

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", range(6))
    def test_template_replication_matches_per_channel_lowering(
            self, machine, seed, monkeypatch):
        """The array-replicated channels equal the explicit fallback path."""
        def lowered(force_fallback: bool):
            rng = random.Random(seed)
            comm = Communicator(machine, materialize=False)
            random_program(comm, rng)
            plan_kwargs = random_plan(machine, rng)
            plan = OptimizationPlan.create(
                machine, plan_kwargs["hierarchy"], plan_kwargs["library"],
                stripe=plan_kwargs["stripe"], ring=plan_kwargs["ring"],
                pipeline=plan_kwargs["pipeline"],
            )
            if force_fallback:
                monkeypatch.setattr(
                    pipelining, "channels_separable", lambda program: False
                )
            else:
                monkeypatch.undo()
            return lower_program(comm.program, plan)

        fast = lowered(False)
        slow = lowered(True)
        # Same ops modulo scratch buffer naming (allocation grouping
        # differs between the two paths; fresh names never alias either way).
        def normalized(schedule):
            names = {}

            def norm(buf):
                if buf.startswith("_"):
                    return names.setdefault(buf, f"S{len(names)}")
                return buf

            return [
                (op.src, op.dst, norm(op.src_buf), op.src_off,
                 norm(op.dst_buf), op.dst_off, op.count, op.reduce_op,
                 op.level, op.channel, op.stage, op.deps, op.tag)
                for op in schedule.ops
            ]

        assert normalized(fast) == normalized(slow)
        assert sorted(
            sorted(v.items()) for v in fast.scratch.values()
        ) == sorted(sorted(v.items()) for v in slow.scratch.values())

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_pass_summaries_cover_every_stage(self, machine):
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(64, "sendbuf")
        recv = comm.alloc(64, "recvbuf")
        comm.add_multicast(send, recv, 64, 0, list(range(machine.world_size)))
        plan = OptimizationPlan.create(
            machine, [machine.nodes, machine.gpus_per_node],
            [Library.MPI, Library.IPC], stripe=2, pipeline=4,
        )
        result = PassPipeline(plan, fuse=True, dce=True).run(comm.program)
        names = [s["pass"] for s in result.summaries]
        assert names == [
            "expand-logic", "hierarchy", "pipelining", "striping",
            "ring-tree", "channel-binding", "fuse-contiguous",
            "dead-copy-elim",
        ]
        bind = result.summaries[5]
        assert bind["ops"] == len(result.schedule) or bind["ops"] >= len(
            result.schedule)  # opt passes may shrink the final schedule
        assert "scratch-high-water" in bind and "by-kind" in bind
        assert result.render()  # human-readable dump is non-empty


class TestRoundTrip:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_array_object_round_trip_lossless(self, machine, seed):
        rng = random.Random(1000 + seed)
        comm = Communicator(machine, materialize=False)
        random_program(comm, rng)
        comm.init(**random_plan(machine, rng), use_cache=False)
        sched = comm.schedule
        rebuilt = Schedule.from_ops(
            sched.world_size, sched.ops, sched.scratch, sched.num_channels
        )
        for column in ("src", "dst", "src_off", "dst_off", "count",
                       "reduce", "level", "channel", "stage"):
            np.testing.assert_array_equal(
                getattr(sched, column), getattr(rebuilt, column), err_msg=column
            )
        np.testing.assert_array_equal(sched.dep_indptr, rebuilt.dep_indptr)
        np.testing.assert_array_equal(sched.dep_indices, rebuilt.dep_indices)
        assert rebuilt.scratch == sched.scratch
        assert rebuilt.ops == sched.ops  # P2POp views are fully equal

    def test_views_match_csr(self):
        machine = MACHINES[0]
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(32, "sendbuf")
        recv = comm.alloc(32, "recvbuf")
        comm.add_reduction(send, recv, 32, list(range(machine.world_size)),
                           0, ReduceOp.SUM)
        comm.init(hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
                  pipeline=2, use_cache=False)
        sched = comm.schedule
        for op in sched.ops:
            assert op.deps == sched.deps_of(op.uid)
            assert op.src == int(sched.src[op.uid])
            assert op.count == int(sched.count[op.uid])


class TestVectorizedStats:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_stats_match_object_loop_reference(self, machine):
        rng = random.Random(42)
        comm = Communicator(machine, materialize=False)
        random_program(comm, rng)
        comm.init(**random_plan(machine, rng), use_cache=False)
        sched = comm.schedule
        # Reference implementations over the object views.
        vols = {"inter-node": 0, "intra-node": 0, "local": 0}
        mat = [[0] * sched.world_size for _ in range(sched.world_size)]
        for op in sched.ops:
            if op.is_local:
                vols["local"] += op.count
            elif machine.same_node(op.src, op.dst):
                vols["intra-node"] += op.count
            else:
                vols["inter-node"] += op.count
            if not op.is_local:
                mat[op.src][op.dst] += op.count
        assert sched.volume_by_kind(machine) == vols
        assert sched.comm_matrix() == mat
        assert sched.total_elements() == sum(op.count for op in sched.ops)
        assert sched.stage_count() == len(
            {op.stage for op in sched.ops if op.channel == 0}
        )
        levels = {}
        for op in sched.ops:
            lvl = -1 if op.level is None else op.level
            levels[lvl] = levels.get(lvl, 0) + op.count
        assert sched.volume_by_level() == levels


class TestOptimizationPasses:
    def test_fusion_collapses_pipelined_single_branch(self):
        """Adjacent channel chunks of one hop merge into one message."""
        machine = by_name("delta", nodes=2)
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(256, "s")
        recv = comm.alloc(256, "r")
        comm.add_multicast(send, recv, 256, 0, list(range(8)))
        plan = OptimizationPlan.create(machine, [2, 4],
                                       [Library.MPI, Library.IPC],
                                       stripe=1, pipeline=16)
        unfused = lower_program(comm.program, plan)
        fused = lower_program(comm.program, plan, optimize=("fuse",))
        assert len(fused) < len(unfused) / 4
        assert fused.total_elements() == unfused.total_elements()

    def test_dce_removes_unread_scratch_write(self):
        b = ScheduleBuilder(4)
        u0 = b.send(0, 1, ("s", 0), ("r", 0), 8, level=0)
        dead_loc = b.alloc_scratch(2, 8, hint="dead")
        b.send(0, 2, ("s", 0), dead_loc, 8, level=0, deps=(u0,))
        sched = b.build()
        from repro.core.passes.opt import DeadCopyEliminationPass

        swept, summary = DeadCopyEliminationPass().run(sched)
        assert summary["removed"] == 1
        assert len(swept) == 1
        assert swept.ops[0].dst_buf == "r"

    def test_dce_cascades_through_dead_chains(self):
        """A producer whose only consumer is dead dies in the same sweep."""
        b = ScheduleBuilder(4)
        stage1 = b.alloc_scratch(1, 8, hint="c1")
        stage2 = b.alloc_scratch(2, 8, hint="c2")
        b.send(0, 1, ("s", 0), stage1, 8, level=0)
        b.send(1, 2, stage1, stage2, 8, level=0, deps=(0,))
        b.send(0, 3, ("s", 0), ("r", 0), 8, level=0)
        sched = b.build()
        from repro.core.passes.opt import DeadCopyEliminationPass

        swept, summary = DeadCopyEliminationPass().run(sched)
        assert summary["removed"] == 2
        assert len(swept) == 1

    def test_dce_keeps_read_scratch(self):
        b = ScheduleBuilder(4)
        loc = b.alloc_scratch(1, 8, hint="live")
        b.send(0, 1, ("s", 0), loc, 8, level=0)
        b.send(1, 2, loc, ("r", 0), 8, level=0, deps=(0,))
        sched = b.build()
        from repro.core.passes.opt import DeadCopyEliminationPass

        swept, summary = DeadCopyEliminationPass().run(sched)
        assert summary["removed"] == 0
        assert len(swept) == 2

    def test_fused_schedule_executes_correctly(self):
        machine = by_name("perlmutter", nodes=2)
        comm = Communicator(machine)
        send = comm.alloc(100, "s")
        recv = comm.alloc(100, "r")
        comm.add_multicast(send, recv, 100, 3, list(range(8)))
        comm.init(hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
                  stripe=1, pipeline=8, use_cache=False,
                  optimize=("fuse", "dce"))
        vals = np.arange(800, dtype=np.float32).reshape(8, 100)
        comm.set_all("s", vals)
        comm.run()
        got = comm.gather_all("r")
        for r in range(8):
            np.testing.assert_array_equal(got[r], vals[3])

    def test_unknown_optimize_flag_rejected(self):
        machine = MACHINES[0]
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(8, "s")
        recv = comm.alloc(8, "r")
        comm.add_multicast(send, recv, 8, 0, [0, 1])
        with pytest.raises(ValueError, match="unknown optimization"):
            comm.init(hierarchy=[8], library=[Library.MPI],
                      optimize=("inline",), use_cache=False)
