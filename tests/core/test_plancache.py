"""Plan cache: hit/miss accounting, disk round-trip, schema invalidation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import plancache
from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.core.plancache import (
    SCHEMA_VERSION,
    CachedPlan,
    PlanCache,
    machine_fingerprint,
    plan_key,
    plan_nbytes,
    program_fingerprint,
)
from repro.machine.machines import generic
from repro.transport.library import Library

MACHINE = generic(2, 4, 2, name="cachetest")
COUNT = 1 << 10


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test behind its own memory-only process-wide cache."""
    cache = plancache.configure(disk_dir=None)
    yield cache
    plancache.reset()


def _communicator(count=COUNT, collective="all_reduce", materialize=False):
    comm = Communicator(MACHINE, materialize=materialize)
    compose(comm, collective, count)
    return comm


def _init(comm, pipeline=2, **kwargs):
    comm.init(hierarchy=[2, 4], library=[Library.MPI, Library.IPC],
              pipeline=pipeline, **kwargs)
    return comm


class TestKeying:
    def test_identical_configs_same_key(self):
        k1 = plan_key(_communicator().program, MACHINE, (2, 4),
                      (Library.MPI, Library.IPC), stripe=1, ring=1,
                      pipeline=2, elem_bytes=4, dtype_name="float32")
        k2 = plan_key(_communicator().program, MACHINE, (2, 4),
                      (Library.MPI, Library.IPC), stripe=1, ring=1,
                      pipeline=2, elem_bytes=4, dtype_name="float32")
        assert k1 == k2 and k1.digest == k2.digest

    def test_any_parameter_changes_the_key(self):
        program = _communicator().program
        base = dict(stripe=1, ring=1, pipeline=2, elem_bytes=4,
                    dtype_name="float32")
        k0 = plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC), **base)
        variants = [
            plan_key(program, MACHINE, (4, 2), (Library.MPI, Library.IPC), **base),
            plan_key(program, MACHINE, (2, 4), (Library.NCCL, Library.IPC), **base),
            plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC),
                     **{**base, "stripe": 2}),
            plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC),
                     **{**base, "pipeline": 4}),
            plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC),
                     **{**base, "elem_bytes": 8, "dtype_name": "float64"}),
            plan_key(_communicator(count=COUNT * 2).program, MACHINE, (2, 4),
                     (Library.MPI, Library.IPC), **base),
            plan_key(program, generic(2, 4, 1, name="othermachine"), (2, 4),
                     (Library.MPI, Library.IPC), **base),
        ]
        digests = {k0.digest} | {k.digest for k in variants}
        assert len(digests) == len(variants) + 1

    def test_profile_calibration_changes_the_key(self, monkeypatch):
        """Editing transport/profiles.py must invalidate persisted plans."""
        import dataclasses

        from repro.transport import profiles as prof_mod

        program = _communicator().program
        base = dict(stripe=1, ring=1, pipeline=2, elem_bytes=4,
                    dtype_name="float32")
        k0 = plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC),
                      **base)
        old = prof_mod.PROFILES[Library.MPI]
        monkeypatch.setitem(prof_mod.PROFILES, Library.MPI,
                            dataclasses.replace(old, eff_inter=old.eff_inter / 2))
        k1 = plan_key(program, MACHINE, (2, 4), (Library.MPI, Library.IPC),
                      **base)
        assert k0.digest != k1.digest

    def test_fingerprints_are_hashable_and_stable(self):
        comm = _communicator()
        assert hash(program_fingerprint(comm.program)) == hash(
            program_fingerprint(comm.program))
        assert hash(machine_fingerprint(MACHINE)) == hash(
            machine_fingerprint(MACHINE))


class TestHitMissAccounting:
    def test_second_init_is_a_hit(self, fresh_cache):
        _init(_communicator())
        assert fresh_cache.stats.misses == 1
        assert fresh_cache.stats.stores == 1
        c2 = _init(_communicator())
        assert c2.cache_hit
        assert fresh_cache.stats.memory_hits == 1
        assert fresh_cache.stats.lookups == 2
        assert fresh_cache.stats.hit_rate == 0.5

    def test_second_init_does_zero_factorization_work(self, monkeypatch,
                                                      fresh_cache):
        """The acceptance check: a warm init never lowers or prices."""
        import repro.core.communicator as comm_mod

        calls = {"lower": 0, "simulate": 0}
        real_lower = comm_mod.lower_program
        real_simulate = comm_mod.simulate

        def spy_lower(*a, **kw):
            calls["lower"] += 1
            return real_lower(*a, **kw)

        def spy_simulate(*a, **kw):
            calls["simulate"] += 1
            return real_simulate(*a, **kw)

        monkeypatch.setattr(comm_mod, "lower_program", spy_lower)
        monkeypatch.setattr(comm_mod, "simulate", spy_simulate)

        c1 = _init(_communicator())
        assert calls == {"lower": 1, "simulate": 1}
        c2 = _init(_communicator())
        assert calls == {"lower": 1, "simulate": 1}  # untouched: pure cache hit
        assert c2.cache_hit and not c1.cache_hit
        assert fresh_cache.stats.hits == 1

    def test_different_config_is_a_miss(self, fresh_cache):
        _init(_communicator(), pipeline=2)
        c2 = _init(_communicator(), pipeline=4)
        assert not c2.cache_hit
        assert fresh_cache.stats.misses == 2

    def test_use_cache_false_bypasses_the_cache(self, fresh_cache):
        _init(_communicator())
        c2 = _init(_communicator(), use_cache=False)
        assert not c2.cache_hit
        assert fresh_cache.stats.lookups == 1  # only the first init looked

    def test_byte_budget_evicts_before_capacity(self):
        cache = PlanCache(capacity=100, max_total_bytes=1)
        c1 = _communicator()
        _init(c1, use_cache=False)

        def key(pipeline):
            return plan_key(c1.program, MACHINE, (2, 4),
                            (Library.MPI, Library.IPC), stripe=1, ring=1,
                            pipeline=pipeline, elem_bytes=4,
                            dtype_name="float32")

        plan = CachedPlan(c1.schedule, c1._timing, 0.0)
        cache.put(key(1), plan)
        assert len(cache) == 1  # one over-budget plan is still kept
        cache.put(key(2), plan)
        assert len(cache) == 1  # ...but a second one evicts the first
        assert cache.stats.evictions == 1
        assert cache.total_bytes() == plan_nbytes(plan)

    def test_plan_nbytes_counts_arrays_deps_and_timing(self):
        c1 = _communicator()
        _init(c1, use_cache=False)
        plan = CachedPlan(c1.schedule, c1._timing, 0.0)
        expected = c1.schedule.nbytes()
        expected += 16 * len(c1._timing.start_times)
        expected += 16 * len(c1._timing.resource_busy)
        assert plan_nbytes(plan) == expected
        # The schedule's own figure includes the CSR dependency storage.
        assert c1.schedule.nbytes() > c1.schedule.dep_indices.nbytes
        assert plan_nbytes(CachedPlan(None, None, 0.0)) == 0

    def test_lru_eviction_accounted(self):
        cache = PlanCache(capacity=1)
        k1 = plan_key(_communicator().program, MACHINE, (8,), (Library.MPI,),
                      stripe=1, ring=1, pipeline=1, elem_bytes=4,
                      dtype_name="float32")
        k2 = plan_key(_communicator().program, MACHINE, (8,), (Library.MPI,),
                      stripe=1, ring=1, pipeline=2, elem_bytes=4,
                      dtype_name="float32")
        plan = CachedPlan(None, None, 0.0)
        cache.put(k1, plan)
        cache.put(k2, plan)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert cache.get(k1) is None  # evicted
        assert cache.get(k2) is plan


class TestCachedEqualsFresh:
    def test_cached_plan_prices_identically(self, fresh_cache):
        c1 = _init(_communicator())
        c2 = _init(_communicator())
        assert c2.cache_hit
        assert c2.schedule is c1.schedule  # shared, not re-lowered
        assert c2.timing.elapsed == c1.timing.elapsed
        fresh = _init(_communicator(), use_cache=False)
        assert fresh.timing.elapsed == c1.timing.elapsed
        assert [op for op in fresh.schedule.ops] == [op for op in c1.schedule.ops]

    def test_cached_plan_executes_identically(self, fresh_cache):
        rng = np.random.default_rng(0)
        values = rng.standard_normal((MACHINE.world_size, COUNT * MACHINE.world_size))

        def run():
            comm = _communicator(materialize=True)
            _init(comm)
            comm.set_all("sendbuf", values.astype(np.float32))
            comm.run()
            return comm, comm.gather_all("recvbuf")

        c1, out1 = run()
        c2, out2 = run()
        assert c2.cache_hit
        np.testing.assert_array_equal(out1, out2)


class TestDiskLayer:
    def test_round_trip_across_cache_instances(self, tmp_path):
        disk = tmp_path / "plans"
        plancache.configure(disk_dir=disk)
        c1 = _init(_communicator())
        assert not c1.cache_hit
        assert len(list(disk.glob(f"v{SCHEMA_VERSION}-*.npz"))) == 1

        # A brand-new process-wide cache (same disk dir) hits via disk.
        cache2 = plancache.configure(disk_dir=disk)
        c2 = _init(_communicator())
        assert c2.cache_hit
        assert cache2.stats.disk_hits == 1
        assert cache2.stats.memory_hits == 0
        assert c2.timing.elapsed == c1.timing.elapsed
        # ...and the disk hit was promoted into memory for the next lookup.
        c3 = _init(_communicator())
        assert c3.cache_hit
        assert cache2.stats.memory_hits == 1

    def test_schema_version_invalidates(self, tmp_path, monkeypatch):
        disk = tmp_path / "plans"
        cache = plancache.configure(disk_dir=disk)
        _init(_communicator())
        path = cache.disk_entries()[0]

        # Simulate a plan persisted by an older schema: the payload says v1.
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(str(arrays["meta"][()]))
        meta["schema"] = SCHEMA_VERSION - 1
        arrays["meta"] = np.asarray(json.dumps(meta))
        with path.open("wb") as fh:
            np.savez(fh, **arrays)

        cache2 = plancache.configure(disk_dir=disk)
        c = _init(_communicator())
        assert not c.cache_hit  # stale schema ignored, fresh synthesis
        assert cache2.stats.misses == 1

    def test_corrupt_archive_is_a_miss_not_an_error(self, tmp_path):
        disk = tmp_path / "plans"
        cache = plancache.configure(disk_dir=disk)
        _init(_communicator())
        cache.disk_entries()[0].write_bytes(b"not an archive")
        cache2 = plancache.configure(disk_dir=disk)
        c = _init(_communicator())
        assert not c.cache_hit
        assert cache2.stats.disk_errors == 1

    def test_no_pickles_on_disk(self, tmp_path):
        """The persistent layer is pickle-free: pure arrays + JSON."""
        disk = tmp_path / "plans"
        plancache.configure(disk_dir=disk)
        c1 = _init(_communicator())
        assert list(disk.glob("*.pkl")) == []
        path = plancache.get_cache().disk_entries()[0]
        with np.load(path, allow_pickle=False) as payload:
            assert "meta" in payload.files
            assert "col_src" in payload.files
            assert "dep_indices" in payload.files
        # Round-trip through the archive preserves the lowered ops exactly.
        cache2 = plancache.configure(disk_dir=disk)
        c2 = _init(_communicator())
        assert c2.cache_hit
        assert c2.schedule.ops == c1.schedule.ops
        assert c2.timing.elapsed == c1.timing.elapsed

    def test_clear_disk_removes_all_versions_and_tmp_orphans(self, tmp_path):
        disk = tmp_path / "plans"
        cache = plancache.configure(disk_dir=disk)
        _init(_communicator())
        (disk / "v0-deadbeef.pkl").write_bytes(b"stale")
        (disk / "v1-cafe.tmp12345").write_bytes(b"interrupted store")
        assert cache.clear_disk() == 3
        assert cache.disk_entries() == []
        assert list(disk.iterdir()) == []

    def test_set_disk_dir_keeps_warm_plans_and_stats(self, tmp_path):
        cache = plancache.configure()
        c1 = _init(_communicator())
        assert not c1.cache_hit and len(cache) == 1
        cache.set_disk_dir(tmp_path)
        c2 = _init(_communicator())
        assert c2.cache_hit  # warm memory layer survived the repointing
        assert cache.stats.memory_hits == 1


class TestZeroOpPlans:
    """v2 ``.npz`` round-trip and size accounting on empty-DCE schedules."""

    @staticmethod
    def _zero_op_plan():
        """A schedule that dead-copy elimination empties entirely."""
        from repro.core.passes.opt import DeadCopyEliminationPass
        from repro.core.schedule import ScheduleBuilder
        from repro.simulator.engine import simulate

        b = ScheduleBuilder(MACHINE.world_size)
        loc = b.alloc_scratch(1, 64)
        b.send(0, 1, ("buf", 0), loc, 64, level=0)  # written, never read
        swept, info = DeadCopyEliminationPass().run(b.build())
        assert info["removed"] == 1 and len(swept) == 0
        timing = simulate(swept, MACHINE, (Library.MPI,), 4)
        return CachedPlan(swept, timing, 0.01)

    @staticmethod
    def _key():
        return plan_key(_communicator().program, MACHINE, (8,),
                        (Library.MPI,), stripe=1, ring=1, pipeline=1,
                        elem_bytes=4, dtype_name="float32")

    def test_zero_op_round_trip(self, tmp_path):
        plan = self._zero_op_plan()
        key = self._key()
        c1 = PlanCache(disk_dir=tmp_path)
        c1.put(key, plan)
        c2 = PlanCache(disk_dir=tmp_path)
        back = c2.get(key)
        assert back is not None and c2.stats.disk_hits == 1
        assert len(back.schedule) == 0
        assert back.schedule.scratch == {}
        assert back.timing.elapsed == 0.0
        assert back.timing.start_times == []
        assert back.timing.resource_busy == {}
        # Empty columns keep their dtypes through the archive.
        for name in ("src", "count", "dep_indices"):
            assert (getattr(back.schedule, name).dtype
                    == getattr(plan.schedule, name).dtype)

    def test_zero_op_size_accounting(self, tmp_path):
        """``plan_nbytes`` agrees before and after the archive, and the
        byte ledger in both cache instances matches it exactly."""
        plan = self._zero_op_plan()
        key = self._key()
        c1 = PlanCache(disk_dir=tmp_path)
        c1.put(key, plan)
        assert c1.total_bytes() == plan_nbytes(plan)
        c2 = PlanCache(disk_dir=tmp_path)
        back = c2.get(key)
        assert plan_nbytes(back) == plan_nbytes(plan)
        assert c2.total_bytes() == plan_nbytes(back)
        # Re-putting the same key must not drift the ledger.
        c2.put(key, back)
        assert c2.total_bytes() == plan_nbytes(back)

    def test_engine_field_survives_the_archive(self, tmp_path):
        """A levelized timing reloads as a levelized timing (the engine
        of record is part of the persisted metadata)."""
        from dataclasses import replace

        plan = self._zero_op_plan()
        plan = CachedPlan(plan.schedule, replace(plan.timing, engine="level"),
                          plan.synthesis_seconds)
        key = self._key()
        PlanCache(disk_dir=tmp_path).put(key, plan)
        back = PlanCache(disk_dir=tmp_path).get(key)
        assert back.timing.engine == "level"

    def test_legacy_archive_without_engine_reads_as_event(self, tmp_path):
        """Archives persisted before the engine field default to 'event'."""
        plan = self._zero_op_plan()
        key = self._key()
        cache = PlanCache(disk_dir=tmp_path)
        cache.put(key, plan)
        path = cache.disk_entries()[0]
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(str(arrays["meta"][()]))
        del meta["engine"]
        arrays["meta"] = np.asarray(json.dumps(meta))
        with path.open("wb") as fh:
            np.savez(fh, **arrays)
        back = PlanCache(disk_dir=tmp_path).get(key)
        assert back is not None and back.timing.engine == "event"
