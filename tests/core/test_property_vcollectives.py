"""Property tests for variable-count collectives under random raggedness."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Communicator, Library
from repro.core.vcollectives import (
    compose_all_gatherv,
    compose_gatherv,
    compose_scatterv,
    offsets_of,
)
from repro.machine.machines import generic

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MACHINE = generic(2, 3, 1, name="vprop")
P = MACHINE.world_size
PLAN = dict(hierarchy=[2, 3], library=[Library.MPI, Library.IPC],
            stripe=2, pipeline=2)

counts_strategy = st.lists(
    st.integers(0, 20), min_size=P, max_size=P
).filter(lambda cs: sum(cs) > 0)


@settings(**SETTINGS)
@given(counts=counts_strategy, seed=st.integers(0, 999))
def test_scatterv_gatherv_roundtrip(counts, seed):
    """scatterv then gatherv (with the same counts) is the identity."""
    rng = np.random.default_rng(seed)
    total = sum(counts)
    original = rng.integers(0, 99, size=total).astype(np.float32)

    comm = Communicator(MACHINE)
    send, recv = compose_scatterv(comm, counts)
    comm.init(**PLAN)
    data = np.zeros((P, total), dtype=np.float32)
    data[0] = original
    comm.set_all(send, data)
    comm.run()
    chunks = comm.gather_all(recv)

    comm2 = Communicator(MACHINE)
    send2, recv2 = compose_gatherv(comm2, counts)
    comm2.init(**PLAN)
    comm2.set_all(send2, chunks[:, : max(counts)])
    comm2.run()
    reassembled = comm2.gather_all(recv2)[0]
    np.testing.assert_array_equal(reassembled, original)


@settings(**SETTINGS)
@given(counts=counts_strategy, seed=st.integers(0, 999))
def test_all_gatherv_agrees_with_concat(counts, seed):
    rng = np.random.default_rng(seed)
    comm = Communicator(MACHINE)
    send, recv = compose_all_gatherv(comm, counts)
    comm.init(**PLAN)
    data = rng.integers(0, 99, size=(P, max(counts))).astype(np.float32)
    comm.set_all(send, data)
    comm.run()
    expected = np.concatenate(
        [data[i][:c] for i, c in enumerate(counts)]
    ) if sum(counts) else np.zeros(0, dtype=np.float32)
    out = comm.gather_all(recv)
    for rank in range(P):
        np.testing.assert_array_equal(out[rank], expected)


@settings(**SETTINGS)
@given(counts=counts_strategy)
def test_offsets_partition(counts):
    offs = offsets_of(counts)
    assert offs[0] == 0
    for i in range(1, P):
        assert offs[i] == offs[i - 1] + counts[i - 1]
    assert offs[-1] + counts[-1] == sum(counts)
