"""Tests for schedule analysis: matrices, volumes, stage counts (Fig 7)."""

from __future__ import annotations

from repro import Communicator, Library
from repro.core.composition import compose
from repro.machine.machines import generic


def _fig7_tree_comm():
    machine = generic(4, 3, 1, name="mat")
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(240, "sendbuf")
    recv = comm.alloc(240, "recvbuf")
    comm.add_multicast(send, recv, 240, 0, list(range(12)))
    comm.init(hierarchy=[2, 2, 3],
              library=[Library.MPI, Library.NCCL, Library.IPC],
              stripe=3, pipeline=2)
    return machine, comm


class TestCommMatrix:
    def test_matrix_rows_are_senders(self):
        machine, comm = _fig7_tree_comm()
        mat = comm.schedule.comm_matrix()
        assert len(mat) == 12
        # The root sends (striping scatter) but never to itself in the matrix.
        assert mat[0][0] == 0
        assert sum(mat[0]) > 0

    def test_library_matrix_blocks(self):
        """Figure 7's colored blocks: IPC on the 3x3 diagonal, MPI across
        groups of six, NCCL between nodes of a group."""
        machine, comm = _fig7_tree_comm()
        lib = comm.schedule.library_matrix(comm.plan.libraries)
        for src in range(12):
            for dst in range(12):
                cell = lib[src][dst]
                if not cell:
                    continue
                if src // 3 == dst // 3:
                    assert cell == "IPC", (src, dst)
                elif src // 6 == dst // 6:
                    assert cell == "NCCL", (src, dst)
                else:
                    assert cell == "MPI", (src, dst)

    def test_label_matrix_via_level_of(self):
        """comm_matrix(level_of=...) carries the last op's label per pair."""
        machine, comm = _fig7_tree_comm()
        labels = comm.schedule.comm_matrix(level_of=lambda op: op.level)
        lib = comm.schedule.library_matrix(comm.plan.libraries)
        for src in range(12):
            for dst in range(12):
                if lib[src][dst]:
                    assert labels[src][dst] is not None

    def test_total_volume_conservation(self):
        machine, comm = _fig7_tree_comm()
        vols = comm.schedule.volume_by_kind(machine)
        mat = comm.schedule.comm_matrix()
        assert vols["inter-node"] + vols["intra-node"] == sum(
            mat[s][d] for s in range(12) for d in range(12)
        )

    def test_max_scratch_accounting(self):
        machine, comm = _fig7_tree_comm()
        assert comm.schedule.max_scratch_elements() >= 0


class TestStageCounts:
    def test_channel0_stage_count_used(self):
        machine, comm = _fig7_tree_comm()
        # Pipelined channels replicate the stage structure; the count comes
        # from channel 0 only.
        assert comm.schedule.stage_count() == 4

    def test_flat_direct_single_stage(self):
        machine = generic(2, 2, 1, name="flat")
        comm = Communicator(machine, materialize=False)
        compose(comm, "broadcast", 16)
        comm.init(hierarchy=[4], library=[Library.MPI])
        assert comm.schedule.stage_count() == 1
