"""Documentation integrity: broken .md cross-references fail the build."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "tools" / "check_doc_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_promised_documents_exist():
    root = CHECKER.parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"):
        assert (root / name).exists(), f"{name} is missing"


def test_no_broken_cross_references():
    checker = _load_checker()
    errors: list[str] = []
    checker.check_markdown_links(errors)
    checker.check_source_mentions(errors)
    assert not errors, "broken documentation references:\n" + "\n".join(errors)


def test_github_slugging():
    checker = _load_checker()
    assert checker.github_slug("1. Layer tour") == "1-layer-tour"
    assert (checker.github_slug("3. Plan cache (`repro.core.plancache`)")
            == "3-plan-cache-reprocoreplancache")


def test_anchor_extraction_sees_explicit_ids():
    checker = _load_checker()
    anchors = checker.anchors_of(CHECKER.parent.parent / "EXPERIMENTS.md")
    assert "paper-vs-measured" in anchors
    assert "calibration" in anchors
