"""Documentation integrity: broken .md cross-references fail the build."""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
CHECKER = TOOLS / "check_doc_links.py"
DOCSTRINGS = TOOLS / "check_docstrings.py"


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _load_checker():
    return _load(CHECKER)


def test_promised_documents_exist():
    root = CHECKER.parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"):
        assert (root / name).exists(), f"{name} is missing"


def test_no_broken_cross_references():
    checker = _load_checker()
    errors: list[str] = []
    checker.check_markdown_links(errors)
    checker.check_source_mentions(errors)
    assert not errors, "broken documentation references:\n" + "\n".join(errors)


def test_github_slugging():
    checker = _load_checker()
    assert checker.github_slug("1. Layer tour") == "1-layer-tour"
    assert (checker.github_slug("3. Plan cache (`repro.core.plancache`)")
            == "3-plan-cache-reprocoreplancache")


def test_anchor_extraction_sees_explicit_ids():
    checker = _load_checker()
    anchors = checker.anchors_of(CHECKER.parent.parent / "EXPERIMENTS.md")
    assert "paper-vs-measured" in anchors
    assert "calibration" in anchors


def test_docstring_coverage_of_workload_and_simulator_layers():
    checker = _load(DOCSTRINGS)
    problems = checker.missing_docstrings()
    assert not problems, "missing docstrings:\n" + "\n".join(problems)


def test_docstring_checker_detects_offenders(tmp_path):
    checker = _load(DOCSTRINGS)
    bad = tmp_path / "src" / "repro" / "workloads"
    bad.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "simulator").mkdir()
    (bad / "mod.py").write_text(
        '"""Module doc."""\n\n\ndef documented():\n    """Yes."""\n\n\n'
        "def naked():\n    pass\n\n\nclass Thing:\n"
        '    """Doc."""\n\n    def method(self):\n        pass\n'
    )
    problems = checker.missing_docstrings(tmp_path)
    assert any("'naked'" in p for p in problems)
    assert any("'Thing.method'" in p for p in problems)
    assert not any("documented" in p for p in problems)


def test_readme_workload_quickstart_runs():
    """The README "Simulating a training step" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Simulating a training step")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "quickstart python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    result = namespace["result"]
    assert result.makespan > 0
    assert result.worst_slowdown >= 1.0


def test_readme_inspecting_schedules_quickstart_runs():
    """The README "Inspecting schedules" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Inspecting schedules")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "inspecting-schedules python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    schedule = namespace["schedule"]
    lowered = namespace["lowered"]
    assert len(schedule) > 0
    assert namespace["stages"] >= 1
    assert set(namespace["volumes"]) == {"inter-node", "intra-node", "local"}
    assert namespace["first_op"].uid == 0
    assert [s["pass"] for s in lowered.summaries] == [
        "expand-logic", "hierarchy", "pipelining", "striping", "ring-tree",
        "channel-binding",
    ]


def test_readme_fault_quickstart_runs():
    """The README "Surviving faults" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Surviving faults")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "fault python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    report = namespace["report"]
    assert report.replay_seconds >= report.healthy_seconds
    assert report.replanned_seconds <= report.replay_seconds
    shrink = namespace["shrink"]
    assert shrink.nodes_after == 3
    assert shrink.rank_map == tuple(range(12))
    # The replanned communicator itself stays healthy.
    assert namespace["comm"].machine.faults is None


def test_readme_serving_plans_quickstart_runs():
    """The README "Serving plans" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Serving plans")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "serving-plans python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    cold, hit, stats = namespace["cold"], namespace["hit"], namespace["stats"]
    assert cold["status"] == hit["status"] == "ok"
    assert cold["source"] in ("cold", "warm")
    assert hit["source"] == "hit"
    assert hit["winner"] == cold["winner"]
    assert stats["service"]["requests"] == 2
    assert stats["service"]["planned"] == 1
    assert stats["service"]["hits"] == 1
    assert len(stats["cache"]["shards"]) >= 1


def test_readme_serving_latency_quickstart_runs():
    """The README "Serving latency" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Serving latency")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "serving-latency python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    result = namespace["result"]
    assert result.arrivals == 200
    assert 0.0 < result.overall.p50 <= result.overall.p99
    assert result.stats["replayed"] + result.stats["merged_requests"] == 200
    table = namespace["table"]
    for entry in table.entries:
        assert entry.plan_seconds <= entry.baseline_seconds * (1 + 1e-12)
    tabled = namespace["tabled"]
    assert tabled.arrivals == 64
    assert [s.name for s in tabled.classes] == ["small", "large"]


def test_readme_figures_quickstart_runs():
    """The README "Figures and traces" snippet executes as written."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split("## Figures and traces")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "figures python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    records = namespace["records"]
    assert records and all(isinstance(r, dict) for r in records)
    assert namespace["text"].startswith("Figure 6")
    assert namespace["export"].endswith("\n")
    assert namespace["result"].ok, namespace["result"].reason
    assert namespace["problems"] == []
    assert namespace["trace"]["otherData"]["workload"] == "disjoint_halves"


def test_readme_planner_quickstart_runs():
    """The README "Tuning the optimization parameters" snippet executes."""
    readme = CHECKER.parent.parent / "README.md"
    section = readme.read_text().split(
        "## Tuning the optimization parameters")[1]
    section = section.split("\n## ")[0]
    blocks = re.findall(r"```python\n(.*?)```", section, re.S)
    assert blocks, "planner python block missing"
    namespace: dict = {}
    exec(compile(blocks[0], str(readme), "exec"), namespace)  # noqa: S102
    plan = namespace["plan"]
    assert plan.best.seconds > 0
    assert namespace["elapsed"] == plan.best.seconds
    assert plan.stats.full_evals * 3 <= plan.stats.grid_size
