"""Functional correctness of every baseline implementation.

Baselines are held to the same bar as HiCCL: their schedules execute on the
functional simulator and must reproduce exact collective semantics.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import check_collective, make_input

import repro
from repro.baselines import (
    CCL_OFFERED,
    ONECCL_OFFERED,
    ccl_collective,
    direct_collective,
    mpi_collective,
    oneccl_collective,
)
from repro.baselines.ccl_like import ccl_gather, ccl_scatter
from repro.errors import CompositionError
from repro.machine.machines import frontier, generic, perlmutter

COUNT = 32
ALL = sorted(repro.COLLECTIVES)


@pytest.fixture(params=["2x3", "perlmutter2", "frontier2"])
def machine(request):
    return {
        "2x3": generic(2, 3, 1, name="b23"),
        "perlmutter2": perlmutter(nodes=2),
        "frontier2": frontier(nodes=2),
    }[request.param]


class TestMpiBaseline:
    @pytest.mark.parametrize("name", ALL)
    def test_correct(self, machine, name):
        run = mpi_collective(machine, name, COUNT)
        rng = np.random.default_rng(5)
        data = make_input(name, machine.world_size, COUNT, rng)
        check_collective(run, name, data, COUNT)

    def test_unknown_collective(self, machine):
        with pytest.raises(CompositionError):
            mpi_collective(machine, "all_shuffle", COUNT)


class TestCclBaseline:
    @pytest.mark.parametrize("name", sorted(CCL_OFFERED))
    def test_correct(self, machine, name):
        run = ccl_collective(machine, name, COUNT)
        rng = np.random.default_rng(6)
        data = make_input(name, machine.world_size, COUNT, rng)
        check_collective(run, name, data, COUNT)

    def test_gather_scatter_not_offered(self, machine):
        for name in ("gather", "scatter", "all_to_all"):
            with pytest.raises(CompositionError):
                ccl_collective(machine, name, COUNT)

    def test_p2p_gather_scatter_reference(self, machine):
        rng = np.random.default_rng(7)
        run = ccl_gather(machine, COUNT)
        data = make_input("gather", machine.world_size, COUNT, rng)
        check_collective(run, "gather", data, COUNT)
        run = ccl_scatter(machine, COUNT)
        data = make_input("scatter", machine.world_size, COUNT, rng)
        check_collective(run, "scatter", data, COUNT)


class TestOneCclBaseline:
    @pytest.mark.parametrize("name", sorted(ONECCL_OFFERED))
    def test_correct(self, machine, name):
        run = oneccl_collective(machine, name, COUNT)
        rng = np.random.default_rng(8)
        data = make_input(name, machine.world_size, COUNT, rng)
        check_collective(run, name, data, COUNT)

    def test_gather_not_offered(self, machine):
        with pytest.raises(CompositionError):
            oneccl_collective(machine, "gather", COUNT)


class TestDirectBaseline:
    @pytest.mark.parametrize("name", ALL)
    def test_correct(self, machine, name):
        run = direct_collective(machine, name, COUNT)
        rng = np.random.default_rng(9)
        data = make_input(name, machine.world_size, COUNT, rng)
        check_collective(run, name, data, COUNT)

    def test_flat_hierarchy(self, machine):
        run = direct_collective(machine, "broadcast", COUNT)
        assert list(run.plan.topology.factors) == [machine.world_size]
        assert run.plan.stripe == 1
        assert run.plan.pipeline == 1
