"""Performance-relation sanity checks between baselines and HiCCL.

These encode the qualitative ordering the paper's Figure 8 rests on, at a
single payload, so regressions in profiles or algorithms surface quickly
without running the full benchmark harness.
"""

from __future__ import annotations

import pytest

from repro import machines
from repro.bench.configs import best_config
from repro.bench.runner import run_baseline, run_hiccl

PAYLOAD = 1 << 25  # 32 MB: bandwidth-dominated but fast to lower

# Each check synthesizes several full plans; keep them out of the smoke job.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def perlmutter():
    return machines.perlmutter(nodes=4)


def _thr(meas):
    assert meas is not None
    return meas.throughput


class TestOrderings:
    def test_hiccl_beats_mpi_everywhere(self, perlmutter):
        for name in ("broadcast", "all_reduce", "gather"):
            hic = run_hiccl(perlmutter, name, best_config(perlmutter, name),
                            payload_bytes=PAYLOAD, warmup=0, rounds=1)
            mpi = run_baseline(perlmutter, name, "mpi",
                               payload_bytes=PAYLOAD, warmup=0, rounds=1)
            assert _thr(hic) > 3 * _thr(mpi), name

    def test_nccl_competitive_with_hiccl(self, perlmutter):
        """Section 6.3.1: 1.05x on Perlmutter — same ballpark, not 10x."""
        for name in ("broadcast", "all_reduce"):
            hic = run_hiccl(perlmutter, name, best_config(perlmutter, name),
                            payload_bytes=PAYLOAD, warmup=0, rounds=1)
            ven = run_baseline(perlmutter, name, "vendor",
                               payload_bytes=PAYLOAD, warmup=0, rounds=1)
            ratio = _thr(hic) / _thr(ven)
            assert 0.5 < ratio < 3.0, (name, ratio)

    def test_vendor_beats_mpi(self, perlmutter):
        for name in ("broadcast", "all_reduce"):
            ven = run_baseline(perlmutter, name, "vendor",
                               payload_bytes=PAYLOAD, warmup=0, rounds=1)
            mpi = run_baseline(perlmutter, name, "mpi",
                               payload_bytes=PAYLOAD, warmup=0, rounds=1)
            assert _thr(ven) > _thr(mpi)

    def test_hierarchy_beats_direct(self, perlmutter):
        direct = run_baseline(perlmutter, "broadcast", "direct",
                              payload_bytes=PAYLOAD, warmup=0, rounds=1)
        hic = run_hiccl(perlmutter, "broadcast",
                        best_config(perlmutter, "broadcast"),
                        payload_bytes=PAYLOAD, warmup=0, rounds=1)
        assert _thr(hic) > 5 * _thr(direct)

    def test_oneccl_order_of_magnitude_behind_on_aurora(self):
        from repro.bench.configs import ring_config

        m = machines.aurora(nodes=2)
        cfg = ring_config(m, pipeline=8)  # shallow enough for this payload
        hic = run_hiccl(m, "all_reduce", cfg,
                        payload_bytes=1 << 27, warmup=0, rounds=1)
        ven = run_baseline(m, "all_reduce", "vendor",
                           payload_bytes=1 << 27, warmup=0, rounds=1)
        assert _thr(hic) > 4 * _thr(ven)

    def test_frontier_intra_caps_broadcast(self):
        """Frontier's broadcast lands near its intra-node empirical bound,
        well below the NIC-aggregate frame (Section 6.3.5)."""
        from repro.model.bounds import empirical_bounds, theoretical_bound
        from repro.transport.library import Library

        m = machines.frontier(nodes=4)
        hic = run_hiccl(m, "broadcast", best_config(m, "broadcast"),
                        payload_bytes=PAYLOAD, warmup=0, rounds=1)
        emp = empirical_bounds(m, inter_library=Library.MPI)
        theo = theoretical_bound(m, "broadcast")
        assert _thr(hic) < 0.6 * theo
        assert _thr(hic) > 0.5 * emp.intra_node
