"""Tests for the figure data generators (fast subset; full runs live in
benchmarks/)."""

from __future__ import annotations

import pytest

from repro import machines
from repro.bench.configs import ring_config, tree_config
from repro.bench.figures import (
    FIG5_FACTORIZATIONS,
    fig1_broadcast_volume,
    fig2_bindings,
    fig5_trees,
    fig6_stage_counts,
    fig7_matrices,
    fig9_curves,
    render_fig1,
    render_fig2,
    render_fig5,
    render_fig7,
    render_fig9,
)


class TestFig1:
    def test_volumes(self):
        data = fig1_broadcast_volume(2, 3, 300)
        assert data["direct"]["inter-node"] == 900
        assert data["hierarchical"]["inter-node"] == 300

    def test_render_mentions_both(self):
        data = fig1_broadcast_volume(2, 3, 300)
        text = render_fig1(data, 300)
        assert "direct" in text and "hierarchical" in text


class TestFig2:
    def test_three_panels(self):
        data = fig2_bindings()
        assert [case["panel"] for case in data] == ["a", "b", "c"]

    def test_render(self):
        assert "75%" in render_fig2(fig2_bindings())


class TestFig5:
    def test_six_factorizations(self):
        assert len(FIG5_FACTORIZATIONS) == 6
        assert len(fig5_trees()) == 6

    def test_render_contains_vectors(self):
        text = render_fig5()
        assert "{3, 2, 4}" in text and "{2, 2, 6}" in text


class TestFig6:
    def test_stage_counts(self):
        counts = fig6_stage_counts(count=240)
        assert counts["tree {2,2,3}"] == 4
        assert counts["ring {4,3}"] == 5


class TestFig7:
    def test_matrices_shapes(self):
        mats = fig7_matrices(count=240)
        assert set(mats) == {"tree", "ring"}
        for case in mats.values():
            assert len(case["volume"]) == 12
            assert len(case["library"]) == 12

    def test_render(self):
        text = render_fig7(fig7_matrices(count=240))
        assert "tree" in text and "ring" in text


class TestFig9Small:
    def test_curves_structure(self):
        m = machines.perlmutter(nodes=2)
        curves = fig9_curves(m, "broadcast",
                             payloads_bytes=[1 << 18, 1 << 22],
                             depths=(1, 4))
        assert set(curves) == {1, 4}
        assert len(curves[1]) == 2
        text = render_fig9("broadcast", curves)
        assert "m=1" in text and "m=4" in text


class TestConfigsUsedByFigures:
    def test_ring_tree_configs_validate_on_all_systems(self):
        for name in machines.PAPER_SYSTEMS:
            m = machines.by_name(name, nodes=4)
            tree_config(m)
            ring_config(m)

    @pytest.mark.parametrize("nodes", [2, 8])
    def test_configs_scale_with_nodes(self, nodes):
        m = machines.frontier(nodes)
        assert tree_config(m).hierarchy[-2:] == (4, 2)
        assert ring_config(m).hierarchy[0] == nodes
