"""Tests for Table 5 configuration builders and the measurement runner."""

from __future__ import annotations

import pytest

import repro
from repro import Library, machines
from repro.bench.configs import (
    best_config,
    direct_config,
    hierarchical_config,
    pipelined_config,
    ring_config,
    striped_config,
    tree_config,
)
from repro.bench.report import geomean, render_throughput_table, speedups
from repro.bench.runner import (
    Measurement,
    payload_count,
    run_baseline,
    run_hiccl,
    sweep_payloads,
)
from repro.errors import InitializationError


class TestTable5Configs:
    def test_perlmutter_tree_row(self):
        cfg = tree_config(machines.perlmutter(4))
        assert list(cfg.hierarchy) == [2, 2, 4]
        assert list(cfg.libraries) == [Library.NCCL, Library.NCCL, Library.IPC]
        assert cfg.stripe == 4

    def test_perlmutter_ring_row(self):
        cfg = ring_config(machines.perlmutter(4))
        assert list(cfg.hierarchy) == [4, 4]
        assert list(cfg.libraries) == [Library.NCCL, Library.IPC]
        assert cfg.ring == 4

    def test_frontier_rows(self):
        tree = tree_config(machines.frontier(4))
        assert list(tree.hierarchy) == [2, 2, 4, 2]
        assert list(tree.libraries) == [Library.MPI, Library.MPI,
                                        Library.IPC, Library.IPC]
        ring = ring_config(machines.frontier(4))
        assert list(ring.hierarchy) == [4, 4, 2]
        assert list(ring.libraries) == [Library.MPI, Library.IPC, Library.IPC]

    def test_aurora_rows(self):
        tree = tree_config(machines.aurora(4))
        assert list(tree.hierarchy) == [2, 2, 6, 2]
        ring = ring_config(machines.aurora(4))
        assert list(ring.hierarchy) == [4, 6, 2]
        assert ring.stripe == 12

    def test_tree_scales_to_other_node_counts(self):
        cfg = tree_config(machines.perlmutter(16))
        assert list(cfg.hierarchy) == [2, 2, 2, 2, 4]

    def test_tree_rejects_non_power_of_two(self):
        with pytest.raises(InitializationError):
            tree_config(machines.perlmutter(6))

    def test_ring_needs_two_nodes(self):
        with pytest.raises(InitializationError):
            ring_config(machines.perlmutter(1))

    def test_single_node_tree_is_intra_only(self):
        cfg = tree_config(machines.frontier(1))
        assert list(cfg.hierarchy) == [4, 2]
        assert all(lib is Library.IPC for lib in cfg.libraries)

    def test_incremental_variants(self):
        m = machines.perlmutter(4)
        assert direct_config(m).hierarchy == (16,)
        assert hierarchical_config(m).stripe == 1
        assert hierarchical_config(m).pipeline == 1
        assert striped_config(m).stripe == 4
        assert pipelined_config(m, "ring").ring == 4

    def test_best_config_topologies(self):
        m = machines.perlmutter(4)
        assert best_config(m, "broadcast").ring == 4
        assert best_config(m, "all_gather").ring == 1
        assert best_config(m, "gather").pipeline < best_config(m, "all_gather").pipeline

    def test_init_kwargs_roundtrip(self):
        m = machines.perlmutter(4)
        cfg = tree_config(m)
        kwargs = cfg.init_kwargs()
        assert kwargs["hierarchy"] == [2, 2, 4]
        assert kwargs["stripe"] == 4


class TestRunner:
    def test_payload_count(self):
        m = machines.perlmutter(4)
        assert payload_count(m, 1 << 20) == (1 << 20) // (16 * 4)
        assert payload_count(m, 1) == 1  # never zero

    def test_run_hiccl_measurement(self):
        m = machines.perlmutter(2)
        meas = run_hiccl(m, "broadcast", tree_config(m, pipeline=2),
                         payload_bytes=1 << 22, warmup=0, rounds=1)
        assert meas.system == "perlmutter"
        assert meas.throughput > 0

    def test_run_baseline_families(self):
        m = machines.perlmutter(2)
        for family in ("mpi", "vendor", "direct"):
            meas = run_baseline(m, "broadcast", family,
                                payload_bytes=1 << 22, warmup=0, rounds=1)
            assert meas is not None and meas.throughput > 0

    def test_vendor_missing_collective_returns_none(self):
        m = machines.perlmutter(2)
        assert run_baseline(m, "all_to_all", "vendor",
                            payload_bytes=1 << 22, warmup=0, rounds=1) is None

    def test_oneccl_vendor_on_aurora(self):
        m = machines.aurora(2)
        meas = run_baseline(m, "broadcast", "vendor",
                            payload_bytes=1 << 22, warmup=0, rounds=1)
        assert meas is not None and meas.implementation == "oneccl"
        assert run_baseline(m, "gather", "vendor",
                            payload_bytes=1 << 22, warmup=0, rounds=1) is None

    def test_sweep_payloads(self):
        m = machines.perlmutter(2)
        sweep = sweep_payloads(m, "broadcast", tree_config(m, pipeline=2),
                               [1 << 18, 1 << 22])
        assert len(sweep) == 2
        assert sweep[1].payload_bytes > sweep[0].payload_bytes


class TestReport:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) != geomean([])  # NaN

    def test_speedups_intersect_collectives(self):
        a = {"x": Measurement("s", "x", "hiccl", 100, 0.01),
             "y": Measurement("s", "y", "hiccl", 100, 0.01)}
        b = {"x": Measurement("s", "x", "mpi", 100, 0.05)}
        rep = speedups(a, b, "s", "mpi")
        assert set(rep.per_collective) == {"x"}
        assert rep.per_collective["x"] == pytest.approx(5.0)
        assert "5.00x" in rep.render()

    def test_render_table(self):
        rows = [
            Measurement("s", "broadcast", "mpi", 1 << 20, 0.001),
            Measurement("s", "broadcast", "hiccl", 1 << 20, 0.0001),
        ]
        text = render_throughput_table(rows, title="t")
        assert "broadcast" in text and "mpi" in text and "hiccl" in text
