"""Parallel sweep engine: point validation, deterministic merge, workers."""

from __future__ import annotations

import os

import pytest

from repro.bench.configs import hierarchical_config, tree_config
from repro.bench.figures import fig8_points
from repro.bench.parallel import SweepPoint, hiccl_grid, run_sweep
from repro.machine.machines import generic, perlmutter

MACHINE = generic(2, 2, 1, name="sweeptest")
PAYLOAD = 1 << 16


def _points():
    cfg = tree_config(MACHINE, pipeline=1, stripe=1)
    return [
        SweepPoint(MACHINE, "broadcast", config=cfg, payload_bytes=PAYLOAD),
        SweepPoint(MACHINE, "all_reduce", config=cfg, payload_bytes=PAYLOAD),
        SweepPoint(MACHINE, "gather", family="mpi", payload_bytes=PAYLOAD),
        SweepPoint(MACHINE, "gather", family="vendor", payload_bytes=PAYLOAD),
    ]


class TestSweepPoint:
    def test_needs_exactly_one_of_config_or_family(self):
        cfg = tree_config(MACHINE, pipeline=1, stripe=1)
        with pytest.raises(ValueError):
            SweepPoint(MACHINE, "broadcast")
        with pytest.raises(ValueError):
            SweepPoint(MACHINE, "broadcast", config=cfg, family="mpi")
        with pytest.raises(ValueError):
            SweepPoint(MACHINE, "broadcast", family="nonsense")

    def test_run_matches_serial_runner(self):
        from repro.bench.runner import run_hiccl

        cfg = tree_config(MACHINE, pipeline=1, stripe=1)
        point = SweepPoint(MACHINE, "broadcast", config=cfg,
                           payload_bytes=PAYLOAD)
        direct = run_hiccl(MACHINE, "broadcast", cfg, payload_bytes=PAYLOAD,
                           warmup=0, rounds=1)
        via_point = point.run()
        assert via_point.seconds == direct.seconds
        assert via_point.implementation == direct.implementation

    def test_label_is_informative(self):
        point = SweepPoint(MACHINE, "gather", family="mpi",
                           payload_bytes=PAYLOAD)
        assert "sweeptest" in point.label and "gather" in point.label


class TestRunSweep:
    def test_serial_results_in_input_order(self):
        results = run_sweep(_points(), jobs=1)
        assert len(results) == 4
        assert [m.collective for m in results if m is not None] == [
            "broadcast", "all_reduce", "gather"]
        assert results[3] is None  # NCCL offers no gather (Table 1)

    def test_parallel_matches_serial(self):
        """Workers must merge deterministically: same values, same order."""
        points = _points()
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        assert [(m.implementation, m.seconds) if m else None for m in serial] \
            == [(m.implementation, m.seconds) if m else None for m in parallel]

    def test_workers_share_plans_through_disk_cache(self, tmp_path):
        from repro.core.plancache import SCHEMA_VERSION

        points = _points()[:2]
        run_sweep(points, jobs=2, cache_dir=tmp_path)
        persisted = list(tmp_path.glob(f"v{SCHEMA_VERSION}-*.npz"))
        assert len(persisted) == 2  # one plan per distinct config

        # A second parallel sweep hits the persistent layer instead of
        # re-synthesizing (observable as unchanged file mtimes).
        stamps = {p.name: p.stat().st_mtime_ns for p in persisted}
        run_sweep(points, jobs=2, cache_dir=tmp_path)
        assert {p.name: p.stat().st_mtime_ns
                for p in tmp_path.glob(f"v{SCHEMA_VERSION}-*.npz")} == stamps

    def test_serial_sweep_honors_cache_dir(self, tmp_path):
        from repro.core import plancache
        from repro.core.plancache import SCHEMA_VERSION

        try:
            run_sweep(_points()[:1], jobs=1, cache_dir=tmp_path)
            assert len(list(tmp_path.glob(f"v{SCHEMA_VERSION}-*.npz"))) == 1
        finally:
            plancache.reset()

    def test_unoffered_baseline_is_none_in_both_modes(self):
        point = SweepPoint(generic(2, 2, 1, name="aurora"), "gather",
                           family="vendor", payload_bytes=PAYLOAD)
        assert run_sweep([point], jobs=1) == [None]


class TestGrids:
    def test_hiccl_grid_order(self):
        cfgs = [tree_config(MACHINE, pipeline=1, stripe=1),
                hierarchical_config(MACHINE)]
        grid = hiccl_grid(MACHINE, ["broadcast", "reduce"], cfgs,
                          payloads_bytes=(PAYLOAD,))
        labels = [(p.collective, p.config.name) for p in grid]
        assert labels == [("broadcast", "tree"), ("broadcast", "hierarchical"),
                          ("reduce", "tree"), ("reduce", "hierarchical")]

    def test_fig8_points_cover_every_collective(self):
        machine = perlmutter(nodes=2)
        points = fig8_points(machine, payload_bytes=PAYLOAD)
        per_collective: dict[str, int] = {}
        for p in points:
            per_collective[p.collective] = per_collective.get(p.collective, 0) + 1
        # 2 baselines + 4 HiCCL bars, plus the extra tree bar for bcast/reduce.
        assert set(per_collective) == {
            "broadcast", "reduce", "all_gather", "reduce_scatter",
            "all_reduce", "scatter", "gather", "all_to_all"}
        assert per_collective["broadcast"] == 7
        assert per_collective["all_reduce"] == 6


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="parallel speedup needs >= 4 cores")
def test_cold_parallel_sweep_is_faster():
    """Acceptance: a cold 4-way sweep clearly beats the serial one.

    The target is >= 2x on idle hardware; the assertion uses a 1.3x floor so
    a loaded CI host sharing its cores cannot flake the tier-1 run.
    """
    import time

    machine = perlmutter(nodes=4)
    points = fig8_points(machine, payload_bytes=1 << 26)

    t0 = time.perf_counter()
    run_sweep(points, jobs=4)
    parallel_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_sweep(points, jobs=1)
    serial_s = time.perf_counter() - t0
    assert serial_s / parallel_s >= 1.3
