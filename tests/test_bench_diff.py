"""Unit tests for the consolidated benchmark-diff tool (tools/bench_diff.py).

Synthetic reference/run payloads exercise every rule the CI ``bench-diff``
matrix job relies on: exact-match keys fail on any change, wall-clock keys
fail only past the 20% one-sided threshold, and the warm-cache factor rule
fails only on order-of-magnitude regressions.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_PATH = Path(__file__).resolve().parent.parent / "tools" / "bench_diff.py"
_spec = importlib.util.spec_from_file_location("bench_diff", _PATH)
bench_diff = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = bench_diff
_spec.loader.exec_module(bench_diff)


LOWERING_REF = {
    "workload": "fig8-frontier",
    "ops": 71234,
    "schedule_mbytes": 12.5,
    "cold_lower_seconds": 10.0,
    "cold_simulate_seconds": 5.0,
    "cold_total_seconds": 15.0,
    "reference_unreplicated_total_seconds": 60.0,
    "speedup_vs_unreplicated": 4.0,
    "warm_total_seconds": 0.001,
}

SIMULATOR_REF = {
    "event_seconds": 8.0,
    "level_seconds": 1.0,
    "speedup": 8.0,
    "makespan_seconds": 0.125,
}

FAULTS_REF = {
    "replan": {
        "healthy_seconds": 0.010,
        "replay_seconds": 0.014,
        "replanned_seconds": 0.012,
        "replan_wall_seconds": 2.0,
    },
    "elastic_shrink": {
        "healthy_seconds": 0.010,
        "shrunk_seconds": 0.011,
        "replan_wall_seconds": 1.0,
    },
}

PLANSERVICE_REF = {
    "outcomes": {
        "seed": 2025,
        "plans": {"delta/all_gather@16M": {"winner": [3, 4],
                                           "plan_seconds": 0.009}},
    },
    "warm_start": {
        "pairs": [{"system": "delta", "cold_winner": "a", "warm_winner": "a",
                   "cold_plan_seconds": 0.01, "warm_plan_seconds": 0.002,
                   "warm_wall_seconds": 0.5}],
    },
    "warm_hits": {"hit_p50_seconds": 0.001},
    "throughput": {"runs": [{"clients": 1, "requests_per_second": 100.0},
                            {"clients": 8, "requests_per_second": 420.0}]},
}


def _run(bench, ref, new):
    return bench_diff.run_diff(bench, ref, new)


# ------------------------------------------------------------------ lowering
def test_lowering_identical_run_passes():
    assert _run("lowering", LOWERING_REF, copy.deepcopy(LOWERING_REF)) == []


def test_lowering_exact_keys_fail_on_any_change():
    new = copy.deepcopy(LOWERING_REF)
    new["ops"] += 1
    failures = _run("lowering", LOWERING_REF, new)
    assert any("ops" in f for f in failures)


def test_lowering_wall_clock_tolerates_small_drift():
    new = copy.deepcopy(LOWERING_REF)
    new["cold_total_seconds"] *= 1.15  # within the 20% budget
    assert _run("lowering", LOWERING_REF, new) == []


def test_lowering_wall_clock_fails_past_threshold():
    new = copy.deepcopy(LOWERING_REF)
    new["cold_total_seconds"] *= 1.30
    failures = _run("lowering", LOWERING_REF, new)
    assert any("cold_total_seconds" in f for f in failures)


def test_lowering_speedup_drift_is_one_sided():
    faster = copy.deepcopy(LOWERING_REF)
    faster["speedup_vs_unreplicated"] *= 2.0  # better: never fails
    assert _run("lowering", LOWERING_REF, faster) == []
    slower = copy.deepcopy(LOWERING_REF)
    slower["speedup_vs_unreplicated"] *= 0.5
    assert _run("lowering", LOWERING_REF, slower) != []


def test_lowering_warm_rule_uses_factor_not_percent():
    noisy = copy.deepcopy(LOWERING_REF)
    noisy["warm_total_seconds"] *= 5.0  # timer noise: passes
    assert _run("lowering", LOWERING_REF, noisy) == []
    regressed = copy.deepcopy(LOWERING_REF)
    regressed["warm_total_seconds"] *= 20.0  # cache regression: fails
    assert _run("lowering", LOWERING_REF, regressed) != []


# ----------------------------------------------------------------- simulator
def test_simulator_makespan_must_not_move():
    new = copy.deepcopy(SIMULATOR_REF)
    new["makespan_seconds"] += 1e-9
    failures = _run("simulator", SIMULATOR_REF, new)
    assert any("makespan" in f for f in failures)


def test_simulator_speedup_fails_only_when_lower():
    better = copy.deepcopy(SIMULATOR_REF)
    better["speedup"] = 16.0
    assert _run("simulator", SIMULATOR_REF, better) == []
    worse = copy.deepcopy(SIMULATOR_REF)
    worse["speedup"] = 5.0
    assert "speedup" in _run("simulator", SIMULATOR_REF, worse)


# -------------------------------------------------------------------- faults
def test_faults_simulated_times_are_exact():
    new = copy.deepcopy(FAULTS_REF)
    new["replan"]["replay_seconds"] *= 1.0001
    failures = _run("faults", FAULTS_REF, new)
    assert any("replay_seconds" in f for f in failures)


def test_faults_wall_seconds_keys_are_exempt_from_exact_match():
    new = copy.deepcopy(FAULTS_REF)
    new["replan"]["replan_wall_seconds"] *= 1.15
    new["elastic_shrink"]["replan_wall_seconds"] *= 0.5  # faster is fine
    assert _run("faults", FAULTS_REF, new) == []


def test_faults_replan_wall_drift_fails_past_threshold():
    new = copy.deepcopy(FAULTS_REF)
    new["elastic_shrink"]["replan_wall_seconds"] *= 1.5
    failures = _run("faults", FAULTS_REF, new)
    assert any("elastic_shrink.replan_wall_seconds" in f for f in failures)


# --------------------------------------------------------------- planservice
def test_planservice_identical_run_passes():
    assert _run("planservice", PLANSERVICE_REF,
                copy.deepcopy(PLANSERVICE_REF)) == []


def test_planservice_outcome_change_fails():
    new = copy.deepcopy(PLANSERVICE_REF)
    new["outcomes"]["plans"]["delta/all_gather@16M"]["winner"] = [4, 3]
    failures = _run("planservice", PLANSERVICE_REF, new)
    assert any("outcomes[plans]" in f for f in failures)


def test_planservice_warm_start_winner_is_exact_but_wall_is_free():
    new = copy.deepcopy(PLANSERVICE_REF)
    new["warm_start"]["pairs"][0]["warm_wall_seconds"] = 99.0  # not diffed
    assert _run("planservice", PLANSERVICE_REF, new) == []
    new["warm_start"]["pairs"][0]["warm_winner"] = "b"
    failures = _run("planservice", PLANSERVICE_REF, new)
    assert any("warm_winner" in f for f in failures)


def test_planservice_throughput_drift_is_one_sided():
    new = copy.deepcopy(PLANSERVICE_REF)
    new["throughput"]["runs"][1]["requests_per_second"] = 300.0  # -29%
    failures = _run("planservice", PLANSERVICE_REF, new)
    assert any("8-client" in f for f in failures)
    faster = copy.deepcopy(PLANSERVICE_REF)
    faster["throughput"]["runs"][1]["requests_per_second"] = 900.0
    assert _run("planservice", PLANSERVICE_REF, faster) == []


# ----------------------------------------------------------------------- CLI
def test_cli_roundtrip(tmp_path, capsys):
    ref = tmp_path / "ref.json"
    new = tmp_path / "new.json"
    ref.write_text(json.dumps(SIMULATOR_REF))
    new.write_text(json.dumps(SIMULATOR_REF))
    assert bench_diff.main(["simulator", "--ref", str(ref),
                            "--new", str(new)]) == 0
    regressed = dict(SIMULATOR_REF, speedup=1.0)
    new.write_text(json.dumps(regressed))
    assert bench_diff.main(["simulator", "--ref", str(ref),
                            "--new", str(new)]) == 1
    assert "regressed" in capsys.readouterr().err


SERVING_REF = {
    "arrivals": 1000,
    "seed": 0,
    "scenarios": [
        {
            "system": "delta",
            "scenario": "prefill_decode",
            "latency": {
                "classes": [{"name": "prefill", "count": 250,
                             "p50": 7.8e-05, "p90": 8.1e-05, "p99": 8.4e-05,
                             "mean": 7.9e-05, "worst": 9.0e-05}],
                "overall": {"name": "overall", "count": 1000,
                            "p50": 5.7e-05, "p90": 7.9e-05, "p99": 8.3e-05,
                            "mean": 6.0e-05, "worst": 9.0e-05},
            },
            "replay_stats": {"arrivals": 1000, "accepted": 997,
                             "rejected": 3, "fallbacks": 1,
                             "merged_requests": 3, "replayed": 997,
                             "epochs": 960},
            "bit_identical": True,
            "speedup": 12.0,
        },
    ],
}


def test_serving_identical_run_passes():
    assert _run("serving", SERVING_REF, copy.deepcopy(SERVING_REF)) == []


def test_serving_latency_percentiles_are_exact():
    new = copy.deepcopy(SERVING_REF)
    new["scenarios"][0]["latency"]["overall"]["p99"] *= 1.0001
    failures = _run("serving", SERVING_REF, new)
    assert any("latency percentiles" in f for f in failures)


def test_serving_replay_counters_are_exact():
    new = copy.deepcopy(SERVING_REF)
    new["scenarios"][0]["replay_stats"]["fallbacks"] += 1
    failures = _run("serving", SERVING_REF, new)
    assert any("replay counters" in f for f in failures)


def test_serving_bit_identity_is_mandatory():
    new = copy.deepcopy(SERVING_REF)
    new["scenarios"][0]["bit_identical"] = False
    failures = _run("serving", SERVING_REF, new)
    assert any("bit-identity" in f for f in failures)


def test_serving_speedup_drift_is_one_sided():
    faster = copy.deepcopy(SERVING_REF)
    faster["scenarios"][0]["speedup"] = 24.0
    assert _run("serving", SERVING_REF, faster) == []
    noisy = copy.deepcopy(SERVING_REF)
    noisy["scenarios"][0]["speedup"] = 10.5  # -12.5%: within budget
    assert _run("serving", SERVING_REF, noisy) == []
    slower = copy.deepcopy(SERVING_REF)
    slower["scenarios"][0]["speedup"] = 9.0  # -25%: fails
    failures = _run("serving", SERVING_REF, slower)
    assert any("speedup drifted" in f for f in failures)


def test_serving_leg_set_must_match():
    new = copy.deepcopy(SERVING_REF)
    new["scenarios"][0]["scenario"] = "continuous_batch"
    failures = _run("serving", SERVING_REF, new)
    assert any("scenario legs changed" in f for f in failures)


def test_every_ci_matrix_bench_has_a_rule():
    assert sorted(bench_diff.DIFFS) == ["faults", "lowering", "planservice",
                                        "serving", "simulator"]
