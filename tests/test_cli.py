"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_size, build_parser, main


class TestParseSize:
    def test_plain_bytes(self):
        assert _parse_size("4096") == 4096

    def test_suffixes(self):
        assert _parse_size("1K") == 1024
        assert _parse_size("64M") == 64 << 20
        assert _parse_size("2G") == 2 << 30

    def test_fractional(self):
        assert _parse_size("0.5G") == 1 << 29

    def test_lowercase(self):
        assert _parse_size("16m") == 16 << 20


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "broadcast"])
        assert args.system == "perlmutter"
        assert args.nodes == 4
        assert args.topology == "auto"


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("delta", "perlmutter", "frontier", "aurora"):
            assert name in out

    def test_run(self, capsys):
        rc = main(["run", "broadcast", "--system", "perlmutter",
                   "--payload", "16M", "--topology", "tree", "--pipeline", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GB/s" in out and "pipeline(4)" in out

    def test_compare(self, capsys):
        rc = main(["compare", "broadcast", "--system", "delta",
                   "--payload", "16M"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mpi" in out and "hiccl" in out and "bounds:" in out

    def test_lower_dump(self, capsys):
        rc = main(["lower", "all_reduce", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "8M", "--dump"])
        assert rc == 0
        out = capsys.readouterr().out
        for pass_name in ("expand-logic", "hierarchy", "pipelining",
                          "striping", "ring-tree", "channel-binding"):
            assert pass_name in out
        assert "stage(s)" in out and "scratch high-water" in out

    def test_lower_with_optimization_passes(self, capsys):
        rc = main(["lower", "broadcast", "--system", "delta", "--nodes", "2",
                   "--payload", "1M", "--pipeline", "8", "--dump",
                   "--fuse", "--dce"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuse-contiguous" in out and "dead-copy-elim" in out

    def test_tune_staged(self, capsys):
        rc = main(["tune", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "8M", "--top", "3",
                   "--pipelines", "1,8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planning broadcast" in out and "strategy: staged" in out
        assert "pruned analytically" in out
        assert "full-payload evals" in out

    def test_tune_grid_strategy(self, capsys):
        rc = main(["tune", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "4M", "--strategy", "grid",
                   "--pipelines", "1,4", "--no-library-search"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strategy: grid" in out and "best:" in out

    def test_tune_budget_caps_full_evals(self, capsys):
        rc = main(["tune", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "4M", "--budget", "3",
                   "--pipelines", "1,8"])
        assert rc == 0
        assert "3 full-payload evals" in capsys.readouterr().out

    def test_tune_workload_rejects_collective_flags(self, capsys):
        rc = main(["tune", "disjoint_halves", "--workload",
                   "--system", "perlmutter", "--nodes", "2",
                   "--jobs", "4", "--strategy", "grid"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "--jobs" in out and "--strategy" in out
        assert "not applicable with --workload" in out

    def test_tune_rounds_requires_workload(self, capsys):
        rc = main(["tune", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--rounds", "3"])
        assert rc == 2
        assert "--rounds only applies" in capsys.readouterr().out

    def test_tune_workload_mode(self, capsys):
        rc = main(["tune", "disjoint_halves", "--workload",
                   "--system", "perlmutter", "--nodes", "2",
                   "--payload", "2M", "--rounds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "workload-aware tuning" in out
        assert "isolated-tuned makespan" in out and "contended-tuned" in out

    def test_bounds(self, capsys):
        rc = main(["bounds", "--system", "aurora"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "broadcast" in out and "achievable" in out

    def test_gantt(self, capsys):
        rc = main(["gantt", "broadcast", "--system", "perlmutter",
                   "--payload", "4M", "--pipeline", "4", "--width", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "digits = stage" in out and "makespan" in out

    def test_bench_serial(self, capsys):
        rc = main(["bench", "--system", "perlmutter", "--nodes", "2",
                   "--payload", "4M", "--collectives", "broadcast",
                   "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "hiccl-striped" in out
        assert "plan cache:" in out

    def test_bench_parallel_workers(self, capsys):
        rc = main(["bench", "--system", "perlmutter", "--nodes", "2",
                   "--payload", "4M", "--collectives", "broadcast",
                   "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "jobs=2" in out

    def test_workloads_list(self, capsys):
        assert main(["workloads", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fsdp_step", "moe_layer", "llm3d_step",
                     "contention_mix", "disjoint_halves"):
            assert name in out

    def test_workloads_run_named_scenarios(self, capsys):
        rc = main(["workloads", "contention_mix", "disjoint_halves",
                   "--system", "perlmutter", "--nodes", "2",
                   "--payload", "1M"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Workload scenarios (perlmutter)" in out
        assert "contention_mix" in out and "disjoint_halves" in out
        assert "slowdown" in out and "busiest resources" in out

    def test_workloads_unknown_scenario_errors(self):
        from repro.errors import CompositionError

        with pytest.raises(CompositionError, match="unknown scenario"):
            main(["workloads", "not_a_scenario", "--nodes", "2"])

    def test_cache_stats(self, capsys):
        rc = main(["cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan cache" in out and "disk layer" in out

    def test_unknown_system_errors(self):
        with pytest.raises(KeyError):
            main(["bounds", "--system", "summit"])

    def test_machines_lists_aggregates(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Aggregate full systems" in out
        assert "9408 nodes" in out and "10624 nodes" in out

    def test_sim_collective_event(self, capsys):
        rc = main(["sim", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "4M", "--engine", "event"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ops, engine requested 'event', ran 'event'" in out
        assert "makespan" in out and "simulator wall" in out

    def test_sim_contended_collective_falls_back(self, capsys):
        rc = main(["sim", "all_reduce", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "4M", "--engine", "level"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine requested 'level', ran 'event'" in out

    def test_sim_pipeline_runs_levelized(self, capsys):
        rc = main(["sim", "pipeline", "--system", "frontier", "--nodes", "8",
                   "--payload", "1M", "--engine", "level",
                   "--microbatches", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine requested 'level', ran 'level'" in out

    def test_sim_engine_both_prints_comparison(self, capsys):
        rc = main(["sim", "pipeline", "--system", "frontier", "--nodes", "4",
                   "--payload", "1M", "--engine", "both",
                   "--microbatches", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "identical" in out and "True" in out

    def test_sim_auto_engages_level_on_aggregate_system(self, capsys):
        rc = main(["sim", "pipeline", "--system", "aurora-full",
                   "--nodes", "6", "--payload", "256K", "--engine", "auto"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aurora" in out and "ran 'level'" in out

    def test_tune_sweep_rungs(self, capsys):
        rc = main(["tune", "broadcast", "--system", "perlmutter",
                   "--nodes", "2", "--payload", "8M", "--sweep-rungs",
                   "--pipelines", "1,8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "truncated-payload evals" in out and "best:" in out

    def test_tune_workload_rejects_sweep_rungs(self, capsys):
        rc = main(["tune", "disjoint_halves", "--workload",
                   "--system", "perlmutter", "--nodes", "2",
                   "--sweep-rungs"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "--sweep-rungs" in out
        assert "not applicable with --workload" in out
