"""Shared test utilities: numpy reference semantics for every collective."""

from __future__ import annotations

import numpy as np

from repro.core.ops import ReduceOp, reference_reduce

#: send-buffer element count per rank, in units of the chunk size ``count``.
SEND_UNITS = {
    "broadcast": lambda p: p,
    "reduce": lambda p: p,
    "scatter": lambda p: p,
    "gather": lambda p: 1,
    "all_gather": lambda p: 1,
    "reduce_scatter": lambda p: p,
    "all_reduce": lambda p: p,
    "all_to_all": lambda p: p,
}

RECV_UNITS = {
    "broadcast": lambda p: p,
    "reduce": lambda p: p,
    "scatter": lambda p: 1,
    "gather": lambda p: p,
    "all_gather": lambda p: p,
    "reduce_scatter": lambda p: 1,
    "all_reduce": lambda p: p,
    "all_to_all": lambda p: p,
}

#: Ranks whose recv buffer is defined by the collective's semantics.
#: ``None`` means every rank.
DEFINED_RANKS = {
    "broadcast": None,
    "reduce": (0,),
    "scatter": None,
    "gather": (0,),
    "all_gather": None,
    "reduce_scatter": None,
    "all_reduce": None,
    "all_to_all": None,
}


def send_shape(name: str, p: int, count: int) -> tuple[int, int]:
    return (p, SEND_UNITS[name](p) * count)


def make_input(name: str, p: int, count: int, rng, dtype=np.float32) -> np.ndarray:
    """Deterministic integer-valued input (exact float arithmetic)."""
    shape = send_shape(name, p, count)
    return rng.integers(-8, 9, size=shape).astype(dtype)


def expected_output(name: str, data: np.ndarray, count: int,
                    op: ReduceOp = ReduceOp.SUM, root: int = 0) -> np.ndarray:
    """Reference recv contents per rank for ``name`` with input ``data``."""
    p = data.shape[0]
    if name == "broadcast":
        return np.tile(data[root], (p, 1))
    if name == "reduce":
        out = np.zeros_like(data)
        out[root] = reference_reduce(op, list(data))
        return out
    if name == "scatter":
        return data[root].reshape(p, count)
    if name == "gather":
        out = np.zeros((p, p * count), dtype=data.dtype)
        out[root] = data.reshape(-1)
        return out
    if name == "all_gather":
        return np.tile(data.reshape(-1), (p, 1))
    if name == "reduce_scatter":
        return reference_reduce(op, list(data)).reshape(p, count)
    if name == "all_reduce":
        return np.tile(reference_reduce(op, list(data)), (p, 1))
    if name == "all_to_all":
        return data.reshape(p, p, count).transpose(1, 0, 2).reshape(p, p * count)
    raise KeyError(name)


def check_collective(run, name: str, data: np.ndarray, count: int,
                     op: ReduceOp = ReduceOp.SUM, root: int = 0) -> None:
    """Execute ``run`` (Communicator or RawCollective) and verify outputs."""
    run.set_all("sendbuf", data)
    run.run()
    got = run.gather_all("recvbuf")
    expected = expected_output(name, data, count, op=op, root=root)
    defined = DEFINED_RANKS[name]
    if defined is None:
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)
    else:
        for rank in defined:
            np.testing.assert_allclose(got[rank], expected[rank],
                                       rtol=1e-5, atol=1e-5)
