"""Tests for the analytic model (Equations 1-2) and Table 3 bounds."""

from __future__ import annotations

import math

import pytest

from repro import machines
from repro.machine.machines import generic
from repro.model.bounds import (
    BOUND_KIND,
    achievable_bound,
    empirical_bounds,
    theoretical_bound,
)
from repro.model.perf_model import (
    ModelParams,
    optimal_pipeline_depth,
    ring_asymptote,
    t_ring,
    t_tree,
    tree_asymptote,
)

GB = 1e9


def params(nodes=4, m=1, alpha=10e-6, k=4, f=25.0, intra=0.0):
    return ModelParams(alpha=alpha, nic_count=k, nic_bandwidth=f,
                       nodes=nodes, pipeline=m, intra_coefficient=intra)


class TestEquations:
    def test_ring_deep_pipeline_approaches_kf(self):
        """Equation 1: m -> inf gives t ~ d / (k f), O(1) in node count."""
        d = 8 * GB
        deep = t_ring(d, params(nodes=4, m=512, alpha=0.0))
        assert deep == pytest.approx(d / (100 * GB) * (4 + 512 - 2) / 512, rel=1e-6)
        # Node count barely matters at depth.
        t4 = t_ring(d, params(nodes=4, m=512, alpha=0.0))
        t64 = t_ring(d, params(nodes=64, m=512, alpha=0.0))
        assert t64 / t4 < 1.15

    def test_tree_pays_log_n(self):
        """Equation 2: t_tree ~ d log2(n) / (k f)."""
        d = 8 * GB
        t4 = t_tree(d, params(nodes=4, alpha=0.0))
        t16 = t_tree(d, params(nodes=16, alpha=0.0))
        assert t16 / t4 == pytest.approx(math.log2(16) / math.log2(4), rel=1e-6)

    def test_ring_twice_as_fast_as_tree_on_four_nodes(self):
        """Section 4.6: 'On four nodes ring is theoretically two times
        faster than tree.'"""
        d = 8 * GB
        ring = t_ring(d, params(nodes=4, m=1024, alpha=0.0))
        tree = t_tree(d, params(nodes=4, m=1, alpha=0.0))
        assert tree / ring == pytest.approx(2.0, rel=0.05)

    def test_latency_penalizes_deep_pipelines(self):
        """Small message + deep pipeline -> latency-dominated (Figure 9)."""
        d = 64 * 1024  # 64 KB
        shallow = t_ring(d, params(m=1, alpha=20e-6))
        deep = t_ring(d, params(m=128, alpha=20e-6))
        assert deep > shallow

    def test_tree_latency_scales_with_depth(self):
        d = 1024.0
        t1 = t_tree(d, params(m=1, alpha=20e-6))
        t32 = t_tree(d, params(m=32, alpha=20e-6))
        assert t32 > t1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            t_ring(1.0, params(m=0))
        with pytest.raises(ValueError):
            t_tree(1.0, params(nodes=0))

    def test_asymptotes(self):
        p = params(nodes=16)
        assert ring_asymptote(p) == 100.0
        assert tree_asymptote(p) == pytest.approx(100.0 / 4)

    def test_optimal_depth_grows_with_message_size(self):
        small = optimal_pipeline_depth(32 * 1024, params(), "ring")
        large = optimal_pipeline_depth(8 * GB, params(), "ring")
        assert large >= small
        assert large >= 32


class TestTable3Bounds:
    def test_perlmutter_values(self):
        """Explicit Table 3 arithmetic for p=16, g=4, k=4, f=25."""
        m = machines.perlmutter(nodes=4)
        assert theoretical_bound(m, "broadcast") == 100.0
        assert theoretical_bound(m, "gather") == pytest.approx(100 * 16 / 12)
        assert theoretical_bound(m, "all_reduce") == pytest.approx(100 * 16 / 24)
        assert theoretical_bound(m, "all_to_all") == pytest.approx(100 * 16 / (4 * 12))

    def test_single_node_unbounded(self):
        m = machines.perlmutter(nodes=1)
        assert theoretical_bound(m, "broadcast") == float("inf")

    def test_achievable_scales_by_binding(self):
        m = machines.aurora(nodes=4)
        assert achievable_bound(m, "broadcast") == pytest.approx(
            theoretical_bound(m, "broadcast") * 0.75
        )
        m2 = machines.perlmutter(nodes=4)
        assert achievable_bound(m2, "broadcast") == theoretical_bound(m2, "broadcast")

    def test_bound_kind_covers_all_collectives(self):
        import repro

        assert set(BOUND_KIND) == set(repro.COLLECTIVES)


class TestEmpiricalBounds:
    def test_below_theoretical(self):
        """Measured fabric ceilings sit below spec-sheet numbers (6.3.5)."""
        m = machines.perlmutter(nodes=2)
        emp = empirical_bounds(m)
        assert emp.unidirectional < m.node_bandwidth
        assert emp.bidirectional <= emp.unidirectional * 1.01

    def test_unidirectional_scales_with_nics(self):
        one = generic(2, 4, 1, name="n1")
        four = generic(2, 4, 4, name="n4")
        assert (empirical_bounds(four).unidirectional
                > 2.5 * empirical_bounds(one).unidirectional)

    def test_frontier_intra_is_the_bottleneck(self):
        """Section 6.3.5's surprise: intra-node below inter-node on Frontier."""
        m = machines.frontier(nodes=2)
        emp = empirical_bounds(m)
        assert emp.intra_node < emp.unidirectional

    def test_perlmutter_intra_comfortably_above(self):
        m = machines.perlmutter(nodes=2)
        emp = empirical_bounds(m)
        assert emp.intra_node > emp.unidirectional

    def test_aurora_capped_by_binding(self):
        m = machines.aurora(nodes=2)
        emp = empirical_bounds(m)
        # Round-robin ceiling: no more than ~75% of the rated 200 GB/s.
        assert emp.unidirectional <= 0.78 * m.node_bandwidth
