"""Bound soundness: the invariants the planner's pruning correctness rests on.

Two claims, asserted for every Table 2 collective on both committed machine
models (Perlmutter and Delta) across the planner's entire candidate space —
every hierarchy, library vector, stripe, ring, and pipeline depth:

1. simulated throughput never exceeds the Table 3 theoretical bound;
2. the analytic pruning score (:func:`repro.planner.lower_bound_seconds`)
   is a true lower bound on the simulated time.

If either ever fails, the staged search could discard a candidate that would
have won, so these tests are the planner's license to prune.
"""

from __future__ import annotations

import pytest

from repro.core.communicator import Communicator
from repro.core.composition import FIGURE8_ORDER, compose
from repro.errors import HicclError
from repro.machine.machines import by_name
from repro.model.bounds import theoretical_bound
from repro.planner import SearchSpace, analyze_program, lower_bound_seconds

#: Total payload per collective (1 MiB per rank pair keeps this suite fast
#: while staying far above the latency floor).
PAYLOAD_BYTES = 1 << 22

SYSTEMS = ("perlmutter", "delta")

#: Relative slack for float accumulation; the invariants are strict.
RTOL = 1e-9


def _simulated(machine, program, candidate) -> float | None:
    comm = Communicator(machine, materialize=False)
    comm.program = program
    try:
        comm.init(**candidate.init_kwargs())
    except HicclError:
        return None
    return comm.timing.elapsed


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("collective", FIGURE8_ORDER)
def test_bounds_hold_across_the_whole_space(system, collective):
    machine = by_name(system, nodes=2)
    space = SearchSpace.build(machine, pipelines=(1, 8))
    count = max(1, PAYLOAD_BYTES // (machine.world_size * 4))
    payload = count * machine.world_size * 4
    base = Communicator(machine, materialize=False)
    compose(base, collective, count)
    traffic = analyze_program(base.program, machine, 4)
    bound = theoretical_bound(machine, collective)
    checked = 0
    for candidate in space.candidates():
        seconds = _simulated(machine, base.program, candidate)
        if seconds is None:
            continue
        checked += 1
        throughput = payload / 1.0e9 / seconds
        assert throughput <= bound * (1 + RTOL), (
            f"{candidate.describe()} simulates {throughput:.2f} GB/s above "
            f"the Table 3 bound {bound:.2f} GB/s"
        )
        score = lower_bound_seconds(
            traffic, machine, candidate,
            collective=collective, payload_bytes=payload,
        )
        assert score <= seconds * (1 + RTOL), (
            f"{candidate.describe()}: pruning score {score * 1e3:.4f} ms "
            f"exceeds simulated {seconds * 1e3:.4f} ms — pruning would be "
            "unsound"
        )
    # The space must have been meaningfully exercised.
    assert checked >= 20


@pytest.mark.parametrize("system", SYSTEMS)
def test_score_is_positive_and_candidate_sensitive(system):
    """Deeper pipelines can only raise the analytic floor, never lower it
    below the bandwidth term, and the score is strictly positive."""
    machine = by_name(system, nodes=2)
    space = SearchSpace.build(machine, pipelines=(1, 32))
    count = max(1, PAYLOAD_BYTES // (machine.world_size * 4))
    base = Communicator(machine, materialize=False)
    compose(base, "broadcast", count)
    traffic = analyze_program(base.program, machine, 4)
    by_key = {c.sort_key(): c for c in space.candidates()}
    for candidate in by_key.values():
        score = lower_bound_seconds(traffic, machine, candidate)
        assert score > 0
        shallow_key = candidate.sort_key()[:-1] + (1,)
        shallow = by_key.get(shallow_key)
        if shallow is not None and candidate.pipeline > 1:
            assert score >= lower_bound_seconds(traffic, machine, shallow)
