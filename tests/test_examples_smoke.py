"""Smoke tests: the fast examples run end-to-end as subprocesses.

The heavyweight examples (Listing 2 on Aurora, the portability sweep) are
exercised by the benchmark harness's equivalent paths; here we keep the
quick ones green so `python examples/<x>.py` never rots.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "verified against numpy"),
    ("custom_sparse_collective.py", "verified"),
    ("trace_visualization.py", "digits = stage"),
    pytest.param("training_step.py", "replicas identical",
                 marks=pytest.mark.slow),
]


@pytest.mark.parametrize("script,marker", FAST_EXAMPLES)
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "listing2_allreduce.py",
        "portability_sweep.py",
        "custom_sparse_collective.py",
        "pipeline_tuning.py",
        "training_step.py",
        "trace_visualization.py",
        "latency_vs_throughput.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}


def test_examples_have_docstrings():
    for path in EXAMPLES.glob("*.py"):
        head = path.read_text().split('"""')
        assert len(head) >= 2 and len(head[1].strip()) > 40, path.name
