"""Tests for library profiles and per-level assignment validation."""

from __future__ import annotations

import math

import pytest

from repro.errors import LibraryAssignmentError
from repro.machine.machines import aurora, frontier, generic, perlmutter
from repro.machine.topology import TreeTopology
from repro.transport.library import DIRECT_LIBRARY, VENDOR_LIBRARY, Library
from repro.transport.profiles import (
    PROFILE_OVERRIDES,
    PROFILES,
    profile,
    validate_level_libraries,
)


class TestLibraryEnum:
    def test_ipc_is_intra_node_only(self):
        assert Library.IPC.intra_node_only
        assert not Library.MPI.intra_node_only
        assert not Library.NCCL.intra_node_only

    def test_vendor_attribution(self):
        assert Library.NCCL.vendor == "nvidia"
        assert Library.RCCL.vendor == "amd"
        assert Library.ONECCL.vendor == "intel"
        assert Library.MPI.vendor is None

    def test_vendor_library_per_system(self):
        assert VENDOR_LIBRARY["perlmutter"] is Library.NCCL
        assert VENDOR_LIBRARY["frontier"] is Library.RCCL
        assert VENDOR_LIBRARY["aurora"] is Library.ONECCL

    def test_direct_library_per_system(self):
        """Section 6.3.2: NCCL on Nvidia systems, MPI on Frontier/Aurora."""
        assert DIRECT_LIBRARY["delta"] is Library.NCCL
        assert DIRECT_LIBRARY["frontier"] is Library.MPI


class TestProfiles:
    def test_every_library_has_profile(self):
        for lib in Library:
            assert lib in PROFILES

    def test_nccl_beats_mpi_latency_and_bandwidth(self):
        nccl, mpi = profile(Library.NCCL), profile(Library.MPI)
        assert nccl.alpha_inter < mpi.alpha_inter
        assert nccl.eff_inter > mpi.eff_inter
        assert nccl.kernel_scale < mpi.kernel_scale

    def test_collective_envelopes_worse_than_p2p(self):
        """The paper's premise: MPI p2p is fine, MPI collectives are not."""
        assert profile(Library.MPI_COLL).eff_inter < profile(Library.MPI).eff_inter

    def test_machine_overrides_apply(self):
        base = profile(Library.MPI_COLL)
        delta_prof = profile(Library.MPI_COLL, "delta")
        aurora_prof = profile(Library.MPI_COLL, "aurora")
        assert ("delta", Library.MPI_COLL) in PROFILE_OVERRIDES
        assert delta_prof.eff_inter != base.eff_inter
        # Aurora's MPI is the worst of the four (48x gap, Section 6.3.1).
        assert aurora_prof.eff_inter <= delta_prof.eff_inter

    def test_override_miss_falls_back(self):
        assert profile(Library.NCCL, "no-such-machine") is PROFILES[Library.NCCL]


class TestLevelValidation:
    def test_length_mismatch(self):
        m = perlmutter(2)
        topo = TreeTopology([2, 4], 8)
        with pytest.raises(LibraryAssignmentError):
            validate_level_libraries(m, topo, [Library.NCCL])

    def test_non_library_rejected(self):
        m = perlmutter(2)
        topo = TreeTopology([2, 4], 8)
        with pytest.raises(LibraryAssignmentError):
            validate_level_libraries(m, topo, ["nccl", Library.IPC])

    def test_ipc_across_nodes_rejected(self):
        m = perlmutter(2)
        topo = TreeTopology([2, 4], 8)
        with pytest.raises(LibraryAssignmentError):
            validate_level_libraries(m, topo, [Library.IPC, Library.IPC])

    def test_ipc_within_node_allowed(self):
        m = perlmutter(2)
        topo = TreeTopology([2, 4], 8)
        validate_level_libraries(m, topo, [Library.NCCL, Library.IPC])

    def test_table5_vectors_validate(self):
        cases = [
            (perlmutter(4), [2, 2, 4], [Library.NCCL, Library.NCCL, Library.IPC]),
            (perlmutter(4), [4, 4], [Library.NCCL, Library.IPC]),
            (frontier(4), [2, 2, 4, 2],
             [Library.MPI, Library.MPI, Library.IPC, Library.IPC]),
            (frontier(4), [4, 4, 2], [Library.MPI, Library.IPC, Library.IPC]),
            (aurora(4), [2, 2, 6, 2],
             [Library.MPI, Library.MPI, Library.IPC, Library.IPC]),
            (aurora(4), [4, 6, 2], [Library.MPI, Library.IPC, Library.IPC]),
        ]
        for machine, hierarchy, libs in cases:
            topo = TreeTopology(hierarchy, machine.world_size)
            validate_level_libraries(machine, topo, libs)

    def test_ipc_on_misaligned_block_rejected(self):
        """Blocks of 3 over 2-GPU nodes straddle node boundaries."""
        m = generic(3, 2, 1, name="mis")
        topo = TreeTopology([2, 3], 6)
        with pytest.raises(LibraryAssignmentError):
            validate_level_libraries(m, topo, [Library.MPI, Library.IPC])
