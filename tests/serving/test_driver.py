"""Serving driver tests: replay-vs-brute-force differential, engine units.

The load-bearing property of the replay fast path (DESIGN.md Section 14):
for any seeded trace, the streaming engine's per-request latencies are
**float-for-float identical** to one merged brute-force ``simulate_workload``
over the whole trace — certified replays reproduce the event engine's
arithmetic exactly, and contended epochs fall back *through* the event
engine, so the equality is ``==``, not ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import arrival_trace
from repro.analysis import validate_trace as validate_chrome_trace
from repro.errors import CompositionError, InitializationError
from repro.machine.machines import delta
from repro.serving import (
    SERVING_SCENARIOS,
    Arrival,
    applicable_serving_scenarios,
    brute_force_latencies,
    poisson_trace,
    run_serving_scenario,
    simulate_serving,
    validate_trace,
)
from repro.simulator.serving import ServingEngine

MACHINE = delta(nodes=2)
PAYLOAD = 1 << 16  # small payloads keep the merged oracle quick
SCENARIOS = tuple(SERVING_SCENARIOS)


@pytest.fixture(scope="module")
def built():
    """Classes and mix weights per scenario (compiled once per session)."""
    return {name: SERVING_SCENARIOS[name].build(MACHINE, PAYLOAD)
            for name in SCENARIOS}


class TestDifferential:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_replay_is_bit_identical_to_merged_brute_force(self, built, name):
        classes, weights = built[name]
        trace = poisson_trace(400.0, 200, weights, seed=7)
        replay = simulate_serving(MACHINE, classes, trace, name=name)
        merged = brute_force_latencies(MACHINE, classes, trace,
                                       engine="event")
        assert np.array_equal(replay.latencies, merged)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_contended_trace_agrees_through_the_fallback(self, built, name):
        # Mean inter-arrival gap of 10us is far below the request latencies,
        # so epochs pile up and the certificate must reject some arrivals.
        classes, weights = built[name]
        trace = poisson_trace(100_000.0, 120, weights, seed=3)
        replay = simulate_serving(MACHINE, classes, trace,
                                  fallback_engine="event", name=name)
        merged = brute_force_latencies(MACHINE, classes, trace,
                                       engine="event")
        assert replay.stats["fallbacks"] > 0
        engines = {d["engine"] for d in replay.requests_detail}
        assert "event" in engines  # some requests went through the fallback
        assert np.array_equal(replay.latencies, merged)

    def test_merged_mode_is_the_oracle(self, built):
        classes, weights = built["prefill_decode"]
        trace = poisson_trace(400.0, 64, weights, seed=1)
        merged = simulate_serving(MACHINE, classes, trace, mode="merged")
        oracle = brute_force_latencies(MACHINE, classes, trace)
        assert np.array_equal(merged.latencies, oracle)

    def test_replay_counters_are_consistent(self, built):
        classes, weights = built["continuous_batch"]
        trace = poisson_trace(400.0, 150, weights, seed=5)
        result = simulate_serving(MACHINE, classes, trace)
        stats = result.stats
        assert stats["arrivals"] == len(trace) == result.arrivals
        assert stats["replayed"] + stats["merged_requests"] == len(trace)
        assert stats["replayed"] <= stats["accepted"]
        assert stats["rejected"] + stats["accepted"] <= stats["arrivals"]


class TestSummaries:
    def test_percentile_ladder_and_class_partition(self, built):
        classes, weights = built["prefill_decode"]
        trace = poisson_trace(400.0, 128, weights, seed=2)
        result = simulate_serving(MACHINE, classes, trace)
        assert sum(s.count for s in result.classes) == len(trace)
        for s in (*result.classes, result.overall):
            assert 0.0 < s.p50 <= s.p90 <= s.p99 <= s.worst
        assert result.summary_for("decode").name == "decode"
        with pytest.raises(KeyError):
            result.summary_for("no-such-class")

    def test_describe_is_deterministic(self, built):
        classes, weights = built["continuous_batch"]
        trace = poisson_trace(400.0, 96, weights, seed=4)
        first = simulate_serving(MACHINE, classes, trace)
        second = simulate_serving(MACHINE, classes, trace)
        assert first.describe() == second.describe()

    def test_unknown_mode_rejected(self, built):
        classes, weights = built["prefill_decode"]
        trace = poisson_trace(400.0, 4, weights, seed=0)
        with pytest.raises(InitializationError, match="mode"):
            simulate_serving(MACHINE, classes, trace, mode="turbo")


class TestServingEngine:
    def test_arrivals_must_be_nondecreasing(self, built):
        classes, _ = built["prefill_decode"]
        engine = ServingEngine(MACHINE, [rc.template for rc in classes])
        engine.submit(0, 1.0)
        with pytest.raises(ValueError, match="nondecreasing"):
            engine.submit(0, 0.5)

    def test_submit_after_finish_raises(self, built):
        classes, _ = built["prefill_decode"]
        engine = ServingEngine(MACHINE, [rc.template for rc in classes])
        engine.submit(0, 0.0)
        engine.finish()
        with pytest.raises(RuntimeError, match="finish"):
            engine.submit(0, 1.0)

    def test_finish_is_idempotent(self, built):
        classes, _ = built["prefill_decode"]
        engine = ServingEngine(MACHINE, [rc.template for rc in classes])
        engine.submit(1, 0.0)
        first = engine.finish()
        second = engine.finish()
        assert first.requests == second.requests

    def test_scenario_templates_are_replayable(self, built):
        for classes, _ in built.values():
            for rc in classes:
                assert rc.template.replayable, rc.name


class TestArrivals:
    def test_poisson_trace_is_seed_deterministic(self):
        weights = {"a": 2.0, "b": 1.0}
        assert poisson_trace(50.0, 32, weights, seed=9) == \
            poisson_trace(50.0, 32, weights, seed=9)
        assert poisson_trace(50.0, 32, weights, seed=9) != \
            poisson_trace(50.0, 32, weights, seed=10)

    def test_poisson_trace_is_ordered_and_typed(self):
        trace = poisson_trace(50.0, 64, {"x": 1.0, "y": 3.0}, seed=0)
        times = [a.time for a in trace]
        assert times == sorted(times)
        assert {a.request_class for a in trace} <= {"x", "y"}

    def test_poisson_trace_validation(self):
        with pytest.raises(InitializationError, match="rate"):
            poisson_trace(0.0, 4, {"a": 1.0})
        with pytest.raises(InitializationError, match="count"):
            poisson_trace(1.0, -1, {"a": 1.0})
        with pytest.raises(InitializationError, match="class"):
            poisson_trace(1.0, 4, {})
        with pytest.raises(InitializationError, match="weights"):
            poisson_trace(1.0, 4, {"a": 0.0})

    def test_validate_trace_rejects_bad_traces(self):
        good = (Arrival(0.0, "a"), Arrival(1.0, "a"))
        assert validate_trace(good, {"a"}) == good
        with pytest.raises(InitializationError, match="nondecreasing"):
            validate_trace((Arrival(1.0, "a"), Arrival(0.0, "a")), {"a"})
        with pytest.raises(InitializationError, match="unknown"):
            validate_trace((Arrival(0.0, "zz"),), {"a"})


class TestScenarioRegistry:
    def test_both_scenarios_fit_committed_machines(self):
        assert applicable_serving_scenarios(MACHINE) == list(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(CompositionError, match="unknown serving"):
            run_serving_scenario("nope", MACHINE)

    def test_single_node_machine_is_rejected(self):
        with pytest.raises(CompositionError, match="nodes"):
            run_serving_scenario("prefill_decode", delta(nodes=1))

    def test_run_serving_scenario_smoke(self):
        result = run_serving_scenario("prefill_decode", MACHINE, arrivals=48,
                                      payload_bytes=PAYLOAD)
        assert result.arrivals == 48
        assert result.mode == "replay"
        assert len(result.requests_detail) == 48


class TestArrivalTraceExport:
    def test_export_validates_and_spans_every_request(self):
        doc = arrival_trace("prefill_decode", MACHINE, arrivals=32,
                            payload_bytes=PAYLOAD)
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 32
        assert doc["otherData"]["scenario"] == "prefill_decode"
        assert doc["otherData"]["p99_seconds"] >= doc["otherData"]["p50_seconds"]
