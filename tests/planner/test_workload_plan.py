"""Workload-aware planning tests: contended tuning of communicator groups."""

from __future__ import annotations

import pytest

from repro.errors import CompositionError
from repro.machine.machines import by_name
from repro.planner import group_shortlist, plan_workload
from repro.planner.space import PlanCandidate, policy_libraries
from repro.workloads.scenarios import build_scenario, tune_scenario
from repro.workloads.workload import Workload

PAYLOAD = 1 << 21  # 2 MiB keeps the descent quick


def small_workload(system="delta", name="contention_mix"):
    return build_scenario(name, by_name(system, nodes=2), PAYLOAD)


class TestWorkloadAccessors:
    def test_entries_round_trip(self):
        wl = small_workload()
        entries = wl.entries()
        assert [e[1] for e in entries] == wl.job_names
        rebuilt = wl.with_communicators([e[0] for e in entries])
        assert rebuilt.job_names == wl.job_names
        assert rebuilt.run().makespan == pytest.approx(wl.run().makespan)

    def test_with_communicators_checks_length(self):
        wl = small_workload()
        with pytest.raises(CompositionError, match="expected"):
            wl.with_communicators([])


class TestGroupShortlist:
    def test_contains_policy_and_current(self):
        wl = small_workload()
        comm = wl.entries()[0][0]
        shortlist = group_shortlist(comm, pipelines=(1, 4), limit=3)
        assert len(shortlist) >= 2
        machine = comm.machine
        assert any(
            c.libraries == policy_libraries(machine, c.hierarchy,
                                            c.libraries[0])
            for c in shortlist
        )
        current = PlanCandidate(
            hierarchy=tuple(comm.plan.topology.factors),
            libraries=tuple(comm.plan.libraries),
            stripe=comm.plan.stripe,
            ring=comm.plan.ring,
            pipeline=comm.plan.pipeline,
        )
        assert current in shortlist


class TestPlanWorkload:
    def test_never_worse_than_isolated_tuning(self):
        result = plan_workload(small_workload(), pipelines=(1, 4),
                               candidates_per_group=3, rounds=1)
        assert result.tuned.makespan <= result.baseline.makespan
        assert result.improvement >= 1.0
        assert result.stats.groups == 2  # broadcast plan + all-reduce plan
        assert result.stats.workload_sims >= result.stats.groups

    def test_choices_cover_every_job(self):
        wl = small_workload()
        result = plan_workload(wl, pipelines=(1, 4),
                               candidates_per_group=2, rounds=1)
        covered = [job for choice in result.choices for job in choice.jobs]
        assert sorted(covered) == sorted(wl.job_names)
        for choice in result.choices:
            assert choice.chosen in choice.shortlist
            assert choice.isolated_best in choice.shortlist

    def test_deterministic(self):
        a = plan_workload(small_workload(), pipelines=(1, 4),
                          candidates_per_group=3, rounds=1)
        b = plan_workload(small_workload(), pipelines=(1, 4),
                          candidates_per_group=3, rounds=1)
        assert a.tuned.makespan == b.tuned.makespan
        assert [c.chosen for c in a.choices] == [c.chosen for c in b.choices]

    def test_render_reports_comparison(self):
        result = plan_workload(small_workload(), pipelines=(1, 4),
                               candidates_per_group=2, rounds=1)
        text = result.render()
        assert "isolated-tuned makespan" in text
        assert "contended-tuned" in text
        assert "workload simulations" in text

    def test_empty_workload_rejected(self):
        wl = Workload(by_name("delta", nodes=2), "empty")
        with pytest.raises(CompositionError, match="no jobs"):
            plan_workload(wl)


class TestTuneScenario:
    def test_wires_scenario_into_planner(self):
        result = tune_scenario(
            "disjoint_halves", by_name("perlmutter", nodes=2), PAYLOAD,
            pipelines=(1, 4), candidates_per_group=2, rounds=1,
        )
        assert result.name == "disjoint_halves"
        assert result.tuned.makespan <= result.baseline.makespan
        # Disjoint halves share nothing: contention cannot change the choice.
        assert result.improvement == pytest.approx(1.0)
