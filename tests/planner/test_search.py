"""Planner staged-search tests: equivalence, budget, determinism, shim."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Library
from repro.core.autotune import tune
from repro.core.communicator import Communicator
from repro.errors import InitializationError
from repro.machine.machines import by_name, generic
from repro.planner import (
    CollectiveBuilder,
    SearchBudget,
    SearchSpace,
    default_inter_libraries,
    library_vectors,
    plan_collective,
    policy_libraries,
    search_program,
)

PAYLOAD = 1 << 22  # 4 MiB


def small_machine():
    return by_name("perlmutter", nodes=2)


class TestSpace:
    def test_policy_seed_leads_library_vectors(self):
        m = small_machine()
        vectors = library_vectors(m, (2, 4), default_inter_libraries(m))
        assert vectors[0] == policy_libraries(m, (2, 4), Library.NCCL)
        assert len(vectors) > 2  # the searchable dimension actually exists

    def test_grid_is_policy_subset_of_candidates(self):
        m = small_machine()
        space = SearchSpace.build(m, pipelines=(1, 8))
        cands = set(space.candidates())
        grid = space.grid_candidates()
        assert grid and set(grid) <= cands
        assert len(cands) > len(grid)  # library dimension widens the space
        policy = policy_libraries(m, (2, 4), Library.NCCL)
        assert all(
            c.libraries == policy for c in grid if c.hierarchy == (2, 4)
        )

    def test_candidates_are_valid(self):
        m = small_machine()
        for cand in SearchSpace.build(m, pipelines=(1,)).candidates():
            comm = Communicator(m, materialize=False)
            repro.compose(comm, "broadcast", 64)
            comm.init(**cand.init_kwargs())  # must not raise

    def test_no_search_libraries_matches_legacy(self):
        m = small_machine()
        space = SearchSpace.build(m, pipelines=(1, 8),
                                  search_libraries=False)
        assert set(space.candidates()) == set(space.grid_candidates())


class TestStagedSearch:
    @pytest.mark.parametrize("collective", ["broadcast", "all_gather"])
    def test_matches_exhaustive_best(self, collective):
        m = small_machine()
        space = SearchSpace.build(m, pipelines=(1, 8))
        staged = plan_collective(m, collective, PAYLOAD, space=space)
        grid = plan_collective(m, collective, PAYLOAD, space=space,
                               strategy="grid")
        assert staged.best.seconds <= grid.best.seconds * (1 + 1e-12)

    def test_budget_pruning_and_halving_counters(self):
        m = small_machine()
        space = SearchSpace.build(m, pipelines=(1, 4, 16))
        result = plan_collective(m, "broadcast", PAYLOAD, space=space)
        stats = result.stats
        assert stats.generated > stats.grid_size
        assert stats.pruned > 0
        assert stats.truncated_evals > 0
        assert len(stats.rung_sizes) == 2  # both halving rungs ran
        assert stats.rung_sizes[0] >= stats.rung_sizes[1]
        # The headline contract: full-payload simulations on at most a
        # third of the candidates the exhaustive grid search prices.
        assert stats.full_evals * 3 <= stats.grid_size

    def test_deterministic_under_jobs(self):
        m = generic(2, 2, 1, name="det")
        serial = plan_collective(m, "all_gather", 1 << 20, jobs=1)
        parallel = plan_collective(m, "all_gather", 1 << 20, jobs=2)
        assert [(e.candidate, e.seconds) for e in serial.evaluated] == \
            [(e.candidate, e.seconds) for e in parallel.evaluated]
        assert serial.stats.full_evals == parallel.stats.full_evals

    def test_render_reports_counters(self):
        m = generic(2, 2, 1, name="rnd")
        result = plan_collective(m, "broadcast", 1 << 20)
        text = result.render(2)
        assert "pruned analytically" in text
        assert "full-payload evals" in text

    def test_collective_builder_scales_payload(self):
        m = small_machine()
        builder = CollectiveBuilder(m, "broadcast", 4096)
        assert builder(1).max_count() == 4096 * m.world_size
        assert builder(16).max_count() == 256 * m.world_size

    def test_unknown_strategy_rejected(self):
        m = generic(2, 2, 1, name="bad")
        with pytest.raises(InitializationError, match="strategy"):
            plan_collective(m, "broadcast", 1 << 20, strategy="annealing")

    def test_program_without_truncation_stays_in_budget(self):
        m = small_machine()
        comm = Communicator(m, materialize=False)
        repro.compose(comm, "broadcast", 1 << 14)
        space = SearchSpace.build(m, pipelines=(1, 8))
        result = search_program(comm.program, m, space=space)
        assert result.stats.truncated_evals == 0  # no builder, no rungs
        assert result.stats.full_evals * 3 <= result.stats.grid_size


class TestInitTuned:
    def test_picks_and_applies_best_plan(self):
        m = generic(2, 2, 1, name="tun")
        comm = Communicator(m, materialize=False)
        repro.compose(comm, "broadcast", 4096)
        result = comm.init_tuned()
        assert comm.plan is not None
        assert comm.plan.pipeline == result.best.candidate.pipeline
        assert comm.run() == pytest.approx(result.best.seconds)

    def test_requires_composition(self):
        m = generic(2, 2, 1, name="emp")
        comm = Communicator(m, materialize=False)
        with pytest.raises(InitializationError, match="no primitives"):
            comm.init_tuned()

    def test_rejects_double_init(self):
        m = generic(2, 2, 1, name="dbl")
        comm = Communicator(m, materialize=False)
        repro.compose(comm, "broadcast", 256)
        comm.init(hierarchy=[4], library=[Library.MPI])
        with pytest.raises(InitializationError, match="already initialized"):
            comm.init_tuned()


class TestAutotuneShim:
    def _bcast(self, count=1024):
        def fn(comm):
            repro.compose(comm, "broadcast", count)
        return fn

    def test_legacy_signature_unchanged(self):
        m = generic(2, 2, 1, name="shim")
        res = tune(self._bcast(), m, pipelines=(1, 4))
        assert res.best.seconds == min(c.seconds for c in res.candidates)
        kwargs = res.best.init_kwargs()
        assert set(kwargs) == {
            "hierarchy", "library", "stripe", "ring", "pipeline"
        }

    def test_search_libraries_widens_the_grid(self):
        m = small_machine()
        narrow = tune(self._bcast(), m, pipelines=(1,))
        wide = tune(self._bcast(), m, pipelines=(1,), search_libraries=True)
        assert len(wide.candidates) > len(narrow.candidates)
        assert wide.best.seconds <= narrow.best.seconds * (1 + 1e-12)

    def test_staged_strategy_through_shim(self):
        m = small_machine()
        grid = tune(self._bcast(1 << 14), m, pipelines=(1, 8))
        staged = tune(self._bcast(1 << 14), m, pipelines=(1, 8),
                      strategy="staged", search_libraries=True)
        assert staged.best.seconds <= grid.best.seconds * (1 + 1e-12)

    def test_dtype_respected(self):
        m = generic(2, 2, 1, name="dt")
        res = tune(self._bcast(512), m, pipelines=(1,), dtype=np.float64)
        assert res.candidates
