"""Bound soundness and re-plan contracts on degraded (asymmetric) machines.

The healthy bound-soundness suite (``tests/model/test_bound_soundness.py``)
is the planner's license to prune; this file extends it to machines whose
per-resource rates are *asymmetric* — seeded random fault sets (a down NIC,
derated links, stragglers) on both committed machine models:

* :func:`repro.planner.lower_bound_seconds` stays a true lower bound on
  the simulated time for every candidate in the space.  On a degraded
  machine the node floor divides by the *sum of the derated per-NIC
  rates* (egress in time T is at most T times that sum — sound without
  any monotonicity argument), while the endpoint/Table-3 floors keep the
  healthy rates, which only lowers them further;
* :func:`repro.planner.replan` never returns a winner worse than
  replaying the healthy schedule on the degraded machine (the healthy
  candidate is merged into the degraded ranking), and the degraded
  search's own ranking is internally consistent.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import best_config
from repro.bench.runner import payload_count
from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.errors import FaultError, HicclError
from repro.machine.faults import FaultSet
from repro.machine.machines import by_name
from repro.planner import SearchSpace, analyze_program, lower_bound_seconds
from repro.planner.replan import replan

PAYLOAD_BYTES = 1 << 22
SYSTEMS = ("perlmutter", "delta")
SEEDS = (0, 7)
RTOL = 1e-9


def _simulated(machine, program, candidate) -> float | None:
    comm = Communicator(machine, materialize=False)
    comm.program = program
    try:
        comm.init(**candidate.init_kwargs())
    except HicclError:
        return None
    return comm.timing.elapsed


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("collective", ("all_reduce", "broadcast"))
def test_bound_stays_sound_on_degraded_machines(system, seed, collective):
    healthy = by_name(system, nodes=2)
    machine = FaultSet.random(healthy, seed).apply(healthy)
    space = SearchSpace.build(machine, pipelines=(1, 8))
    count = max(1, PAYLOAD_BYTES // (machine.world_size * 4))
    payload = count * machine.world_size * 4
    base = Communicator(machine, materialize=False)
    compose(base, collective, count)
    traffic = analyze_program(base.program, machine, 4)
    checked = 0
    for candidate in space.candidates():
        seconds = _simulated(machine, base.program, candidate)
        if seconds is None:
            continue
        checked += 1
        score = lower_bound_seconds(
            traffic, machine, candidate,
            collective=collective, payload_bytes=payload,
        )
        assert score <= seconds * (1 + RTOL), (
            f"{candidate.describe()} on {machine.describe()}: pruning "
            f"score {score * 1e3:.4f} ms exceeds simulated "
            f"{seconds * 1e3:.4f} ms — degraded pruning would be unsound"
        )
    assert checked >= 20


@pytest.mark.parametrize("system", SYSTEMS)
def test_degraded_bound_never_exceeds_healthy_bound(system):
    """Dropping rates can only *lower* the analytic floor terms that keep
    healthy rates, and the node floor uses the true derated sum — so the
    degraded score must stay a lower bound of the healthy score plus the
    degraded node term.  Cheap sanity: the score stays positive and finite
    for every candidate on a machine with a down NIC."""
    healthy = by_name(system, nodes=2)
    machine = FaultSet(down_nics=((0, 0),)).apply(healthy)
    space = SearchSpace.build(machine, pipelines=(1, 8))
    base = Communicator(machine, materialize=False)
    compose(base, "all_reduce", 1 << 10)
    traffic = analyze_program(base.program, machine, 4)
    for candidate in space.candidates():
        score = lower_bound_seconds(traffic, machine, candidate)
        assert 0 < score < float("inf")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
def test_replan_winner_never_worse_than_replay(system, seed):
    machine = by_name(system, nodes=2)
    faults = FaultSet.random(machine, seed)
    comm = Communicator(machine, materialize=False)
    compose(comm, "all_reduce", payload_count(machine, PAYLOAD_BYTES))
    comm.init(**best_config(machine, "all_reduce").init_kwargs())
    report = replan(comm, faults)
    assert report.replanned_seconds <= report.replay_seconds * (1 + RTOL)
    assert report.replay_seconds >= report.healthy_seconds * (1 - RTOL)
    # The merged ranking is sorted and contains the healthy candidate.
    seconds = [e.seconds for e in report.result.evaluated]
    assert seconds == sorted(seconds)
    assert any(e.candidate == report.healthy_candidate
               for e in report.result.evaluated)
    # The original communicator is untouched by the replan.
    assert comm.machine.faults is None
    assert comm.timing.elapsed == report.healthy_seconds


def test_replan_rejects_drained_nodes():
    machine = by_name("delta", nodes=2)
    comm = Communicator(machine, materialize=False)
    compose(comm, "all_reduce", 1 << 10)
    comm.init(**best_config(machine, "all_reduce").init_kwargs())
    with pytest.raises(FaultError, match="elastic shrink"):
        replan(comm, FaultSet(drained_nodes=(1,)))
