"""Size-classed plan tables: never-worse contract, lookup, round-trips.

The table contract (DESIGN.md Section 14): every per-size-class winner is
warm-started with the single-plan baseline (the winner at the largest,
bandwidth-anchor class), so it can never be worse than that baseline at its
own size class.  Tables round-trip through the plan cache (``("size_class",
name)`` key extras), through JSON (``table_to_dict``/``table_from_dict``),
and through the plan-service ``plan_table`` protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import plancache
from repro.machine.machines import by_name
from repro.planner import (
    DEFAULT_SIZE_CLASSES,
    PlanTable,
    SearchSpace,
    SizeClass,
    evaluate_candidate,
    materialize_entry,
    plan_table,
)
from repro.serving import classes_from_table, poisson_trace, simulate_serving
from repro.service import PlanService, table_from_dict, table_to_dict
from repro.service.protocol import machine_to_dict

SYSTEMS = ("delta", "perlmutter")
CLASSES = (("small", 1 << 14), ("medium", 1 << 18), ("large", 1 << 22))


@pytest.fixture(scope="module")
def tables():
    """One small-space table per committed system (computed once)."""
    out = {}
    for system in SYSTEMS:
        machine = by_name(system, nodes=2)
        space = SearchSpace.build(machine, pipelines=(1, 4),
                                  search_libraries=False)
        out[system] = (machine,
                       plan_table(machine, "all_gather", CLASSES, space=space))
    return out


@pytest.mark.parametrize("system", SYSTEMS)
def test_entries_never_worse_than_single_plan_baseline(tables, system):
    _, table = tables[system]
    assert len(table.entries) == len(CLASSES)
    for entry in table.entries:
        assert entry.plan_seconds <= entry.baseline_seconds * (1 + 1e-12)
    # The largest class *is* the baseline, so there the two coincide.
    anchor = table.entries[-1]
    assert anchor.plan_seconds == anchor.baseline_seconds


@pytest.mark.parametrize("system", SYSTEMS)
def test_entry_for_selects_the_covering_bucket(tables, system):
    _, table = tables[system]
    assert table.entry_for(1).size_class == "small"
    assert table.entry_for(1 << 14).size_class == "small"  # inclusive bound
    assert table.entry_for((1 << 14) + 1).size_class == "medium"
    assert table.entry_for(1 << 30).size_class == "large"  # clamps to anchor


def test_size_class_validation():
    with pytest.raises(ValueError, match="positive"):
        SizeClass("empty", 0)
    machine = by_name("delta", nodes=2)
    from repro.errors import InitializationError
    with pytest.raises(InitializationError, match="size class"):
        plan_table(machine, "all_gather", ())
    with pytest.raises(InitializationError, match="distinct"):
        plan_table(machine, "all_gather", (("a", 64), ("b", 64)))


def test_default_size_classes_are_ascending():
    payloads = [payload for _, payload in DEFAULT_SIZE_CLASSES]
    assert payloads == sorted(payloads) and len(set(payloads)) == 3


@pytest.mark.parametrize("system", SYSTEMS)
def test_table_is_deterministic(tables, system):
    machine, table = tables[system]
    space = SearchSpace.build(machine, pipelines=(1, 4),
                              search_libraries=False)
    again = plan_table(machine, "all_gather", CLASSES, space=space)
    assert again == table


def test_materialize_entry_reprices_the_winner_exactly(tables):
    machine, table = tables["delta"]
    for entry in table.entries:
        comm = materialize_entry(machine, "all_gather", entry)
        assert comm.timing.elapsed == pytest.approx(entry.plan_seconds,
                                                    rel=1e-9)
        # evaluate_candidate goes through the same cache-keyed init.
        seconds = evaluate_candidate(machine, "all_gather",
                                     entry.payload_bytes, entry.candidate,
                                     size_class=entry.size_class)
        assert seconds == comm.timing.elapsed


def test_json_round_trip_preserves_the_table(tables):
    _, table = tables["delta"]
    doc = table_to_dict(table)
    back = table_from_dict(doc)
    assert isinstance(back, PlanTable)
    assert back == table
    assert back.describe() == table.describe()


def test_classes_from_table_serve_a_trace(tables):
    machine, table = tables["delta"]
    classes = classes_from_table(machine, table)
    assert [rc.name for rc in classes] == [e.size_class
                                           for e in table.entries]
    assert all(rc.template.replayable for rc in classes)
    weights = {rc.name: 1.0 for rc in classes}
    trace = poisson_trace(200.0, 32, weights, seed=0)
    result = simulate_serving(machine, classes, trace, name="table")
    assert result.arrivals == 32
    assert np.all(result.latencies > 0.0)


class TestServiceProtocol:
    @pytest.fixture()
    def service(self):
        plancache.configure(disk_dir=None)
        svc = PlanService(jobs=1)
        yield svc
        svc.close()
        plancache.reset()

    def _frame(self, machine, request_id="t1"):
        return {
            "id": request_id,
            "type": "plan_table",
            "machine": machine_to_dict(machine),
            "collective": "all_gather",
            "size_classes": [["small", 1 << 14], ["large", 1 << 20]],
            "options": {"pipelines": [1, 4]},
        }

    def test_plan_table_round_trip_and_cache_hit(self, service):
        machine = by_name("delta", nodes=2)
        cold = service.handle(self._frame(machine))
        assert cold["status"] == "ok" and cold["source"] == "cold"
        table = table_from_dict(cold["table"])
        assert [e.size_class for e in table.entries] == ["small", "large"]
        for entry in table.entries:
            assert entry.plan_seconds <= entry.baseline_seconds * (1 + 1e-12)
        warm = service.handle(self._frame(machine, request_id="t2"))
        assert warm["source"] == "hit"
        assert table_from_dict(warm["table"]) == table

    def test_plan_table_rejects_drained_machines(self, service):
        from repro.machine.faults import FaultSet

        machine = by_name("delta", nodes=2)
        drained = FaultSet(drained_nodes=(1,)).apply(machine)
        response = service.handle(self._frame(drained))
        assert response["status"] == "error"
        assert "drained" in response["message"]

    def test_plan_table_rejects_empty_class_list(self, service):
        machine = by_name("delta", nodes=2)
        frame = self._frame(machine)
        frame["size_classes"] = []
        response = service.handle(frame)
        assert response["status"] == "error"
