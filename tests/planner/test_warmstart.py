"""Warm-started search: sound seeding that can never worsen the winner."""

from __future__ import annotations

import pytest

from repro.core import plancache
from repro.machine.machines import by_name
from repro.planner.search import SearchBudget, plan_collective
from repro.planner.space import PlanCandidate, SearchSpace
from repro.service.similarity import translate_candidate
from repro.transport.library import Library

PAYLOAD = 1 << 22

#: The committed benchmark pairs (donor system/nodes -> target nodes).
PAIRS = (("delta", 4, 3), ("perlmutter", 4, 2))

SPACE_OPTS = {"pipelines": (1, 4), "search_libraries": False}


@pytest.fixture(autouse=True)
def fresh_cache():
    """Memory-only plan cache; keeps timing-free results hermetic."""
    plancache.configure(disk_dir=None)
    yield
    plancache.reset()


def _spaces(system, donor_nodes, target_nodes):
    donor_machine = by_name(system, nodes=donor_nodes)
    target_machine = by_name(system, nodes=target_nodes)
    return (
        donor_machine,
        target_machine,
        SearchSpace.build(donor_machine, **SPACE_OPTS),
        SearchSpace.build(target_machine, **SPACE_OPTS),
    )


@pytest.mark.parametrize("system,donor_nodes,target_nodes", PAIRS)
def test_warm_winner_never_worse_on_committed_pairs(
    system, donor_nodes, target_nodes
):
    """The acceptance contract: warm-started winner <= cold winner."""
    donor_m, target_m, donor_space, target_space = _spaces(
        system, donor_nodes, target_nodes
    )
    donor = plan_collective(
        donor_m, "all_reduce", PAYLOAD, space=donor_space
    ).best.candidate
    seed = translate_candidate(target_space, donor)
    assert seed is not None

    cold = plan_collective(target_m, "all_reduce", PAYLOAD, space=target_space)
    warm = plan_collective(
        target_m, "all_reduce", PAYLOAD, space=target_space,
        warm_start=(seed,),
    )
    assert warm.best.seconds <= cold.best.seconds
    # The warm seed is additional: the finalist list is as long as cold's,
    # so full evaluations grow by at most the number of warm seeds.
    assert warm.stats.full_evals <= (
        cold.stats.full_evals + warm.stats.warm_seeds
    )


def test_warm_seed_outside_space_is_dropped():
    machine = by_name("delta", nodes=2)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    bogus = PlanCandidate(
        hierarchy=(7, 11),
        libraries=(Library.MPI, Library.MPI),
        stripe=13, ring=5, pipeline=3,
    )
    assert bogus not in space.candidates()
    cold = plan_collective(machine, "all_reduce", PAYLOAD, space=space)
    warm = plan_collective(
        machine, "all_reduce", PAYLOAD, space=space, warm_start=(bogus,)
    )
    assert warm.stats.warm_seeds == 0
    assert warm.best.candidate == cold.best.candidate
    assert warm.best.seconds == cold.best.seconds


def test_duplicate_warm_seeds_count_once():
    machine = by_name("delta", nodes=3)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    donor = plan_collective(
        by_name("delta", nodes=4), "all_reduce", PAYLOAD,
        space=SearchSpace.build(by_name("delta", nodes=4), **SPACE_OPTS),
    ).best.candidate
    seed = translate_candidate(space, donor)
    warm = plan_collective(
        machine, "all_reduce", PAYLOAD, space=space,
        warm_start=(seed, seed, seed),
    )
    assert warm.stats.warm_seeds <= 1


def test_warm_search_is_deterministic():
    machine = by_name("delta", nodes=3)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    seed = space.candidates()[-1]
    runs = [
        plan_collective(
            machine, "all_reduce", PAYLOAD, space=space, warm_start=(seed,)
        )
        for _ in range(2)
    ]
    assert runs[0].best.candidate == runs[1].best.candidate
    assert runs[0].best.seconds == runs[1].best.seconds
    assert [e.seconds for e in runs[0].evaluated] == [
        e.seconds for e in runs[1].evaluated
    ]


def test_render_mentions_warm_seeds_only_when_present():
    machine = by_name("delta", nodes=2)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    cold = plan_collective(machine, "all_reduce", PAYLOAD, space=space)
    assert "warm" not in cold.stats.render()

    machine3 = by_name("delta", nodes=3)
    space3 = SearchSpace.build(machine3, **SPACE_OPTS)
    # A seed the policy stage does not already attempt: take the last
    # space candidate and verify via the stats that it was counted.
    warm = plan_collective(
        machine3, "all_reduce", PAYLOAD, space=space3,
        warm_start=(space3.candidates()[-1],),
    )
    if warm.stats.warm_seeds:
        assert "warm seed" in warm.stats.render()


def test_warm_seed_does_not_consume_tight_budget():
    """With max_full=2, a warm seed still leaves two cold finalist slots."""
    machine = by_name("delta", nodes=3)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    budget = SearchBudget(max_full=2)
    cold = plan_collective(
        machine, "all_reduce", PAYLOAD, space=space, budget=budget
    )
    warm = plan_collective(
        machine, "all_reduce", PAYLOAD, space=space, budget=budget,
        warm_start=(space.candidates()[-1],),
    )
    assert warm.best.seconds <= cold.best.seconds
    assert warm.stats.full_evals <= 2 + warm.stats.warm_seeds


def test_grid_strategy_ignores_warm_start():
    machine = by_name("delta", nodes=2)
    space = SearchSpace.build(machine, **SPACE_OPTS)
    result = plan_collective(
        machine, "all_reduce", PAYLOAD, space=space, strategy="grid",
        warm_start=(space.candidates()[0],),
    )
    assert result.stats.warm_seeds == 0
