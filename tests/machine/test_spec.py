"""Tests for machine specs and the Table 4 system models."""

from __future__ import annotations

import pytest

from repro.errors import HierarchyError
from repro.machine.machines import aurora, by_name, delta, frontier, generic, perlmutter
from repro.machine.nic import Binding
from repro.machine.spec import INTER_NODE, INTRA_NODE, SAME_GPU, LevelSpec, MachineSpec


class TestTable4Systems:
    """Node architectures match Table 4."""

    def test_delta(self):
        m = delta(4)
        assert m.gpus_per_node == 4
        assert m.nic_count == 1
        assert m.node_bandwidth == 25.0
        assert m.world_size == 16

    def test_perlmutter(self):
        m = perlmutter(4)
        assert m.gpus_per_node == 4
        assert m.nic_count == 4
        assert m.node_bandwidth == 100.0

    def test_frontier(self):
        m = frontier(4)
        assert m.gpus_per_node == 8  # 4 MI250x x 2 dies
        assert m.nic_count == 4
        assert m.node_bandwidth == 100.0
        assert [lvl.extent for lvl in m.levels] == [4, 2]

    def test_aurora(self):
        m = aurora(4)
        assert m.gpus_per_node == 12  # 6 PVC x 2 tiles
        assert m.nic_count == 8
        assert m.node_bandwidth == 200.0
        assert m.binding is Binding.ROUND_ROBIN

    def test_by_name(self):
        assert by_name("Frontier", nodes=2).world_size == 16
        with pytest.raises(KeyError):
            by_name("summit")

    def test_physical_factors(self):
        assert frontier(8).physical_factors() == [8, 4, 2]
        assert aurora(4).physical_factors() == [4, 6, 2]
        assert perlmutter(2).physical_factors() == [2, 4]


class TestRankGeometry:
    def test_node_of_and_local_index(self):
        m = frontier(2)
        assert m.node_of(0) == 0
        assert m.node_of(8) == 1
        assert m.local_index(11) == 3

    def test_rank_out_of_range(self):
        m = delta(2)
        with pytest.raises(HierarchyError):
            m.node_of(8)

    def test_nic_of_binding(self):
        m = aurora(1)
        # Round-robin: GPU i -> NIC i % 8.
        assert [m.nic_of(i) for i in range(12)] == [i % 8 for i in range(12)]

    def test_frontier_packed_binding(self):
        m = frontier(1)
        assert [m.nic_of(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]


class TestPaths:
    def test_same_gpu(self):
        m = perlmutter(2)
        p = m.path(3, 3)
        assert p.kind == SAME_GPU

    def test_intra_node(self):
        m = perlmutter(2)
        p = m.path(0, 3)
        assert p.kind == INTRA_NODE
        assert p.level_index == 0

    def test_inter_node(self):
        m = perlmutter(2)
        p = m.path(0, 4)
        assert p.kind == INTER_NODE
        assert p.bandwidth == m.nic_bandwidth

    def test_frontier_die_vs_device_paths(self):
        m = frontier(1)
        # GPUs 0,1 share an MI250x (die link); 0,2 cross devices.
        die = m.path(0, 1)
        device = m.path(0, 2)
        assert die.level_index == 1
        assert device.level_index == 0
        assert die.bandwidth > device.bandwidth

    def test_frontier_intra_slower_than_nic_aggregate(self):
        """Section 6.3.5: intra-node is Frontier's bottleneck."""
        m = frontier(1)
        device_bw = m.path(0, 2).bandwidth
        assert device_bw < m.node_bandwidth

    def test_intra_level_requires_same_node(self):
        m = perlmutter(2)
        with pytest.raises(HierarchyError):
            m.intra_level_index(0, 4)


class TestSpecValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(HierarchyError):
            MachineSpec("bad", 0, (LevelSpec("g", 2, 10.0),), 1, 25.0)

    def test_no_levels_rejected(self):
        with pytest.raises(HierarchyError):
            MachineSpec("bad", 2, (), 1, 25.0)

    def test_bad_level_extent(self):
        with pytest.raises(HierarchyError):
            LevelSpec("g", 0, 10.0)

    def test_bad_level_bandwidth(self):
        with pytest.raises(HierarchyError):
            LevelSpec("g", 2, 0.0)

    def test_with_nodes_preserves_architecture(self):
        m = frontier(4)
        big = m.with_nodes(64)
        assert big.nodes == 64
        assert big.gpus_per_node == m.gpus_per_node
        assert big.nic_count == m.nic_count
        assert big.binding == m.binding

    def test_injection_defaults_to_nic(self):
        m = perlmutter(2)
        assert m.injection_bandwidth == m.nic_bandwidth

    def test_delta_injection_capped(self):
        """Delta: one GPU cannot saturate the shared NIC (striping's 1.29x)."""
        m = delta(2)
        assert m.injection_bandwidth < m.nic_bandwidth

    def test_describe_mentions_shape(self):
        text = aurora(4).describe()
        assert "12 GPUs" in text and "8 NIC" in text

    def test_generic_builder(self):
        m = generic(3, 5, 1, name="custom")
        assert m.world_size == 15
        assert m.name == "custom"
