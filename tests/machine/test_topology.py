"""Tests for virtual-hierarchy arithmetic (paper Figure 5)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.machine.topology import TreeTopology, validate_hierarchy


class TestValidation:
    def test_product_must_match(self):
        with pytest.raises(HierarchyError):
            validate_hierarchy([2, 3], 8)

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            validate_hierarchy([], 1)

    def test_non_positive_rejected(self):
        with pytest.raises(HierarchyError):
            validate_hierarchy([2, 0, 4], 0)

    def test_non_integer_rejected(self):
        with pytest.raises(HierarchyError):
            validate_hierarchy([2, 2.5], 5)

    def test_valid_passes(self):
        validate_hierarchy([2, 6, 2], 24)


class TestFigure5Trees:
    """The six factorizations of 24 GPUs shown in Figure 5."""

    @pytest.mark.parametrize(
        "factors",
        [[3, 8], [4, 6], [3, 2, 4], [2, 2, 6], [3, 2, 2, 2], [2, 2, 2, 3]],
    )
    def test_all_figure5_shapes_valid(self, factors):
        topo = TreeTopology(factors, 24)
        assert topo.world_size == 24
        assert topo.num_blocks(topo.depth) == 24
        assert topo.block_size(topo.depth) == 1

    def test_c_324_node_grouping(self):
        """{3, 2, 4}: every aligned run of four ranks is one leaf-level group."""
        topo = TreeTopology([3, 2, 4])
        # Depth 2 blocks have 4 ranks each (the "node" of Figure 5c).
        assert topo.block_size(2) == 4
        assert list(topo.block_ranks(0, 2)) == [0, 1, 2, 3]
        assert list(topo.block_ranks(5, 2)) == [20, 21, 22, 23]
        assert topo.block_of(7, 2) == 1

    def test_e_3222(self):
        topo = TreeTopology([3, 2, 2, 2])
        assert topo.depth == 4
        assert topo.block_size(1) == 8
        assert topo.block_size(2) == 4
        assert topo.block_size(3) == 2
        assert topo.children(0, 0) == [0, 1, 2]
        assert topo.children(1, 1) == [2, 3]


class TestBlocks:
    def test_block_of_at_root(self):
        topo = TreeTopology([2, 3], 6)
        assert all(topo.block_of(r, 0) == 0 for r in range(6))

    def test_block_of_leaf_depth_is_rank(self):
        topo = TreeTopology([2, 3], 6)
        assert [topo.block_of(r, 2) for r in range(6)] == list(range(6))

    def test_block_ranks_out_of_range(self):
        topo = TreeTopology([2, 3], 6)
        with pytest.raises(HierarchyError):
            topo.block_ranks(2, 1)

    def test_children_of_leaf_raises(self):
        topo = TreeTopology([2, 3], 6)
        with pytest.raises(HierarchyError):
            topo.children(0, 2)

    def test_same_block(self):
        topo = TreeTopology([2, 3], 6)
        assert topo.same_block(0, 2, 1)
        assert not topo.same_block(2, 3, 1)


class TestSeparatingDepth:
    def test_adjacent_ranks_separate_deep(self):
        topo = TreeTopology([2, 6, 2], 24)
        assert topo.separating_depth(0, 1) == 3
        assert topo.separating_depth(0, 2) == 2
        assert topo.separating_depth(0, 12) == 1

    def test_identical_ranks_raise(self):
        topo = TreeTopology([2, 3], 6)
        with pytest.raises(HierarchyError):
            topo.separating_depth(3, 3)

    def test_out_of_range_rank(self):
        topo = TreeTopology([2, 3], 6)
        with pytest.raises(HierarchyError):
            topo.separating_depth(0, 6)

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_separating_depth_consistent_with_blocks(self, data):
        factors = data.draw(
            st.lists(st.integers(1, 4), min_size=1, max_size=4).filter(
                lambda f: 2 <= math.prod(f) <= 64
            )
        )
        topo = TreeTopology(factors)
        p = topo.world_size
        a = data.draw(st.integers(0, p - 1))
        b = data.draw(st.integers(0, p - 1).filter(lambda x: x != a))
        d = topo.separating_depth(a, b)
        assert topo.same_block(a, b, d - 1)
        assert not topo.same_block(a, b, d)


class TestPartitionLeaves:
    def test_partition_full_set(self):
        topo = TreeTopology([2, 3], 6)
        groups = topo.partition_leaves(range(6), 1)
        assert groups == {0: [0, 1, 2], 1: [3, 4, 5]}

    def test_partition_sparse_prunes_empty_blocks(self):
        """Tree pruning for custom collectives (Section 4.2)."""
        topo = TreeTopology([4, 2], 8)
        groups = topo.partition_leaves([0, 1, 6], 1)
        assert set(groups) == {0, 3}
        assert groups[0] == [0, 1]
        assert groups[3] == [6]

    def test_partition_preserves_leaf_order(self):
        topo = TreeTopology([2, 4], 8)
        groups = topo.partition_leaves([3, 1, 2], 1)
        assert groups[0] == [3, 1, 2]

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_partition_is_a_partition(self, data):
        factors = data.draw(
            st.lists(st.integers(1, 4), min_size=1, max_size=3).filter(
                lambda f: 2 <= math.prod(f) <= 48
            )
        )
        topo = TreeTopology(factors)
        p = topo.world_size
        leaves = data.draw(
            st.lists(st.integers(0, p - 1), min_size=1, max_size=p, unique=True)
        )
        depth = data.draw(st.integers(0, topo.depth))
        groups = topo.partition_leaves(leaves, depth)
        flattened = [r for blk in groups.values() for r in blk]
        assert sorted(flattened) == sorted(leaves)
        for blk, members in groups.items():
            for r in members:
                assert topo.block_of(r, depth) == blk


class TestAsciiTree:
    def test_mentions_all_levels(self):
        topo = TreeTopology([2, 2], 4)
        art = topo.ascii_tree()
        assert "level 1" in art and "level 2" in art
        assert "{2, 2}" in art
