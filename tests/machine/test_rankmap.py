"""Tests for rank remapping (Section 4.2's rank-order assumption)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Communicator, Library
from repro.errors import HierarchyError
from repro.machine.machines import generic
from repro.machine.rankmap import RankMap, misplacement_penalty, permute_endpoints
from repro.simulator.executor import execute
from repro.simulator.process import MemoryPool


class TestRankMapBasics:
    def test_identity(self):
        rmap = RankMap.identity(6)
        assert rmap.is_identity()
        assert rmap.to_hierarchy(3) == 3
        assert rmap.displaced_fraction() == 0.0

    def test_round_trip(self):
        rmap = RankMap((2, 0, 3, 1))
        for app in range(4):
            assert rmap.to_application(rmap.to_hierarchy(app)) == app

    def test_non_permutation_rejected(self):
        with pytest.raises(HierarchyError):
            RankMap((0, 0, 1))

    def test_out_of_range(self):
        rmap = RankMap.identity(4)
        with pytest.raises(HierarchyError):
            rmap.to_hierarchy(4)

    def test_bulk_translation(self):
        rmap = RankMap((1, 2, 0))
        assert rmap.to_hierarchy_all([0, 2]) == [1, 0]
        assert rmap.to_application_all([1, 0]) == [0, 2]


class TestConstructors:
    def test_round_robin_layout(self):
        machine = generic(2, 3, 1, name="rr")
        rmap = RankMap.from_round_robin(machine)
        # App ranks 0..5 on nodes 0,1,0,1,0,1 -> hierarchy 0,3,1,4,2,5.
        assert rmap.to_hier == (0, 3, 1, 4, 2, 5)
        assert rmap.displaced_fraction() > 0.5

    def test_round_robin_preserves_node_assignment(self):
        machine = generic(4, 4, 1, name="rr2")
        rmap = RankMap.from_round_robin(machine)
        for app in range(16):
            assert machine.node_of(rmap.to_hierarchy(app)) == app % 4

    def test_from_node_lists(self):
        machine = generic(2, 2, 1, name="nl")
        rmap = RankMap.from_node_lists(machine, [1, 0, 1, 0])
        assert machine.node_of(rmap.to_hierarchy(0)) == 1
        assert machine.node_of(rmap.to_hierarchy(1)) == 0

    def test_from_node_lists_overfull_node(self):
        machine = generic(2, 2, 1, name="nl2")
        with pytest.raises(HierarchyError):
            RankMap.from_node_lists(machine, [0, 0, 0, 1])

    def test_from_node_lists_wrong_length(self):
        machine = generic(2, 2, 1, name="nl3")
        with pytest.raises(HierarchyError):
            RankMap.from_node_lists(machine, [0, 1])


class TestPermuteEndpoints:
    def test_semantics_preserved(self):
        """Permuted schedules still move the right data, between relocated
        ranks — verified functionally."""
        machine = generic(2, 2, 1, name="pe")
        comm = Communicator(machine)
        send = comm.alloc(8, "sendbuf")
        recv = comm.alloc(8, "recvbuf")
        comm.add_multicast(send, recv, 8, 0, [1, 2, 3])
        comm.init(hierarchy=[2, 2], library=[Library.MPI, Library.MPI])
        rmap = RankMap((1, 0, 3, 2))
        permuted = permute_endpoints(comm.schedule, rmap.to_hierarchy)
        pool = MemoryPool(4)
        pool.alloc_symmetric("sendbuf", 8)
        pool.alloc_symmetric("recvbuf", 8)
        payload = np.arange(8, dtype=np.float32)
        # Root (app 0) lives at hierarchy rank 1 now.
        pool.array(1, "sendbuf")[:] = payload
        execute(permuted, pool)
        for hier in (0, 2, 3):
            np.testing.assert_array_equal(pool.array(hier, "recvbuf"), payload)


class TestMisplacementPenalty:
    def test_cyclic_placement_hurts(self):
        """Grouping app-consecutive ranks on a cyclic launch crosses the
        network for every 'intra-node' hop: a real, large penalty."""
        machine = generic(4, 4, 2, name="mp")
        penalty = misplacement_penalty(
            machine, hierarchy=[4, 4], libraries=[Library.MPI, Library.MPI],
            count=1 << 22,
        )
        # The mis-grouped schedule pays real extra network time (the exact
        # factor depends on how much the parallel NICs absorb).
        assert penalty > 1.3

    def test_single_node_no_penalty(self):
        machine = generic(1, 4, 1, name="mp1")
        penalty = misplacement_penalty(
            machine, hierarchy=[4], libraries=[Library.MPI]
        )
        assert penalty == pytest.approx(1.0, rel=0.05)
