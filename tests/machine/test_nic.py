"""Tests for GPU-to-NIC bindings (paper Figure 2, Section 6.3.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.machine.nic import (
    Binding,
    binding_table,
    nic_loads,
    nic_of,
    resolve,
    utilization,
)


class TestResolve:
    def test_auto_bijective_when_equal(self):
        assert resolve(Binding.AUTO, 4, 4) is Binding.BIJECTIVE

    def test_auto_packed_when_divisible(self):
        assert resolve(Binding.AUTO, 8, 4) is Binding.PACKED

    def test_auto_round_robin_otherwise(self):
        assert resolve(Binding.AUTO, 12, 8) is Binding.ROUND_ROBIN

    def test_bijective_requires_equal(self):
        with pytest.raises(HierarchyError):
            resolve(Binding.BIJECTIVE, 8, 4)

    def test_more_nics_than_gpus_rejected(self):
        with pytest.raises(HierarchyError):
            resolve(Binding.PACKED, 2, 4)


class TestFigure2Bindings:
    def test_packed_fig2a(self):
        """Figure 2(a): 3 GPUs, 1 NIC -> all packed onto NIC 0."""
        assert [nic_of(i, 3, 1, Binding.PACKED) for i in range(3)] == [0, 0, 0]

    def test_packed_blocks(self):
        assert [nic_of(i, 8, 4, Binding.PACKED) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_round_robin_fig2b(self):
        """Figure 2(b): 3 GPUs, 2 NICs round-robin."""
        assert [nic_of(i, 3, 2, Binding.ROUND_ROBIN) for i in range(3)] == [0, 1, 0]

    def test_bijective_fig2c(self):
        assert [nic_of(i, 3, 3, Binding.BIJECTIVE) for i in range(3)] == [0, 1, 2]

    def test_out_of_range_gpu(self):
        with pytest.raises(HierarchyError):
            nic_of(5, 4, 2)


class TestLoadsAndUtilization:
    def test_packed_loads_balanced(self):
        assert nic_loads(8, 4, Binding.PACKED) == [2, 2, 2, 2]

    def test_aurora_round_robin_loads(self):
        """Aurora: 12 GPUs on 8 NICs -> first four NICs carry two GPUs."""
        assert nic_loads(12, 8, Binding.ROUND_ROBIN) == [2, 2, 2, 2, 1, 1, 1, 1]

    def test_aurora_75_percent(self):
        """Section 6.3.5: round-robin 12/8 caps utilization at 75%."""
        assert utilization(12, 8, Binding.ROUND_ROBIN) == pytest.approx(0.75)

    def test_balanced_bindings_reach_full_utilization(self):
        assert utilization(8, 4, Binding.PACKED) == pytest.approx(1.0)
        assert utilization(4, 4, Binding.BIJECTIVE) == pytest.approx(1.0)
        assert utilization(4, 1, Binding.PACKED) == pytest.approx(1.0)

    def test_fig2b_75_percent(self):
        """Figure 2(b): 3 GPUs / 2 NICs round-robin -> 75% utilization."""
        assert utilization(3, 2, Binding.ROUND_ROBIN) == pytest.approx(0.75)

    def test_binding_table_shape(self):
        table = binding_table(4, 2, Binding.PACKED)
        assert table == [(0, 0), (1, 0), (2, 1), (3, 1)]

    @settings(max_examples=100, deadline=None)
    @given(
        g=st.integers(1, 64),
        k=st.integers(1, 64),
        policy=st.sampled_from([Binding.PACKED, Binding.ROUND_ROBIN, Binding.AUTO]),
    )
    def test_every_gpu_bound_to_valid_nic(self, g, k, policy):
        if k > g:
            return
        loads = nic_loads(g, k, policy)
        assert sum(loads) == g
        assert all(load >= 0 for load in loads)
        assert 0.0 < utilization(g, k, policy) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(g=st.integers(1, 48), k=st.integers(1, 48))
    def test_packed_is_contiguous(self, g, k):
        if k > g or g % k:
            return
        nics = [nic_of(i, g, k, Binding.PACKED) for i in range(g)]
        assert nics == sorted(nics)
        assert nic_loads(g, k, Binding.PACKED) == [g // k] * k
