"""FaultSet unit + property suite: declaration, fingerprinting, cache keys.

The fault layer's contracts at the machine level:

* invalid declarations (out-of-range indices, scales outside ``(0, 1]``,
  draining every node) raise :class:`~repro.errors.FaultError` at
  declaration or ``apply`` time — never a numpy index error downstream;
* an empty fault set is the identity: ``apply`` returns the machine
  unchanged and the plan-cache fingerprint is the healthy one;
* a non-empty fault set always produces a *distinct* fingerprint — even a
  scale-1.0 derate whose rates are numerically healthy — so degraded plans
  can never alias healthy plan-cache entries (fuzzed through the ``.npz``
  disk layer below);
* ``FaultSet.random`` is a pure function of ``(machine shape, seed)``;
* elastic-shrink survivor maps reject malformed input with a FaultError
  naming the offending entry (fuzzed against random rank sequences).
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.communicator import Communicator
from repro.core.composition import compose
from repro.core.plancache import CachedPlan, PlanCache, machine_fingerprint, plan_key
from repro.errors import FaultError
from repro.machine.faults import DOWN_SCALE, FaultSet, rates_for, resource_rate
from repro.machine.machines import by_name
from repro.transport.library import Library
from repro.workloads.elastic import shrink_rank_map, survivor_ranks

FUZZ = dict(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def delta2():
    return by_name("delta", nodes=2)


@pytest.fixture(scope="module")
def perl2():
    return by_name("perlmutter", nodes=2)


class TestValidation:
    def test_nic_node_out_of_range(self, delta2):
        with pytest.raises(FaultError):
            FaultSet(down_nics=((9, 0),)).apply(delta2)

    def test_nic_index_out_of_range(self, delta2):
        with pytest.raises(FaultError):
            FaultSet(down_nics=((0, 1),)).apply(delta2)  # delta has 1 NIC

    def test_link_level_out_of_range(self, delta2):
        with pytest.raises(FaultError):
            FaultSet(down_links=((0, 5),)).apply(delta2)

    def test_straggler_rank_out_of_range(self, delta2):
        with pytest.raises(FaultError):
            FaultSet(stragglers=((99, 0.5),)).apply(delta2)

    @pytest.mark.parametrize("scale", (0.0, -0.5, 1.5))
    def test_scales_must_be_in_unit_interval(self, scale):
        with pytest.raises(FaultError):
            FaultSet(stragglers=((0, scale),))
        with pytest.raises(FaultError):
            FaultSet(nic_derate=((0, 0, scale),))
        with pytest.raises(FaultError):
            FaultSet(link_derate=((0, 0, scale),))

    def test_cannot_drain_all_nodes(self, delta2):
        with pytest.raises(FaultError):
            FaultSet(drained_nodes=(0, 1)).apply(delta2)

    def test_unknown_resource_kind_rejected(self, delta2):
        degraded = FaultSet(stragglers=((0, 0.5),)).apply(delta2)
        with pytest.raises(FaultError):
            resource_rate(degraded, ("warp_drive", 0))


class TestIdentity:
    def test_empty_apply_is_the_machine(self, delta2):
        assert FaultSet().apply(delta2) is delta2
        assert FaultSet().is_empty()
        assert FaultSet().describe() == "healthy"
        assert rates_for(delta2) is None

    def test_empty_fingerprint_matches_healthy(self, delta2):
        unfaulted = FaultSet().apply(delta2)
        assert machine_fingerprint(unfaulted) == machine_fingerprint(delta2)

    def test_apply_replaces_prior_faults(self, delta2):
        first = FaultSet(stragglers=((0, 0.5),)).apply(delta2)
        second = FaultSet(stragglers=((1, 0.75),)).apply(first)
        assert second.faults == FaultSet(stragglers=((1, 0.75),))
        # And an empty set strips faults entirely.
        assert FaultSet().apply(first).faults is None

    def test_scale_one_derate_is_numerically_healthy_but_keyed_apart(
            self, delta2):
        degraded = FaultSet(nic_derate=((0, 0, 1.0),)).apply(delta2)
        rates = rates_for(degraded)
        assert rates is not None
        assert float(rates.nic_scale.min()) == 1.0
        key = ("nic_tx", 0, 0)
        assert resource_rate(degraded, key) == resource_rate(delta2, key)
        assert machine_fingerprint(degraded) != machine_fingerprint(delta2)


class TestResourceRates:
    def test_down_nic_rate(self, perl2):
        degraded = FaultSet(down_nics=((1, 3),)).apply(perl2)
        assert resource_rate(degraded, ("nic_tx", 1, 3)) == pytest.approx(
            perl2.nic_bandwidth * DOWN_SCALE)
        assert resource_rate(degraded, ("nic_rx", 1, 3)) == pytest.approx(
            perl2.nic_bandwidth * DOWN_SCALE)
        # Unfaulted NICs keep their healthy rate.
        assert resource_rate(degraded, ("nic_tx", 0, 3)) == pytest.approx(
            perl2.nic_bandwidth)

    def test_straggler_scales_injection_and_links(self, delta2):
        degraded = FaultSet(stragglers=((5, 0.5),)).apply(delta2)
        assert resource_rate(degraded, ("inj_tx", 5)) == pytest.approx(
            delta2.gpu_injection_bandwidth * 0.5)
        for lvl in range(len(delta2.levels)):
            assert resource_rate(degraded, ("link_tx", 5, lvl)) == (
                pytest.approx(delta2.levels[lvl].bandwidth * 0.5))
        assert resource_rate(degraded, ("inj_tx", 4)) == pytest.approx(
            delta2.gpu_injection_bandwidth)

    def test_link_derate_touches_one_level_only(self, delta2):
        degraded = FaultSet(link_derate=((4, 0, 0.6),)).apply(delta2)
        assert resource_rate(degraded, ("link_tx", 4, 0)) == pytest.approx(
            delta2.levels[0].bandwidth * 0.6)
        assert resource_rate(degraded, ("copy", 4)) == pytest.approx(
            delta2.copy_bandwidth)


class TestRandomAndWithNodes:
    def test_random_is_seed_deterministic(self, perl2):
        a = FaultSet.random(perl2, 7)
        b = FaultSet.random(perl2, 7)
        assert a == b
        assert a.fingerprint() == b.fingerprint()
        assert FaultSet.random(perl2, 8) != a

    def test_random_is_nonempty_and_applies(self, delta2):
        faults = FaultSet.random(delta2, 3)
        assert not faults.is_empty()
        assert faults.apply(delta2).faults == faults

    def test_with_nodes_reapplies_faults(self, perl2):
        degraded = FaultSet(down_nics=((0, 0),)).apply(perl2)
        grown = degraded.with_nodes(4)
        assert grown.nodes == 4
        assert grown.faults == degraded.faults

    def test_with_nodes_revalidates_indices(self):
        machine = by_name("perlmutter", nodes=4)
        degraded = FaultSet(down_nics=((3, 0),)).apply(machine)
        with pytest.raises(FaultError):
            degraded.with_nodes(2)  # node 3 no longer exists


class TestShrinkRankMap:
    def test_default_map_is_survivors_in_order(self):
        machine = by_name("delta", nodes=4)
        assert survivor_ranks(machine, (3,)) == tuple(range(12))
        assert shrink_rank_map(machine, (1,)) == (
            0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15)

    @pytest.mark.parametrize("bad, fragment", [
        (tuple(range(11)), "needs exactly 12"),
        (tuple(range(11)) + (99,), "out of range"),
        (tuple(range(11)) + (12,), "drained node 3"),
        (tuple(range(11)) + (0,), "repeats rank 0"),
    ])
    def test_invalid_maps_raise_named_fault_errors(self, bad, fragment):
        machine = by_name("delta", nodes=4)
        with pytest.raises(FaultError, match=fragment):
            shrink_rank_map(machine, (3,), bad)


@given(entries=st.lists(st.integers(-5, 40), max_size=24))
@settings(**FUZZ)
def test_shrink_rank_map_never_index_errors(entries):
    """Arbitrary rank sequences either validate or raise FaultError —
    the error path never degenerates into a numpy/list IndexError."""
    machine = by_name("delta", nodes=4)
    try:
        got = shrink_rank_map(machine, (3,), entries)
    except FaultError:
        return
    assert got == tuple(entries)
    assert len(got) == 12


@pytest.fixture(scope="module")
def small_plan(delta2):
    """One real synthesized plan to push through the cache layers."""
    comm = Communicator(delta2, materialize=False)
    compose(comm, "all_reduce", 1 << 12)
    comm.init(hierarchy=[2, 4], library=[Library.MPI, Library.IPC])
    return comm


@given(seed=st.integers(0, 1 << 20))
@settings(**FUZZ)
def test_fault_sets_round_trip_the_plan_cache_without_collisions(
        seed, delta2, small_plan):
    """Random fault sets key their own ``.npz`` plan-cache entries: the
    degraded key never collides with healthy, the entry round-trips through
    the disk layer intact, and the healthy key stays a miss."""
    faults = FaultSet.random(delta2, seed)
    degraded = faults.apply(delta2)

    def _key(machine):
        return plan_key(
            small_plan.program, machine, (2, 4),
            small_plan.plan.libraries, stripe=1, ring=1, pipeline=1,
            elem_bytes=4, dtype_name="float32",
        )

    healthy_key, degraded_key = _key(delta2), _key(degraded)
    assert degraded_key.digest != healthy_key.digest

    plan = CachedPlan(small_plan.schedule, small_plan.timing, 0.0)
    with tempfile.TemporaryDirectory() as tmp:
        PlanCache(disk_dir=tmp).put(degraded_key, plan)
        fresh = PlanCache(disk_dir=tmp)
        got = fresh.get(degraded_key)
        assert got is not None
        assert got.timing.elapsed == plan.timing.elapsed
        assert len(got.schedule) == len(plan.schedule)
        assert fresh.get(healthy_key) is None
