"""Tests for the one-call convenience API (repro.collectives)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives as coll
from repro import machines
from repro.bench.configs import tree_config
from repro.core.ops import ReduceOp
from repro.errors import CompositionError


@pytest.fixture(scope="module")
def machine():
    return machines.perlmutter(nodes=2)


@pytest.fixture(scope="module")
def cfg(machine):
    return tree_config(machine, pipeline=2)


def _data(machine, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-9, 10, size=(machine.world_size, cols)).astype(np.float32)


class TestOneCallCollectives:
    def test_broadcast(self, machine, cfg):
        data = _data(machine, machine.world_size * 8)
        out = coll.broadcast(machine, data, root=3, config=cfg)
        np.testing.assert_array_equal(out, np.tile(data[3], (machine.world_size, 1)))

    def test_all_reduce(self, machine, cfg):
        data = _data(machine, machine.world_size * 8, seed=1)
        out = coll.all_reduce(machine, data, config=cfg)
        np.testing.assert_array_equal(out, np.tile(data.sum(axis=0),
                                                   (machine.world_size, 1)))

    def test_all_reduce_max(self, machine, cfg):
        data = _data(machine, machine.world_size * 8, seed=2)
        out = coll.all_reduce(machine, data, op=ReduceOp.MAX, config=cfg)
        np.testing.assert_array_equal(out[0], data.max(axis=0))

    def test_reduce_only_root_defined(self, machine, cfg):
        data = _data(machine, machine.world_size * 4, seed=3)
        out = coll.reduce(machine, data, root=0, config=cfg)
        np.testing.assert_array_equal(out[0], data.sum(axis=0))

    def test_scatter_gather_roundtrip(self, machine, cfg):
        p = machine.world_size
        data = _data(machine, p * 4, seed=4)
        chunks = coll.scatter(machine, data, config=cfg)
        np.testing.assert_array_equal(chunks.reshape(-1), data[0])
        back = coll.gather(machine, chunks, config=cfg)
        np.testing.assert_array_equal(back[0], data[0])

    def test_all_gather(self, machine, cfg):
        p = machine.world_size
        rows = _data(machine, 6, seed=5)
        out = coll.all_gather(machine, rows, config=cfg)
        expected = rows.reshape(-1)
        for rank in range(p):
            np.testing.assert_array_equal(out[rank], expected)

    def test_reduce_scatter(self, machine, cfg):
        p = machine.world_size
        data = _data(machine, p * 4, seed=6)
        out = coll.reduce_scatter(machine, data, config=cfg)
        reduced = data.sum(axis=0).reshape(p, 4)
        np.testing.assert_array_equal(out, reduced)

    def test_all_to_all_is_transpose(self, machine, cfg):
        p = machine.world_size
        data = _data(machine, p * 4, seed=7)
        out = coll.all_to_all(machine, data, config=cfg)
        expected = data.reshape(p, p, 4).transpose(1, 0, 2).reshape(p, p * 4)
        np.testing.assert_array_equal(out, expected)

    def test_return_time(self, machine, cfg):
        data = _data(machine, machine.world_size * 4, seed=8)
        out, elapsed = coll.broadcast(machine, data, config=cfg,
                                      return_time=True)
        assert elapsed > 0
        assert out.shape == data.shape

    def test_default_config_used(self, machine):
        data = _data(machine, machine.world_size * 4, seed=9)
        out = coll.broadcast(machine, data)  # best_config picked internally
        np.testing.assert_array_equal(out[1], data[0])


class TestInputValidation:
    def test_wrong_row_count(self, machine, cfg):
        with pytest.raises(CompositionError):
            coll.broadcast(machine, np.zeros((3, 8), dtype=np.float32), config=cfg)

    def test_not_divisible(self, machine, cfg):
        with pytest.raises(CompositionError):
            coll.all_reduce(machine,
                            np.zeros((machine.world_size, 7), dtype=np.float32),
                            config=cfg)

    def test_one_dimensional_rejected(self, machine, cfg):
        with pytest.raises(CompositionError):
            coll.gather(machine, np.zeros(8, dtype=np.float32), config=cfg)
