"""Chrome-trace export: schema invariants and validator behavior."""

from __future__ import annotations

import json

import pytest

from repro.analysis.trace import (
    JOBS_PID,
    RESOURCES_PID,
    scenario_trace,
    validate_trace,
)
from repro.machine.machines import by_name


@pytest.fixture(scope="module")
def trace():
    """One cheap scenario trace (small payload, two nodes)."""
    machine = by_name("perlmutter", nodes=2)
    return scenario_trace("disjoint_halves", machine, payload_bytes=1 << 18)


def test_trace_validates(trace):
    assert validate_trace(trace) == []


def test_trace_is_json_serializable(trace):
    rebuilt = json.loads(json.dumps(trace))
    assert validate_trace(rebuilt) == []


def test_trace_document_shape(trace):
    assert trace["displayTimeUnit"] == "ms"
    other = trace["otherData"]
    assert other["workload"] == "disjoint_halves"
    assert other["engine"] in ("event", "level")
    assert other["makespan_seconds"] > 0.0


def test_trace_has_both_processes_with_metadata(trace):
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert pids == {JOBS_PID, RESOURCES_PID}
    # Every non-metadata track is named by a thread_name metadata event.
    named = {(e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    assert used <= named


def test_job_ops_are_duration_events_on_job_tracks(trace):
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert xs
    assert all(e["pid"] == JOBS_PID for e in xs)
    assert all(e["dur"] >= 0.0 for e in xs)
    # The workload timeline ends at the makespan (in microseconds).
    end = max(e["ts"] + e["dur"] for e in xs)
    assert end == pytest.approx(
        trace["otherData"]["makespan_seconds"] * 1e6, rel=1e-9)


def test_resource_bookings_pair_up(trace):
    events = [e for e in trace["traceEvents"]
              if e["ph"] in ("B", "E") and e["pid"] == RESOURCES_PID]
    assert events
    begins = sum(1 for e in events if e["ph"] == "B")
    ends = sum(1 for e in events if e["ph"] == "E")
    assert begins == ends


def test_validator_flags_backwards_timestamps():
    bad = {"traceEvents": [
        {"ph": "X", "pid": 0, "tid": 0, "ts": 10.0, "dur": 1.0, "name": "a"},
        {"ph": "X", "pid": 0, "tid": 0, "ts": 5.0, "dur": 1.0, "name": "b"},
    ]}
    assert any("backwards" in p for p in validate_trace(bad))


def test_validator_flags_mismatched_pairs():
    bad = {"traceEvents": [
        {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "a"},
        {"ph": "E", "pid": 1, "tid": 0, "ts": 1.0, "name": "b"},
    ]}
    assert any("closes" in p for p in validate_trace(bad))


def test_validator_flags_unclosed_begin():
    bad = {"traceEvents": [
        {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "a"},
    ]}
    assert any("unclosed" in p for p in validate_trace(bad))


def test_validator_flags_negative_duration_and_empty_trace():
    bad = {"traceEvents": [
        {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": -1.0, "name": "a"},
    ]}
    assert any("dur" in p for p in validate_trace(bad))
    assert validate_trace({"traceEvents": []})
    assert validate_trace({})
