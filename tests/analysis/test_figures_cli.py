"""CLI surface for ``repro figures`` and ``repro trace``.

Only the cheap structural figures run here so the suite stays in the
smoke tier; a bare ``repro figures --check`` (all thirty baselines) is
exercised by the ``figures-check`` CI job instead.
"""

from __future__ import annotations

import json

from repro.analysis import FIGURES, baseline_path, validate_trace
from repro.cli import main


def test_figures_list_names_every_figure(capsys):
    assert main(["figures", "--list"]) == 0
    out = capsys.readouterr().out
    for name in FIGURES:
        assert name in out


def test_figures_prints_committed_text(capsys):
    assert main(["figures", "fig6_stages"]) == 0
    out = capsys.readouterr().out
    committed = baseline_path("fig6_stages").read_text()
    assert out == committed


def test_figures_check_passes_on_clean_tree(capsys):
    assert main(["figures", "fig6_stages", "fig1_volume", "--check"]) == 0
    out = capsys.readouterr().out
    assert "fig6_stages: ok" in out
    assert "fig1_volume: ok" in out


def test_figures_json_export_is_parseable(capsys):
    assert main(["figures", "fig6_stages", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert isinstance(records, list)
    assert all(isinstance(r, dict) for r in records)


def test_figures_csv_export_has_header(capsys):
    assert main(["figures", "fig6_stages", "--csv"]) == 0
    out = capsys.readouterr().out
    assert "# figure: fig6_stages" in out
    assert "stages" in out.splitlines()[1]


def test_figures_out_dir_writes_all_formats(tmp_path, capsys):
    assert main(["figures", "fig6_stages", "--json", "--csv",
                 "--out-dir", str(tmp_path)]) == 0
    txt = tmp_path / "fig6_stages.txt"
    assert txt.read_text() == baseline_path("fig6_stages").read_text()
    records = json.loads((tmp_path / "fig6_stages.json").read_text())
    assert records
    assert (tmp_path / "fig6_stages.csv").read_text().strip()


def test_figures_unknown_name_exits_2(capsys):
    assert main(["figures", "fig99_imaginary"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_trace_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "disjoint_halves", "--nodes", "2",
                 "--payload", "256K", "--out", str(out)]) == 0
    msg = capsys.readouterr().out
    assert "wrote" in msg and "perfetto" in msg
    trace = json.loads(out.read_text())
    assert validate_trace(trace) == []
    assert trace["otherData"]["workload"] == "disjoint_halves"


def test_trace_unknown_scenario_exits_2(tmp_path, capsys):
    assert main(["trace", "no_such_scenario",
                 "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown scenario" in capsys.readouterr().err
