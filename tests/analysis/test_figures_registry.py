"""Registry contract: coverage, record purity, and byte-identity.

The expensive figures (fig8/fig9/fig10, tuned, workloads, faults) are
regenerated and byte-checked by their own benchmark suites under
``benchmarks/``; here the *cheap* structural figures prove the registry
mechanics — record JSON-safety, render purity, drift detection — in the
smoke-test tier.
"""

from __future__ import annotations

import copy
import csv
import io
import json

import pytest

import repro.analysis as analysis
from repro.analysis import (
    FIGURES,
    baseline_dir,
    check,
    generate,
    records_csv,
    records_json,
    render,
)

#: Figures cheap enough for the smoke tier (model-only, no throughput sims).
CHEAP = ("fig1_volume", "fig2_bindings", "fig5_trees", "fig6_stages",
         "fig7_matrices", "table3_bounds")


def test_registry_covers_every_committed_baseline():
    """Every committed baseline has a figure, and vice versa."""
    stems = {p.stem for p in baseline_dir().glob("*.txt")
             if not p.stem.endswith("_timing")}
    assert stems == set(FIGURES)


def test_registry_entries_are_complete():
    for name, fig in FIGURES.items():
        assert fig.name == name
        assert fig.title and fig.group
        assert callable(fig.generate) and callable(fig.render)


@pytest.mark.parametrize("name", CHEAP)
def test_cheap_figures_regenerate_byte_identically(name):
    result = check(name)
    assert result.ok, result.reason


@pytest.mark.parametrize("name", CHEAP)
def test_records_are_json_safe_and_round_trip(name):
    records = generate(name)
    assert isinstance(records, list)
    assert all(isinstance(r, dict) for r in records)
    rebuilt = json.loads(json.dumps(records))
    assert rebuilt == records
    assert render(name, rebuilt) == render(name, records)


def test_records_json_is_stable_and_newline_terminated():
    records = generate("fig6_stages")
    text = records_json(records)
    assert text.endswith("\n")
    assert text == records_json(json.loads(text))  # idempotent round-trip


def test_records_csv_covers_union_of_keys():
    records = generate("table3_bounds")  # system rows + bound rows
    reader = csv.reader(io.StringIO(records_csv(records)))
    rows = list(reader)
    header, body = rows[0], rows[1:]
    assert len(body) == len(records)
    union = set().union(*(r.keys() for r in records))
    assert set(header) == union


def test_check_detects_record_drift():
    records = generate("fig6_stages")
    tampered = copy.deepcopy(records)
    tampered[0]["stages"] += 1
    result = check("fig6_stages", tampered)
    assert not result.ok
    assert result.reason


def test_check_unknown_figure_raises():
    with pytest.raises(KeyError):
        check("fig99_imaginary")


def test_register_rejects_duplicate_names():
    with pytest.raises(ValueError):
        analysis.registry.register(
            "fig1_volume", "dup", "figure", lambda: [], lambda r: "")
