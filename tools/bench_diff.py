#!/usr/bin/env python3
"""Diff a benchmark run against its committed reference.

One entry point for the five benchmark-diff CI legs (see
.github/workflows/ci.yml's ``bench-diff`` matrix job)::

    python tools/bench_diff.py lowering     # BENCH_lowering.json vs .ci.json
    python tools/bench_diff.py simulator --ref a.json --new b.json

Each benchmark keeps its own rules, mirroring what the model guarantees:

* **deterministic model outputs** (op counts, schedule bytes, simulated
  times, plan winners) must match the committed reference *exactly* — any
  change fails;
* **host-dependent wall-clock and throughput figures** tolerate
  ``THRESHOLD`` (20%) one-sided drift — only the "worse" direction fails
  (slower lowering, lower speedup/throughput);
* **sub-millisecond warm timings** are all timer noise at percent scale, so
  only an order-of-magnitude regression (warm approaching cold) fails.

Exit status 1 with a summary when anything regressed, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Tolerated one-sided drift for host-dependent (wall-clock) figures.
THRESHOLD = 0.20

#: ``warm_total_seconds`` fails only when worse than this multiple of the
#: reference (a cache regression makes warm look like cold).
WARM_FACTOR = 10.0


def drift(ref: float, new: float, worse_when: str) -> float:
    """Signed fractional drift of ``new`` vs ``ref``; positive is worse."""
    if worse_when == "higher":
        return (new - ref) / ref
    return (ref - new) / ref


def diff_lowering(ref: dict, new: dict) -> list:
    """Lowering bench: exact schedule shape, 20% wall drift, warm factor."""
    failures = []
    for key in ("workload", "ops", "schedule_mbytes"):
        if new[key] != ref[key]:
            failures.append(f"{key}: committed {ref[key]!r} vs run {new[key]!r}")
    for key, worse_when in (
        ("cold_lower_seconds", "higher"),
        ("cold_simulate_seconds", "higher"),
        ("cold_total_seconds", "higher"),
        ("reference_unreplicated_total_seconds", "higher"),
        ("speedup_vs_unreplicated", "lower"),
    ):
        r, n = ref[key], new[key]
        d = drift(r, n, worse_when)
        print(f"{key}: committed {r} vs run {n} ({d:+.1%} worse)")
        if d > THRESHOLD:
            failures.append(f"{key} drifted {d:+.1%}")
    # Warm hits are sub-millisecond, so percent drift is all timer noise;
    # only a cache regression (warm ~ cold) should fail.
    r, n = ref["warm_total_seconds"], new["warm_total_seconds"]
    print(f"warm_total_seconds: committed {r} vs run {n}")
    if n > WARM_FACTOR * r:
        failures.append(f"warm_total_seconds {n} > 10x committed {r}")
    return failures


def diff_simulator(ref: dict, new: dict) -> list:
    """Simulator bench: 20% wall drift, exact simulated makespan."""
    failures = []
    for key, worse_when in (("event_seconds", "higher"),
                            ("level_seconds", "higher"),
                            ("speedup", "lower")):
        r, n = ref[key], new[key]
        d = drift(r, n, worse_when)
        print(f"{key}: committed {r} vs run {n} ({d:+.1%} worse)")
        if d > THRESHOLD:
            failures.append(key)
    if new["makespan_seconds"] != ref["makespan_seconds"]:
        failures.append("makespan_seconds (simulated time must not move)")
    return failures


def diff_faults(ref: dict, new: dict) -> list:
    """Fault bench: exact simulated times, 20% re-plan wall drift."""
    failures = []
    # Simulated times are deterministic model outputs: any change to the
    # committed degraded-scenario numbers fails the job.
    for section in ("replan", "elastic_shrink"):
        for key, r in ref[section].items():
            if key.endswith("wall_seconds"):
                continue
            n = new[section][key]
            if n != r:
                failures.append(f"{section}.{key}: committed {r} vs run {n}")
    # Re-plan wall latency is host-dependent: tolerate 20% drift.
    for section in ("replan", "elastic_shrink"):
        r = ref[section]["replan_wall_seconds"]
        n = new[section]["replan_wall_seconds"]
        d = drift(r, n, "higher")
        print(f"{section}.replan_wall_seconds: committed {r} vs "
              f"run {n} ({d:+.1%})")
        if d > THRESHOLD:
            failures.append(f"{section}.replan_wall_seconds drifted {d:+.1%}")
    return failures


def diff_planservice(ref: dict, new: dict) -> list:
    """Plan-service bench: exact winners, 20% latency/throughput drift."""
    failures = []
    # Plan outcomes are deterministic model outputs: the winning candidate
    # and its simulated time must match the committed reference for every
    # request key in the seeded stream.
    for label, entry in ref["outcomes"].items():
        got = new["outcomes"].get(label)
        if got != entry:
            failures.append(f"outcomes[{label}]: committed {entry!r} vs {got!r}")
    for pair_ref, pair_new in zip(ref["warm_start"]["pairs"],
                                  new["warm_start"]["pairs"]):
        for key in ("cold_winner", "warm_winner",
                    "cold_plan_seconds", "warm_plan_seconds"):
            if pair_new[key] != pair_ref[key]:
                failures.append(
                    f"warm_start {pair_ref['system']} {key}: "
                    f"committed {pair_ref[key]!r} vs {pair_new[key]!r}")
    # Wall-clock and throughput figures are host-dependent: tolerate 20%
    # one-sided drift (slower hits, lower throughput fail).
    r = ref["warm_hits"]["hit_p50_seconds"]
    n = new["warm_hits"]["hit_p50_seconds"]
    print(f"hit_p50_seconds: committed {r} vs run {n}")
    if (n - r) / r > THRESHOLD:
        failures.append(f"hit_p50_seconds drifted {(n - r) / r:+.1%}")
    for run_ref, run_new in zip(ref["throughput"]["runs"],
                                new["throughput"]["runs"]):
        r = run_ref["requests_per_second"]
        n = run_new["requests_per_second"]
        d = drift(r, n, "lower")
        print(f"{run_ref['clients']}-client rps: committed {r} vs "
              f"run {n} ({d:+.1%} worse)")
        if d > THRESHOLD:
            failures.append(
                f"{run_ref['clients']}-client throughput drifted {d:+.1%}")
    return failures


def diff_serving(ref: dict, new: dict) -> list:
    """Serving bench: exact latencies and counters, 20% wall drift.

    Every simulated latency figure is a deterministic model output (the
    replay engine is bit-identical to the event engine), so *any* change
    to a percentile, a replay counter, or the bit-identity flag fails; the
    replay-vs-naive wall speedup is host-dependent and tolerates 20%
    one-sided drift (only slower fails).
    """
    failures = []
    ref_legs = {(leg["system"], leg["scenario"]): leg
                for leg in ref["scenarios"]}
    new_legs = {(leg["system"], leg["scenario"]): leg
                for leg in new["scenarios"]}
    if sorted(ref_legs) != sorted(new_legs):
        return [f"scenario legs changed: committed {sorted(ref_legs)} vs "
                f"run {sorted(new_legs)}"]
    for key, r_leg in ref_legs.items():
        n_leg = new_legs[key]
        label = "/".join(key)
        if n_leg["latency"] != r_leg["latency"]:
            failures.append(
                f"{label}: latency percentiles changed (simulated "
                "latencies must not move)")
        if n_leg["replay_stats"] != r_leg["replay_stats"]:
            failures.append(f"{label}: replay counters changed")
        if not n_leg["bit_identical"]:
            failures.append(f"{label}: replay lost bit-identity with the "
                            "event engine")
        r, n = r_leg["speedup"], n_leg["speedup"]
        d = drift(r, n, "lower")
        print(f"{label} speedup: committed {r} vs run {n} ({d:+.1%} worse)")
        if d > THRESHOLD:
            failures.append(f"{label}: replay speedup drifted {d:+.1%}")
    return failures


#: Benchmark name -> diff rule.  Matrix entries in ci.yml key into this.
DIFFS = {
    "lowering": diff_lowering,
    "simulator": diff_simulator,
    "faults": diff_faults,
    "planservice": diff_planservice,
    "serving": diff_serving,
}


def run_diff(bench: str, ref: dict, new: dict) -> list:
    """Apply one benchmark's rules; returns the list of failure strings."""
    return DIFFS[bench](ref, new)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff a benchmark run against its committed reference")
    parser.add_argument("bench", choices=sorted(DIFFS))
    parser.add_argument("--ref", type=Path, default=None,
                        help="committed reference (default BENCH_<bench>.json)")
    parser.add_argument("--new", dest="new_path", type=Path, default=None,
                        help="fresh run (default BENCH_<bench>.ci.json)")
    args = parser.parse_args(argv)
    ref_path = args.ref or Path(f"BENCH_{args.bench}.json")
    new_path = args.new_path or Path(f"BENCH_{args.bench}.ci.json")
    ref = json.loads(ref_path.read_text())
    new = json.loads(new_path.read_text())
    failures = run_diff(args.bench, ref, new)
    if failures:
        print("regressed vs committed reference:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    print(f"{args.bench}: no regression vs {ref_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
