#!/usr/bin/env python
"""Fault-layer benchmark: re-plan latency and slowdown under degradation.

Runs the committed degraded-scenario probes (``repro.bench.degraded``) on
the Delta model — a seeded random fault set re-planned in place, and an
elastic shrink from 4 to 3 nodes — and emits ``BENCH_faults.json`` for CI
to archive, so re-plan-latency regressions show up as artifact diffs.

The acceptance contract this file locks down:

* ``replay_seconds >= healthy_seconds`` — monotone derates never make the
  healthy schedule *faster* on the degraded machine;
* ``replanned_seconds <= replay_seconds`` — the degraded search winner is
  never worse than doing nothing (the healthy plan is merged into the
  degraded ranking);
* ``empty_identity`` must be ``true`` — an empty fault set leaves the
  machine object, its fingerprint, and the simulated timeline byte-for-byte
  identical to healthy.

Simulated times are deterministic model outputs and must not drift at all;
the ``*_wall_seconds`` keys are host-dependent and tolerate 20% drift in CI.

Usage::

    PYTHONPATH=src python tools/bench_faults.py [--out BENCH_faults.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SYSTEM = "delta"


def _empty_identity_probe() -> dict:
    """An empty fault set must be a byte-identical no-op."""
    from repro.bench.configs import best_config
    from repro.bench.runner import payload_count
    from repro.core.communicator import Communicator
    from repro.core.composition import compose
    from repro.core.plancache import machine_fingerprint
    from repro.machine.faults import FaultSet
    from repro.machine.machines import by_name

    machine = by_name(SYSTEM, nodes=2)
    unfaulted = FaultSet().apply(machine)
    same_spec = unfaulted == machine
    same_fp = machine_fingerprint(unfaulted) == machine_fingerprint(machine)

    def _elapsed(m):
        comm = Communicator(m, materialize=False)
        compose(comm, "all_reduce", payload_count(m, 1 << 22))
        comm.init(**best_config(m, "all_reduce").init_kwargs())
        return comm.timing.elapsed

    same_timeline = _elapsed(unfaulted) == _elapsed(machine)
    return {
        "same_spec": same_spec,
        "same_fingerprint": same_fp,
        "same_timeline": same_timeline,
        "ok": same_spec and same_fp and same_timeline,
    }


def measure() -> dict:
    """Run the probes; returns the JSON-ready result document."""
    from repro.bench.degraded import (
        PAYLOAD_BYTES,
        REPLAN_NODES,
        SEED,
        SHRINK_NODES,
        replan_probe,
        shrink_probe,
    )

    rep = replan_probe(SYSTEM)
    shrink = shrink_probe(SYSTEM)
    empty = _empty_identity_probe()
    return {
        "system": SYSTEM,
        "payload_bytes": PAYLOAD_BYTES,
        "replan": {
            "nodes": REPLAN_NODES,
            "seed": SEED,
            "faults": rep.faults.describe(),
            "healthy_seconds": rep.healthy_seconds,
            "replay_seconds": rep.replay_seconds,
            "replanned_seconds": rep.replanned_seconds,
            "replay_slowdown": round(rep.replay_slowdown, 4),
            "slowdown_vs_healthy": round(rep.slowdown_vs_healthy, 4),
            "replan_gain": round(rep.replan_gain, 4),
            "replan_wall_seconds": round(rep.replan_wall_seconds, 4),
        },
        "elastic_shrink": {
            "nodes_before": SHRINK_NODES,
            "nodes_after": shrink.nodes_after,
            "drained_nodes": list(shrink.drained_nodes),
            "healthy_seconds": shrink.healthy_seconds,
            "shrunk_seconds": shrink.shrunk_seconds,
            "slowdown_vs_healthy": round(shrink.slowdown, 4),
            "replan_wall_seconds": round(shrink.replan_wall_seconds, 4),
        },
        "empty_identity": empty,
    }


def main() -> int:
    """Run the benchmark, check the contract, write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_faults.json"))
    args = parser.parse_args()
    result = measure()
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.out}]")
    rep = result["replan"]
    if rep["replay_seconds"] < rep["healthy_seconds"]:
        print("FAIL: degraded replay beat the healthy baseline")
        return 1
    if rep["replanned_seconds"] > rep["replay_seconds"]:
        print("FAIL: degraded search winner lost to the healthy replay")
        return 1
    if not result["empty_identity"]["ok"]:
        print("FAIL: empty fault set is not a byte-identical no-op")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
