#!/bin/sh
# Fast CI smoke job: documentation checkers (cross-references + docstring
# coverage of the workload/simulator layers) + the quick half of the test
# suite (the long figure sweeps are marked `slow` and excluded; the tier-1
# run `pytest -x -q` still executes everything).
set -e
cd "$(dirname "$0")/.."

python tools/check_doc_links.py
python tools/check_docstrings.py
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q -m "not slow"
