#!/usr/bin/env python
"""Serving benchmark: replay fast-path speedup and latency percentiles.

Drives every committed serving scenario (:mod:`repro.serving.scenarios`)
on both committed machine models with one seeded 1000-arrival Poisson
trace each, and emits ``BENCH_serving.json``:

* ``latency`` — p50/p90/p99/mean/worst per request class and overall,
  from the streaming replay engine.  Pure model output: certified replays
  are bit-for-bit the event engine's numbers and contended epochs are
  resimulated *through* the event engine, so these figures are
  byte-identical across regenerations; CI fails on **any** change.
* ``replay_stats`` — accepted/rejected/fallback counters.  Deterministic
  (a pure function of the seeded trace and the model), diffed exactly.
* ``bit_identical`` — the whole per-request latency vector is compared
  ``==`` against one brute-force ``simulate_workload`` over the merged
  job set of the entire trace; must be ``true``.
* ``speedup`` — wall-clock of the naive per-arrival simulation loop over
  the streaming replay wall.  Host-dependent; tolerates 20% drift in CI.

Hard contract (exit 1 on violation):

* every scenario's latency vector is bit-identical to the merged
  brute-force event simulation;
* the replay fast path is >= 10x faster than the naive loop on every
  scenario at 1000 arrivals.

Usage::

    PYTHONPATH=src python tools/bench_serving.py [--out BENCH_serving.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: One seeded trace per (system, scenario): size and seed.
ARRIVALS = 1000
SEED = 0

SYSTEMS = ("delta", "perlmutter")
NODES = 4


def measure_scenario(system: str, name: str) -> dict:
    """One (system, scenario) leg: replay vs naive vs merged brute force."""
    import numpy as np

    from repro.machine.machines import by_name
    from repro.serving import (
        SERVING_SCENARIOS,
        brute_force_latencies,
        poisson_trace,
        simulate_serving,
    )

    machine = by_name(system, nodes=NODES)
    scenario = SERVING_SCENARIOS[name]
    classes, weights = scenario.build(machine)
    trace = poisson_trace(scenario.default_rate, ARRIVALS, weights, seed=SEED)

    replay = simulate_serving(machine, classes, trace, mode="replay",
                              name=name)
    naive = simulate_serving(machine, classes, trace, mode="naive", name=name)
    merged = brute_force_latencies(machine, classes, trace, engine="event")

    bit_identical = bool(np.array_equal(replay.latencies, merged))
    naive_contention_free = bool(np.allclose(naive.latencies, merged))
    speedup = naive.wall_seconds / replay.wall_seconds
    return {
        "system": system,
        "scenario": name,
        "rate_per_second": scenario.default_rate,
        "arrivals": ARRIVALS,
        "seed": SEED,
        "latency": {
            "classes": [s.as_dict() for s in replay.classes],
            "overall": replay.overall.as_dict(),
        },
        "replay_stats": replay.stats,
        "bit_identical": bit_identical,
        # True when contention never moved a latency on this trace (the
        # naive loop would then agree with the merged oracle) — recorded
        # for context, not diffed: it documents how contended the leg is.
        "naive_matches_merged": naive_contention_free,
        "replay_wall_seconds": round(replay.wall_seconds, 4),
        "naive_wall_seconds": round(naive.wall_seconds, 4),
        "speedup": round(speedup, 2),
    }


def measure() -> dict:
    """Run every (system, scenario) leg; returns the JSON-ready document."""
    from repro.machine.machines import by_name
    from repro.serving import applicable_serving_scenarios

    legs = []
    for system in SYSTEMS:
        machine = by_name(system, nodes=NODES)
        for name in applicable_serving_scenarios(machine):
            print(f"measuring {system}/{name} ...", file=sys.stderr)
            legs.append(measure_scenario(system, name))
    return {"arrivals": ARRIVALS, "seed": SEED, "scenarios": legs}


def check(result: dict) -> list[str]:
    """The hard acceptance contract; returns the violations."""
    failures = []
    for leg in result["scenarios"]:
        label = f"{leg['system']}/{leg['scenario']}"
        if not leg["bit_identical"]:
            failures.append(
                f"{label}: replay latencies are not bit-identical to the "
                "merged event-engine brute force")
        if leg["speedup"] < 10.0:
            failures.append(
                f"{label}: replay speedup {leg['speedup']}x < 10x over the "
                "naive per-arrival loop")
    return failures


def main() -> int:
    """Run the benchmark, check the contract, write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serving.json"))
    args = parser.parse_args()
    result = measure()
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.out}]")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
