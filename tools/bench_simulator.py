#!/usr/bin/env python
"""Simulator-engine benchmark: event loop vs levelized batch at scale.

Runs the dependency-chained pipeline-parallel workload
(``repro.bench.figures.pipeline_stage_schedule``) on the aggregate
full-system Frontier model at 1,536 nodes — 12,288 ranks, ~98k ops — through
both simulation engines and emits ``BENCH_simulator.json`` for CI to archive,
so engine-speed regressions show up as artifact diffs.

The acceptance contract this file locks down:

* ``identical`` must be ``true`` — the levelized engine is only allowed to
  exist because it reproduces the event loop bit-for-bit whenever its
  serialization certificate accepts;
* ``speedup`` (event wall / level wall) must stay >= 5 on this >= 10k-rank
  model;
* ``fig8_engine_used`` documents, honestly, that a contended Figure 8
  collective (striped/pipelined all-reduce) *falls back* to the event loop:
  bandwidth-saturating collectives share NICs by design, so their optimistic
  certificate is rejected and the event engine remains the engine of record.

Usage::

    PYTHONPATH=src python tools/bench_simulator.py [--out BENCH_simulator.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Levelized-engine workload: leader-chained pipeline parallelism on the
#: aggregate Frontier model (1,536 of the 9,408 deployed nodes keeps the
#: single stage chain inside the engine's LEVEL_MAX_DEPTH guard).
SYSTEM = "frontier-full"
NODES = 1536
MICROBATCHES = 8
COUNT = 1 << 20  # elements per hop (4 MiB fp32)

#: Fallback probe: one contended fig8-style collective at testbed scale.
FIG8_SYSTEM = "perlmutter"
FIG8_COLLECTIVE = "all_reduce"
FIG8_PAYLOAD_BYTES = 1 << 26

MIN_SPEEDUP = 5.0


def _fig8_probe() -> dict:
    """Show the honest fallback: a contended collective stays on ``event``."""
    from repro.bench.configs import best_config
    from repro.bench.runner import payload_count
    from repro.core.communicator import Communicator
    from repro.core.composition import compose
    from repro.core.passes import lower_program
    from repro.core.plan import OptimizationPlan
    from repro.machine.machines import by_name
    from repro.simulator.engine import simulate

    machine = by_name(FIG8_SYSTEM, nodes=4)
    comm = Communicator(machine, materialize=False)
    compose(comm, FIG8_COLLECTIVE,
            payload_count(machine, FIG8_PAYLOAD_BYTES))
    cfg = best_config(machine, FIG8_COLLECTIVE)
    kw = cfg.init_kwargs()
    plan = OptimizationPlan.create(
        machine, kw["hierarchy"], kw["library"],
        stripe=kw["stripe"], ring=kw["ring"], pipeline=kw["pipeline"],
    )
    schedule = lower_program(comm.program, plan)
    timing = simulate(schedule, machine, plan.libraries, 4, engine="level")
    return {
        "system": FIG8_SYSTEM, "collective": FIG8_COLLECTIVE,
        "config": cfg.name, "payload_bytes": FIG8_PAYLOAD_BYTES,
        "ops": len(schedule),
        "engine_requested": "level",
        "engine_used": timing.engine,
    }


def measure(repeat: int) -> dict:
    """Run the benchmark; returns the JSON-ready result document."""
    from repro.bench.figures import compare_engines, pipeline_stage_schedule
    from repro.machine.machines import by_name
    from repro.transport.library import Library

    machine = by_name(SYSTEM, nodes=NODES)
    t0 = time.perf_counter()
    schedule = pipeline_stage_schedule(machine, microbatches=MICROBATCHES,
                                       count=COUNT)
    build_seconds = time.perf_counter() - t0
    row = compare_engines("pp-chain", schedule, machine,
                          (Library.MPI, Library.IPC), repeat=repeat)
    return {
        "workload": {
            "system": SYSTEM, "nodes": NODES, "ranks": machine.world_size,
            "microbatches": MICROBATCHES, "count": COUNT,
        },
        "ops": row.ops,
        "repeat": repeat,
        "build_seconds": round(build_seconds, 4),
        "event_seconds": round(row.event_wall, 4),
        "level_seconds": round(row.level_wall, 4),
        "speedup": round(row.speedup, 2),
        "engine_used": row.engine_used,
        "identical": row.identical,
        "makespan_seconds": row.makespan,
        "fig8_fallback_probe": _fig8_probe(),
    }


def main() -> int:
    """Run the benchmark, check the contract, write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_simulator.json"))
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()
    result = measure(args.repeat)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.out}]")
    if not result["identical"]:
        print("FAIL: levelized engine diverged from the event loop")
        return 1
    if result["engine_used"] != "level":
        print("FAIL: levelized engine fell back on the benchmark workload")
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']} < {MIN_SPEEDUP}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
