#!/usr/bin/env python
"""Synthesis microbenchmark: cold/warm lowering + simulation on fig8.

Measures the pass pipeline on the largest Figure 8 workload — Perlmutter
all-reduce, pipelined tree at depth 32, 256 MiB payload: the ~71k-op
schedule that dominates the fig8 panel's synthesis time — and emits
``BENCH_lowering.json`` for CI to archive, so synthesis-cost regressions
show up as artifact diffs.

Reported figures (seconds, best of ``--repeat`` runs):

* ``cold_lower`` / ``cold_simulate`` / ``cold_total`` — the pass pipeline
  with template replication (the production path);
* ``reference_unreplicated_total`` — the same pipeline with channel
  separability disabled, i.e. every channel lowered explicitly through the
  shared dependency builder.  This is the pre-refactor synthesis strategy,
  kept runnable as the fallback path, so ``speedup_vs_unreplicated``
  measures what template replication buys on this workload;
* ``warm_total`` — a plan-cache hit (memoized schedule + timing).

Usage::

    PYTHONPATH=src python tools/bench_lowering.py [--out BENCH_lowering.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The fig8 workload under measurement (see bench.figures.fig8_points).
SYSTEM = "perlmutter"
NODES = 4
COLLECTIVE = "all_reduce"
PIPELINE = 32
PAYLOAD_BYTES = 1 << 28


def _program_and_plan():
    from repro.bench.configs import best_config
    from repro.bench.runner import payload_count
    from repro.core.communicator import Communicator
    from repro.core.composition import compose
    from repro.core.plan import OptimizationPlan
    from repro.machine.machines import by_name

    machine = by_name(SYSTEM, nodes=NODES)
    comm = Communicator(machine, materialize=False)
    compose(comm, COLLECTIVE, payload_count(machine, PAYLOAD_BYTES))
    cfg = best_config(machine, COLLECTIVE).with_pipeline(PIPELINE)
    kw = cfg.init_kwargs()
    plan = OptimizationPlan.create(
        machine, kw["hierarchy"], kw["library"],
        stripe=kw["stripe"], ring=kw["ring"], pipeline=kw["pipeline"],
    )
    return machine, comm.program, plan, cfg


def measure(repeat: int) -> dict:
    """Run the benchmark; returns the JSON-ready result document."""
    from repro.core.passes import lower_program, pipelining
    from repro.simulator.engine import simulate

    machine, program, plan, cfg = _program_and_plan()
    elem_bytes = 4

    cold_lower = []
    cold_simulate = []
    schedule = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        schedule = lower_program(program, plan)
        t1 = time.perf_counter()
        simulate(schedule, machine, plan.libraries, elem_bytes)
        t2 = time.perf_counter()
        cold_lower.append(t1 - t0)
        cold_simulate.append(t2 - t1)

    # Pre-refactor reference: per-channel lowering via the fallback path.
    real = pipelining.channels_separable
    reference = []
    try:
        pipelining.channels_separable = lambda program: False
        for _ in range(repeat):
            t0 = time.perf_counter()
            ref_schedule = lower_program(program, plan)
            simulate(ref_schedule, machine, plan.libraries, elem_bytes)
            reference.append(time.perf_counter() - t0)
        assert len(ref_schedule) == len(schedule)
    finally:
        pipelining.channels_separable = real

    # Warm path: plan-cache hit through the Communicator front door.
    from repro.bench.runner import payload_count
    from repro.core import plancache
    from repro.core.communicator import Communicator
    from repro.core.composition import compose

    plancache.configure(disk_dir=None)

    def init_once() -> float:
        comm = Communicator(machine, materialize=False)
        compose(comm, COLLECTIVE, payload_count(machine, PAYLOAD_BYTES))
        t0 = time.perf_counter()
        comm.init(**cfg.init_kwargs())
        return time.perf_counter() - t0

    init_once()  # populate the cache
    warm = [init_once() for _ in range(max(3, repeat))]

    cold_total = min(a + b for a, b in zip(cold_lower, cold_simulate))
    reference_total = min(reference)
    return {
        "workload": {
            "system": SYSTEM, "nodes": NODES, "collective": COLLECTIVE,
            "config": cfg.name, "pipeline": PIPELINE,
            "payload_bytes": PAYLOAD_BYTES,
        },
        "ops": len(schedule),
        "schedule_mbytes": round(schedule.nbytes() / 1e6, 3),
        "repeat": repeat,
        "cold_lower_seconds": round(min(cold_lower), 4),
        "cold_simulate_seconds": round(min(cold_simulate), 4),
        "cold_total_seconds": round(cold_total, 4),
        "reference_unreplicated_total_seconds": round(reference_total, 4),
        "speedup_vs_unreplicated": round(reference_total / cold_total, 2),
        "warm_total_seconds": round(min(warm), 6),
    }


def main() -> int:
    """Run the benchmark and write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_lowering.json"))
    parser.add_argument("--repeat", type=int, default=2)
    args = parser.parse_args()
    result = measure(args.repeat)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
