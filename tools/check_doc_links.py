#!/usr/bin/env python
"""Cross-reference checker for the repository's Markdown documentation.

Two classes of reference are validated so broken pointers fail the build
(via ``tests/test_docs.py`` and ``tools/smoke.sh``):

1. **Markdown links** — every relative ``[text](path#anchor)`` in a ``*.md``
   file must point at an existing file, and the ``#anchor`` (if any) must
   match a heading slug (GitHub style) or an explicit ``<a id="...">`` in the
   target.
2. **Source mentions** — ``SOMEFILE.md``, ``SOMEFILE.md#anchor``, and
   ``SOMEFILE.md Section N`` references inside Python docstrings/comments
   under ``src/``, ``examples/``, ``benchmarks/``, ``tests/``, and
   ``tools/`` must resolve against the repository root: the file must exist,
   a ``#anchor`` must resolve, and ``Section N`` must match a numbered
   heading (``## N. ...``).

Run directly (``python tools/check_doc_links.py``); exits nonzero listing
every broken reference.
"""

from __future__ import annotations

import functools
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories scanned for SOMEFILE.md mentions in Python sources.
SOURCE_DIRS = ("src", "examples", "benchmarks", "tests", "tools")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MD_EXPLICIT_ANCHOR = re.compile(r'<a\s+id="([^"]+)"')
#: UPPERCASE.md[#anchor] mentions in source text (README.md, DESIGN.md, ...).
SRC_MENTION = re.compile(r"\b([A-Z][A-Z_]*\.md)(#[A-Za-z0-9_-]+)?")
SRC_SECTION = re.compile(r"\b([A-Z][A-Z_]*\.md)\s+Section\s+(\d+)")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, punctuation dropped."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


#: Generated research-note files whose outbound links we do not police
#: (arxiv extractions carry image references that were never downloaded).
GENERATED_MD = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def md_files() -> list[Path]:
    return sorted(p for p in REPO_ROOT.rglob("*.md")
                  if ".git" not in p.parts and "output" not in p.parts
                  and p.name not in GENERATED_MD)


@functools.lru_cache(maxsize=None)
def anchors_of(md_path: Path) -> frozenset[str]:
    """All valid ``#anchor`` targets of one Markdown file (parsed once)."""
    anchors: set[str] = set()
    text = md_path.read_text(encoding="utf-8")
    in_code = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            anchors.add(github_slug(m.group(1)))
    anchors.update(MD_EXPLICIT_ANCHOR.findall(text))
    return frozenset(anchors)


def check_markdown_links(errors: list[str]) -> None:
    for md in md_files():
        base = md.parent
        for target in MD_LINK.findall(md.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = md if not path_part else (base / path_part)
            rel = md.relative_to(REPO_ROOT)
            if not dest.exists():
                errors.append(f"{rel}: link target {target!r} does not exist")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(
                        f"{rel}: anchor {target!r} not found in "
                        f"{dest.relative_to(REPO_ROOT)}")


def check_source_mentions(errors: list[str]) -> None:
    for top in SOURCE_DIRS:
        root = REPO_ROOT / top
        if not root.exists():
            continue
        for py in sorted(root.rglob("*.py")):
            if py.resolve() == Path(__file__).resolve():
                continue  # this file's docstring uses placeholder names
            text = py.read_text(encoding="utf-8")
            rel = py.relative_to(REPO_ROOT)
            for name, anchor in SRC_MENTION.findall(text):
                doc = REPO_ROOT / name
                if not doc.exists():
                    errors.append(f"{rel}: mentions missing document {name}")
                elif anchor and anchor[1:] not in anchors_of(doc):
                    errors.append(f"{rel}: anchor {name}{anchor} not found")
            for name, number in SRC_SECTION.findall(text):
                doc = REPO_ROOT / name
                if not doc.exists():
                    continue  # already reported above
                headings = re.findall(r"#{1,6}\s+(.*)", doc.read_text())
                if not any(re.match(rf"{number}[.\s]", h) for h in headings):
                    errors.append(
                        f"{rel}: {name} has no numbered heading for "
                        f"'Section {number}'")


def main() -> int:
    """Run both checks; print a report and return the exit code."""
    errors: list[str] = []
    check_markdown_links(errors)
    check_source_mentions(errors)
    if errors:
        print(f"{len(errors)} broken documentation reference(s):")
        for err in errors:
            print(f"  {err}")
        return 1
    print("documentation cross-references OK "
          f"({len(md_files())} markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
