#!/usr/bin/env python
"""Docstring coverage checker for the workload/simulator/planner/model layers.

Every *public* module, class, function, and method under the checked
directories must carry a docstring — these layers define the workload and
planner contracts documented in DESIGN.md, and an undocumented public name
is a contract hole.  Public means: not prefixed with ``_``, not a dunder, and not
nested inside a private class.  Wired into ``tools/smoke.sh``, the CI
workflow, and ``tests/test_docs.py``.

Run directly (``python tools/check_docstrings.py``); exits nonzero listing
every offender as ``path:line: kind qualname``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories (relative to the repository root) held to full coverage.
CHECKED_DIRS = (
    "src/repro/workloads",
    "src/repro/simulator",
    "src/repro/planner",
    "src/repro/model",
    "src/repro/core/passes",
    "src/repro/service",
    "src/repro/serving",
    "src/repro/analysis",
)

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_defs(body, prefix: str, offenders: list[tuple[int, str, str]]):
    """Collect public defs lacking docstrings from one class/module body."""
    for node in body:
        if not isinstance(node, _DEF_NODES):
            continue
        if not _is_public(node.name):
            continue
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        qualname = f"{prefix}{node.name}"
        if ast.get_docstring(node) is None:
            offenders.append((node.lineno, kind, qualname))
        if isinstance(node, ast.ClassDef):
            _walk_defs(node.body, f"{qualname}.", offenders)


def missing_docstrings(root: Path = REPO_ROOT) -> list[str]:
    """Every public name under the checked dirs lacking a docstring."""
    problems: list[str] = []
    for top in CHECKED_DIRS:
        base = root / top
        if not base.exists():
            problems.append(f"{top}: checked directory does not exist")
            continue
        for py in sorted(base.rglob("*.py")):
            rel = py.relative_to(root)
            tree = ast.parse(py.read_text(encoding="utf-8"), filename=str(rel))
            if ast.get_docstring(tree) is None:
                problems.append(f"{rel}:1: module lacks a docstring")
            offenders: list[tuple[int, str, str]] = []
            _walk_defs(tree.body, "", offenders)
            for lineno, kind, qualname in offenders:
                problems.append(
                    f"{rel}:{lineno}: public {kind} {qualname!r} lacks a "
                    "docstring"
                )
    return problems


def main() -> int:
    """Run the check; print a report and return the exit code."""
    problems = missing_docstrings()
    if problems:
        print(f"{len(problems)} missing docstring(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    checked = sum(
        len(list((REPO_ROOT / top).rglob("*.py"))) for top in CHECKED_DIRS
    )
    print(f"docstring coverage OK ({checked} files in {len(CHECKED_DIRS)} "
          "checked directories)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
