#!/usr/bin/env python
"""Plan-service benchmark: hit latency, warm-start gain, closed-loop throughput.

Drives a real daemon (Unix socket, line-delimited JSON) with the seeded
Zipf-skewed synthetic fleet traffic from :mod:`repro.service.traffic` and
emits ``BENCH_planservice.json``:

* ``outcomes`` — the winning plan of every distinct request key in the
  stream, replayed serially through a fresh service.  Pure model output:
  byte-identical across regenerations; CI fails on **any** change.
* ``warm_hits`` — p50/p99 wall latency of repeated cache-hit requests vs
  the cold-plan wall for the same key.
* ``warm_start`` — cold-planning wall and winner quality with and without
  a nearest-machine warm seed, on two committed machine pairs (the donor
  is planned first, then the target; fresh plan cache for every leg).
* ``throughput`` — closed-loop requests/s at several client counts
  against the daemon, vs ``serial_replan_rps``: the no-service status quo
  in which every request cold-replans in a fresh process (fresh plan
  cache per request, one at a time).  The container is single-CPU, so the
  service's advantage is *work elimination* — cache hits and coalescing —
  not parallel planning.

Hard contract (exit 1 on violation):

* warm hits >= 10x faster than the cold plan (p50);
* 8-client closed-loop throughput >= 4x the serial re-plan loop;
* warm-started winner never worse (simulated seconds) than the cold
  winner on either pair, and warm-started planning faster on >= 1 pair.

Wall-clock keys are host-dependent and tolerate 20% drift in CI; the
``outcomes`` section and every ``*_plan_seconds`` winner time must not
drift at all.

Usage::

    PYTHONPATH=src python tools/bench_planservice.py [--out BENCH_planservice.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Traffic shape: one seed, one stream, shared by every section.
SEED = 2025
N_REQUESTS = 64
ZIPF_A = 1.9

#: Hit-latency probe repetitions.
HIT_SAMPLES = 200

#: Serial-baseline sample size (each request is a full cold re-plan, so
#: the baseline is measured on a deterministic slice of the stream).
SERIAL_SAMPLES = 8

#: Closed-loop client counts.
CLIENT_COUNTS = (1, 2, 4, 8)

#: Committed machine pairs for the warm-start probe: donor -> target.
WARM_PAIRS = (
    ("delta", 4, 3),
    ("perlmutter", 4, 2),
)

WARM_COLLECTIVE = "all_reduce"
WARM_PAYLOAD = 1 << 24

#: The warm-start probe searches the *full* grid (all pipeline depths,
#: library search on).  Warm seeding pays off by tightening the pruning
#: incumbent early; the default narrow service grid is too small for the
#: effect to clear measurement noise.
WARM_OPTIONS = {"pipelines": [1, 4, 16, 32], "search_libraries": True}


def _fresh_plancache() -> None:
    """Reset the process-wide plan cache (memory-only, default budgets)."""
    from repro.core import plancache

    plancache.configure(disk_dir=None)


def _stream():
    from repro.service.traffic import synthetic_traffic

    return synthetic_traffic(SEED, N_REQUESTS, zipf_a=ZIPF_A)


def measure_outcomes() -> dict:
    """Winning plans of every distinct key, via a fresh serial service."""
    from repro.service.server import PlanService

    _fresh_plancache()
    service = PlanService(jobs=1)
    plans: dict[str, dict] = {}
    stream = _stream()
    try:
        for req in stream:
            label = req.describe()
            if label in plans:
                continue
            response = service.handle({
                "id": label, "type": "plan",
                "machine": _machine_doc(req),
                "collective": req.collective,
                "payload_bytes": req.payload_bytes,
            })
            assert response["status"] == "ok", response
            plans[label] = {
                "winner": response["winner"],
                "plan_seconds": response["plan_seconds"],
            }
    finally:
        service.close()
    return {
        "seed": SEED,
        "n_requests": N_REQUESTS,
        "zipf_a": ZIPF_A,
        "distinct_keys": len(plans),
        "plans": dict(sorted(plans.items())),
    }


def _machine_doc(req) -> dict:
    from repro.service.protocol import machine_to_dict

    return machine_to_dict(req.machine())


def measure_warm_hits() -> dict:
    """p50/p99 wall latency of cache hits vs the cold plan for one key."""
    import numpy as np

    from repro.machine.machines import by_name
    from repro.service.client import PlanClient
    from repro.service.server import PlanServer, PlanService

    _fresh_plancache()
    machine = by_name("delta", nodes=4)
    sock = REPO_ROOT / ".bench-planservice.sock"
    server = PlanServer(sock, PlanService(jobs=1))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    try:
        with PlanClient(sock) as client:
            t0 = time.perf_counter()
            cold = client.plan(machine, WARM_COLLECTIVE, WARM_PAYLOAD)
            cold_wall = time.perf_counter() - t0
            assert cold["source"] == "cold", cold["source"]
            walls = []
            for _ in range(HIT_SAMPLES):
                t0 = time.perf_counter()
                hit = client.plan(machine, WARM_COLLECTIVE, WARM_PAYLOAD)
                walls.append(time.perf_counter() - t0)
                assert hit["source"] == "hit", hit["source"]
            client.shutdown()
    finally:
        server.server_close()
        thread.join(timeout=5)
    p50 = float(np.percentile(walls, 50))
    p99 = float(np.percentile(walls, 99))
    return {
        "samples": HIT_SAMPLES,
        "cold_plan_wall_seconds": round(cold_wall, 6),
        "hit_p50_seconds": round(p50, 6),
        "hit_p99_seconds": round(p99, 6),
        "hit_speedup_p50": round(cold_wall / p50, 2),
    }


def measure_warm_start() -> dict:
    """Cold vs warm-started planning on the committed machine pairs."""
    from repro.machine.machines import by_name
    from repro.service.server import PlanService

    pairs = []
    for system, donor_nodes, target_nodes in WARM_PAIRS:
        donor = by_name(system, nodes=donor_nodes)
        target = by_name(system, nodes=target_nodes)

        def _plan(service, machine):
            response = service.handle({
                "id": 0, "type": "plan",
                "machine": _machine_doc_of(machine),
                "collective": WARM_COLLECTIVE,
                "payload_bytes": WARM_PAYLOAD,
                "options": WARM_OPTIONS,
            })
            assert response["status"] == "ok", response
            return response

        # Cold leg: fresh cache, fresh service, nothing to borrow from.
        _fresh_plancache()
        cold_service = PlanService(jobs=1)
        try:
            cold = _plan(cold_service, target)
        finally:
            cold_service.close()
        assert cold["source"] == "cold", cold["source"]

        # Warm leg: fresh cache again; the donor is planned first (not
        # timed against the target) and seeds the nearest-machine index.
        _fresh_plancache()
        warm_service = PlanService(jobs=1)
        try:
            _plan(warm_service, donor)
            warm = _plan(warm_service, target)
        finally:
            warm_service.close()
        assert warm["source"] == "warm", warm["source"]

        pairs.append({
            "system": system,
            "donor_nodes": donor_nodes,
            "target_nodes": target_nodes,
            "cold_plan_seconds": cold["plan_seconds"],
            "warm_plan_seconds": warm["plan_seconds"],
            "cold_winner": cold["winner"],
            "warm_winner": warm["winner"],
            "cold_wall_seconds": round(cold["plan_wall_seconds"], 4),
            "warm_wall_seconds": round(warm["plan_wall_seconds"], 4),
            "warm_wall_speedup": round(
                cold["plan_wall_seconds"] / warm["plan_wall_seconds"], 3),
            "warm_seeds": warm["warm_seeds"],
        })
    return {
        "collective": WARM_COLLECTIVE,
        "payload_bytes": WARM_PAYLOAD,
        "options": WARM_OPTIONS,
        "pairs": pairs,
    }


def _machine_doc_of(machine) -> dict:
    from repro.service.protocol import machine_to_dict

    return machine_to_dict(machine)


def measure_throughput() -> dict:
    """Closed-loop service throughput vs the serial cold re-plan loop."""
    from repro.service.client import PlanClient
    from repro.service.jobs import PlanTask
    from repro.service.server import PlanServer, PlanService

    stream = _stream()

    # Serial baseline: the no-service status quo.  Every request re-plans
    # cold — fresh plan cache each time, exactly like a new process would.
    step = max(1, len(stream) // SERIAL_SAMPLES)
    sample = stream[::step][:SERIAL_SAMPLES]
    t0 = time.perf_counter()
    for req in sample:
        _fresh_plancache()
        PlanTask(
            machine=req.machine(),
            collective=req.collective,
            payload_bytes=req.payload_bytes,
        ).run()
    serial_wall = time.perf_counter() - t0
    serial_rps = len(sample) / serial_wall

    runs = []
    sock = REPO_ROOT / ".bench-planservice.sock"
    for clients in CLIENT_COUNTS:
        _fresh_plancache()
        service = PlanService(jobs=1)
        server = PlanServer(sock, service)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        lanes = [stream[i::clients] for i in range(clients)]
        errors: list[BaseException] = []

        def _client(requests):
            try:
                with PlanClient(sock, timeout=600.0) as client:
                    for req in requests:
                        client.plan(
                            req.machine(), req.collective, req.payload_bytes
                        )
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        t0 = time.perf_counter()
        workers = [
            threading.Thread(target=_client, args=(lane,)) for lane in lanes
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0
        snapshot = service.batcher.snapshot()
        stats = service.stats.to_dict()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        if errors:
            raise errors[0]
        runs.append({
            "clients": clients,
            "requests": len(stream),
            "wall_seconds": round(wall, 4),
            "requests_per_second": round(len(stream) / wall, 2),
            "planned": stats["planned"],
            "hits": stats["hits"],
            "coalesced": stats["coalesced"],
            "batcher_coalesced": snapshot["coalesced"],
        })
    return {
        "serial_replan_samples": len(sample),
        "serial_replan_wall_seconds": round(serial_wall, 4),
        "serial_replan_rps": round(serial_rps, 3),
        "runs": runs,
    }


def measure() -> dict:
    """Run every section; returns the JSON-ready result document."""
    outcomes = measure_outcomes()
    warm_hits = measure_warm_hits()
    warm_start = measure_warm_start()
    throughput = measure_throughput()
    return {
        "outcomes": outcomes,
        "warm_hits": warm_hits,
        "warm_start": warm_start,
        "throughput": throughput,
    }


def check(result: dict) -> list[str]:
    """The hard acceptance contract; returns the violations."""
    failures = []
    hits = result["warm_hits"]
    if hits["hit_speedup_p50"] < 10.0:
        failures.append(
            f"warm hit p50 speedup {hits['hit_speedup_p50']}x < 10x"
        )
    pairs = result["warm_start"]["pairs"]
    for pair in pairs:
        if pair["warm_plan_seconds"] > pair["cold_plan_seconds"] + 1e-12:
            failures.append(
                f"warm-started winner worse than cold on {pair['system']} "
                f"{pair['donor_nodes']}->{pair['target_nodes']}: "
                f"{pair['warm_plan_seconds']} > {pair['cold_plan_seconds']}"
            )
    if not any(p["warm_wall_speedup"] > 1.0 for p in pairs):
        failures.append("warm start sped up cold planning on no pair")
    thr = result["throughput"]
    eight = next(
        (r for r in thr["runs"] if r["clients"] == 8), thr["runs"][-1]
    )
    ratio = eight["requests_per_second"] / thr["serial_replan_rps"]
    if ratio < 4.0:
        failures.append(
            f"8-client throughput {eight['requests_per_second']} req/s is "
            f"only {ratio:.2f}x the serial re-plan loop "
            f"({thr['serial_replan_rps']} req/s); need >= 4x"
        )
    return failures


def main() -> int:
    """Run the benchmark, check the contract, write the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_planservice.json")
    )
    args = parser.parse_args()
    result = measure()
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.out}]")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
