"""repro — a Python reproduction of HiCCL (hierarchical collective comms).

Public API tour::

    import numpy as np
    import repro
    from repro import Communicator, Library, machines

    m = machines.perlmutter(nodes=4)
    comm = Communicator(m, dtype=np.float32)
    send, recv = repro.compose(comm, "all_reduce", count=1 << 16)
    comm.init(hierarchy=[4, 4], library=[Library.NCCL, Library.IPC],
              stripe=4, ring=1, pipeline=16)
    comm.start()
    elapsed = comm.wait()          # simulated seconds on the modeled machine

See DESIGN.md#1-layer-tour for the system inventory and
EXPERIMENTS.md#paper-vs-measured for the record of every table and figure.
"""

from . import collectives, machine as machines, planner, workloads
from .core.buffers import BufferHandle, BufferView
from .core.communicator import Communicator
from .core.composition import COLLECTIVES, FIGURE8_ORDER, compose
from .core.ops import ReduceOp
from .core.plan import OptimizationPlan
from .errors import (
    CompositionError,
    ExecutionError,
    HicclError,
    HierarchyError,
    InitializationError,
    LibraryAssignmentError,
    RaceConditionError,
    ScheduleError,
)
from .machine.spec import MachineSpec
from .transport.library import Library

__version__ = "1.0.0"

__all__ = [
    "BufferHandle",
    "BufferView",
    "COLLECTIVES",
    "Communicator",
    "CompositionError",
    "ExecutionError",
    "FIGURE8_ORDER",
    "HicclError",
    "HierarchyError",
    "InitializationError",
    "Library",
    "LibraryAssignmentError",
    "MachineSpec",
    "OptimizationPlan",
    "RaceConditionError",
    "ReduceOp",
    "ScheduleError",
    "__version__",
    "collectives",
    "compose",
    "machines",
    "planner",
    "workloads",
]
