"""NCCL / RCCL vendor-library baselines (the dark-blue bars of Figure 8).

NCCL and RCCL implement their collectives as multi-channel pipelined rings:
ranks are ordered node-contiguously so a ring crosses each node boundary
exactly once per direction, each *channel* rotates the intra-node order so
different channels' boundary GPUs bind different NICs, and payloads are cut
into slices that chase each other around the ring (fused reduction kernels
keep the accumulation off the critical path — the reason NCCL's Reduce beats
a deep HiCCL pipeline in Section 6.4).

These schedules are hand-built with :class:`~repro.core.schedule
.ScheduleBuilder` because a ring reduce-scatter gives each rank asymmetric
buffer roles that HiCCL's symmetric primitive views cannot express; they run
through exactly the same event engine and functional executor as HiCCL.

NCCL offers no Gather/Scatter/All-to-all (Table 1); following the paper
(Figure 9's red curves) Gather and Scatter are implemented directly with
NCCL's point-to-point functions.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import ReduceOp
from ..core.schedule import ScheduleBuilder
from ..errors import CompositionError
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .base import RawCollective, check_world

#: Slice count used to pipeline ring stages (NCCL's internal chunking).
DEFAULT_SLICES = 32


def _ring_order(machine: MachineSpec, channel: int) -> list[int]:
    """Node-contiguous ring; intra-node order rotated per channel.

    Rotation makes channel ``c``'s node-boundary endpoints (the GPUs whose
    NICs carry the inter-node hops) differ across channels, engaging all
    NICs — NCCL's multi-channel trick.
    """
    g = machine.gpus_per_node
    order: list[int] = []
    for node in range(machine.nodes):
        base = node * g
        order.extend(base + (local + channel) % g for local in range(g))
    return order


def _num_channels(machine: MachineSpec) -> int:
    return max(1, min(machine.nic_count, machine.gpus_per_node))


def _slice_ranges(offset: int, count: int, slices: int) -> list[tuple[int, int]]:
    base, extra = divmod(count, slices)
    out = []
    off = offset
    for s in range(slices):
        size = base + (1 if s < extra else 0)
        if size:
            out.append((off, size))
        off += size
    return out


class _RingBuild:
    """Shared state while emitting one ring collective."""

    def __init__(self, machine: MachineSpec, count: int):
        self.machine = machine
        self.p = check_world(machine)
        self.count = count  # elements per rank-chunk
        self.b = ScheduleBuilder(machine.world_size)
        self.channels = _num_channels(machine)

    def channel_regions(self, chunk: int, channel: int):
        """(offset, size) sub-ranges of ``chunk`` owned by ``channel``."""
        base, extra = divmod(self.count, self.channels)
        off = chunk * self.count
        for c in range(channel):
            off += base + (1 if c < extra else 0)
        size = base + (1 if channel < extra else 0)
        return off, size


def ccl_broadcast(machine: MachineSpec, count: int, root: int = 0,
                  dtype=np.float32, materialize: bool = True,
                  library: Library = Library.NCCL,
                  slices: int = DEFAULT_SLICES) -> RawCollective:
    """Pipelined ring broadcast of ``p*count`` elements from the root."""
    return _ring_pipeline(machine, count, root, dtype, materialize, library,
                          slices, reduce_op=None)


def _ring_pipeline(machine, count, root, dtype, materialize, library, slices,
                   reduce_op):
    """Common pipelined-chain builder for ring Broadcast / Reduce.

    Broadcast: slices of the full ``p*count`` payload flow root -> ... ->
    last; every rank keeps a copy.  Reduce (``reduce_op`` set): the chain
    runs in reverse and each hop accumulates the local contribution.
    """
    p = check_world(machine)
    total = p * count
    b = ScheduleBuilder(machine.world_size)
    channels = _num_channels(machine)
    for channel in range(channels):
        order = _ring_order(machine, channel)
        pos_root = order.index(root)
        if reduce_op is None:
            chain = [order[(pos_root + i) % p] for i in range(p)]
        else:
            chain = [order[(pos_root + 1 + i) % p] for i in range(p)]
        # Channel's share of every rank-chunk: slice the flat payload.
        base, extra = divmod(total, channels)
        ch_off = sum(base + (1 if c < extra else 0) for c in range(channel))
        ch_size = base + (1 if channel < extra else 0)
        if ch_size == 0:
            continue
        for s_off, s_size in _slice_ranges(ch_off, ch_size, slices):
            if reduce_op is None:
                prev_loc = ("sendbuf", s_off)
                dep: tuple[int, ...] = ()
                src = chain[0]
                uid = b.copy(src, prev_loc, ("recvbuf", s_off), s_size,
                             channel=channel, tag="ccl-place")
                for hop, dst in enumerate(chain[1:]):
                    uid = b.send(src, dst, prev_loc, ("recvbuf", s_off), s_size,
                                 level=0, channel=channel, stage=hop,
                                 deps=dep, tag="ccl-ring")
                    prev_loc = ("recvbuf", s_off)
                    dep = (uid,)
                    src = dst
            else:
                # Reverse chain accumulating toward the root.
                src = chain[0]
                prev_loc = ("sendbuf", s_off)
                dep = ()
                for hop, dst in enumerate(chain[1:] + [root]):
                    if dst == root:
                        target = ("recvbuf", s_off)
                    else:
                        target = b.alloc_scratch(dst, s_size, hint="cclred")
                    # Receiver folds its own contribution in with the
                    # incoming partial (fused in one kernel by NCCL).
                    uid0 = b.copy(dst, ("sendbuf", s_off), target, s_size,
                                  channel=channel, tag="ccl-own")
                    uid = b.send(src, dst, prev_loc, target, s_size,
                                 level=0, channel=channel, stage=hop,
                                 reduce_op=reduce_op, deps=dep + (uid0,),
                                 tag="ccl-ring-red")
                    prev_loc = target
                    dep = (uid,)
                    src = dst
                    if dst == root:
                        break
    schedule = b.build()
    return RawCollective(
        machine, schedule, (library,),
        buffers={"sendbuf": total, "recvbuf": total},
        dtype=dtype, materialize=materialize,
    )


def ccl_reduce(machine: MachineSpec, count: int, root: int = 0,
               op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
               materialize: bool = True, library: Library = Library.NCCL,
               slices: int = DEFAULT_SLICES) -> RawCollective:
    """Pipelined ring reduction of ``p*count`` elements onto the root."""
    return _ring_pipeline(machine, count, root, dtype, materialize, library,
                          slices, reduce_op=op)


def _emit_ring_reduce_scatter(rb: _RingBuild, op: ReduceOp,
                              into: str, slices: int) -> dict[tuple[int, int, int, int], int]:
    """Ring reduce-scatter phase; returns completion uid per (channel, rank, chunk, slice).

    Chunk ``r`` (destined for rank ``r``) finishes at rank ``r`` in buffer
    ``into`` at the chunk's own offset.  Standard algorithm: the partial for
    the chunk owned by ring position ``j`` starts at position ``j+1`` and
    accumulates around the ring, arriving complete at position ``j``.
    """
    machine, p, b = rb.machine, rb.p, rb.b
    finals: dict[tuple[int, int, int], int] = {}
    for channel in range(rb.channels):
        order = _ring_order(machine, channel)
        for j in range(p):  # ring position owning this chunk
            owner = order[j]
            chunk = owner  # chunk index == owning rank
            ch_off, ch_size = rb.channel_regions(chunk, channel)
            if ch_size == 0:
                continue
            for sl, (s_off, s_size) in enumerate(_slice_ranges(ch_off, ch_size, slices)):
                src = order[(j + 1) % p]
                prev_loc = ("sendbuf", s_off)
                dep: tuple[int, ...] = ()
                for k in range(p - 1):
                    dst = order[(j + 2 + k) % p]
                    if dst == owner:
                        target = (into, s_off)
                    else:
                        target = b.alloc_scratch(dst, s_size, hint="rs")
                    own = b.copy(dst, ("sendbuf", s_off), target, s_size,
                                 channel=channel, tag="ccl-own")
                    uid = b.send(src, dst, prev_loc, target, s_size,
                                 level=0, channel=channel, stage=k,
                                 reduce_op=op, deps=dep + (own,),
                                 tag="ccl-rs")
                    prev_loc, dep, src = target, (uid,), dst
                finals[(channel, owner, chunk, sl)] = dep[0]
    return finals


def _emit_ring_allgather(rb: _RingBuild, src_buf: str, slices: int,
                         entry_deps: dict[tuple[int, int, int, int], int] | None) -> None:
    """Ring all-gather phase: chunk ``r`` circulates from rank ``r``.

    ``entry_deps`` (from a reduce-scatter phase) gates each chunk's first
    hop, giving the fine-grained RS->AG overlap NCCL's pipelining achieves.
    """
    machine, p, b = rb.machine, rb.p, rb.b
    for channel in range(rb.channels):
        order = _ring_order(machine, channel)
        for j in range(p):
            owner = order[j]
            chunk = owner
            ch_off, ch_size = rb.channel_regions(chunk, channel)
            if ch_size == 0:
                continue
            for sl, (s_off, s_size) in enumerate(_slice_ranges(ch_off, ch_size, slices)):
                src = owner
                prev_loc = (src_buf, s_off)
                dep: tuple[int, ...] = ()
                if entry_deps is not None:
                    gate = entry_deps.get((channel, owner, chunk, sl))
                    if gate is not None:
                        dep = (gate,)
                for k in range(p - 1):
                    dst = order[(j + 1 + k) % p]
                    uid = b.send(src, dst, prev_loc, ("recvbuf", s_off), s_size,
                                 level=0, channel=channel, stage=k,
                                 deps=dep, tag="ccl-ag")
                    prev_loc, dep, src = ("recvbuf", s_off), (uid,), dst


def ccl_all_gather(machine: MachineSpec, count: int, dtype=np.float32,
                   materialize: bool = True, library: Library = Library.NCCL,
                   slices: int = DEFAULT_SLICES) -> RawCollective:
    """Multi-channel ring all-gather."""
    p = check_world(machine)
    rb = _RingBuild(machine, count)
    # Own chunk placement: sendbuf holds one chunk at offset 0 on each rank;
    # copy it into the rank's recv slot before circulating.
    place: dict[tuple[int, int, int, int], int] = {}
    for channel in range(rb.channels):
        for r in range(p):
            ch_off, ch_size = rb.channel_regions(r, channel)
            if ch_size == 0:
                continue
            local_off = ch_off - r * count
            for sl, (s_off, s_size) in enumerate(_slice_ranges(ch_off, ch_size, slices)):
                uid = rb.b.copy(r, ("sendbuf", s_off - r * count),
                                ("recvbuf", s_off), s_size,
                                channel=channel, tag="ccl-place")
                place[(channel, r, r, sl)] = uid
    _emit_ring_allgather(rb, "recvbuf", slices, place)
    schedule = rb.b.build()
    return RawCollective(
        machine, schedule, (library,),
        buffers={"sendbuf": count, "recvbuf": p * count},
        dtype=dtype, materialize=materialize,
    )


def ccl_reduce_scatter(machine: MachineSpec, count: int,
                       op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
                       materialize: bool = True, library: Library = Library.NCCL,
                       slices: int = DEFAULT_SLICES) -> RawCollective:
    """Multi-channel ring reduce-scatter.

    Each rank's result lands in ``recvbuf`` at offset 0 (MPI semantics);
    internally the ring works on per-chunk offsets, so a final local move
    shifts the finished chunk down.
    """
    p = check_world(machine)
    rb = _RingBuild(machine, count)
    finals = _emit_ring_reduce_scatter(rb, op, into="stage", slices=slices)
    # Move each rank's finished chunk from its staged offset to offset 0.
    for channel in range(rb.channels):
        for r in range(p):
            ch_off, ch_size = rb.channel_regions(r, channel)
            if ch_size == 0:
                continue
            for sl, (s_off, s_size) in enumerate(_slice_ranges(ch_off, ch_size, slices)):
                gate = finals.get((channel, r, r, sl))
                if gate is None:
                    continue
                rb.b.copy(r, ("stage", s_off), ("recvbuf", s_off - r * count),
                          s_size, channel=channel, deps=(gate,),
                          tag="ccl-shift")
    schedule = rb.b.build()
    return RawCollective(
        machine, schedule, (library,),
        buffers={"sendbuf": p * count, "recvbuf": count, "stage": p * count},
        dtype=dtype, materialize=materialize,
    )


def ccl_all_reduce(machine: MachineSpec, count: int,
                   op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
                   materialize: bool = True, library: Library = Library.NCCL,
                   slices: int = DEFAULT_SLICES) -> RawCollective:
    """Ring reduce-scatter + ring all-gather (NCCL's large-message path)."""
    p = check_world(machine)
    rb = _RingBuild(machine, count)
    finals = _emit_ring_reduce_scatter(rb, op, into="recvbuf", slices=slices)
    _emit_ring_allgather(rb, "recvbuf", slices, finals)
    schedule = rb.b.build()
    return RawCollective(
        machine, schedule, (library,),
        buffers={"sendbuf": p * count, "recvbuf": p * count},
        dtype=dtype, materialize=materialize,
    )


def ccl_gather(machine: MachineSpec, count: int, root: int = 0,
               dtype=np.float32, materialize: bool = True,
               library: Library = Library.NCCL,
               slices: int = DEFAULT_SLICES) -> RawCollective:
    """Direct gather with p2p sends (NCCL has no Gather — Figure 9a red)."""
    p = check_world(machine)
    b = ScheduleBuilder(machine.world_size)
    for i in range(p):
        if i == root:
            b.copy(root, ("sendbuf", 0), ("recvbuf", i * count), count,
                   tag="p2p-gather")
        else:
            b.send(i, root, ("sendbuf", 0), ("recvbuf", i * count), count,
                   level=0, tag="p2p-gather")
    return RawCollective(
        machine, b.build(), (library,),
        buffers={"sendbuf": count, "recvbuf": p * count},
        dtype=dtype, materialize=materialize,
    )


def ccl_scatter(machine: MachineSpec, count: int, root: int = 0,
                dtype=np.float32, materialize: bool = True,
                library: Library = Library.NCCL,
                slices: int = DEFAULT_SLICES) -> RawCollective:
    """Direct scatter with p2p sends (NCCL has no Scatter — Figure 9b red)."""
    p = check_world(machine)
    b = ScheduleBuilder(machine.world_size)
    for j in range(p):
        if j == root:
            b.copy(root, ("sendbuf", j * count), ("recvbuf", 0), count,
                   tag="p2p-scatter")
        else:
            b.send(root, j, ("sendbuf", j * count), ("recvbuf", 0), count,
                   level=0, tag="p2p-scatter")
    return RawCollective(
        machine, b.build(), (library,),
        buffers={"sendbuf": p * count, "recvbuf": count},
        dtype=dtype, materialize=materialize,
    )


#: Collectives NCCL/RCCL actually offer (Table 1).  Gather and Scatter are
#: *not* among them — ``ccl_gather``/``ccl_scatter`` exist only as the
#: p2p-based reference curves of Figure 9 and must be requested explicitly
#: via ``include_p2p=True``.
CCL_OFFERED = frozenset(
    {"broadcast", "reduce", "all_gather", "reduce_scatter", "all_reduce"}
)

CCL_COLLECTIVES = {
    "broadcast": ccl_broadcast,
    "reduce": ccl_reduce,
    "gather": ccl_gather,
    "scatter": ccl_scatter,
    "all_gather": ccl_all_gather,
    "reduce_scatter": ccl_reduce_scatter,
    "all_reduce": ccl_all_reduce,
}


def ccl_collective(machine: MachineSpec, name: str, count: int,
                   dtype=np.float32, materialize: bool = True,
                   library: Library = Library.NCCL,
                   include_p2p: bool = False) -> RawCollective:
    """Build the NCCL/RCCL baseline for a named collective.

    Collectives outside Table 1's NCCL column raise ``CompositionError``
    unless ``include_p2p=True``, which additionally exposes the direct
    p2p Gather/Scatter implementations (Figure 9's red curves).
    """
    offered = CCL_OFFERED | ({"gather", "scatter"} if include_p2p else set())
    if name not in offered:
        raise CompositionError(
            f"NCCL/RCCL offer no {name!r} collective (Table 1)"
        )
    fn = CCL_COLLECTIVES[name]
    return fn(machine, count, dtype=dtype, materialize=materialize, library=library)
