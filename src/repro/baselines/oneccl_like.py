"""OneCCL vendor-library baseline (Aurora's dark-blue bars in Figure 8).

The paper measures OneCCL (on the pre-production Aurora SDK) an order of
magnitude behind HiCCL (12.1x geomean, Section 6.3.1).  OneCCL's algorithms
are conventional (trees and rings, much like MPI's), so the gap is in the
*transport*: poor sustained utilization of the Slingshot fabric and no
multi-NIC awareness on the early software stack.  We therefore reuse the
textbook algorithm compositions of :mod:`repro.baselines.mpi_like` but price
them with the :data:`Library.ONECCL_COLL` envelope.

Per Table 1, OneCCL offers Broadcast, Reduce, All-to-all, All-gather(v),
Reduce-scatter, and All-reduce — but no Gather or Scatter; requesting those
raises ``CompositionError`` just as the paper's Figure 8(d) shows only MPI
and HiCCL bars for them.
"""

from __future__ import annotations

import numpy as np

from ..core.communicator import Communicator
from ..errors import CompositionError
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .base import check_world
from .mpi_like import MPI_COLLECTIVES

#: Collectives OneCCL actually offers (Table 1).
ONECCL_OFFERED = frozenset(
    {"broadcast", "reduce", "all_to_all", "all_gather", "reduce_scatter", "all_reduce"}
)


def oneccl_collective(machine: MachineSpec, name: str, count: int,
                      dtype=np.float32, materialize: bool = True) -> Communicator:
    """Build the OneCCL baseline for a named collective."""
    check_world(machine)
    if name not in ONECCL_OFFERED:
        raise CompositionError(f"OneCCL offers no {name!r} collective (Table 1)")
    builder = MPI_COLLECTIVES[name]
    return builder(machine, count, dtype=dtype, materialize=materialize,
                   library=Library.ONECCL_COLL)
