"""Direct (flat) HiCCL configurations — the red bars of Figure 8.

Section 6.3.2: "Red bars represent direct implementations of collectives
with non-blocking point-to-point functions, assuming there is no hierarchy
across GPUs — i.e., the description of the network hierarchy for these
experiments is just {p}.  Direct implementations use NCCL on Delta and
Perlmutter, and MPI on Frontier and Aurora as they are the most performant
options."

This is genuinely HiCCL with ``hierarchy=[p]`` and no optimizations, which
is exactly how we build it: the same composition, lowered with a flat plan.
"""

from __future__ import annotations

import numpy as np

from ..core.communicator import Communicator
from ..core.composition import compose
from ..machine.spec import MachineSpec
from ..transport.library import DIRECT_LIBRARY, Library
from .base import check_world


def direct_collective(machine: MachineSpec, name: str, count: int,
                      dtype=np.float32, materialize: bool = True,
                      library: Library | None = None) -> Communicator:
    """HiCCL with hierarchy ``{p}``, no striping, no ring, no pipelining."""
    p = check_world(machine)
    if library is None:
        library = DIRECT_LIBRARY.get(machine.name, Library.MPI)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    compose(comm, name, count)
    comm.init(hierarchy=[p], library=[library], ring=1, stripe=1, pipeline=1)
    return comm
