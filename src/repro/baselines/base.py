"""Shared infrastructure for baseline collective implementations.

Two kinds of baselines exist:

* *Program-based* — algorithms expressible as HiCCL primitive compositions
  over a **flat** hierarchy ``{p}`` (binomial trees, linear gather/scatter,
  pairwise all-to-all...).  These return a regular
  :class:`~repro.core.communicator.Communicator` so they share every code
  path of the library, just with a baseline library profile.

* *Raw-schedule* — ring algorithms whose per-rank buffer roles are
  asymmetric (NCCL-style ring reduce-scatter) and therefore cannot be
  written with symmetric primitive views.  Those build a
  :class:`~repro.core.schedule.Schedule` directly and run through the same
  simulator via :class:`RawCollective`.

Either way, a baseline is something with ``run() -> simulated seconds`` and
a ``schedule`` — exactly what the figure harness consumes.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..errors import InitializationError
from ..machine.spec import MachineSpec
from ..simulator.engine import TimingResult, simulate
from ..simulator.executor import execute
from ..simulator.process import MemoryPool
from ..transport.library import Library


class RawCollective:
    """Run a hand-built schedule with the same engine/executor as HiCCL."""

    def __init__(
        self,
        machine: MachineSpec,
        schedule: Schedule,
        libraries: tuple[Library, ...],
        buffers: dict[str, int],
        dtype=np.float32,
        materialize: bool = True,
    ) -> None:
        self.machine = machine
        self.schedule = schedule
        self.libraries = libraries
        self.dtype = np.dtype(dtype)
        self.materialize = materialize
        self.pool = MemoryPool(machine.world_size, dtype=self.dtype)
        if materialize:
            for name, count in buffers.items():
                self.pool.alloc_symmetric(name, count)
        self._timing: TimingResult | None = None
        self.last_elapsed: float | None = None

    @property
    def timing(self) -> TimingResult:
        if self._timing is None:
            self._timing = simulate(
                self.schedule, self.machine, self.libraries, self.dtype.itemsize
            )
        return self._timing

    def run(self) -> float:
        if self.materialize:
            execute(self.schedule, self.pool)
        self.last_elapsed = self.timing.elapsed
        return self.last_elapsed

    def measure(self, warmup: int = 5, rounds: int = 10) -> float:
        for _ in range(warmup):
            self.run()
        return min(self.run() for _ in range(max(1, rounds)))

    # Buffer access mirroring Communicator for the test suite.
    def set_all(self, name, values) -> None:
        name = getattr(name, "name", name)
        self.pool.set_all(name, values)

    def gather_all(self, name) -> np.ndarray:
        name = getattr(name, "name", name)
        return self.pool.gather_all(name)


def check_world(machine: MachineSpec, minimum: int = 2) -> int:
    """Validate the machine has enough ranks for a collective; returns p."""
    p = machine.world_size
    if p < minimum:
        raise InitializationError(
            f"baseline collectives need at least {minimum} ranks, got {p}"
        )
    return p
