"""GPU-aware MPI collective baselines (the light-blue bars of Figure 8).

The paper's observation is that GPU-aware MPI implementations ship
*functional* but not *throughput-optimized* collectives: classic CPU-era
algorithms running over a conservative GPU data path, one NIC per process,
no multi-NIC striping, host-mediated reductions.  We reproduce that by
composing the textbook algorithms as HiCCL primitive programs over a flat
hierarchy and pricing them with the :data:`Library.MPI_COLL` envelope:

=================  =====================================================
Collective         Algorithm (typical MPICH/OpenMPI large-message path)
=================  =====================================================
Broadcast          van de Geijn scatter + ring all-gather
Reduce             binomial tree reduction
Gather / Scatter   linear (root sends/receives p-1 messages)
All-gather         ring (p-1 rounds)
Reduce-scatter     binomial reduce + linear scatter
All-reduce         binomial reduce + van de Geijn broadcast
All-to-all         pairwise exchange
=================  =====================================================

Every baseline returns an initialized
:class:`~repro.core.communicator.Communicator`, so the functional executor
can verify these algorithms move data correctly too — the test suite holds
baselines to the same correctness bar as HiCCL itself.
"""

from __future__ import annotations

import numpy as np

from ..core.communicator import Communicator
from ..core.ops import ReduceOp
from ..errors import CompositionError
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .base import check_world


def _flat_init(comm: Communicator, library: Library = Library.MPI_COLL) -> None:
    p = comm.world_size
    comm.init(hierarchy=[p], library=[library], ring=1, stripe=1, pipeline=1)


def _binomial_rounds(p: int) -> int:
    rounds = 0
    while (1 << rounds) < p:
        rounds += 1
    return rounds


def _compose_ring_allgather(comm, src_of_chunk, recv, count: int) -> None:
    """Ring all-gather: p-1 rounds, chunk (r-k) forwarded to rank r+1.

    ``src_of_chunk(r)`` gives the view of rank r's own chunk in round 0
    (its send buffer for a plain all-gather; its recv-buffer chunk when used
    as the second phase of a van de Geijn broadcast).
    """
    p = comm.world_size
    for k in range(p - 1):
        for r in range(p):
            chunk = (r - k) % p
            src = src_of_chunk(r) if k == 0 else recv[chunk * count :]
            comm.add_multicast(src, recv[chunk * count :], count, r, [(r + 1) % p])
        comm.add_fence()


def mpi_broadcast(machine: MachineSpec, count: int, root: int = 0,
                  dtype=np.float32, materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """van de Geijn: scatter the payload, then ring all-gather it."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    for j in range(p):
        comm.add_reduction(send[j * count :], recv[j * count :], count,
                           [root], j, ReduceOp.SUM)
    comm.add_fence()
    _compose_ring_allgather(comm, lambda r: recv[r * count :], recv, count)
    _flat_init(comm, library)
    return comm


def mpi_reduce(machine: MachineSpec, count: int, root: int = 0,
               op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
               materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Binomial tree reduction onto the root."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    total = p * count
    # Seed every rank's partial (handles non-power-of-two stragglers that
    # first contribute in a late round), then fold pairwise.
    for r in range(p):
        comm.add_multicast(send, recv, total, r, [r])
    comm.add_fence()
    # Round k: ranks at odd multiples of 2^k fold into even multiples.
    for k in range(_binomial_rounds(p)):
        stride = 1 << k
        added = False
        for vr in range(0, p, 2 * stride):
            vsrc = vr + stride
            if vsrc >= p:
                continue
            a = (vsrc + root) % p
            b = (vr + root) % p
            comm.add_reduction(recv, recv, total, [a, b], b, op)
            added = True
        if added:
            comm.add_fence()
    _flat_init(comm, library)
    return comm


def mpi_gather(machine: MachineSpec, count: int, root: int = 0,
               dtype=np.float32, materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Linear gather: every rank sends directly to the root."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    for i in range(p):
        comm.add_multicast(send, recv[i * count :], count, i, [root])
    _flat_init(comm, library)
    return comm


def mpi_scatter(machine: MachineSpec, count: int, root: int = 0,
                dtype=np.float32, materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Linear scatter: the root sends each rank its chunk directly."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(count, "recvbuf")
    for j in range(p):
        comm.add_reduction(send[j * count :], recv, count, [root], j, ReduceOp.SUM)
    _flat_init(comm, library)
    return comm


def mpi_all_gather(machine: MachineSpec, count: int, dtype=np.float32,
                   materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Ring all-gather (the classic large-message MPI algorithm)."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    # Place own chunk, then circulate.
    for r in range(p):
        comm.add_multicast(send, recv[r * count :], count, r, [r])
    comm.add_fence()
    _compose_ring_allgather(comm, lambda r: recv[r * count :], recv, count)
    _flat_init(comm, library)
    return comm


def mpi_reduce_scatter(machine: MachineSpec, count: int,
                       op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
                       materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Reduce to rank 0, then scatter the chunks (untuned two-phase path)."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(count, "recvbuf")
    total_buf = comm.alloc(p * count, "total")
    total = p * count
    for r in range(p):
        comm.add_multicast(send, total_buf, total, r, [r])
    comm.add_fence()
    for k in range(_binomial_rounds(p)):
        stride = 1 << k
        added = False
        for vr in range(0, p, 2 * stride):
            vsrc = vr + stride
            if vsrc >= p:
                continue
            comm.add_reduction(total_buf, total_buf, total,
                               [vsrc, vr], vr, op)
            added = True
        if added:
            comm.add_fence()
    for j in range(p):
        comm.add_reduction(total_buf[j * count :], recv, count, [0], j, op)
    _flat_init(comm, library)
    return comm


def mpi_all_reduce(machine: MachineSpec, count: int,
                   op: ReduceOp = ReduceOp.SUM, dtype=np.float32,
                   materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Binomial reduce to rank 0 followed by a van de Geijn broadcast."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    total = p * count
    for r in range(p):
        comm.add_multicast(send, recv, total, r, [r])
    comm.add_fence()
    for k in range(_binomial_rounds(p)):
        stride = 1 << k
        added = False
        for vr in range(0, p, 2 * stride):
            vsrc = vr + stride
            if vsrc >= p:
                continue
            comm.add_reduction(recv, recv, total,
                               [vsrc, vr], vr, op)
            added = True
        if added:
            comm.add_fence()
    # Broadcast the result from rank 0: scatter + ring all-gather, in place.
    for j in range(1, p):
        comm.add_reduction(recv[j * count :], recv[j * count :], count,
                           [0], j, op)
    comm.add_fence()
    _compose_ring_allgather(comm, lambda r: recv[r * count :], recv, count)
    _flat_init(comm, library)
    return comm


def mpi_all_to_all(machine: MachineSpec, count: int, dtype=np.float32,
                   materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Direct exchange: every pair moves its chunk point-to-point."""
    p = check_world(machine)
    comm = Communicator(machine, dtype=dtype, materialize=materialize)
    send = comm.alloc(p * count, "sendbuf")
    recv = comm.alloc(p * count, "recvbuf")
    for i in range(p):
        for j in range(p):
            comm.add_multicast(send[j * count :], recv[i * count :], count, i, [j])
    _flat_init(comm, library)
    return comm


MPI_COLLECTIVES = {
    "broadcast": mpi_broadcast,
    "reduce": mpi_reduce,
    "gather": mpi_gather,
    "scatter": mpi_scatter,
    "all_gather": mpi_all_gather,
    "reduce_scatter": mpi_reduce_scatter,
    "all_reduce": mpi_all_reduce,
    "all_to_all": mpi_all_to_all,
}


def mpi_collective(machine: MachineSpec, name: str, count: int,
                   dtype=np.float32, materialize: bool = True,
                  library: Library = Library.MPI_COLL) -> Communicator:
    """Build the MPI baseline for a named collective."""
    try:
        fn = MPI_COLLECTIVES[name]
    except KeyError:
        raise CompositionError(
            f"no MPI baseline for {name!r}; available: {sorted(MPI_COLLECTIVES)}"
        ) from None
    return fn(machine, count, dtype=dtype, materialize=materialize,
              library=library)
