"""Baseline collective implementations the paper compares against."""

from .base import RawCollective
from .ccl_like import CCL_COLLECTIVES, CCL_OFFERED, ccl_collective
from .direct import direct_collective
from .mpi_like import MPI_COLLECTIVES, mpi_collective
from .oneccl_like import ONECCL_OFFERED, oneccl_collective

__all__ = [
    "CCL_COLLECTIVES",
    "CCL_OFFERED",
    "MPI_COLLECTIVES",
    "ONECCL_OFFERED",
    "RawCollective",
    "ccl_collective",
    "direct_collective",
    "mpi_collective",
    "oneccl_collective",
]
