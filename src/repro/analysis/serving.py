"""Serving figures: latency-percentile baselines of the request driver.

One figure per committed machine model, each driving every applicable
serving scenario (:data:`repro.serving.SERVING_SCENARIOS`) through the
streaming replay engine with its registry-default arrival rate and a fixed
seed.  Replay results are bit-identical to the exact event engine whether
or not any individual arrival fell back, so the records — and the rendered
baseline text — are pure functions of the seeded inputs and regenerate
byte-identically on any host.
"""

from __future__ import annotations

from .registry import register

#: Arrivals per committed baseline trace (big enough for a stable p99
#: position, small enough to regenerate in seconds).
ARRIVALS = 300

#: Seed of the committed baseline traces.
SEED = 0


def gen_serving(system: str) -> list:
    """Records of one serving-scenario latency sweep on ``system``."""
    from ..machine.machines import by_name
    from ..serving import (
        DEFAULT_PAYLOAD_BYTES,
        SERVING_SCENARIOS,
        applicable_serving_scenarios,
        run_serving_scenario,
    )

    machine = by_name(system, nodes=4)
    records = [{"row": "meta", "system": system,
                "machine": machine.describe(), "arrivals": ARRIVALS,
                "seed": SEED, "payload_bytes": DEFAULT_PAYLOAD_BYTES}]
    for name in applicable_serving_scenarios(machine):
        result = run_serving_scenario(name, machine, arrivals=ARRIVALS,
                                      seed=SEED)
        records.append({
            "row": "scenario", "scenario": name,
            "rate": SERVING_SCENARIOS[name].default_rate,
            "arrivals": result.arrivals,
        })
        for summary in (*result.classes, result.overall):
            records.append({
                "row": "class", "scenario": name, "klass": summary.name,
                "count": summary.count, "p50": summary.p50,
                "p90": summary.p90, "p99": summary.p99,
                "mean": summary.mean, "worst": summary.worst,
            })
    return records


def render_serving(records: list) -> str:
    """Serving baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    lines = [
        f"Serving latency percentiles ({meta['system']}): seeded Poisson "
        f"arrivals over the streaming replay engine ({meta['machine']})",
        f"  {meta['arrivals']} arrivals per scenario, seed {meta['seed']}, "
        f"anchor payload {meta['payload_bytes'] >> 10} KiB",
    ]
    for scenario in (r for r in records if r["row"] == "scenario"):
        name = scenario["scenario"]
        lines.append("")
        lines.append(
            f"serving {name}: {scenario['arrivals']} arrivals at "
            f"{scenario['rate']:.0f}/s")
        lines.append(
            f"  {'class':12s} {'n':>5s} {'p50 us':>9s} {'p90 us':>9s} "
            f"{'p99 us':>9s} {'mean us':>9s} {'worst us':>9s}")
        for row in (r for r in records
                    if r["row"] == "class" and r["scenario"] == name):
            lines.append(
                f"  {row['klass']:12s} {row['count']:5d} "
                f"{row['p50'] * 1e6:9.3f} {row['p90'] * 1e6:9.3f} "
                f"{row['p99'] * 1e6:9.3f} {row['mean'] * 1e6:9.3f} "
                f"{row['worst'] * 1e6:9.3f}")
    return "\n".join(lines)


for _system in ("delta", "perlmutter"):
    register(f"serving_{_system}",
             f"Serving latency percentiles on {_system}", "serving",
             (lambda system=_system, **kw: gen_serving(system, **kw)),
             render_serving)
