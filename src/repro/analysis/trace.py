"""Chrome-trace export of workload simulations (``chrome://tracing``).

:func:`workload_trace` replays a :class:`~repro.workloads.workload.Workload`
through :func:`~repro.simulator.engine.simulate_workload` and emits the
trace-event JSON format Chrome and Perfetto read natively:

* one *jobs* process (pid 0) with one thread per job, carrying a complete
  ``"X"`` (duration) event per op — name is the op's schedule tag;
* one *resources* process (pid 1) with one thread per machine resource
  (NIC injection ports, intra-node links, copy engines), carrying matched
  ``"B"``/``"E"`` pairs for every booking.  Resources are booked
  exclusively by the engine, so the per-thread intervals never overlap and
  the pairs nest trivially.

Timestamps are microseconds on the shared workload timeline.  The export
is deterministic (simulated time only, no clocks), and
:func:`validate_trace` checks the schema invariants the CI tests lock
down: per-track monotonic ``ts`` and matched ``ph`` begin/end pairs.
"""

from __future__ import annotations

#: pid of the per-job op track and the per-resource booking track.
JOBS_PID = 0
RESOURCES_PID = 1


def _job_specs(workload):
    """The JobSpecs of a workload (same construction as ``Workload.run``)."""
    from ..simulator.engine import JobSpec

    return [
        JobSpec(
            schedule=comm.global_schedule,
            libraries=comm.plan.libraries,
            elem_bytes=comm.dtype.itemsize,
            offset=offset,
            after=deps,
            name=name,
        )
        for comm, name, offset, deps in workload.entries()
    ]


def workload_trace(workload, engine: str = "auto") -> dict:
    """Simulate ``workload`` and export its timelines as a Chrome trace.

    Returns the trace document (a JSON-safe dict with a ``traceEvents``
    list) — callers serialize it with ``json.dump`` and load the file into
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    from ..simulator.engine import simulate_workload
    from ..simulator.timing import price_schedule

    machine = workload.machine
    specs = _job_specs(workload)
    timing = simulate_workload(specs, machine, engine=engine)

    resource_tids: dict[tuple, int] = {}
    for key in sorted(timing.resource_busy):
        resource_tids[key] = len(resource_tids)

    events: list[dict] = []
    meta: list[dict] = [
        {"ph": "M", "pid": JOBS_PID, "name": "process_name",
         "args": {"name": f"jobs: {workload.name}"}},
        {"ph": "M", "pid": RESOURCES_PID, "name": "process_name",
         "args": {"name": f"resources: {machine.name}"}},
    ]
    for key, tid in resource_tids.items():
        meta.append({"ph": "M", "pid": RESOURCES_PID, "tid": tid,
                     "name": "thread_name", "args": {"name": str(key)}})

    job_ops: dict[int, list] = {}
    bookings: dict[int, list] = {}
    for j, (spec, job) in enumerate(zip(specs, timing.jobs)):
        label = job.name or f"job{j}"
        meta.append({"ph": "M", "pid": JOBS_PID, "tid": j,
                     "name": "thread_name", "args": {"name": label}})
        priced = price_schedule(spec.schedule, machine, spec.libraries,
                                spec.elem_bytes)
        ops = list(spec.schedule.ops)
        for uid, op in enumerate(ops):
            start = job.op_start_times[uid]
            finish = job.op_completion_times[uid]
            name = op.tag or f"op{uid}"
            job_ops.setdefault(j, []).append({
                "ph": "X", "pid": JOBS_PID, "tid": j,
                "ts": start * 1e6, "dur": (finish - start) * 1e6,
                "name": name,
                "args": {"job": label, "uid": uid, "src": op.src,
                         "dst": op.dst, "count": op.count},
            })
            cost = priced[uid]
            for key, dur in cost.resources:
                tid = resource_tids.get(key)
                if tid is None:
                    continue
                busy = cost.overhead + dur
                bookings.setdefault(tid, []).append(
                    (start * 1e6, (start + busy) * 1e6,
                     f"{label}:{name}", label, uid))

    # Ops are generated in schedule (uid) order, which is not execution
    # order — sort each track chronologically before the global merge so
    # B/E pairs stay matched.  Resource intervals never overlap (the
    # engine books resources exclusively), so sorting a track's bookings
    # by (start, end) and emitting B then E per booking yields a valid
    # per-track stream; the global sort below is stable, preserving it.
    for j in sorted(job_ops):
        track = job_ops[j]
        track.sort(key=lambda e: e["ts"])
        events.extend(track)
    for tid in sorted(bookings):
        for start_us, end_us, slice_name, label, uid in sorted(bookings[tid]):
            events.append({
                "ph": "B", "pid": RESOURCES_PID, "tid": tid,
                "ts": start_us, "name": slice_name,
                "args": {"job": label, "uid": uid}})
            events.append({
                "ph": "E", "pid": RESOURCES_PID, "tid": tid,
                "ts": end_us, "name": slice_name})
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "workload": workload.name,
            "machine": machine.describe(),
            "engine": timing.engine,
            "makespan_seconds": timing.makespan,
        },
    }


def scenario_trace(name: str, machine, payload_bytes: int | None = None,
                   engine: str = "auto") -> dict:
    """Chrome trace of one registered workload scenario on ``machine``."""
    from ..workloads.scenarios import DEFAULT_PAYLOAD_BYTES, build_scenario

    if payload_bytes is None:
        payload_bytes = DEFAULT_PAYLOAD_BYTES
    workload = build_scenario(name, machine, payload_bytes)
    return workload_trace(workload, engine=engine)


def arrival_trace(name: str, machine, *, arrivals: int = 256,
                  rate: float | None = None, seed: int = 0,
                  payload_bytes: int | None = None) -> dict:
    """Chrome trace of one serving scenario's request stream.

    One *requests* process with a thread per request class; each served
    request is a complete ``"X"`` event spanning arrival to finish on the
    shared simulated timeline.  Driven through the streaming replay engine
    (:func:`repro.serving.run_serving_scenario`), whose latencies are
    bit-identical to the exact event engine — so the export is
    deterministic for fixed ``(seed, rate, arrivals)``.
    """
    from ..serving import run_serving_scenario
    from ..serving.scenarios import DEFAULT_PAYLOAD_BYTES

    if payload_bytes is None:
        payload_bytes = DEFAULT_PAYLOAD_BYTES
    result = run_serving_scenario(
        name, machine, arrivals=arrivals, rate=rate, seed=seed,
        payload_bytes=payload_bytes)
    class_tids = {s.name: tid for tid, s in enumerate(result.classes)}
    meta = [
        {"ph": "M", "pid": JOBS_PID, "name": "process_name",
         "args": {"name": f"requests: {name}"}},
    ]
    for klass, tid in class_tids.items():
        meta.append({"ph": "M", "pid": JOBS_PID, "tid": tid,
                     "name": "thread_name", "args": {"name": klass}})
    events = []
    for request in result.requests_detail:
        events.append({
            "ph": "X", "pid": JOBS_PID, "tid": class_tids[request["class"]],
            "ts": request["arrival"] * 1e6,
            "dur": request["latency"] * 1e6,
            "name": f"{request['class']}#{request['index']}",
            "args": {"index": request["index"],
                     "engine": request["engine"]},
        })
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scenario": name,
            "machine": machine.describe(),
            "arrivals": result.arrivals,
            "p50_seconds": result.overall.p50,
            "p99_seconds": result.overall.p99,
        },
    }


def validate_trace(trace: dict) -> list:
    """Schema check: per-track monotonic ``ts`` and matched ``B``/``E`` pairs.

    Returns a list of problem strings (empty when the trace is valid).
    Walks ``traceEvents`` in order: within each ``(pid, tid)`` track the
    timestamps must be non-decreasing, every ``E`` must close the ``B`` of
    the same name, every ``B`` must eventually close, and ``X`` durations
    must be non-negative.
    """
    problems: list = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    last_ts: dict[tuple, float] = {}
    stacks: dict[tuple, list] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E", "X"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ts < last_ts.get(track, 0.0):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {track}")
        last_ts[track] = ts
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) \
                    or event["dur"] < 0:
                problems.append(f"event {i}: X without non-negative dur")
        elif ph == "B":
            stacks.setdefault(track, []).append(event.get("name"))
        else:  # "E"
            stack = stacks.get(track)
            if not stack:
                problems.append(f"event {i}: E without open B on {track}")
            elif stack[-1] != event.get("name"):
                problems.append(
                    f"event {i}: E {event.get('name')!r} closes "
                    f"B {stack[-1]!r} on {track}")
                stack.pop()
            else:
                stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B events")
    return problems
