"""The ``FIGURES`` registry: every committed baseline as records + renderer.

Each committed ``benchmarks/output/<name>.txt`` baseline is one
:class:`Figure`: a ``generate()`` callable producing structured *records*
(a list of JSON-safe dicts) and a ``render(records)`` callable that is a
**pure function of the records** and reproduces the committed text
byte-identically.  Because the renderer sees nothing but the records, the
text and the JSON/CSV exports of a figure can never disagree — drift in
one is drift in both, and :func:`check` catches it.

Registered names are exactly the committed file stems (``fig1_volume``,
``fig8_perlmutter``, ``tuned_delta``, ...).  The benchmark suite under
``benchmarks/`` regenerates the baselines *through* this registry, and the
``repro figures`` CLI regenerates/checks any subset from the command line.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

Records = "list[dict]"

#: Ordered registry of every committed figure/table baseline.
FIGURES: "dict[str, Figure]" = {}


@dataclass(frozen=True)
class Figure:
    """One committed baseline: record generator + pure-record renderer.

    ``generate`` may accept keyword overrides (deeper sweeps, alternate
    payloads) but its *defaults* must reproduce the committed baseline.
    ``render`` must consume only the records — no machine objects, no
    clocks — so that a JSON round-trip of the records re-renders to the
    same bytes.
    """

    name: str
    title: str
    group: str  # "figure" | "table" | "ablation" | "workload" | "fault" | "planner"
    generate: Callable[..., list]
    render: Callable[[list], str]


def register(name: str, title: str, group: str,
             generate: Callable[..., list],
             render: Callable[[list], str]) -> Figure:
    """Add one figure to :data:`FIGURES` (names must be unique)."""
    if name in FIGURES:
        raise ValueError(f"figure {name!r} registered twice")
    fig = Figure(name=name, title=title, group=group,
                 generate=generate, render=render)
    FIGURES[name] = fig
    return fig


def generate(name: str, **kwargs) -> list:
    """Generate the records of one registered figure."""
    return FIGURES[name].generate(**kwargs)


def render(name: str, records: list) -> str:
    """Render one registered figure's records to baseline text."""
    return FIGURES[name].render(records)


def records_json(records: list) -> str:
    """Records as a deterministic JSON document (trailing newline included)."""
    return json.dumps(records, indent=2, sort_keys=True) + "\n"


def records_csv(records: list) -> str:
    """Records as CSV: union-of-keys header, nested values JSON-encoded.

    Scalars are written verbatim; lists/dicts/bools/None are JSON-encoded so
    every cell parses back unambiguously.  Key order is first-seen across
    the record list, which is deterministic because generators emit records
    in a fixed order.
    """
    import csv
    import io

    fields: list[str] = []
    for record in records:
        for key in record:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(fields)
    for record in records:
        row = []
        for key in fields:
            value = record.get(key)
            if isinstance(value, bool) or value is None or \
                    isinstance(value, (list, dict)):
                row.append(json.dumps(value))
            else:
                row.append(value)
        writer.writerow(row)
    return buf.getvalue()


def baseline_dir() -> Path:
    """The committed baseline directory (``benchmarks/output``).

    Honors ``REPRO_BASELINE_DIR``; otherwise walks up from this file to the
    repository root (the directory containing ``benchmarks/output``),
    falling back to the current working directory.
    """
    env = os.environ.get("REPRO_BASELINE_DIR")
    if env:
        return Path(env)
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks" / "output"
        if candidate.is_dir():
            return candidate
    return Path.cwd() / "benchmarks" / "output"


def baseline_path(name: str) -> Path:
    """Path of the committed ``.txt`` baseline for ``name``."""
    return baseline_dir() / f"{name}.txt"


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one figure against its committed baseline."""

    name: str
    ok: bool
    reason: str = ""


def check(name: str, records: list | None = None) -> CheckResult:
    """Verify one figure regenerates its committed baseline byte-identically.

    Two properties are enforced: the rendered records match the committed
    ``.txt`` (plus trailing newline) exactly, and a JSON round-trip of the
    records re-renders to the same bytes (the text/JSON coherence the
    registry exists to guarantee).
    """
    fig = FIGURES[name]
    if records is None:
        records = fig.generate()
    text = fig.render(records) + "\n"
    roundtrip = fig.render(json.loads(json.dumps(records))) + "\n"
    if roundtrip != text:
        return CheckResult(name, False,
                           "JSON round-trip of records changed the rendering")
    path = baseline_path(name)
    if not path.exists():
        return CheckResult(name, False, f"committed baseline missing: {path}")
    committed = path.read_text()
    if committed != text:
        return CheckResult(
            name, False,
            f"rendered output drifted from committed {path.name} "
            f"({len(text)} vs {len(committed)} bytes)")
    return CheckResult(name, True)
