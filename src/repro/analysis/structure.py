"""Structural figures: volumes, bindings, trees, stages, matrices, bounds.

These figures are pure functions of the machine *model* — no throughput
simulation — so they regenerate in milliseconds and anchor the fast half of
the analysis test suite.  Also home to the Section 7 synthesis-cost table,
whose committed baseline reports only the deterministic op count (the
host-dependent wall-clock lives in an uncommitted sidecar; see
``benchmarks/test_synthesis_cost.py``).
"""

from __future__ import annotations

from .registry import register


# --------------------------------------------------------------------- Fig 1
def gen_fig1_volume(nodes: int = 2, gpus_per_node: int = 3,
                    count: int = 1024) -> list:
    """Records of Figure 1: per-strategy broadcast volume by kind."""
    from ..bench.figures import fig1_broadcast_volume

    data = fig1_broadcast_volume(nodes, gpus_per_node, count)
    records = [{"row": "meta", "nodes": nodes, "gpus_per_node": gpus_per_node,
                "count": count}]
    for strategy, vols in data.items():
        records.append({
            "row": "strategy",
            "strategy": strategy,
            "inter_node": vols["inter-node"],
            "intra_node": vols["intra-node"],
            "local": vols.get("local", 0),
        })
    return records


def render_fig1_volume(records: list) -> str:
    """Figure 1 baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    count = meta["count"]
    lines = ["Figure 1: broadcast volume across 2 nodes x 3 GPUs (units of d)"]
    for r in records:
        if r["row"] != "strategy":
            continue
        inter = r["inter_node"] / count
        intra = r["intra_node"] / count
        lines.append(
            f"  {r['strategy']:13s} inter-node={inter:.0f}d "
            f"intra-node={intra:.0f}d")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 2
def gen_fig2_bindings() -> list:
    """Records of Figure 2: the three GPU-to-NIC binding examples."""
    from ..bench.figures import fig2_bindings

    return [{
        "row": "binding",
        "panel": case["panel"],
        "policy": case["policy"],
        "g": case["g"],
        "k": case["k"],
        "table": [list(pair) for pair in case["table"]],
        "loads": list(case["loads"]),
        "utilization": case["utilization"],
    } for case in fig2_bindings()]


def render_fig2_bindings(records: list) -> str:
    """Figure 2 baseline text from records."""
    lines = ["Figure 2: GPU-to-NIC bindings"]
    for case in records:
        if case["row"] != "binding":
            continue
        arrows = " ".join(f"g{g}->n{n}" for g, n in case["table"])
        lines.append(
            f"  ({case['panel']}) {case['policy']:12s} "
            f"g={case['g']} k={case['k']}: "
            f"{arrows}  loads={case['loads']} util={case['utilization']:.0%}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 5
def gen_fig5_trees() -> list:
    """Records of Figure 5: the six 24-GPU tree factorizations."""
    from ..bench.figures import fig5_trees

    return [{
        "row": "tree",
        "panel": panel,
        "factors": list(topo.factors),
        "depth": topo.depth,
        "world_size": topo.world_size,
        "ascii": topo.ascii_tree(),
    } for panel, topo in fig5_trees()]


def render_fig5_trees(records: list) -> str:
    """Figure 5 baseline text from records."""
    lines = ["Figure 5: tree structures across 24 GPUs"]
    for r in records:
        if r["row"] == "tree":
            lines.append(f"({r['panel']}) {r['ascii']}")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 6
def gen_fig6_stages() -> list:
    """Records of Figure 6: stage counts of striped tree vs striped ring."""
    from ..bench.figures import fig6_stage_counts

    return [{"row": "stages", "label": label, "stages": n}
            for label, n in fig6_stage_counts().items()]


def render_fig6_stages(records: list) -> str:
    """Figure 6 baseline text from records."""
    lines = ["Figure 6: dependency stages of striped factorizations "
             "(4 nodes x 3 GPUs)"]
    for r in records:
        if r["row"] == "stages":
            lines.append(f"  {r['label']:14s} {r['stages']} stages")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 7
def gen_fig7_matrices() -> list:
    """Records of Figure 7 (bottom): volume + library matrices per case."""
    from ..bench.figures import fig7_matrices

    return [{
        "row": "matrix",
        "case": case,
        "library": [list(row) for row in mats["library"]],
        "volume": [list(row) for row in mats["volume"]],
    } for case, mats in fig7_matrices().items()]


def render_fig7_matrices(records: list) -> str:
    """Figure 7 baseline text from records."""
    lines = ["Figure 7 (bottom): hierarchical communication matrices"]
    for r in records:
        if r["row"] != "matrix":
            continue
        lines.append(
            f"  [{r['case']}] sending GPU x receiving GPU (library initial)")
        for src, row in enumerate(r["library"]):
            cells = "".join((cell[0] if cell else ".") for cell in row)
            lines.append(f"    {src:2d} {cells}")
    return "\n".join(lines)


# -------------------------------------------------------------------- Table 3
def gen_table3_bounds() -> list:
    """Records of Table 3: theoretical/achievable bounds per system."""
    from ..core.composition import FIGURE8_ORDER
    from ..machine import machines
    from ..model.bounds import (
        achievable_bound,
        binding_utilization,
        theoretical_bound,
    )

    records = []
    for system in machines.PAPER_SYSTEMS:
        m = machines.by_name(system, nodes=4)
        records.append({
            "row": "system",
            "system": system,
            "node_bandwidth": m.node_bandwidth,
            "binding_utilization": binding_utilization(m),
        })
        for name in FIGURE8_ORDER:
            records.append({
                "row": "bound",
                "system": system,
                "collective": name,
                "theoretical": theoretical_bound(m, name),
                "achievable": achievable_bound(m, name),
            })
    return records


def render_table3_bounds(records: list) -> str:
    """Table 3 baseline text from records."""
    lines = ["Table 3: asymptotic throughput bounds, GB/s "
             "(theoretical / achievable)"]
    for r in records:
        if r["row"] == "system":
            lines.append(
                f"  {r['system']} (k*f={r['node_bandwidth']:.0f}, "
                f"binding util {r['binding_utilization']:.0%})")
        elif r["row"] == "bound":
            lines.append(
                f"    {r['collective']:16s} {r['theoretical']:8.1f} / "
                f"{r['achievable']:8.1f}")
    return "\n".join(lines)


# ------------------------------------------------------------ Synthesis cost
def synthesize_1024():
    """The Section 7 probe: broadcast synthesis for 1024 GPUs (128 nodes).

    Returns the initialized communicator; callers measuring synthesis
    latency read its ``synthesis_seconds`` (which stays out of the committed
    records — wall-clock is host-dependent and belongs in the uncommitted
    timing sidecar).
    """
    from .. import Communicator, Library, machines

    machine = machines.frontier(nodes=128)  # 1024 GPUs
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(1 << 20, "sendbuf")
    recv = comm.alloc(1 << 20, "recvbuf")
    comm.add_multicast(send, recv, 1 << 20, 0, list(range(machine.world_size)))
    comm.init(
        hierarchy=[2] * 7 + [4, 2],
        library=[Library.MPI] * 7 + [Library.IPC, Library.IPC],
        stripe=8,
        pipeline=4,
    )
    return comm


def synthesis_records(comm) -> list:
    """Deterministic records of the synthesis probe (no wall-clock)."""
    machine = comm.machine
    return [{
        "row": "synthesis",
        "system": machine.name,
        "nodes": machine.nodes,
        "world_size": machine.world_size,
        "ops": len(comm.schedule),
    }]


def gen_synthesis_cost() -> list:
    """Records of the Section 7 synthesis-cost probe."""
    return synthesis_records(synthesize_1024())


def render_synthesis_cost(records: list) -> str:
    """Synthesis-cost baseline text (deterministic op count only)."""
    r = next(rec for rec in records if rec["row"] == "synthesis")
    return (
        f"Section 7: broadcast synthesis for {r['world_size']} GPUs "
        f"({r['nodes']} Frontier nodes)\n"
        f"  ops={r['ops']}  (paper: <= 6 s in C++; wall-clock lives in the "
        "uncommitted synthesis_cost_timing.txt sidecar)"
    )


register("fig1_volume", "Direct vs hierarchical broadcast volume",
         "figure", gen_fig1_volume, render_fig1_volume)
register("fig2_bindings", "GPU-to-NIC binding policies and utilizations",
         "figure", gen_fig2_bindings, render_fig2_bindings)
register("fig5_trees", "Tree structures of six 24-GPU factorizations",
         "figure", gen_fig5_trees, render_fig5_trees)
register("fig6_stages", "Dependency stages of striped factorizations",
         "figure", gen_fig6_stages, render_fig6_stages)
register("fig7_matrices", "Hierarchical communication matrices",
         "figure", gen_fig7_matrices, render_fig7_matrices)
register("table3_bounds", "Asymptotic throughput bounds per system",
         "table", gen_table3_bounds, render_table3_bounds)
register("synthesis_cost", "Synthesis op count for 1024 GPUs (Section 7)",
         "table", gen_synthesis_cost, render_synthesis_cost)
