"""Throughput figures: the simulated-measurement half of the registry.

Figure 8's four system panels, Figure 9's four pipeline panels, Figure
10's two scaling panels, the saturation sweeps, the composition-form
comparison (Figure 4), and the four ablations.  Generators run the same
sweeps as the committed benchmarks (same payloads, depths, node counts by
default) and flatten the measurements into records; renderers rebuild the
committed text from the records alone.
"""

from __future__ import annotations

from .registry import register

#: Figure 8 / ablation payload (256 MiB) and Figure 9/planner payloads.
FIG8_PAYLOAD = 1 << 28

#: Committed Figure 9 sweep (REPRO_FULL extends it in the benchmarks).
FIG9_PAYLOADS = tuple(1 << s for s in (16, 20, 24, 27, 30))
FIG9_DEPTHS = (1, 4, 16, 64)

#: Committed Figure 10 sweep.
FIG10_PAYLOAD = 8 << 30
FIG10_GPU_BUDGET = 64
FIG10_DEPTHS = (1, 4, 16)

#: Committed saturation sweep (Section 6.2): 1 MB .. 1 GB.
SATURATION_PAYLOADS = tuple(1 << s for s in range(20, 31, 2))


# --------------------------------------------------------------------- Fig 4
def gen_fig4_allreduce_forms() -> list:
    """Records of Figure 4: single-step vs multi-step All-reduce."""
    from ..core.communicator import Communicator
    from ..core.composition import compose_all_reduce
    from ..machine import machines
    from ..bench.runner import payload_count
    from ..transport.library import Library

    payload = 1 << 26
    machine = machines.perlmutter(nodes=4)
    count = payload_count(machine, payload)
    p = machine.world_size
    records = [{"row": "meta", "system": machine.name, "count": count,
                "world_size": p, "payload_bytes": p * count * 4}]
    for form, multi_step in (("single-step", False), ("multi-step", True)):
        comm = Communicator(machine, materialize=False)
        compose_all_reduce(comm, count, multi_step=multi_step)
        comm.init(hierarchy=[2, 2, 4],
                  library=[Library.NCCL, Library.NCCL, Library.IPC],
                  stripe=4, pipeline=4)
        comm.run()
        volume = sum(comm.schedule.volume_by_kind(machine).values())
        records.append({
            "row": "form",
            "form": form,
            "volume_elements": volume,
            "throughput": p * count * 4 / 1e9 / comm.last_elapsed,
        })
    return records


def render_fig4_allreduce_forms(records: list) -> str:
    """Figure 4 baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    forms = {r["form"]: r for r in records if r["row"] == "form"}
    count, p = meta["count"], meta["world_size"]
    single, multi = forms["single-step"], forms["multi-step"]
    return (
        "Figure 4 / Table 2: All-reduce composition forms "
        f"(Perlmutter, {meta['payload_bytes'] >> 20} MB)\n"
        f"  single-step  volume={single['volume_elements'] / count / p:7.1f} "
        f"d*p units  throughput={single['throughput']:7.2f} GB/s\n"
        f"  multi-step   volume={multi['volume_elements'] / count / p:7.1f} "
        f"d*p units  throughput={multi['throughput']:7.2f} GB/s\n"
        f"  volume ratio "
        f"{single['volume_elements'] / multi['volume_elements']:.1f}x, "
        f"speedup {multi['throughput'] / single['throughput']:.1f}x"
    )


# --------------------------------------------------------------------- Fig 8
def _fig8_speedup_records(system: str, rows, baseline_label: str,
                          hiccl, baseline, paper: float) -> list:
    """Speedup-section records of one Figure 8 baseline family."""
    records = []
    for name in hiccl:
        if name in baseline:
            records.append({
                "row": "speedup",
                "baseline": baseline_label,
                "collective": name,
                "ratio": hiccl[name].throughput / baseline[name].throughput,
            })
    records.append({"row": "paper", "baseline": baseline_label,
                    "value": paper})
    return records


def gen_fig8(system: str) -> list:
    """Records of one Figure 8 panel: bars, bounds, and speedup sections."""
    from ..bench.figures import fig8_bounds, fig8_system
    from ..machine import machines
    from ..transport.library import VENDOR_LIBRARY

    #: Paper-reported geomean speedups (Section 6.3.1).
    paper_mpi = {"delta": 12.52, "perlmutter": 14.22,
                 "frontier": 9.76, "aurora": 48.02}
    paper_vendor = {"delta": 1.26, "perlmutter": 1.05,
                    "frontier": 1.55, "aurora": 12.01}

    machine = machines.by_name(system, nodes=4)
    rows = fig8_system(machine, FIG8_PAYLOAD)
    bounds = fig8_bounds(machine)

    records = [{"row": "meta", "system": system,
                "machine": machine.describe(),
                "payload_bytes": FIG8_PAYLOAD}]
    for name, b in bounds.items():
        records.append({"row": "bound", "collective": name, **b})
    for m in rows:
        records.append({
            "row": "bar",
            "collective": m.collective,
            "implementation": m.implementation,
            "payload_bytes": m.payload_bytes,
            "seconds": m.seconds,
            "throughput": m.throughput,
        })

    def by_impl(prefix):
        out = {}
        for m in rows:
            if m.implementation == prefix or (
                prefix == "vendor"
                and m.implementation in ("nccl", "rccl", "oneccl")
            ):
                out[m.collective] = m
            if prefix == "hiccl" and \
                    m.implementation.startswith("hiccl-pipelined"):
                out.setdefault(m.collective, m)
        return out

    hiccl, mpi, vendor = by_impl("hiccl"), by_impl("mpi"), by_impl("vendor")
    records += _fig8_speedup_records(system, rows, "MPI", hiccl, mpi,
                                     paper_mpi[system])
    if vendor:
        records += _fig8_speedup_records(
            system, rows, VENDOR_LIBRARY[system].name, hiccl, vendor,
            paper_vendor[system])
    return records


def _render_speedup_section(system: str, baseline: str,
                            records: list) -> list:
    """The ``SpeedupReport.render()`` lines plus the paper note."""
    from ..bench.report import geomean

    ratios = {r["collective"]: r["ratio"] for r in records
              if r["row"] == "speedup" and r["baseline"] == baseline}
    lines = [f"{system}: HiCCL speedup over {baseline}"]
    for name, ratio in sorted(ratios.items()):
        lines.append(f"  {name:16s} {ratio:8.2f}x")
    lines.append(f"  {'geomean':16s} {geomean(ratios.values()):8.2f}x")
    paper = next(r["value"] for r in records
                 if r["row"] == "paper" and r["baseline"] == baseline)
    lines.append(f"  (paper: {paper:.2f}x)")
    return lines


def render_fig8(records: list) -> str:
    """One Figure 8 panel's baseline text from records."""
    from ..core.composition import FIGURE8_ORDER

    meta = next(r for r in records if r["row"] == "meta")
    bounds = {r["collective"]: r for r in records if r["row"] == "bound"}
    bars: dict[str, list] = {}
    for r in records:
        if r["row"] == "bar":
            bars.setdefault(r["collective"], []).append(r)
    lines = [
        f"Figure 8 ({meta['system']}): peak collective throughput, GB/s "
        f"({meta['machine']})"
    ]
    for name in FIGURE8_ORDER:
        if name not in bars:
            continue
        b = bounds[name]
        lines.append(
            f"  {name} [theoretical {b['theoretical']:.1f}, achievable "
            f"{b['achievable']:.1f}, empirical({b['empirical_kind']}) "
            f"{b['empirical']:.1f}]"
        )
        for m in bars[name]:
            bar = "#" * max(
                1, int(m["throughput"] / max(b["achievable"], 1e-9) * 40))
            lines.append(
                f"    {m['implementation']:18s} {m['throughput']:8.2f}  {bar}")
    baselines = []
    for r in records:
        if r["row"] == "paper" and r["baseline"] not in baselines:
            baselines.append(r["baseline"])
    for baseline in baselines:
        lines.append("")
        lines += _render_speedup_section(meta["system"], baseline, records)
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 9
def gen_fig9(collective: str, payloads_bytes=FIG9_PAYLOADS,
             depths=FIG9_DEPTHS) -> list:
    """Records of one Figure 9 panel: throughput per (depth, payload)."""
    from ..bench.figures import FIG9_CASES, fig9_curves
    from ..machine import machines

    machine = machines.perlmutter(nodes=4)
    curves = fig9_curves(machine, collective,
                         payloads_bytes=list(payloads_bytes),
                         depths=tuple(depths))
    records = [{"row": "meta", "collective": collective,
                "topology": FIG9_CASES[collective],
                "system": machine.name, "nodes": 4}]
    for depth in sorted(curves):
        for m in curves[depth]:
            records.append({
                "row": "point",
                "depth": depth,
                "payload_bytes": m.payload_bytes,
                "seconds": m.seconds,
                "throughput": m.throughput,
            })
    return records


def render_fig9(records: list) -> str:
    """One Figure 9 panel's baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    curves: dict[int, list] = {}
    for r in records:
        if r["row"] == "point":
            curves.setdefault(r["depth"], []).append(r)
    depths = sorted(curves)
    payloads = [r["payload_bytes"] for r in curves[depths[0]]]
    lines = [f"Figure 9 ({meta['collective']}, {meta['topology']}): GB/s by "
             "buffer size (rows) and pipeline depth m (columns)"]
    lines.append(f"{'payload':>10s}" + "".join(f"  m={d:<5d}" for d in depths))
    for i, pb in enumerate(payloads):
        label = (f"{pb / (1 << 20):.2g}MB" if pb < (1 << 30)
                 else f"{pb / (1 << 30):.2g}GB")
        cells = "".join(f"{curves[d][i]['throughput']:8.2f}" for d in depths)
        lines.append(f"{label:>10s}{cells}")
    return "\n".join(lines)


# -------------------------------------------------------------------- Fig 10
def gen_fig10(system: str, node_counts=None, depths=FIG10_DEPTHS,
              payload_bytes: int = FIG10_PAYLOAD) -> list:
    """Records of one Figure 10 panel: All-reduce GB/s per node count."""
    from ..bench.figures import fig10_scaling
    from ..machine import machines

    factory = machines.PAPER_SYSTEMS[system]
    if node_counts is None:
        node_counts = tuple(n for n in (2, 4, 8, 16, 32, 64)
                            if factory(n).world_size <= FIG10_GPU_BUDGET)
    series = fig10_scaling(factory, node_counts=tuple(node_counts),
                           payload_bytes=payload_bytes,
                           depths=tuple(depths))
    records = [{"row": "meta", "system": system,
                "payload_bytes": payload_bytes}]
    for name, points in series.items():
        for nodes, throughput in points.items():
            records.append({"row": "point", "series": name,
                            "nodes": nodes, "throughput": throughput})
    return records


def render_fig10(records: list) -> str:
    """One Figure 10 panel's baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    series: dict[str, dict[int, float]] = {}
    for r in records:
        if r["row"] == "point":
            series.setdefault(r["series"], {})[r["nodes"]] = r["throughput"]
    lines = [f"Figure 10 ({meta['system']}): All-reduce throughput (GB/s) "
             "vs nodes"]
    node_counts = sorted({n for s in series.values() for n in s})
    lines.append(f"{'series':>12s}" + "".join(f"{n:>9d}" for n in node_counts))
    for name in sorted(series):
        cells = "".join(
            f"{series[name].get(n, float('nan')):>9.2f}" for n in node_counts)
        lines.append(f"{name:>12s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------- Saturation
def gen_saturation(system: str, payloads_bytes=SATURATION_PAYLOADS) -> list:
    """Records of one Section 6.2 saturation sweep (best-config broadcast)."""
    from ..bench.configs import best_config
    from ..bench.runner import sweep_payloads
    from ..machine import machines

    machine = machines.by_name(system, nodes=4)
    cfg = best_config(machine, "broadcast")
    sweep = sweep_payloads(machine, "broadcast", cfg, list(payloads_bytes))
    records = [{"row": "meta", "system": system,
                "machine": machine.describe()}]
    for m in sweep:
        records.append({"row": "point", "payload_bytes": m.payload_bytes,
                        "seconds": m.seconds, "throughput": m.throughput})
    return records


def render_saturation(records: list) -> str:
    """One saturation sweep's baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    lines = [f"Section 6.2 sweep: broadcast on {meta['machine']}"]
    for r in records:
        if r["row"] == "point":
            lines.append(f"  {r['payload_bytes'] / (1 << 20):8.0f} MB"
                         f"  {r['throughput']:8.2f} GB/s")
    return "\n".join(lines)


# ----------------------------------------------------------------- Ablations
def _bcast_throughput(machine, *, stripe, pipeline=16, hierarchy=None,
                      libraries=None, ring=1,
                      payload_bytes: int = FIG8_PAYLOAD) -> float:
    """Broadcast throughput under an explicit configuration (ablation probe)."""
    from ..bench.configs import tree_config
    from ..bench.runner import payload_count
    from ..core.communicator import Communicator

    count = payload_count(machine, payload_bytes)
    comm = Communicator(machine, materialize=False)
    send = comm.alloc(machine.world_size * count, "sendbuf")
    recv = comm.alloc(machine.world_size * count, "recvbuf")
    comm.add_multicast(send, recv, machine.world_size * count, 0,
                       list(range(machine.world_size)))
    if hierarchy is None:
        cfg = tree_config(machine, pipeline=pipeline, stripe=stripe)
        hierarchy, libraries = list(cfg.hierarchy), list(cfg.libraries)
    comm.init(hierarchy=hierarchy, library=libraries, ring=ring,
              stripe=stripe, pipeline=pipeline)
    t = comm.run()
    return machine.world_size * count * 4 / 1e9 / t


def gen_ablation_striping() -> list:
    """Records: striping gain on single-NIC Delta vs multi-NIC Perlmutter."""
    from ..machine import machines

    records = []
    for system in ("delta", "perlmutter"):
        m = machines.by_name(system, nodes=4)
        records.append({
            "row": "system",
            "system": system,
            "unstriped": _bcast_throughput(m, stripe=1),
            "striped": _bcast_throughput(m, stripe=m.gpus_per_node),
        })
    return records


def render_ablation_striping(records: list) -> str:
    """Striping-ablation baseline text from records."""
    lines = ["Ablation: multi-NIC striping (broadcast, 4 nodes)"]
    for r in records:
        if r["row"] != "system":
            continue
        gain = r["striped"] / r["unstriped"]
        lines.append(
            f"  {r['system']:12s} unstriped={r['unstriped']:7.2f} GB/s "
            f"striped={r['striped']:7.2f} GB/s  gain={gain:.2f}x")
    return "\n".join(lines)


def gen_ablation_binding() -> list:
    """Records: packed vs round-robin binding at 12 GPUs / 8 NICs."""
    from ..machine.machines import generic
    from ..machine.nic import Binding

    records = []
    for policy in (Binding.ROUND_ROBIN, Binding.PACKED):
        m = generic(4, 12, 8, binding=policy, intra_bandwidth=120.0,
                    name=f"bind-{policy.value}")
        records.append({"row": "policy", "policy": policy.value,
                        "throughput": _bcast_throughput(m, stripe=12)})
    return records


def render_ablation_binding(records: list) -> str:
    """Binding-ablation baseline text from records."""
    lines = ["Ablation: binding policy (12 GPUs, 8 NICs, broadcast)"]
    for r in records:
        if r["row"] == "policy":
            lines.append(f"  {r['policy']:12s} {r['throughput']:7.2f} GB/s")
    return "\n".join(lines)


def gen_ablation_libraries() -> list:
    """Records: IPC vs MPI for the intra-node level on Frontier."""
    from ..bench.configs import tree_config
    from ..machine import machines
    from ..transport.library import Library

    m = machines.frontier(nodes=4)
    cfg = tree_config(m, pipeline=16)
    records = []
    for label, intra in (("ipc", Library.IPC), ("mpi", Library.MPI)):
        libs = [lib if not lib.intra_node_only else intra
                for lib in cfg.libraries]
        records.append({
            "row": "library",
            "library": label,
            "throughput": _bcast_throughput(
                m, stripe=cfg.stripe, pipeline=cfg.pipeline,
                hierarchy=list(cfg.hierarchy), libraries=libs),
        })
    return records


def render_ablation_libraries(records: list) -> str:
    """Library-ablation baseline text from records."""
    by_lib = {r["library"]: r["throughput"] for r in records
              if r["row"] == "library"}
    return (
        "Ablation: intra-node library on Frontier (broadcast)\n"
        f"  IPC intra-node: {by_lib['ipc']:7.2f} GB/s\n"
        f"  MPI intra-node: {by_lib['mpi']:7.2f} GB/s"
    )


def gen_ablation_hierarchy() -> list:
    """Records: matched vs mismatched vs flat virtual hierarchies."""
    from ..machine import machines
    from ..transport.library import Library

    m = machines.perlmutter(nodes=4)
    cases = {
        "matched": dict(stripe=4, hierarchy=[2, 2, 4],
                        libraries=[Library.NCCL, Library.NCCL, Library.IPC]),
        "mismatched": dict(stripe=4, hierarchy=[2, 4, 2],
                           libraries=[Library.NCCL, Library.NCCL,
                                      Library.NCCL]),
        "flat": dict(stripe=1, pipeline=1, hierarchy=[16],
                     libraries=[Library.NCCL]),
    }
    return [{"row": "hierarchy", "case": case,
             "throughput": _bcast_throughput(m, **kwargs)}
            for case, kwargs in cases.items()]


def render_ablation_hierarchy(records: list) -> str:
    """Hierarchy-ablation baseline text from records."""
    by_case = {r["case"]: r["throughput"] for r in records
               if r["row"] == "hierarchy"}
    return (
        "Ablation: virtual hierarchy vs physical machine (Perlmutter bcast)\n"
        f"  matched {{2,2,4}}:    {by_case['matched']:7.2f} GB/s\n"
        f"  mismatched {{2,4,2}}: {by_case['mismatched']:7.2f} GB/s\n"
        f"  flat {{16}}:          {by_case['flat']:7.2f} GB/s"
    )


register("fig4_allreduce_forms", "Single-step vs multi-step All-reduce",
         "figure", gen_fig4_allreduce_forms, render_fig4_allreduce_forms)
for _system in ("delta", "perlmutter", "frontier", "aurora"):
    register(f"fig8_{_system}",
             f"Peak collective throughput on {_system} (Figure 8)", "figure",
             (lambda system=_system, **kw: gen_fig8(system, **kw)),
             render_fig8)
for _collective in ("broadcast", "gather", "reduce", "scatter"):
    register(f"fig9_{_collective}",
             f"Pipeline depth vs buffer size: {_collective} (Figure 9)",
             "figure",
             (lambda collective=_collective, **kw:
              gen_fig9(collective, **kw)),
             render_fig9)
for _system in ("perlmutter", "frontier"):
    register(f"fig10_{_system}",
             f"All-reduce scaling on {_system} (Figure 10)", "figure",
             (lambda system=_system, **kw: gen_fig10(system, **kw)),
             render_fig10)
for _system in ("delta", "perlmutter"):
    register(f"saturation_{_system}",
             f"Broadcast saturation sweep on {_system} (Section 6.2)",
             "figure",
             (lambda system=_system, **kw: gen_saturation(system, **kw)),
             render_saturation)
register("ablation_striping", "Striping on single- vs multi-NIC nodes",
         "ablation", gen_ablation_striping, render_ablation_striping)
register("ablation_binding", "Binding policy at 12 GPUs / 8 NICs",
         "ablation", gen_ablation_binding, render_ablation_binding)
register("ablation_libraries", "Intra-node library choice on Frontier",
         "ablation", gen_ablation_libraries, render_ablation_libraries)
register("ablation_hierarchy", "Virtual-hierarchy mismatch cost",
         "ablation", gen_ablation_hierarchy, render_ablation_hierarchy)
