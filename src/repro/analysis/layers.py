"""Layer figures: workload suites, fault probes, and planner baselines.

These baselines exercise whole subsystem stacks (workload timeline, fault
layer, staged planner); their generators call the same probes as the
committed benchmarks and flatten every report into records.  Renders embed
``describe()`` strings captured at generation time, so the renderers stay
pure functions of the records.
"""

from __future__ import annotations

from .registry import register

#: Per-collective payload of the committed baselines (Section 6.2): 64 MiB.
PAYLOAD = 1 << 26

#: Planner search parameters of the committed tuned baselines.
PLANNER_PIPELINES = (1, 4, 16, 32)
PLANNER_NODES = 2


# ----------------------------------------------------------------- Workloads
def gen_workloads(system: str) -> list:
    """Records of one workload-scenario suite on a shared timeline."""
    from ..bench.figures import workload_scenarios_table
    from ..machine.machines import by_name

    machine = by_name(system, nodes=4)
    results = workload_scenarios_table(machine, PAYLOAD)
    records = [{"row": "meta", "system": machine.name,
                "machine": machine.describe(), "payload_bytes": PAYLOAD}]
    for result in results:
        records.append({
            "row": "scenario",
            "scenario": result.name,
            "system": result.system,
            "makespan": result.makespan,
            "worst_slowdown": result.worst_slowdown,
        })
        for job in result.jobs:
            records.append({
                "row": "job",
                "scenario": result.name,
                "job": job.name,
                "start": job.start,
                "finish": job.finish,
                "elapsed": job.elapsed,
                "isolated": job.isolated,
                "slowdown": job.slowdown,
            })
        for key, frac in result.busiest_resources(4):
            records.append({
                "row": "resource",
                "scenario": result.name,
                "resource": str(key),
                "fraction": frac,
            })
    return records


def render_workloads(records: list) -> str:
    """Workload-suite baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    lines = [
        f"Workload scenarios ({meta['system']}): concurrent collectives on "
        f"one shared timeline ({meta['machine']})"
    ]
    for scenario in (r for r in records if r["row"] == "scenario"):
        name = scenario["scenario"]
        lines.append("")
        lines.append(
            f"workload {name} on {scenario['system']}: "
            f"makespan {scenario['makespan'] * 1e3:.3f} ms, "
            f"worst slowdown {scenario['worst_slowdown']:.2f}x")
        lines.append(
            f"  {'job':24s} {'start ms':>9s} {'finish ms':>10s} "
            f"{'elapsed ms':>11s} {'isolated ms':>12s} {'slowdown':>9s}")
        for job in (r for r in records
                    if r["row"] == "job" and r["scenario"] == name):
            lines.append(
                f"  {job['job']:24s} {job['start'] * 1e3:9.3f} "
                f"{job['finish'] * 1e3:10.3f} {job['elapsed'] * 1e3:11.3f} "
                f"{job['isolated'] * 1e3:12.3f} {job['slowdown']:8.2f}x")
        lines.append("  busiest resources:")
        for res in (r for r in records
                    if r["row"] == "resource" and r["scenario"] == name):
            lines.append(f"    {res['resource']:>24s} {res['fraction']:6.1%}")
    return "\n".join(lines)


# -------------------------------------------------------------------- Faults
def gen_faults(system: str) -> list:
    """Records of one degraded-topology probe (seeded replan + shrink)."""
    from ..bench.degraded import (
        PAYLOAD_BYTES,
        REPLAN_NODES,
        SEED,
        SHRINK_NODES,
        degraded_probe,
    )

    probe = degraded_probe(system)
    rep, shrink = probe.replan_report, probe.shrink_report
    return [
        {"row": "meta", "system": system,
         "payload_bytes": PAYLOAD_BYTES, "seed": SEED,
         "replan_nodes": REPLAN_NODES, "shrink_nodes": SHRINK_NODES},
        {"row": "replan",
         "machine": rep.system,
         "faults": rep.faults.describe(),
         "healthy_candidate": rep.healthy_candidate.describe(),
         "replanned_candidate": rep.best.candidate.describe(),
         "healthy_seconds": rep.healthy_seconds,
         "replay_seconds": rep.replay_seconds,
         "replanned_seconds": rep.replanned_seconds},
        {"row": "shrink",
         "machine": shrink.system,
         "collective": shrink.collective,
         "payload_bytes": shrink.payload_bytes,
         "nodes_before": shrink.nodes_before,
         "nodes_after": shrink.nodes_after,
         "drained_nodes": list(shrink.drained_nodes),
         "rank_map": list(shrink.rank_map),
         "healthy_seconds": shrink.healthy_seconds,
         "shrunk_seconds": shrink.shrunk_seconds},
    ]


def render_faults(records: list) -> str:
    """Degraded-probe baseline text from records (no wall-clock values)."""
    meta = next(r for r in records if r["row"] == "meta")
    rep = next(r for r in records if r["row"] == "replan")
    shrink = next(r for r in records if r["row"] == "shrink")
    drained = ",".join(str(n) for n in shrink["drained_nodes"])
    return "\n".join([
        f"Degraded-topology probes ({meta['system']}): seeded fault replan "
        f"at {meta['payload_bytes'] >> 20} MiB on {meta['replan_nodes']} "
        f"nodes, elastic shrink {meta['shrink_nodes']} -> "
        f"{meta['shrink_nodes'] - 1} nodes",
        "",
        f"-- replan under FaultSet.random(seed={meta['seed']}) --",
        f"system: {rep['machine']}",
        f"faults: {rep['faults']}",
        f"healthy:   {rep['healthy_candidate']}: "
        f"{rep['healthy_seconds'] * 1e3:.3f} ms",
        f"replay:    {rep['replay_seconds'] * 1e3:.3f} ms "
        f"({rep['replay_seconds'] / rep['healthy_seconds']:.3f}x vs healthy)",
        f"replanned: {rep['replanned_candidate']}: "
        f"{rep['replanned_seconds'] * 1e3:.3f} ms "
        f"({rep['replanned_seconds'] / rep['healthy_seconds']:.3f}x vs "
        f"healthy, "
        f"{rep['replay_seconds'] / rep['replanned_seconds']:.3f}x over "
        f"replay)",
        "",
        "-- elastic shrink (all_reduce, drained last node) --",
        f"system: {shrink['machine']}",
        f"collective: {shrink['collective']} "
        f"({shrink['payload_bytes']} bytes total)",
        f"shrink: {shrink['nodes_before']} -> {shrink['nodes_after']} nodes "
        f"(drained: {drained})",
        f"healthy: {shrink['healthy_seconds'] * 1e3:.3f} ms",
        f"shrunk:  {shrink['shrunk_seconds'] * 1e3:.3f} ms "
        f"({shrink['shrunk_seconds'] / shrink['healthy_seconds']:.3f}x vs "
        f"healthy)",
    ])


# ------------------------------------------------------------------- Planner
def gen_tuned(system: str) -> list:
    """Records of one planner acceptance baseline (staged vs grid vs paper)."""
    from ..bench.configs import best_config
    from ..bench.runner import run_hiccl
    from ..core.composition import FIGURE8_ORDER
    from ..machine.machines import by_name
    from ..planner import SearchSpace, plan_collective
    from ..workloads.scenarios import tune_scenario

    machine = by_name(system, nodes=PLANNER_NODES)
    space = SearchSpace.build(machine, pipelines=PLANNER_PIPELINES)
    records = [{"row": "meta", "system": system,
                "machine": machine.describe(),
                "payload_bytes": PAYLOAD, "nodes": PLANNER_NODES}]
    for collective in FIGURE8_ORDER:
        paper = run_hiccl(
            machine, collective, best_config(machine, collective),
            payload_bytes=PAYLOAD, warmup=0, rounds=1)
        grid = plan_collective(machine, collective, PAYLOAD, space=space,
                               strategy="grid")
        staged = plan_collective(machine, collective, PAYLOAD, space=space)
        stats = staged.stats
        records.append({
            "row": "plan",
            "collective": collective,
            "paper_seconds": paper.seconds,
            "grid_seconds": grid.best.seconds,
            "staged_seconds": staged.best.seconds,
            "full_evals": stats.full_evals,
            "truncated_evals": stats.truncated_evals,
            "grid_size": stats.grid_size,
            "pruned": stats.pruned,
            "best_plan": staged.best.candidate.describe(),
        })
    tuning = tune_scenario("contention_mix", by_name(system, nodes=4),
                           PAYLOAD)
    stats = tuning.stats
    records.append({
        "row": "tuning",
        "scenario": tuning.name,
        "baseline_makespan": tuning.baseline.makespan,
        "tuned_makespan": tuning.tuned.makespan,
        "improvement": tuning.improvement,
        "groups": stats.groups,
        "shortlisted": stats.shortlisted,
        "isolated_evals": stats.isolated_evals,
        "workload_sims": stats.workload_sims,
    })
    for choice in tuning.choices:
        records.append({
            "row": "choice",
            "label": choice.label,
            "changed": choice.changed,
            "chosen": choice.chosen.describe(),
            "isolated_best": choice.isolated_best.describe(),
        })
    return records


def render_tuned(records: list) -> str:
    """Planner baseline text from records."""
    meta = next(r for r in records if r["row"] == "meta")
    lines = [
        f"Planner vs paper configs ({meta['system']}): staged search over "
        f"hierarchy/libraries/stripe/ring/pipeline at "
        f"{meta['payload_bytes'] >> 20} MiB on {meta['machine']}",
        f"  {'collective':16s} {'paper ms':>9s} {'grid ms':>9s} "
        f"{'planner ms':>11s} {'full/grid':>10s} {'pruned':>7s}  best plan",
    ]
    for row in (r for r in records if r["row"] == "plan"):
        lines.append(
            f"  {row['collective']:16s} {row['paper_seconds'] * 1e3:9.3f} "
            f"{row['grid_seconds'] * 1e3:9.3f} "
            f"{row['staged_seconds'] * 1e3:11.3f} "
            f"{row['full_evals']:>5d}/{row['grid_size']:<4d} "
            f"{row['pruned']:7d}  {row['best_plan']}")
    tuning = next(r for r in records if r["row"] == "tuning")
    lines.append("")
    lines.append(
        f"workload planning for {tuning['scenario']!r}: isolated-tuned "
        f"makespan {tuning['baseline_makespan'] * 1e3:.3f} ms -> "
        f"contended-tuned {tuning['tuned_makespan'] * 1e3:.3f} ms "
        f"({tuning['improvement']:.3f}x)")
    lines.append(
        f"  {tuning['groups']} groups, {tuning['shortlisted']} shortlisted "
        f"candidates, {tuning['isolated_evals']} isolated evals, "
        f"{tuning['workload_sims']} workload simulations")
    for choice in (r for r in records if r["row"] == "choice"):
        marker = "*" if choice["changed"] else " "
        lines.append(f"  {marker} {choice['label']:24s} {choice['chosen']}")
    return "\n".join(lines)


for _system in ("delta", "perlmutter"):
    register(f"workloads_{_system}",
             f"Workload scenario suite on {_system}", "workload",
             (lambda system=_system, **kw: gen_workloads(system, **kw)),
             render_workloads)
    register(f"faults_{_system}",
             f"Degraded-topology probes on {_system}", "fault",
             (lambda system=_system, **kw: gen_faults(system, **kw)),
             render_faults)
    register(f"tuned_{_system}",
             f"Planner acceptance baseline on {_system}", "planner",
             (lambda system=_system, **kw: gen_tuned(system, **kw)),
             render_tuned)
