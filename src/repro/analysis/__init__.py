"""Registry-driven analysis layer: figures as records + byte-identical text.

``repro.analysis`` maps every committed ``benchmarks/output/*.txt``
baseline to a :class:`~repro.analysis.registry.Figure`: a generator
returning structured records (list of JSON-safe dicts) and a renderer that
is a pure function of those records and reproduces the committed text
byte-identically.  The ``repro figures`` CLI and the ``figures-check`` CI
job drive the registry; ``repro trace`` exports Chrome-trace timelines of
workload simulations (see :mod:`repro.analysis.trace`).
"""

from . import (  # noqa: F401  (populate FIGURES)
    layers,
    serving,
    structure,
    throughput,
)
from .registry import (
    FIGURES,
    CheckResult,
    Figure,
    baseline_dir,
    baseline_path,
    check,
    generate,
    records_csv,
    records_json,
    render,
)
from .trace import arrival_trace, scenario_trace, validate_trace, workload_trace

__all__ = [
    "FIGURES",
    "CheckResult",
    "Figure",
    "arrival_trace",
    "baseline_dir",
    "baseline_path",
    "check",
    "generate",
    "records_csv",
    "records_json",
    "render",
    "scenario_trace",
    "validate_trace",
    "workload_trace",
]
