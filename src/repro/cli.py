"""Command-line interface: run collectives, tune, and inspect machines.

Entry point: ``python -m repro <command>``::

    python -m repro machines                        # list Table 4 systems
    python -m repro run all_reduce --system perlmutter --nodes 4 \\
        --payload 256M --topology ring --pipeline 32
    python -m repro compare broadcast --system frontier --payload 1G
    python -m repro tune broadcast --system perlmutter --payload 256M
    python -m repro tune fsdp_step --workload --system perlmutter
    python -m repro bounds --system aurora
    python -m repro bench --system perlmutter --jobs 4  # parallel Fig 8 grid
    python -m repro workloads --list                # ML traffic scenarios
    python -m repro workloads fsdp_step --system perlmutter --payload 64M
    python -m repro lower all_reduce --system perlmutter --dump  # pass summary
    python -m repro cache                           # plan-cache statistics
    python -m repro sim pipeline --system frontier-full --engine level
    python -m repro sim all_reduce --system perlmutter --engine both
    python -m repro faults all_reduce --system delta --seed 7   # replan
    python -m repro faults all_reduce --down-nic 1:0 --straggler 5:0.5
    python -m repro faults all_reduce --shrink 1    # drop a node, re-plan
    python -m repro serve-sim prefill_decode --system delta  # latency tails
    python -m repro serve-sim --list                # serving scenarios
    python -m repro trace prefill_decode --out arrivals.json  # arrival trace
    python -m repro serve --socket /tmp/plan.sock   # planning daemon
    python -m repro request all_reduce --system delta --socket /tmp/plan.sock
    python -m repro cache --json --socket /tmp/plan.sock  # daemon shards

Outputs are plain text; the heavy lifting lives in the library so every
command is also reachable programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _parse_size(text: str) -> int:
    """'256M', '1G', '4096' -> bytes."""
    text = text.strip().upper()
    multipliers = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if text and text[-1] in multipliers:
        return int(float(text[:-1]) * multipliers[text[-1]])
    return int(text)


def _machine(args):
    from .machine.machines import by_name

    return by_name(args.system, nodes=args.nodes)


def cmd_machines(args) -> int:
    """List the Table 4 machine models and the full-system aggregates."""
    from .machine.machines import AGGREGATE_SYSTEMS, PAPER_SYSTEMS, by_name

    print("Paper systems (Table 4):")
    for name in PAPER_SYSTEMS:
        print(" ", by_name(name, nodes=args.nodes).describe())
    print("Aggregate full systems (deployed scale; --nodes overrides):")
    for name in AGGREGATE_SYSTEMS:
        print(" ", by_name(name, nodes=None).describe())
    return 0


def cmd_run(args) -> int:
    """Run one collective under a chosen configuration and report GB/s."""
    from .bench.configs import best_config, ring_config, tree_config
    from .bench.runner import payload_count, run_hiccl
    from .model.bounds import achievable_bound

    machine = _machine(args)
    if args.topology == "auto":
        cfg = best_config(machine, args.collective)
    elif args.topology == "ring":
        cfg = ring_config(machine, pipeline=args.pipeline or 32)
    else:
        cfg = tree_config(machine, pipeline=args.pipeline or 16)
    if args.pipeline:
        cfg = cfg.with_pipeline(args.pipeline)
    meas = run_hiccl(machine, args.collective, cfg,
                     payload_bytes=_parse_size(args.payload),
                     warmup=0, rounds=1)
    bound = achievable_bound(machine, args.collective)
    print(f"{args.collective} on {machine.describe()}")
    print(f"  config: {cfg.name} hierarchy={list(cfg.hierarchy)} "
          f"stripe({cfg.stripe}) ring({cfg.ring}) pipeline({cfg.pipeline})")
    print(f"  payload {meas.payload_bytes / 1e6:.1f} MB  "
          f"simulated {meas.seconds * 1e3:.3f} ms  "
          f"throughput {meas.throughput:.2f} GB/s "
          f"({meas.throughput / bound:.0%} of achievable bound)")
    return 0


def cmd_compare(args) -> int:
    """Compare HiCCL against the MPI/vendor/direct baselines."""
    from .bench.figures import fig8_bounds
    from .bench.runner import run_baseline, run_hiccl
    from .bench.configs import best_config
    from .bench.report import render_throughput_table

    machine = _machine(args)
    payload = _parse_size(args.payload)
    rows = []
    for family in ("mpi", "vendor", "direct"):
        m = run_baseline(machine, args.collective, family,
                         payload_bytes=payload, warmup=0, rounds=1)
        if m:
            rows.append(m)
    rows.append(run_hiccl(machine, args.collective,
                          best_config(machine, args.collective),
                          payload_bytes=payload, warmup=0, rounds=1))
    print(render_throughput_table(
        rows, title=f"{args.collective} on {machine.describe()} (GB/s)"
    ))
    bounds = fig8_bounds(machine)[args.collective]
    print(f"bounds: theoretical {bounds['theoretical']:.1f}, achievable "
          f"{bounds['achievable']:.1f}, empirical {bounds['empirical']:.1f} GB/s")
    return 0


def cmd_tune(args) -> int:
    """Plan the optimization parameters (staged search / workload mode)."""
    machine = _machine(args)
    pipelines = (tuple(int(x) for x in args.pipelines.split(","))
                 if args.pipelines else None)
    if args.workload:
        # Flags of the collective search have no meaning here; reject them
        # loudly instead of silently searching something else.
        ignored = [
            flag for flag, given in (
                ("--strategy", args.strategy is not None),
                ("--jobs", args.jobs is not None),
                ("--budget", args.budget is not None),
                ("--top", args.top is not None),
                ("--no-library-search", args.no_library_search),
                ("--sweep-rungs", args.sweep_rungs),
            ) if given
        ]
        if ignored:
            print(f"error: {', '.join(ignored)} not applicable with "
                  "--workload (groups are searched with library choice on, "
                  "serially, against the contended makespan)")
            return 2
        from .workloads.scenarios import tune_scenario

        result = tune_scenario(
            args.collective, machine, _parse_size(args.payload),
            pipelines=pipelines or (1, 2, 4, 8),
            rounds=args.rounds if args.rounds is not None else 2,
        )
        print(f"workload-aware tuning on {machine.describe()}")
        print(result.render())
        return 0

    if args.rounds is not None:
        print("error: --rounds only applies with --workload")
        return 2
    from .planner import SearchBudget, SearchSpace, plan_collective

    strategy = args.strategy or "staged"
    space = SearchSpace.build(
        machine, pipelines=pipelines or (1, 4, 16, 32),
        search_libraries=not args.no_library_search,
    )
    if args.budget is not None and args.budget < 1:
        print("error: --budget must be >= 1")
        return 2
    budget = None
    if args.budget is not None or args.sweep_rungs:
        budget_kwargs = {"sweep_rungs": args.sweep_rungs}
        if args.budget is not None:
            budget_kwargs["max_full"] = args.budget
        budget = SearchBudget(**budget_kwargs)
    result = plan_collective(
        machine, args.collective, _parse_size(args.payload),
        space=space, budget=budget, strategy=strategy,
        jobs=args.jobs if args.jobs is not None else 1,
    )
    print(f"planning {args.collective} on {machine.describe()} "
          f"(strategy: {strategy})")
    print(result.render(args.top if args.top is not None else 5))
    return 0


def cmd_bounds(args) -> int:
    """Print Table 3 + empirical bounds for one system."""
    from .core.composition import FIGURE8_ORDER
    from .model.bounds import achievable_bound, empirical_bounds, theoretical_bound
    from .bench.configs import INTER_LIBRARY
    from .transport.library import Library

    machine = _machine(args)
    inter = INTER_LIBRARY.get(machine.name, Library.MPI)
    emp = empirical_bounds(machine, inter_library=inter)
    print(f"Throughput bounds for {machine.describe()} (GB/s)")
    print(f"  empirical: uni {emp.unidirectional:.1f}, bidi "
          f"{emp.bidirectional:.1f}, intra-node {emp.intra_node:.1f}")
    print(f"  {'collective':16s} {'theoretical':>12s} {'achievable':>11s}")
    for name in FIGURE8_ORDER:
        print(f"  {name:16s} {theoretical_bound(machine, name):12.1f} "
              f"{achievable_bound(machine, name):11.1f}")
    return 0


def cmd_bench(args) -> int:
    """Run the Figure 8 measurement grid, optionally across worker processes."""
    import time

    from .bench.figures import fig8_bounds, fig8_points, render_fig8
    from .bench.parallel import default_jobs, run_sweep
    from .core.composition import FIGURE8_ORDER
    from .core.plancache import get_cache

    machine = _machine(args)
    collectives = (args.collectives.split(",") if args.collectives
                   else list(FIGURE8_ORDER))
    points = fig8_points(machine, _parse_size(args.payload), collectives)
    jobs = args.jobs if args.jobs != 0 else default_jobs()
    t0 = time.perf_counter()
    results = run_sweep(points, jobs=jobs, cache_dir=args.cache_dir)
    elapsed = time.perf_counter() - t0
    rows = [m for m in results if m is not None]
    print(render_fig8(machine, rows, fig8_bounds(machine)))
    print()
    print(f"{len(rows)} points in {elapsed:.2f}s with jobs={jobs}")
    if jobs <= 1:
        print(f"plan cache: {get_cache().stats.render()}")
    return 0


def cmd_cache(args) -> int:
    """Show (or clear) the plan cache: in-process stats + persisted plans.

    With ``--socket`` the statistics come from a running plan daemon
    instead: service counters, coalescing counters, and the per-shard
    hit/miss/eviction/byte counters of its sharded response cache.
    ``--json`` emits either report machine-readably.
    """
    import json as _json

    from .core.plancache import (
        SCHEMA_VERSION,
        PlanCache,
        default_disk_dir,
        get_cache,
    )

    if args.socket:
        from .service.client import PlanClient

        try:
            with PlanClient(args.socket) as client:
                stats = client.stats()
        except OSError as exc:
            print(f"error: cannot reach plan service at {args.socket}: {exc}")
            return 2
        if args.json:
            print(_json.dumps(
                {k: stats[k] for k in ("service", "batcher", "cache")},
                indent=2, sort_keys=True,
            ))
            return 0
        svc, batch = stats["service"], stats["batcher"]
        print(f"plan service at {args.socket}")
        print(f"  requests={svc['requests']} hits={svc['hits']} "
              f"planned={svc['planned']} coalesced={svc['coalesced']} "
              f"warm-started={svc['warm_started']} errors={svc['errors']}")
        print(f"  batcher: planned={batch['planned']} "
              f"coalesced={batch['coalesced']} inflight={batch['inflight']}")
        for i, shard in enumerate(stats["cache"]["shards"]):
            print(f"  shard {i}: lookups={shard['lookups']} "
                  f"hits={shard['hits']} misses={shard['misses']} "
                  f"stores={shard['stores']} evictions={shard['evictions']} "
                  f"admission-rejected={shard['admission_rejected']} "
                  f"entries={shard['entries']} bytes={shard['bytes']}")
        total = stats["cache"]["total"]
        print(f"  total: entries={total['entries']} bytes={total['bytes']} "
              f"hit-rate={total['hit_rate']:.0%}")
        return 0

    cache = get_cache()
    if args.json:
        doc = {
            "schema": SCHEMA_VERSION,
            "in_process": {
                "entries": len(cache),
                "capacity": cache.capacity,
                "bytes": cache.total_bytes(),
                "max_bytes": cache.max_total_bytes,
                "lookups": cache.stats.lookups,
                "memory_hits": cache.stats.memory_hits,
                "disk_hits": cache.stats.disk_hits,
                "misses": cache.stats.misses,
                "stores": cache.stats.stores,
                "evictions": cache.stats.evictions,
                "seconds_saved": cache.stats.seconds_saved,
            },
        }
        disk_dir = cache.disk_dir if cache.disk_dir is not None else default_disk_dir()
        entries = (sorted(disk_dir.glob("v*-*.npz")) if disk_dir.exists()
                   else [])
        doc["disk"] = {
            "dir": str(disk_dir),
            "active": cache.disk_dir is not None,
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"plan cache (schema v{SCHEMA_VERSION})")
    print(f"  in-process: {len(cache)} plan(s), capacity {cache.capacity}, "
          f"{cache.total_bytes() / 1e6:.2f} MB of plan arrays held "
          f"(budget {cache.max_total_bytes / 1e6:.0f} MB)")
    print(f"  stats: {cache.stats.render()}")
    # Inspect the persistent layer even when this process has it disabled.
    state = "active" if cache.disk_dir is not None else "inactive; set REPRO_PLAN_CACHE=disk"
    disk = cache if cache.disk_dir is not None else PlanCache(
        disk_dir=default_disk_dir())
    entries = (sorted(disk.disk_dir.glob("v*-*.npz"))
               + sorted(disk.disk_dir.glob("v*-*.pkl"))
               if disk.disk_dir.exists() else [])
    total = sum(p.stat().st_size for p in entries)
    print(f"  disk layer ({state}): {disk.disk_dir}")
    print(f"    {len(entries)} persisted plan(s), {total / 1e6:.2f} MB")
    if args.clear:
        removed = disk.clear_disk()
        cache.clear()
        print(f"  cleared: {removed} persisted file(s) removed")
    return 0


def cmd_workloads(args) -> int:
    """Run ML traffic scenarios: concurrent collectives on a shared timeline."""
    from .bench.figures import render_workloads, workload_scenarios_table
    from .workloads.scenarios import SCENARIOS, applicable_scenarios

    if args.list:
        print("Workload scenarios (repro.workloads):")
        for name, scenario in SCENARIOS.items():
            print(f"  {name:18s} {scenario.description}")
        print("run with: repro workloads [name ...] --system <name> "
              "[--payload 64M] [--jobs N]")
        return 0
    machine = _machine(args)
    names = args.scenarios or applicable_scenarios(machine)
    results = workload_scenarios_table(
        machine, _parse_size(args.payload), names=names, jobs=args.jobs
    )
    print(render_workloads(machine, results))
    return 0


def cmd_lower(args) -> int:
    """Lower one collective through the pass pipeline and summarize it."""
    from .bench.configs import best_config
    from .bench.runner import payload_count
    from .core.communicator import Communicator
    from .core.composition import compose
    from .core.passes import PassPipeline
    from .core.plan import OptimizationPlan

    machine = _machine(args)
    count = payload_count(machine, _parse_size(args.payload))
    comm = Communicator(machine, materialize=False)
    compose(comm, args.collective, count)
    cfg = best_config(machine, args.collective)
    if args.pipeline:
        cfg = cfg.with_pipeline(args.pipeline)
    kw = cfg.init_kwargs()
    plan = OptimizationPlan.create(
        machine, kw["hierarchy"], kw["library"],
        stripe=kw["stripe"], ring=kw["ring"], pipeline=kw["pipeline"],
    )
    pipeline = PassPipeline(plan, fuse=args.fuse, dce=args.dce)
    lowered = pipeline.run(comm.program)
    sched = lowered.schedule
    print(f"lowering {args.collective} on {machine.describe()}")
    print(f"  config: {cfg.name} hierarchy={list(cfg.hierarchy)} "
          f"stripe({cfg.stripe}) ring({cfg.ring}) pipeline({cfg.pipeline})")
    if args.dump:
        print("per-pass summary:")
        print(lowered.render())
    kinds = sched.op_kind_counts(machine)
    kind_text = "  ".join(f"{k}={v}" for k, v in kinds.items())
    level_text = "  ".join(
        f"lvl{lvl if lvl >= 0 else '(copy)'}={vol}"
        for lvl, vol in sorted(sched.volume_by_level().items())
    )
    print(f"schedule: {len(sched)} ops in {sched.num_channels} channel(s), "
          f"{sched.stage_count()} stage(s)")
    print(f"  ops by kind: {kind_text}")
    print(f"  elements by level: {level_text}")
    print(f"  scratch high-water: {sched.max_scratch_elements()} elements/rank")
    print(f"  array footprint: {sched.nbytes() / 1e6:.2f} MB")
    return 0


def cmd_sim(args) -> int:
    """Simulate one schedule under a chosen engine and report timings."""
    import time

    from .bench.figures import (
        compare_engines,
        pipeline_stage_schedule,
        sim_engine_table,
    )
    from .simulator.engine import simulate
    from .transport.library import Library

    machine = _machine(args)
    payload = _parse_size(args.payload)
    if args.case == "pipeline":
        count = max(1, payload // 4)
        schedule = pipeline_stage_schedule(
            machine, microbatches=args.microbatches, count=count
        )
        libraries = (Library.MPI, Library.IPC)
        label = f"pipeline x{args.microbatches}"
    else:
        from .bench.configs import best_config
        from .bench.runner import payload_count
        from .core.communicator import Communicator
        from .core.composition import compose
        from .core.passes import PassPipeline
        from .core.plan import OptimizationPlan

        count = payload_count(machine, payload)
        comm = Communicator(machine, materialize=False)
        compose(comm, args.case, count)
        cfg = best_config(machine, args.case)
        kw = cfg.init_kwargs()
        plan = OptimizationPlan.create(
            machine, kw["hierarchy"], kw["library"],
            stripe=kw["stripe"], ring=kw["ring"], pipeline=kw["pipeline"],
        )
        schedule = PassPipeline(plan).run(comm.program).schedule
        libraries = plan.libraries
        label = f"{args.case} ({cfg.name})"
    print(f"simulating {label} on {machine.describe()}")
    if args.engine == "both":
        row = compare_engines(label, schedule, machine, libraries,
                              repeat=args.repeat)
        print(sim_engine_table([row]))
        return 0
    walls = []
    timing = None
    for _ in range(max(1, args.repeat)):
        t0 = time.perf_counter()
        timing = simulate(schedule, machine, libraries, 4, engine=args.engine)
        walls.append(time.perf_counter() - t0)
    print(f"  {len(schedule)} ops, engine requested {args.engine!r}, "
          f"ran {timing.engine!r}")
    print(f"  makespan {timing.elapsed * 1e3:.3f} ms, simulator wall "
          f"{min(walls):.3f} s")
    return 0


def _parse_faults(args, machine):
    """Build the FaultSet: explicit flags if any were given, else seeded."""
    from .machine.faults import FaultSet

    def _pair(text, flag):
        parts = text.split(":")
        if len(parts) != 2:
            raise SystemExit(f"error: {flag} wants A:B, got {text!r}")
        return int(parts[0]), int(parts[1])

    explicit = args.down_nic or args.straggler or args.derate_link
    if not explicit:
        return FaultSet.random(machine, args.seed)
    down_nics = tuple(_pair(t, "--down-nic") for t in args.down_nic)
    stragglers = []
    for text in args.straggler:
        rank, _, scale = text.partition(":")
        stragglers.append((int(rank), float(scale)))
    link_derate = []
    for text in args.derate_link:
        parts = text.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"error: --derate-link wants RANK:LEVEL:SCALE, got {text!r}")
        link_derate.append((int(parts[0]), int(parts[1]), float(parts[2])))
    return FaultSet(down_nics=down_nics, stragglers=tuple(stragglers),
                    link_derate=tuple(link_derate))


def cmd_faults(args) -> int:
    """Degrade the machine and price the recovery: replan or elastic shrink."""
    from .bench.configs import best_config
    from .bench.runner import payload_count
    from .core.communicator import Communicator
    from .core.composition import compose
    from .errors import FaultError
    from .planner.replan import replan
    from .workloads.elastic import elastic_shrink

    machine = _machine(args)
    payload = _parse_size(args.payload)
    try:
        if args.shrink:
            k = args.shrink
            if not 1 <= k < machine.nodes:
                print(f"error: --shrink {k} must drop between 1 and "
                      f"{machine.nodes - 1} of {machine.nodes} node(s)")
                return 2
            drained = tuple(range(machine.nodes - k, machine.nodes))
            report = elastic_shrink(machine, args.collective, payload, drained)
            print(report.render())
            print(f"rank map: {list(report.rank_map)}")
            print(f"shrink re-plan wall: {report.replan_wall_seconds:.3f} s")
            return 0
        faults = _parse_faults(args, machine)
        comm = Communicator(machine, materialize=False)
        compose(comm, args.collective, payload_count(machine, payload))
        comm.init(**best_config(machine, args.collective).init_kwargs())
        report = replan(comm, faults)
        print(report.render())
        print(f"re-plan wall: {report.replan_wall_seconds:.3f} s")
        return 0
    except FaultError as exc:
        print(f"error: {exc}")
        return 2


def cmd_serve(args) -> int:
    """Run the planning daemon in the foreground until a shutdown frame."""
    from .service.server import PlanService, PlanServer, default_socket_path

    path = args.socket or default_socket_path()
    service = PlanService(
        jobs=args.jobs,
        num_shards=args.shards,
        shard_capacity=args.shard_capacity,
        shard_bytes=_parse_size(args.shard_bytes),
        warm_start=not args.no_warm_start,
        admission=not args.no_admission,
        cache_dir=args.cache_dir,
    )
    with PlanServer(path, service) as server:
        print(f"plan service listening on {server.socket_path} "
              f"(jobs={args.jobs}, shards={args.shards}, "
              f"warm-start={'off' if args.no_warm_start else 'on'}, "
              f"admission={'off' if args.no_admission else 'on'})")
        print("stop with: repro request --shutdown, or Ctrl-C")
        try:
            server.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass
    print("plan service stopped")
    return 0


def cmd_request(args) -> int:
    """Send one plan request (or control frame) to a running daemon."""
    import json as _json

    from .errors import HicclError
    from .service.client import PlanClient
    from .service.server import default_socket_path

    path = args.socket or default_socket_path()
    try:
        client = PlanClient(path)
    except OSError as exc:
        print(f"error: cannot reach plan service at {path}: {exc}")
        return 2
    with client:
        if args.shutdown:
            client.shutdown()
            print(f"plan service at {path} asked to stop")
            return 0
        if not args.collective:
            print("error: a collective is required unless --shutdown is given")
            return 2
        machine = _machine(args)
        options = {}
        if args.pipelines:
            options["pipelines"] = [
                int(x) for x in args.pipelines.split(",")
            ]
        if args.search_libraries:
            options["search_libraries"] = True
        try:
            response = client.plan(
                machine, args.collective, _parse_size(args.payload),
                options=options or None,
            )
        except HicclError as exc:
            print(f"error: {type(exc).__name__}: {exc}")
            return 2
        if args.json:
            print(_json.dumps(response, indent=2, sort_keys=True))
            return 0
        winner = response["winner"]
        libs = ",".join(winner["libraries"])
        print(f"{args.collective} on {machine.describe()}")
        print(f"  source: {response['source']}  "
              f"request wall {response['seconds'] * 1e3:.2f} ms")
        print(f"  winner: {winner['hierarchy']} [{libs}] "
              f"stripe({winner['stripe']}) ring({winner['ring']}) "
              f"pipeline({winner['pipeline']})")
        print(f"  simulated {response['plan_seconds'] * 1e3:.3f} ms, "
              f"planned in {response['plan_wall_seconds']:.2f} s"
              + (f" ({response['warm_seeds']} warm seed(s))"
                 if response.get("warm_seeds") else ""))
    return 0


def cmd_gantt(args) -> int:
    """Render the pipeline timeline as an ASCII Gantt chart."""
    from .bench.configs import best_config
    from .bench.runner import payload_count
    from .core.communicator import Communicator
    from .core.composition import compose
    from .simulator.trace import ascii_gantt, build_trace, utilization_report

    machine = _machine(args)
    count = payload_count(machine, _parse_size(args.payload))
    comm = Communicator(machine, materialize=False)
    compose(comm, args.collective, count)
    cfg = best_config(machine, args.collective)
    if args.pipeline:
        cfg = cfg.with_pipeline(args.pipeline)
    comm.init(**cfg.init_kwargs())
    events = build_trace(comm.schedule, comm.timing, machine,
                         comm.plan.libraries)
    print(ascii_gantt(events, width=args.width))
    print()
    print(utilization_report(comm.timing).render(6))
    return 0


def cmd_figures(args) -> int:
    """Regenerate, export, or drift-check registered figure baselines."""
    import json as _json

    from . import analysis

    if args.list:
        width = max(len(name) for name in analysis.FIGURES)
        for name, fig in analysis.FIGURES.items():
            print(f"{name:{width}s}  [{fig.group}] {fig.title}")
        return 0
    names = args.names or list(analysis.FIGURES)
    unknown = [n for n in names if n not in analysis.FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)} "
              "(see `repro figures --list`)", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    failures = []
    exports = {}
    for name in names:
        records = analysis.generate(name)
        if args.check:
            result = analysis.check(name, records)
            status = "ok" if result.ok else f"DRIFT ({result.reason})"
            print(f"{name}: {status}")
            if not result.ok:
                failures.append(name)
            continue
        text = analysis.render(name, records)
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n")
            if args.json:
                (out_dir / f"{name}.json").write_text(
                    analysis.records_json(records))
            if args.csv:
                (out_dir / f"{name}.csv").write_text(
                    analysis.records_csv(records))
            print(f"{name}: wrote {out_dir / name}.txt")
        elif args.json:
            exports[name] = records
        elif args.csv:
            print(f"# figure: {name}")
            print(analysis.records_csv(records), end="")
        else:
            print(text)
    if args.json and not out_dir and not args.check:
        doc = exports[names[0]] if len(names) == 1 else exports
        print(_json.dumps(doc, indent=2, sort_keys=True))
    if failures:
        print(f"{len(failures)} figure(s) drifted: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve_sim(args) -> int:
    """Drive a seeded serving scenario and report latency percentiles."""
    from .serving import SERVING_SCENARIOS, run_serving_scenario

    if args.list:
        width = max(len(name) for name in SERVING_SCENARIOS)
        for name, scenario in SERVING_SCENARIOS.items():
            print(f"{name:{width}s}  {scenario.description} "
                  f"(default {scenario.default_rate:.0f}/s)")
        return 0
    if not args.scenario:
        print("serve-sim needs a scenario (or --list)", file=sys.stderr)
        return 2
    machine = _machine(args)
    result = run_serving_scenario(
        args.scenario, machine, arrivals=args.arrivals, rate=args.rate,
        seed=args.seed, payload_bytes=_parse_size(args.payload),
        mode=args.mode)
    print(result.describe())
    if result.stats:
        s = result.stats
        print(f"replay: {s['replayed']}/{s['arrivals']} requests replayed, "
              f"{s['fallbacks']} fallbacks, {s['epochs']} epochs "
              f"({result.wall_seconds:.3f}s wall)")
    return 0


def cmd_trace(args) -> int:
    """Export a workload scenario's timelines as a Chrome trace JSON."""
    import json as _json

    from .analysis import arrival_trace, scenario_trace, validate_trace
    from .serving import SERVING_SCENARIOS
    from .workloads.scenarios import SCENARIOS

    if args.scenario in SERVING_SCENARIOS:
        machine = _machine(args)
        trace = arrival_trace(args.scenario, machine, arrivals=args.arrivals,
                              rate=args.rate, seed=args.seed)
        problems = validate_trace(trace)
        if problems:  # pragma: no cover - defensive; the export is validated
            print("trace failed schema validation:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        out = Path(args.out)
        with out.open("w") as fh:
            _json.dump(trace, fh)
            fh.write("\n")
        data = trace["otherData"]
        print(f"wrote {out} ({data['arrivals']} requests, "
              f"p50 {data['p50_seconds'] * 1e6:.3f} us, "
              f"p99 {data['p99_seconds'] * 1e6:.3f} us); view in "
              "chrome://tracing or https://ui.perfetto.dev")
        return 0
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; one of: "
              f"{', '.join(sorted(SCENARIOS))} or serving: "
              f"{', '.join(sorted(SERVING_SCENARIOS))}", file=sys.stderr)
        return 2
    machine = _machine(args)
    trace = scenario_trace(args.scenario, machine,
                           _parse_size(args.payload), engine=args.engine)
    problems = validate_trace(trace)
    if problems:  # pragma: no cover - defensive; the export is validated
        print("trace failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    out = Path(args.out)
    with out.open("w") as fh:
        _json.dump(trace, fh)
        fh.write("\n")
    n = len(trace["traceEvents"])
    print(f"wrote {out} ({n} events, makespan "
          f"{trace['otherData']['makespan_seconds'] * 1e3:.3f} ms, "
          f"engine {trace['otherData']['engine']}); view in "
          "chrome://tracing or https://ui.perfetto.dev")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HiCCL reproduction: simulated hierarchical collectives",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, collective=True):
        if collective:
            p.add_argument("collective", help="e.g. all_reduce, broadcast")
        p.add_argument("--system", default="perlmutter",
                       help="delta|perlmutter|frontier|aurora")
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--payload", default="256M",
                       help="total payload, e.g. 64M, 1G")

    p = sub.add_parser("machines", help="list the Table 4 machine models")
    p.add_argument("--nodes", type=int, default=4)
    p.set_defaults(fn=cmd_machines)

    p = sub.add_parser("run", help="run one collective under a config")
    common(p)
    p.add_argument("--topology", choices=("auto", "tree", "ring"),
                   default="auto")
    p.add_argument("--pipeline", type=int, default=0)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="HiCCL vs MPI/vendor/direct baselines")
    common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "tune",
        help="plan the optimization parameters (staged search / workloads)")
    common(p)
    p.add_argument("--top", type=int, default=None,
                   help="candidates to print (default 5)")
    p.add_argument("--strategy", choices=("staged", "grid"), default=None,
                   help="staged = prune+halve (default); grid = exhaustive")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for candidate evaluation "
                        "(0 = all cores; default in-process)")
    p.add_argument("--budget", type=int, default=None,
                   help="cap on full-payload simulations "
                        "(default: derive from the grid size)")
    p.add_argument("--pipelines", default=None,
                   help="comma-separated pipeline depths to search "
                        "(default 1,4,16,32; 1,2,4,8 with --workload)")
    p.add_argument("--no-library-search", action="store_true",
                   help="fix per-level libraries to the Table 5 policy")
    p.add_argument("--sweep-rungs", action="store_true",
                   help="price the halving rungs from one full-payload "
                        "lowering per survivor (payload sweep) instead of "
                        "re-lowering at each truncated payload")
    p.add_argument("--workload", action="store_true",
                   help="treat the positional argument as a workload "
                        "scenario and tune its groups against the "
                        "contended makespan")
    p.add_argument("--rounds", type=int, default=None,
                   help="coordinate-descent passes in --workload mode "
                        "(default 2)")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("bounds", help="Table 3 + empirical bounds for a system")
    common(p, collective=False)
    p.set_defaults(fn=cmd_bounds)

    p = sub.add_parser("bench",
                       help="run the Figure 8 grid (parallel with --jobs)")
    common(p, collective=False)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores, 1 = in-process)")
    p.add_argument("--collectives", default="",
                   help="comma-separated subset, e.g. broadcast,all_reduce")
    p.add_argument("--cache-dir", default=None,
                   help="shared on-disk plan cache for the workers")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "workloads",
        help="ML traffic scenarios: concurrent collectives, shared timeline")
    p.add_argument("scenarios", nargs="*",
                   help="scenario names (default: all that fit the machine)")
    p.add_argument("--list", action="store_true",
                   help="list the available scenarios and exit")
    p.add_argument("--system", default="perlmutter",
                   help="delta|perlmutter|frontier|aurora")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--payload", default="64M",
                   help="per-collective payload, e.g. 16M, 256M")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes across scenarios (0 = all cores); "
                        "each scenario still prices on one shared timeline")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("cache", help="plan-cache statistics and maintenance")
    p.add_argument("--clear", action="store_true",
                   help="also delete the persisted plans on disk")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="report a running plan daemon's sharded cache "
                        "instead of this process's plan cache")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "lower",
        help="run the pass pipeline over one collective; summarize the IR")
    common(p)
    p.add_argument("--pipeline", type=int, default=0)
    p.add_argument("--dump", action="store_true",
                   help="print the per-pass schedule summary")
    p.add_argument("--fuse", action="store_true",
                   help="enable the contiguous-send fusion pass")
    p.add_argument("--dce", action="store_true",
                   help="enable the dead-copy elimination pass")
    p.set_defaults(fn=cmd_lower)

    p = sub.add_parser(
        "sim",
        help="simulate one schedule under the event or levelized engine")
    p.add_argument("case",
                   help="a collective (e.g. all_reduce) or 'pipeline' for "
                        "the dependency-chained pipeline-parallel workload")
    p.add_argument("--system", default="perlmutter",
                   help="delta|perlmutter|frontier|aurora|"
                        "frontier-full|aurora-full")
    p.add_argument("--nodes", type=int, default=None,
                   help="node count (default: the system's own default — "
                        "4 for the paper testbeds, deployed scale for the "
                        "full-system aggregates)")
    p.add_argument("--payload", default="4M",
                   help="total payload (collectives) or per-hop buffer "
                        "(pipeline), e.g. 4M, 1G")
    p.add_argument("--engine", choices=("auto", "event", "level", "both"),
                   default="auto",
                   help="simulation engine; 'both' runs event and level and "
                        "prints the comparison row")
    p.add_argument("--microbatches", type=int, default=4,
                   help="pipeline case only: microbatches per stage chain")
    p.add_argument("--repeat", type=int, default=1,
                   help="simulator wall-clock is best-of-N")
    p.set_defaults(fn=cmd_sim)

    p = sub.add_parser(
        "faults",
        help="degrade the machine and price the recovery (replan / shrink)")
    common(p)
    p.add_argument("--seed", type=int, default=7,
                   help="seed for FaultSet.random when no explicit fault "
                        "flags are given (default 7)")
    p.add_argument("--down-nic", action="append", default=[],
                   metavar="NODE:NIC",
                   help="fail one NIC (repeatable), e.g. --down-nic 1:0")
    p.add_argument("--straggler", action="append", default=[],
                   metavar="RANK:SCALE",
                   help="slow one GPU to SCALE of its healthy rates "
                        "(repeatable), e.g. --straggler 5:0.5")
    p.add_argument("--derate-link", action="append", default=[],
                   metavar="RANK:LEVEL:SCALE",
                   help="derate one intra-node link (repeatable), "
                        "e.g. --derate-link 4:0:0.6")
    p.add_argument("--shrink", type=int, default=0, metavar="K",
                   help="instead of replanning in place, drain the last K "
                        "nodes and re-plan on the survivors")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "serve",
        help="run the concurrent planning daemon on a local socket")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="Unix socket path (default: "
                        "$REPRO_SERVICE_SOCKET or "
                        "~/.cache/repro/plan-service.sock)")
    p.add_argument("--jobs", type=int, default=1,
                   help="planning workers (0 = all cores; 1 = in-process "
                        "thread sharing this process's plan cache)")
    p.add_argument("--shards", type=int, default=4,
                   help="response-cache shards (partitioned by machine "
                        "fingerprint)")
    p.add_argument("--shard-capacity", type=int, default=512,
                   help="response entries per shard")
    p.add_argument("--shard-bytes", default="8M",
                   help="byte budget per shard, e.g. 8M")
    p.add_argument("--no-warm-start", action="store_true",
                   help="disable nearest-machine warm-started planning")
    p.add_argument("--no-admission", action="store_true",
                   help="disable frequency-sketch admission (plain LRU)")
    p.add_argument("--cache-dir", default=None,
                   help="shared on-disk plan cache for the workers")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "request",
        help="ask a running plan daemon for one collective's plan")
    p.add_argument("collective", nargs="?", default=None,
                   help="e.g. all_reduce, broadcast")
    p.add_argument("--system", default="perlmutter",
                   help="delta|perlmutter|frontier|aurora")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--payload", default="256M",
                   help="total payload, e.g. 64M, 1G")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="daemon socket path (default: "
                        "$REPRO_SERVICE_SOCKET or "
                        "~/.cache/repro/plan-service.sock)")
    p.add_argument("--pipelines", default=None,
                   help="comma-separated pipeline depths to search "
                        "(default: the service's 1,4)")
    p.add_argument("--search-libraries", action="store_true",
                   help="search per-level library choice too")
    p.add_argument("--json", action="store_true",
                   help="print the raw response frame")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the daemon to stop instead of planning")
    p.set_defaults(fn=cmd_request)

    p = sub.add_parser("gantt", help="ASCII pipeline timeline (Figure 7)")
    common(p)
    p.add_argument("--pipeline", type=int, default=0)
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(fn=cmd_gantt)

    p = sub.add_parser(
        "figures",
        help="regenerate/check the committed figure baselines (registry)")
    p.add_argument("names", nargs="*",
                   help="figure names (default: the whole registry)")
    p.add_argument("--list", action="store_true",
                   help="list registered figures and exit")
    p.add_argument("--check", action="store_true",
                   help="fail on drift vs the committed baselines")
    p.add_argument("--json", action="store_true",
                   help="emit structured records as JSON")
    p.add_argument("--csv", action="store_true",
                   help="emit structured records as CSV")
    p.add_argument("--out-dir", default=None,
                   help="write <name>.txt (and .json/.csv) under this dir "
                        "instead of printing")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "serve-sim",
        help="serving latency percentiles via the streaming replay engine")
    p.add_argument("scenario", nargs="?",
                   help="serving scenario, e.g. prefill_decode")
    p.add_argument("--list", action="store_true",
                   help="list serving scenarios and exit")
    p.add_argument("--system", default="perlmutter",
                   help="delta|perlmutter|frontier|aurora")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--payload", default="1M",
                   help="anchor payload per request class, e.g. 1M")
    p.add_argument("--arrivals", type=int, default=512,
                   help="number of arrivals to draw (default 512)")
    p.add_argument("--rate", type=float, default=None,
                   help="arrivals per second (default: scenario registry)")
    p.add_argument("--seed", type=int, default=0,
                   help="arrival-trace seed (default 0)")
    p.add_argument("--mode", choices=("replay", "naive", "merged"),
                   default="replay",
                   help="replay fast path, naive per-arrival loop, or "
                        "merged brute force")
    p.set_defaults(fn=cmd_serve_sim)

    p = sub.add_parser(
        "trace",
        help="export a workload scenario as a Chrome trace (chrome://tracing)")
    p.add_argument("scenario",
                   help="registered workload scenario (e.g. fsdp_step) or "
                        "serving scenario (e.g. prefill_decode) for an "
                        "arrival-trace timeline")
    p.add_argument("--system", default="perlmutter",
                   help="delta|perlmutter|frontier|aurora")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--payload", default="64M",
                   help="per-collective payload, e.g. 64M")
    p.add_argument("--engine", choices=("auto", "event", "level"),
                   default="auto")
    p.add_argument("--arrivals", type=int, default=256,
                   help="serving scenarios: arrivals to draw (default 256)")
    p.add_argument("--rate", type=float, default=None,
                   help="serving scenarios: arrivals per second")
    p.add_argument("--seed", type=int, default=0,
                   help="serving scenarios: arrival-trace seed")
    p.add_argument("--out", default="trace.json",
                   help="output path (default trace.json)")
    p.set_defaults(fn=cmd_trace)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
