"""Serving traffic scenarios: request-class suites for the latency driver.

Two inference-shaped scenarios, mirroring how :mod:`repro.workloads
.scenarios` models training traffic:

* ``prefill_decode`` — disaggregated inference: the node halves form a
  prefill pool and a decode pool, each running its own pool-local
  activation all-gather, plus a point-to-point KV-cache transfer between
  the pool heads whenever a sequence migrates from prefill to decode.
* ``continuous_batch`` — one shared engine with continuous batching: every
  request runs the same full-machine all-gather, but payloads fall into
  the plan-table size classes (small/medium/large), so the scenario is the
  natural consumer of :func:`repro.planner.plan_table` — see
  :func:`classes_from_table`.

Scenarios are deterministic functions of ``(machine, payload_bytes,
seed, ...)``: arrival streams come from :func:`~repro.serving.arrivals
.poisson_trace`, so committed baselines regenerate byte-identically.  The
registry is :data:`SERVING_SCENARIOS`; the CLI front-end is ``repro
serve-sim``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..bench.configs import workload_config
from ..core.communicator import Communicator, SubCommunicator
from ..core.composition import compose
from ..errors import CompositionError
from ..machine.spec import MachineSpec
from ..simulator.serving import ReplayTemplate, make_template
from .arrivals import poisson_trace
from .driver import RequestClass, ServingResult, simulate_serving

#: Default anchor payload for serving scenarios: 1 MiB.  Serving requests
#: move per-token activations and KV pages, not the GB-scale saturation
#: buffers of the training sweeps; individual classes scale this down.
DEFAULT_PAYLOAD_BYTES = 1 << 20

#: Element size used by every scenario communicator (float32).
ELEM_BYTES = 4


def _template(machine: MachineSpec, ranks, collective: str,
              payload_bytes: int, name: str,
              pipeline: int = 1) -> ReplayTemplate:
    """Compose + init one collective over ``ranks`` and compile its replay.

    Serving plans default to ``pipeline=1``: latency-bound payloads are too
    small to amortize pipelining, and shallow schedules replay fastest.
    """
    ranks = tuple(ranks)
    if ranks == tuple(range(machine.world_size)):
        comm = Communicator(machine, materialize=False)
    else:
        comm = SubCommunicator(machine, ranks, materialize=False)
    count = max(1, payload_bytes // (comm.world_size * ELEM_BYTES))
    compose(comm, collective, count)
    comm.init(**workload_config(comm.machine, pipeline=pipeline).init_kwargs())
    return make_template(name, comm.global_schedule, machine,
                         comm.plan.libraries, ELEM_BYTES)


# ------------------------------------------------------------------ scenarios
def build_prefill_decode(
        machine: MachineSpec,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> tuple[
            tuple[RequestClass, ...], dict]:
    """Disaggregated prefill/decode pools with KV-cache hand-off.

    The low node half is the prefill pool (compute-bound, large activation
    all-gathers), the high half the decode pool (token-at-a-time, the same
    all-gather at 1/64 the payload).  A migrating sequence ships its KV
    cache point-to-point from the prefill head to the decode head — a
    two-rank broadcast crossing the inter-node fabric.  Returns the request
    classes and the arrival-mix weights (decode-heavy, as real serving
    traffic is).
    """
    g = machine.gpus_per_node
    half = machine.nodes // 2
    lo = tuple(range(0, half * g))
    hi = tuple(range(half * g, machine.nodes * g))
    classes = (
        RequestClass(
            "prefill",
            _template(machine, lo, "all_gather", payload_bytes, "prefill"),
            "prompt-chunk activation all-gather on the prefill pool"),
        RequestClass(
            "decode",
            _template(machine, hi, "all_gather", max(ELEM_BYTES,
                                                     payload_bytes // 64),
                      "decode"),
            "per-token activation all-gather on the decode pool"),
        RequestClass(
            "kv_transfer",
            _template(machine, (lo[0], hi[0]), "broadcast",
                      max(ELEM_BYTES, payload_bytes // 4), "kv_transfer"),
            "KV-cache page hand-off, prefill head to decode head"),
    )
    weights = {"prefill": 0.25, "decode": 0.55, "kv_transfer": 0.20}
    return classes, weights


def build_continuous_batch(
        machine: MachineSpec,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> tuple[
            tuple[RequestClass, ...], dict]:
    """Continuous batching on one shared engine, bucketed by payload size.

    Every request is the same full-machine all-gather; what varies is the
    payload bucket — small (1/16 of the anchor), medium (1/4), large (the
    anchor).  One plan per bucket, exactly the shape
    :func:`repro.planner.plan_table` optimizes; :func:`classes_from_table`
    swaps these defaults for a table's per-class winners.
    """
    world = tuple(range(machine.world_size))
    buckets = (
        ("small", max(ELEM_BYTES, payload_bytes // 16)),
        ("medium", max(ELEM_BYTES, payload_bytes // 4)),
        ("large", payload_bytes),
    )
    classes = tuple(
        RequestClass(
            name, _template(machine, world, "all_gather", size, name),
            f"batched all-gather, {size} B payload bucket")
        for name, size in buckets
    )
    weights = {"small": 0.6, "medium": 0.3, "large": 0.1}
    return classes, weights


def classes_from_table(machine: MachineSpec, table) -> tuple[RequestClass, ...]:
    """Request classes running a :class:`~repro.planner.PlanTable`'s winners.

    One class per table entry, its template compiled from the entry's
    materialized plan (a plan-cache hit under the entry's
    ``("size_class", name)`` key) — how a serving deployment swaps
    latency- vs bandwidth-optimal plans by payload bucket.
    """
    from ..planner.table import materialize_entry

    classes = []
    for entry in table.entries:
        comm = materialize_entry(machine, table.collective, entry)
        classes.append(RequestClass(
            entry.size_class,
            make_template(entry.size_class, comm.global_schedule, machine,
                          comm.plan.libraries, ELEM_BYTES),
            f"{table.collective} via plan-table entry "
            f"{entry.size_class} (<= {entry.payload_bytes} B)"))
    return tuple(classes)


# ------------------------------------------------------------------- registry
@dataclass(frozen=True)
class ServingScenario:
    """One parameterized serving traffic pattern of the suite."""

    name: str
    description: str
    build: Callable
    default_rate: float  # arrivals per second, chosen for modest contention
    min_nodes: int = 2

    def supports(self, machine: MachineSpec) -> str | None:
        """``None`` when the scenario fits ``machine``, else the reason."""
        n = machine.nodes
        if n < self.min_nodes:
            return f"needs >= {self.min_nodes} nodes, machine has {n}"
        if n & (n - 1):
            return f"needs a power-of-two node count, machine has {n}"
        return None


#: Name -> scenario, in presentation order.
SERVING_SCENARIOS: dict[str, ServingScenario] = {
    s.name: s
    for s in (
        ServingScenario(
            "prefill_decode",
            "disaggregated prefill/decode pools with point-to-point "
            "KV-cache hand-off between the pool heads",
            build_prefill_decode,
            default_rate=100.0,
        ),
        ServingScenario(
            "continuous_batch",
            "continuous batching: one full-machine all-gather in three "
            "plan-table payload buckets",
            build_continuous_batch,
            default_rate=100.0,
        ),
    )
}


def run_serving_scenario(
    name: str,
    machine: MachineSpec,
    *,
    arrivals: int = 512,
    rate: float | None = None,
    seed: int = 0,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    mode: str = "replay",
    fallback_engine: str = "auto",
) -> ServingResult:
    """Build one named scenario, draw its seeded trace, and drive it."""
    try:
        scenario = SERVING_SCENARIOS[name]
    except KeyError:
        raise CompositionError(
            f"unknown serving scenario {name!r}; "
            f"available: {sorted(SERVING_SCENARIOS)}"
        ) from None
    reason = scenario.supports(machine)
    if reason is not None:
        raise CompositionError(
            f"serving scenario {name!r} does not fit {machine.describe()}: "
            f"{reason}")
    classes, weights = scenario.build(machine, payload_bytes)
    trace = poisson_trace(
        rate if rate is not None else scenario.default_rate,
        arrivals, weights, seed=seed)
    return simulate_serving(machine, classes, trace, mode=mode,
                            fallback_engine=fallback_engine, name=name)


def applicable_serving_scenarios(machine: MachineSpec) -> list[str]:
    """Names of the serving scenarios that fit ``machine``, registry order."""
    return [name for name, s in SERVING_SCENARIOS.items()
            if s.supports(machine) is None]
