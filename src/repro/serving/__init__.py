"""Serving layer: seeded request streams and latency tails over the simulator.

Training evaluation asks "how long does this fixed job set take" — one
makespan.  Serving evaluation asks "what latency does the p99 request see
when this traffic arrives over time" — a distribution.  This package turns
the simulator into a request-stream driver:

* :mod:`repro.serving.arrivals` — seeded Poisson traces over weighted
  request classes, version-stable and byte-reproducible;
* :mod:`repro.serving.driver` — :func:`simulate_serving`, reporting
  p50/p90/p99 per request class through the streaming replay engine
  (:class:`repro.simulator.ServingEngine`), a naive per-arrival loop, or
  the merged brute-force oracle;
* :mod:`repro.serving.scenarios` — the ``prefill_decode`` and
  ``continuous_batch`` inference traffic suites, plan-table aware.

The CLI front-end is ``repro serve-sim``; committed latency baselines live
under ``benchmarks/output/`` and the replay speedup in
``BENCH_serving.json``.
"""

from .arrivals import Arrival, poisson_trace, validate_trace
from .driver import (
    LatencySummary,
    MODES,
    RequestClass,
    ServingResult,
    brute_force_latencies,
    simulate_serving,
)
from .scenarios import (
    DEFAULT_PAYLOAD_BYTES,
    SERVING_SCENARIOS,
    ServingScenario,
    applicable_serving_scenarios,
    build_continuous_batch,
    build_prefill_decode,
    classes_from_table,
    run_serving_scenario,
)

__all__ = [
    "Arrival",
    "DEFAULT_PAYLOAD_BYTES",
    "LatencySummary",
    "MODES",
    "RequestClass",
    "SERVING_SCENARIOS",
    "ServingResult",
    "ServingScenario",
    "applicable_serving_scenarios",
    "brute_force_latencies",
    "build_continuous_batch",
    "build_prefill_decode",
    "classes_from_table",
    "poisson_trace",
    "run_serving_scenario",
    "simulate_serving",
    "validate_trace",
]
