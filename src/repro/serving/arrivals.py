"""Seeded arrival traces: Poisson streams and explicit replayable traces.

A trace is a tuple of :class:`Arrival` records in nondecreasing time order —
exactly what :class:`~repro.simulator.serving.ServingEngine` consumes.
:func:`poisson_trace` draws exponential inter-arrival gaps and weighted
request classes from :class:`random.Random`, whose Mersenne-Twister stream
is specified by the language reference and stable across Python and NumPy
versions — so a ``(seed, rate, weights)`` triple names one exact trace
forever, and committed serving baselines regenerate byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import InitializationError


@dataclass(frozen=True)
class Arrival:
    """One request arrival: when it lands and which class it belongs to."""

    time: float  # seconds since trace start, nondecreasing across the trace
    request_class: str

    def as_dict(self) -> dict:
        """JSON-safe record (for trace export and benchmarks)."""
        return {"time": self.time, "request_class": self.request_class}


def poisson_trace(
    rate: float,
    arrivals: int,
    class_weights: dict,
    seed: int = 0,
) -> tuple[Arrival, ...]:
    """A seeded Poisson arrival trace over weighted request classes.

    ``rate`` is the aggregate arrival rate in requests per second;
    ``class_weights`` maps class name to its (unnormalized) draw weight.
    Deterministic for fixed arguments: inter-arrival gaps come from
    ``Random(seed).expovariate`` and class draws from the same stream's
    ``choices``, interleaved one pair per arrival.
    """
    if rate <= 0.0:
        raise InitializationError(f"arrival rate must be positive, got {rate}")
    if arrivals < 0:
        raise InitializationError(
            f"arrival count must be nonnegative, got {arrivals}")
    names = list(class_weights)
    if not names:
        raise InitializationError("poisson_trace needs at least one class")
    weights = [float(class_weights[name]) for name in names]
    if min(weights) < 0.0 or sum(weights) <= 0.0:
        raise InitializationError(
            f"class weights must be nonnegative with a positive sum, "
            f"got {class_weights}")
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(arrivals):
        t += rng.expovariate(rate)
        (name,) = rng.choices(names, weights=weights)
        out.append(Arrival(time=t, request_class=name))
    return tuple(out)


def validate_trace(trace, classes) -> tuple[Arrival, ...]:
    """Check a trace is ordered and only names known classes; return it.

    ``classes`` is any container supporting ``in`` over class names.
    """
    out = tuple(trace)
    last = float("-inf")
    for arrival in out:
        if arrival.time < last:
            raise InitializationError(
                f"arrival trace must be nondecreasing in time: "
                f"{arrival.time} after {last}")
        last = arrival.time
        if arrival.request_class not in classes:
            raise InitializationError(
                f"arrival names unknown request class "
                f"{arrival.request_class!r}")
    return out
