"""Serving driver: latency percentiles of a request stream over the simulator.

Training benchmarks report one number — the makespan of a fixed job set.
Serving cares about the *distribution*: a stream of small requests arrives
over time, contends for the same NICs and links, and is judged by its
latency tail.  :func:`simulate_serving` drives a seeded arrival trace
through the simulator and reports p50/p90/p99 per request class.

Three modes share one definition of a request's latency (finish of its
last op minus its arrival, on the shared machine timeline):

* ``"replay"`` — the streaming :class:`~repro.simulator.serving
  .ServingEngine`: each class's plan is lowered and priced once, arrivals
  replay the priced program with a certified time shift, contended epochs
  fall back to the exact event engine.  Certified replays are
  float-for-float the event engine's numbers.
* ``"naive"`` — one isolated ``simulate_workload`` per arrival; prices the
  plan from scratch every time and ignores cross-request contention.  The
  wall-clock baseline the replay speedup in ``BENCH_serving.json`` is
  measured against.
* ``"merged"`` — one brute-force ``simulate_workload`` over the whole
  trace's merged job set; exact and contention-aware but resimulates
  everything on every call.  The differential oracle the replay mode is
  tested against (:mod:`tests.test_serving`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import InitializationError
from ..machine.spec import MachineSpec
from ..simulator.engine import simulate_workload
from ..simulator.serving import ReplayTemplate, ServingEngine
from .arrivals import Arrival, validate_trace

#: Recognized driver modes (see the module docstring).
MODES = ("replay", "naive", "merged")


@dataclass(frozen=True)
class RequestClass:
    """One class of requests: a name bound to a compiled replay template."""

    name: str
    template: ReplayTemplate
    description: str = ""


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution of one request class (seconds)."""

    name: str
    count: int
    p50: float
    p90: float
    p99: float
    mean: float
    worst: float

    @classmethod
    def of(cls, name: str, latencies: np.ndarray) -> "LatencySummary":
        """Summarize a latency vector (requires at least one sample)."""
        return cls(
            name=name, count=int(latencies.size),
            p50=float(np.percentile(latencies, 50)),
            p90=float(np.percentile(latencies, 90)),
            p99=float(np.percentile(latencies, 99)),
            mean=float(latencies.mean()),
            worst=float(latencies.max()),
        )

    def describe(self) -> str:
        """One deterministic line: count and the percentile ladder in us."""
        return (f"{self.name}: n={self.count} "
                f"p50={self.p50 * 1e6:.3f}us p90={self.p90 * 1e6:.3f}us "
                f"p99={self.p99 * 1e6:.3f}us mean={self.mean * 1e6:.3f}us "
                f"worst={self.worst * 1e6:.3f}us")

    def as_dict(self) -> dict:
        """JSON-safe summary (for benchmarks and the CLI)."""
        return {
            "name": self.name, "count": self.count, "p50": self.p50,
            "p90": self.p90, "p99": self.p99, "mean": self.mean,
            "worst": self.worst,
        }


@dataclass(frozen=True)
class ServingResult:
    """Outcome of one driven trace: per-class and overall latency tails."""

    name: str
    machine_name: str
    mode: str
    arrivals: int
    classes: tuple[LatencySummary, ...]  # one per request class, input order
    overall: LatencySummary
    latencies: np.ndarray  # per-request, submission order (for diffing)
    #: Per-request JSON-safe records in submission order: ``{"index",
    #: "class", "arrival", "latency", "engine"}`` — the arrival-trace
    #: export (:func:`repro.analysis.trace.arrival_trace`) reads these.
    requests_detail: tuple
    stats: dict  # replay counters ("replay" mode) or {}
    wall_seconds: float  # host time spent driving the trace

    def describe(self) -> str:
        """Deterministic multi-line report (committed-baseline safe).

        Wall-clock and replay counters are host-dependent, so they are
        *not* part of the description — only the simulated distribution.
        """
        lines = [f"serving {self.name} on {self.machine_name} "
                 f"[{self.mode}]: {self.arrivals} arrivals"]
        lines += [f"  {summary.describe()}" for summary in self.classes]
        lines.append(f"  {self.overall.describe()}")
        return "\n".join(lines)

    def summary_for(self, class_name: str) -> LatencySummary:
        """The summary of one named request class."""
        for summary in self.classes:
            if summary.name == class_name:
                return summary
        raise KeyError(class_name)


def simulate_serving(
    machine: MachineSpec,
    classes,
    trace,
    *,
    mode: str = "replay",
    fallback_engine: str = "auto",
    name: str = "serving",
) -> ServingResult:
    """Drive ``trace`` over ``classes`` and summarize the latency tails.

    ``classes`` is an iterable of :class:`RequestClass`; ``trace`` an
    iterable of :class:`~repro.serving.arrivals.Arrival` in nondecreasing
    time order, naming classes by their names.  See the module docstring
    for the three modes.
    """
    classes = list(classes)
    if not classes:
        raise InitializationError("simulate_serving needs at least one class")
    index = {rc.name: i for i, rc in enumerate(classes)}
    if len(index) != len(classes):
        raise InitializationError("request class names must be distinct")
    trace = validate_trace(trace, index)
    if mode not in MODES:
        raise InitializationError(
            f"unknown serving mode {mode!r}; choose from {MODES}")

    t0 = time.perf_counter()
    stats: dict = {}
    engines: list[str]
    if mode == "replay":
        engine = ServingEngine(machine, [rc.template for rc in classes],
                               fallback_engine=fallback_engine)
        for arrival in trace:
            engine.submit(index[arrival.request_class], arrival.time)
        result = engine.finish()
        latencies = result.latencies()
        stats = result.stats.as_dict()
        engines = [r.engine for r in result.requests]
    elif mode == "naive":
        lats = []
        for i, arrival in enumerate(trace):
            spec = classes[index[arrival.request_class]].template.spec(
                arrival.time, f"req{i}")
            timing = simulate_workload([spec], machine, engine=fallback_engine)
            lats.append(timing.jobs[0].elapsed)
        latencies = np.array(lats)
        engines = ["naive"] * len(trace)
    else:  # merged brute force
        latencies = brute_force_latencies(machine, classes, trace,
                                          engine="event")
        engines = ["event"] * len(trace)
    wall = time.perf_counter() - t0

    class_ids = np.array([index[a.request_class] for a in trace],
                         dtype=np.int64)
    summaries = tuple(
        LatencySummary.of(rc.name, latencies[class_ids == i])
        for i, rc in enumerate(classes)
        if bool(np.any(class_ids == i))
    )
    if latencies.size == 0:
        raise InitializationError("simulate_serving needs a nonempty trace")
    detail = tuple(
        {"index": i, "class": arrival.request_class,
         "arrival": arrival.time, "latency": float(latencies[i]),
         "engine": engines[i]}
        for i, arrival in enumerate(trace)
    )
    return ServingResult(
        name=name, machine_name=machine.name, mode=mode,
        arrivals=len(trace), classes=summaries,
        overall=LatencySummary.of("overall", latencies),
        latencies=latencies, requests_detail=detail, stats=stats,
        wall_seconds=wall,
    )


def brute_force_latencies(
    machine: MachineSpec,
    classes,
    trace,
    *,
    engine: str = "event",
) -> np.ndarray:
    """Per-request latencies of one merged ``simulate_workload`` call.

    The oracle the replay engine's exactness is tested against: every
    request of the trace becomes one job of a single shared-timeline
    simulation.
    """
    classes = list(classes)
    index = {rc.name: i for i, rc in enumerate(classes)}
    trace = validate_trace(trace, index)
    specs = [
        classes[index[a.request_class]].template.spec(a.time, f"req{i}")
        for i, a in enumerate(trace)
    ]
    timing = simulate_workload(specs, machine, engine=engine)
    return np.array([job.elapsed for job in timing.jobs])


__all__ = [
    "Arrival",
    "LatencySummary",
    "MODES",
    "RequestClass",
    "ServingResult",
    "brute_force_latencies",
    "simulate_serving",
]
