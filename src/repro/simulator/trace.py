"""Execution traces: per-op timelines and resource utilization.

The event engine already computes start/completion times for every op; this
module turns them into artifacts a performance engineer would actually use:

* :func:`build_trace` — per-op records joined with schedule metadata;
* :func:`resource_timeline` — busy intervals per NIC/link (the raw material
  of Figure 7's top half);
* :func:`ascii_gantt` — a terminal Gantt chart of the pipeline, stages as
  glyphs, one row per resource or rank (how the Figure 7 pipelines were
  eyeballed during development);
* :func:`chrome_trace` — Chrome ``about://tracing`` / Perfetto JSON export;
* :func:`utilization_report` — fraction of the makespan each resource is
  busy, separating "the NIC was the bottleneck" from "the schedule stalled".
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.schedule import Schedule
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .engine import TimingResult
from .timing import price_schedule


@dataclass(frozen=True)
class TraceEvent:
    """One op's realized execution window."""

    uid: int
    name: str  # tag of the emitting transform ("mc-hop", "stripe-scatter"...)
    src: int
    dst: int
    count: int
    channel: int
    stage: int
    start: float
    finish: float
    resources: tuple[tuple, ...]

    @property
    def duration(self) -> float:
        """Realized wall-clock seconds between start and finish."""
        return self.finish - self.start


def build_trace(schedule: Schedule, timing: TimingResult, machine: MachineSpec,
                libraries: tuple[Library, ...], elem_bytes: int = 4
                ) -> list[TraceEvent]:
    """Join the schedule with the engine's realized times."""
    events = []
    priced_all = price_schedule(schedule, machine, libraries, elem_bytes)
    for op, priced in zip(schedule.ops, priced_all):
        events.append(TraceEvent(
            uid=op.uid,
            name=op.tag or ("copy" if op.is_local else "p2p"),
            src=op.src,
            dst=op.dst,
            count=op.count,
            channel=op.channel,
            stage=op.stage,
            start=timing.start_times[op.uid],
            finish=timing.completion_times[op.uid],
            resources=tuple(key for key, _ in priced.resources),
        ))
    return events


def resource_timeline(events: list[TraceEvent]) -> dict[tuple, list[TraceEvent]]:
    """Events grouped by the resources they occupied, start-ordered."""
    out: dict[tuple, list[TraceEvent]] = {}
    for ev in events:
        for key in ev.resources:
            out.setdefault(key, []).append(ev)
    for key in out:
        out[key].sort(key=lambda e: (e.start, e.uid))
    return out


#: Stage glyphs for the Gantt chart, cycling past nine stages.
_STAGE_GLYPHS = "0123456789"


def ascii_gantt(events: list[TraceEvent], *, width: int = 72,
                by: str = "rank", max_rows: int = 32) -> str:
    """Terminal Gantt chart: time on x, ranks (or resources) on y.

    Each cell shows the *stage* of the op active in that time slice, which
    makes the warm-up / steady-state / wind-down phases of a pipeline
    (Figure 7, m=5) directly visible.
    """
    if not events:
        return "(empty trace)"
    makespan = max(ev.finish for ev in events)
    if makespan <= 0:
        return "(zero-length trace)"

    rows: dict[object, list[TraceEvent]] = {}
    if by == "rank":
        for ev in events:
            rows.setdefault(ev.src, []).append(ev)
    elif by == "resource":
        rows = dict(resource_timeline(events))
    else:
        raise ValueError(f"by must be 'rank' or 'resource', got {by!r}")

    lines = [f"time 0 .. {makespan * 1e3:.3f} ms ({width} cols); digits = stage"]
    for key in sorted(rows, key=str)[:max_rows]:
        cells = [" "] * width
        for ev in rows[key]:
            lo = min(width - 1, int(ev.start / makespan * width))
            hi = min(width, max(lo + 1, int(ev.finish / makespan * width)))
            glyph = _STAGE_GLYPHS[ev.stage % len(_STAGE_GLYPHS)]
            for i in range(lo, hi):
                cells[i] = glyph
        label = str(key)
        lines.append(f"{label:>14s} |{''.join(cells)}|")
    if len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)


def chrome_trace(events: list[TraceEvent]) -> str:
    """Chrome tracing / Perfetto JSON (one row per sending rank)."""
    records = []
    for ev in events:
        records.append({
            "name": f"{ev.name} ch{ev.channel} st{ev.stage}",
            "cat": ev.name,
            "ph": "X",
            "ts": ev.start * 1e6,  # microseconds
            "dur": max(ev.duration, 1e-9) * 1e6,
            "pid": 0,
            "tid": ev.src,
            "args": {
                "uid": ev.uid,
                "src": ev.src,
                "dst": ev.dst,
                "elements": ev.count,
                "stage": ev.stage,
                "channel": ev.channel,
            },
        })
    return json.dumps({"traceEvents": records}, indent=None)


@dataclass(frozen=True)
class UtilizationReport:
    """Busy fractions per resource over the makespan."""

    makespan: float
    busy_fraction: dict[tuple, float]
    engine: str = "event"

    def bottlenecks(self, n: int = 5) -> list[tuple[tuple, float]]:
        """The ``n`` busiest resources, highest busy-fraction first."""
        return sorted(self.busy_fraction.items(), key=lambda kv: -kv[1])[:n]

    def render(self, n: int = 10) -> str:
        """Text report: makespan plus the ``n`` busiest resources."""
        lines = [f"makespan {self.makespan * 1e3:.3f} ms "
                 f"({self.engine} engine); busiest resources:"]
        for key, frac in self.bottlenecks(n):
            bar = "#" * int(frac * 40)
            lines.append(f"  {str(key):>22s} {frac:6.1%} {bar}")
        return "\n".join(lines)


def utilization_report(timing: TimingResult) -> UtilizationReport:
    """Summarize per-resource busy fractions over the makespan.

    The report records which engine (event loop or levelized batch) produced
    the timing, so traces taken at scale are attributable.
    """
    makespan = timing.elapsed
    if makespan <= 0:
        return UtilizationReport(0.0, {}, engine=timing.engine)
    return UtilizationReport(
        makespan,
        {key: busy / makespan for key, busy in timing.resource_busy.items()},
        engine=timing.engine,
    )
