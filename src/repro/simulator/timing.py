"""alpha-beta-gamma cost model for point-to-point operations.

Every lowered op is priced against the *physical* machine (which links it
really crosses, which NIC serves each endpoint) and the *virtual* plan (which
library the crossed hierarchy level was assigned, per Listing 2 line 14):

* **alpha** — wire latency of the physical path plus the library's
  per-message software latency;
* **beta** — serialization time on each shared resource the transfer
  occupies: NIC tx/rx timelines for inter-node hops, per-GPU per-level link
  timelines for intra-node hops, the copy engine for local moves.  NICs are
  booked at wire rate while endpoints are booked at the (slower) single-flow
  rate, so several flows from one node can keep a NIC busier than any single
  GPU could — the effect multi-NIC striping exploits;
* **gamma** — reduction-kernel time at the destination when the op combines
  data, scaled by the library's kernel fusion quality (NCCL hides most of
  this; Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import P2POp
from ..machine.spec import INTER_NODE, MachineSpec
from ..transport.library import Library
from ..transport.profiles import profile

#: Resource keys are hashable tuples; the first element names the kind.
ResourceKey = tuple

#: Fraction of a message's software latency that occupies the link/NIC
#: resource itself (per-message processing).  The rest of alpha is
#: pipelineable: it delays *this* message's completion but lets other
#: messages use the wire meanwhile, as real NICs and GPU DMA engines do.
RESOURCE_ALPHA_FRACTION = 0.2


@dataclass(frozen=True)
class PricedOp:
    """Simulation costs of one op: per-resource occupancy + latency + kernel."""

    resources: tuple[tuple[ResourceKey, float], ...]  # (key, seconds busy)
    alpha: float  # seconds of latency before data lands
    gamma: float  # seconds of reduction compute after the transfer

    @property
    def overhead(self) -> float:
        """Per-message occupancy added to every resource this op touches."""
        return self.alpha * RESOURCE_ALPHA_FRACTION

    @property
    def transfer_time(self) -> float:
        return max((dur for _, dur in self.resources), default=0.0)

    @property
    def total_time(self) -> float:
        return self.alpha + self.transfer_time + self.gamma


def _gb(bytes_: float) -> float:
    return bytes_ / 1.0e9


def price_op(
    op: P2POp,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> PricedOp:
    """Price one op for the event engine."""
    nbytes = op.count * elem_bytes
    path = machine.path(op.src, op.dst)

    if op.is_local:
        gamma = 0.0
        if op.reduce_op is not None:
            gamma = _gb(nbytes) / machine.reduce_bandwidth + machine.kernel_latency
        duration = _gb(nbytes) / machine.copy_bandwidth
        resources = ((("copy", op.src), duration),)
        return PricedOp(resources, machine.copy_latency, gamma)

    if op.level is None or not 0 <= op.level < len(libraries):
        raise ValueError(f"op {op.uid} has no valid library level: {op.level}")
    lib = libraries[op.level]
    prof = profile(lib, machine.name)

    gamma = 0.0
    if op.reduce_op is not None:
        gamma = (
            _gb(nbytes) / machine.reduce_bandwidth
            + machine.kernel_latency * prof.kernel_scale
        )

    if path.kind == INTER_NODE:
        flow_bw = min(machine.nic_bandwidth, machine.injection_bandwidth) * prof.eff_inter
        if flow_bw <= 0:
            raise ValueError(
                f"op {op.uid}: {lib.name} cannot carry inter-node traffic "
                f"({op.src} -> {op.dst}); was a node-local library scheduled "
                "across nodes (e.g. by a permuted placement)?"
            )
        wire = _gb(nbytes) / machine.nic_bandwidth
        endpoint = _gb(nbytes) / flow_bw
        src_node, dst_node = machine.node_of(op.src), machine.node_of(op.dst)
        resources = (
            (("nic_tx", src_node, machine.nic_of(op.src)), wire),
            (("nic_rx", dst_node, machine.nic_of(op.dst)), wire),
            (("inj_tx", op.src), endpoint),
            (("inj_rx", op.dst), endpoint),
        )
        alpha = path.latency + prof.alpha_inter
        return PricedOp(resources, alpha, gamma)

    # Intra-node link at some physical level.
    bw = path.bandwidth * prof.eff_intra
    duration = _gb(nbytes) / bw
    lvl = path.level_index
    resources = (
        (("link_tx", op.src, lvl), duration),
        (("link_rx", op.dst, lvl), duration),
    )
    alpha = path.latency + prof.alpha_intra
    return PricedOp(resources, alpha, gamma)
