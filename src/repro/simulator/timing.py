"""alpha-beta-gamma cost model for point-to-point operations.

Every lowered op is priced against the *physical* machine (which links it
really crosses, which NIC serves each endpoint) and the *virtual* plan (which
library the crossed hierarchy level was assigned, per Listing 2 line 14):

* **alpha** — wire latency of the physical path plus the library's
  per-message software latency;
* **beta** — serialization time on each shared resource the transfer
  occupies: NIC tx/rx timelines for inter-node hops, per-GPU per-level link
  timelines for intra-node hops, the copy engine for local moves.  NICs are
  booked at wire rate while endpoints are booked at the (slower) single-flow
  rate, so several flows from one node can keep a NIC busier than any single
  GPU could — the effect multi-NIC striping exploits;
* **gamma** — reduction-kernel time at the destination when the op combines
  data, scaled by the library's kernel fusion quality (NCCL hides most of
  this; Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import P2POp
from ..errors import FaultError
from ..machine.faults import rates_for
from ..machine.nic import nic_of
from ..machine.spec import INTER_NODE, MachineSpec
from ..transport.library import Library
from ..transport.profiles import profile

#: Resource keys are hashable tuples; the first element names the kind.
ResourceKey = tuple

#: Fraction of a message's software latency that occupies the link/NIC
#: resource itself (per-message processing).  The rest of alpha is
#: pipelineable: it delays *this* message's completion but lets other
#: messages use the wire meanwhile, as real NICs and GPU DMA engines do.
RESOURCE_ALPHA_FRACTION = 0.2


@dataclass(frozen=True)
class PricedOp:
    """Simulation costs of one op: per-resource occupancy + latency + kernel."""

    resources: tuple[tuple[ResourceKey, float], ...]  # (key, seconds busy)
    alpha: float  # seconds of latency before data lands
    gamma: float  # seconds of reduction compute after the transfer

    @property
    def overhead(self) -> float:
        """Per-message occupancy added to every resource this op touches."""
        return self.alpha * RESOURCE_ALPHA_FRACTION

    @property
    def transfer_time(self) -> float:
        """Serialization time on the op's slowest resource (the beta term)."""
        return max((dur for _, dur in self.resources), default=0.0)

    @property
    def total_time(self) -> float:
        """End-to-end op latency: alpha + slowest-resource beta + gamma."""
        return self.alpha + self.transfer_time + self.gamma


def _gb(bytes_: float) -> float:
    return bytes_ / 1.0e9


def price_op(
    op: P2POp,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> PricedOp:
    """Price one op for the event engine.

    On a degraded machine (``machine.faults`` set) each endpoint's resources
    are booked at their own derated rates, so tx and rx sides of one transfer
    may occupy their timelines for different durations.  Healthy machines
    take the exact pre-fault-layer code path, so their prices stay
    byte-identical.
    """
    nbytes = op.count * elem_bytes
    path = machine.path(op.src, op.dst)

    rates = rates_for(machine)
    if rates is not None and (rates.drained[op.src] or rates.drained[op.dst]):
        raise FaultError(
            f"op {op.uid}: endpoint on a drained node ({op.src} -> {op.dst}); "
            "drained nodes carry no traffic — re-plan on the shrunk machine"
        )

    if op.is_local:
        gamma = 0.0
        if op.reduce_op is not None:
            gamma = _gb(nbytes) / machine.reduce_bandwidth + machine.kernel_latency
        duration = _gb(nbytes) / machine.copy_bandwidth
        resources = ((("copy", op.src), duration),)
        return PricedOp(resources, machine.copy_latency, gamma)

    if op.level is None or not 0 <= op.level < len(libraries):
        raise ValueError(f"op {op.uid} has no valid library level: {op.level}")
    lib = libraries[op.level]
    prof = profile(lib, machine.name)

    gamma = 0.0
    if op.reduce_op is not None:
        gamma = (
            _gb(nbytes) / machine.reduce_bandwidth
            + machine.kernel_latency * prof.kernel_scale
        )

    if path.kind == INTER_NODE:
        flow_bw = min(machine.nic_bandwidth, machine.injection_bandwidth) * prof.eff_inter
        if flow_bw <= 0:
            raise ValueError(
                f"op {op.uid}: {lib.name} cannot carry inter-node traffic "
                f"({op.src} -> {op.dst}); was a node-local library scheduled "
                "across nodes (e.g. by a permuted placement)?"
            )
        src_node, dst_node = machine.node_of(op.src), machine.node_of(op.dst)
        src_nic, dst_nic = machine.nic_of(op.src), machine.nic_of(op.dst)
        if rates is None:
            wire = _gb(nbytes) / machine.nic_bandwidth
            endpoint = _gb(nbytes) / flow_bw
            wire_rx, endpoint_rx = wire, endpoint
        else:
            # Each side serializes at its own derated NIC/injection rate.
            tx_rate = machine.nic_bandwidth * rates.nic_scale[src_node, src_nic]
            rx_rate = machine.nic_bandwidth * rates.nic_scale[dst_node, dst_nic]
            inj_tx = machine.injection_bandwidth * rates.inj_scale[op.src]
            inj_rx = machine.injection_bandwidth * rates.inj_scale[op.dst]
            wire = _gb(nbytes) / tx_rate
            wire_rx = _gb(nbytes) / rx_rate
            endpoint = _gb(nbytes) / (min(tx_rate, inj_tx) * prof.eff_inter)
            endpoint_rx = _gb(nbytes) / (min(rx_rate, inj_rx) * prof.eff_inter)
        resources = (
            (("nic_tx", src_node, src_nic), wire),
            (("nic_rx", dst_node, dst_nic), wire_rx),
            (("inj_tx", op.src), endpoint),
            (("inj_rx", op.dst), endpoint_rx),
        )
        alpha = path.latency + prof.alpha_inter
        return PricedOp(resources, alpha, gamma)

    # Intra-node link at some physical level.
    lvl = path.level_index
    if rates is None:
        bw = path.bandwidth * prof.eff_intra
        duration = _gb(nbytes) / bw
        dur_tx, dur_rx = duration, duration
    else:
        bw_tx = (path.bandwidth * rates.link_scale[op.src, lvl]) * prof.eff_intra
        bw_rx = (path.bandwidth * rates.link_scale[op.dst, lvl]) * prof.eff_intra
        dur_tx = _gb(nbytes) / bw_tx
        dur_rx = _gb(nbytes) / bw_rx
    resources = (
        (("link_tx", op.src, lvl), dur_tx),
        (("link_rx", op.dst, lvl), dur_rx),
    )
    alpha = path.latency + prof.alpha_intra
    return PricedOp(resources, alpha, gamma)


#: Below this op count the per-array setup of the batch path costs more than
#: it saves; small schedules take the scalar path.
BATCH_MIN_OPS = 64


# --------------------------------------------------- integer resource encoding
#: Resource-kind codes for the packed int64 resource ids of
#: :class:`PricedColumns`.  A resource tuple ``(kind, a[, b])`` packs as
#: ``kind << 42 | a << 21 | b`` — 21 bits each for the rank/node operand and
#: the NIC/level operand covers machines beyond two million ranks, i.e. well
#: past the full-system Aurora/Frontier aggregate models.
_KIND_NAMES = ("copy", "nic_tx", "nic_rx", "inj_tx", "inj_rx",
               "link_tx", "link_rx")
_KIND_CODES = {name: code for code, name in enumerate(_KIND_NAMES)}
#: Operand count after the kind name (1 = ``(kind, a)``, 2 = ``(kind, a, b)``).
_KIND_ARITY = (1, 2, 2, 1, 1, 2, 2)
_SHIFT_KIND = 42
_SHIFT_A = 21
_MASK_A = (1 << _SHIFT_KIND) - 1
_MASK_B = (1 << _SHIFT_A) - 1


def _encode_resource(kind: int, a: np.ndarray, b=None) -> np.ndarray:
    """Pack resource tuples ``(kind, a[, b])`` into int64 ids, vectorized."""
    out = (np.int64(kind) << _SHIFT_KIND) | (a.astype(np.int64) << _SHIFT_A)
    if b is not None:
        out = out | b.astype(np.int64)
    return out


def decode_resource(rid: int) -> ResourceKey:
    """Inverse of the packed encoding: int64 id back to the tuple key."""
    kind = rid >> _SHIFT_KIND
    a = (rid & _MASK_A) >> _SHIFT_A
    if _KIND_ARITY[kind] == 1:
        return (_KIND_NAMES[kind], a)
    return (_KIND_NAMES[kind], a, rid & _MASK_B)


@dataclass
class PricedColumns:
    """Array-form pricing of a whole op graph (the levelized engine's input).

    The value-for-value equivalent of a ``list[PricedOp]`` without the
    objects: ``alpha``/``gamma`` are per-op scalars, and each op's resource
    bookings live in up to four slots of ``res_id``/``res_dur`` (id ``-1``
    and duration ``0.0`` mark unused slots).  Ids are either the packed
    arithmetic encoding above (schedule pricing) or interned sequential ids
    with an explicit ``keys`` table (merged workload graphs); use
    :meth:`resource_key` to translate either kind back to tuple keys.
    """

    alpha: np.ndarray  # (n,) float64
    gamma: np.ndarray  # (n,) float64
    res_id: np.ndarray  # (n, s) int64; -1 marks an unused slot
    res_dur: np.ndarray  # (n, s) float64; 0.0 in unused slots
    keys: dict[int, ResourceKey] | None = None

    def __len__(self) -> int:
        return int(self.alpha.shape[0])

    def resource_key(self, rid: int) -> ResourceKey:
        """Tuple key of one resource id (interned table or packed decode)."""
        if self.keys is not None:
            return self.keys[rid]
        return decode_resource(rid)

    def overhead(self) -> np.ndarray:
        """Per-op resource occupancy overhead (``PricedOp.overhead``)."""
        return self.alpha * RESOURCE_ALPHA_FRACTION

    def transfer_time(self) -> np.ndarray:
        """Per-op slowest-resource serialization time (the beta term)."""
        if not len(self):
            return np.zeros(0)
        return self.res_dur.max(axis=1)

    def to_priced(self) -> list[PricedOp]:
        """Materialize the equivalent ``PricedOp`` objects (fallback path)."""
        out: list[PricedOp] = []
        ids = self.res_id.tolist()
        durs = self.res_dur.tolist()
        alpha = self.alpha.tolist()
        gamma = self.gamma.tolist()
        for i in range(len(self)):
            resources = tuple(
                (self.resource_key(rid), dur)
                for rid, dur in zip(ids[i], durs[i])
                if rid >= 0
            )
            out.append(PricedOp(resources, alpha[i], gamma[i]))
        return out


def price_ops(
    ops: list[P2POp],
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Price a list of op records at once.

    Bit-identical to mapping :func:`price_op` over ``ops`` (the arithmetic is
    performed in the same order on the same float64 values), but the per-op
    cost-model evaluation is vectorized with numpy.  Prefer
    :func:`price_schedule` for a :class:`~repro.core.schedule.Schedule` —
    it reads the schedule's array columns directly instead of materializing
    per-op objects.
    """
    n = len(ops)
    if n < BATCH_MIN_OPS:
        return [price_op(op, machine, libraries, elem_bytes) for op in ops]

    src = np.fromiter((op.src for op in ops), np.int64, n)
    dst = np.fromiter((op.dst for op in ops), np.int64, n)
    count = np.fromiter((op.count for op in ops), np.float64, n)
    level = np.fromiter(
        (-1 if op.level is None else op.level for op in ops), np.int64, n
    )
    reduces = np.fromiter((op.reduce_op is not None for op in ops), np.bool_, n)
    return _price_arrays(ops, src, dst, count, level, reduces,
                         machine, libraries, elem_bytes)


def price_schedule(
    schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Price a whole schedule straight from its array columns.

    Bit-identical to :func:`price_ops` over ``schedule.ops`` (same float64
    values through the same operations) without materializing any
    :class:`~repro.core.schedule.P2POp` views; this is what lets the event
    engine price six-figure op counts in well under a second.
    """
    n = len(schedule)
    if n < BATCH_MIN_OPS:
        return [price_op(op, machine, libraries, elem_bytes)
                for op in schedule.ops]
    src = schedule.src.astype(np.int64)
    dst = schedule.dst.astype(np.int64)
    count = schedule.count.astype(np.float64)
    level = schedule.level.astype(np.int64)
    reduces = schedule.reduce >= 0
    return _price_arrays(schedule, src, dst, count, level, reduces,
                         machine, libraries, elem_bytes)


@dataclass
class _StaticCosts:
    """Payload-independent pricing columns, reusable across a payload sweep.

    Everything here is a function of op endpoints, levels, and the machine —
    never of ``count`` — so a payload sweep computes it once and reprices
    only the :func:`_dynamic_costs` arrays per grid point.
    """

    local: np.ndarray  # (n,) bool masks, mutually exclusive
    inter: np.ndarray
    intra: np.ndarray
    src_node: np.ndarray
    dst_node: np.ndarray
    src_nic: np.ndarray
    dst_nic: np.ndarray
    lvl_idx: np.ndarray  # intra-node physical level; -1 off the intra mask
    alpha: np.ndarray
    kernel_scale: np.ndarray
    flow_bw: np.ndarray  # inter-node single-flow rate (already eff-scaled)
    intra_bw: np.ndarray  # intra-node link rate (already eff-scaled)
    # Degraded machines book each endpoint at its own rate; ``None`` on a
    # healthy machine (where tx == rx and the fields above are the only
    # rates).  When set, ``flow_bw``/``intra_bw`` hold the tx side.
    wire_bw_tx: np.ndarray | None = None  # per-op derated src-NIC rate
    wire_bw_rx: np.ndarray | None = None  # per-op derated dst-NIC rate
    flow_bw_rx: np.ndarray | None = None
    intra_bw_rx: np.ndarray | None = None


@dataclass
class _DynamicCosts:
    """Payload-dependent pricing columns (everything scaling with ``count``)."""

    gamma: np.ndarray
    dur_local: np.ndarray
    wire: np.ndarray
    endpoint: np.ndarray
    dur_intra: np.ndarray
    # rx-side durations on a degraded machine; ``None`` (== tx) when healthy.
    wire_rx: np.ndarray | None = None
    endpoint_rx: np.ndarray | None = None
    dur_intra_rx: np.ndarray | None = None


def _static_costs(
    source,
    src: np.ndarray,
    dst: np.ndarray,
    level: np.ndarray,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> _StaticCosts:
    """Payload-independent half of the pricing core (masks, alpha, rates)."""
    n = src.shape[0]

    def op_at(i: int) -> P2POp:
        ops = source.ops if hasattr(source, "ops") else source
        return ops[i]

    local = src == dst
    rates = rates_for(machine)
    if rates is not None:
        bad_drained = rates.drained[src] | rates.drained[dst]
        if bad_drained.any():
            bad = op_at(int(np.argmax(bad_drained)))
            raise FaultError(
                f"op {bad.uid}: endpoint on a drained node "
                f"({bad.src} -> {bad.dst}); drained nodes carry no traffic "
                "— re-plan on the shrunk machine"
            )
    bad_level = ~local & ((level < 0) | (level >= len(libraries)))
    if bad_level.any():
        bad = op_at(int(np.argmax(bad_level)))
        raise ValueError(f"op {bad.uid} has no valid library level: {bad.level}")

    g = machine.gpus_per_node
    src_node = src // g
    dst_node = dst // g
    inter = ~local & (src_node != dst_node)
    intra = ~local & ~inter

    profs = [profile(lib, machine.name) for lib in libraries]
    lvl_of_op = np.where(local, 0, level)  # safe gather index; masked later
    eff_inter = np.array([p.eff_inter for p in profs])[lvl_of_op]
    eff_intra = np.array([p.eff_intra for p in profs])[lvl_of_op]
    alpha_inter_sw = np.array([p.alpha_inter for p in profs])[lvl_of_op]
    alpha_intra_sw = np.array([p.alpha_intra for p in profs])[lvl_of_op]
    kernel_scale = np.array([p.kernel_scale for p in profs])[lvl_of_op]

    # Physical intra-node level separating each same-node pair (the
    # vectorized equivalent of MachineSpec.intra_level_index).
    la = src % g
    lb = dst % g
    lvl_idx = np.full(n, -1, dtype=np.int64)
    block = g
    for idx, level_spec in enumerate(machine.levels):
        block //= level_spec.extent
        hit = intra & (lvl_idx < 0) & (la // block != lb // block)
        lvl_idx[hit] = idx
    lvl_safe = np.where(lvl_idx < 0, 0, lvl_idx)
    level_bw = np.array([lv.bandwidth for lv in machine.levels])[lvl_safe]
    level_lat = np.array([lv.latency for lv in machine.levels])[lvl_safe]

    alpha = np.full(n, machine.copy_latency)
    alpha[inter] = machine.nic_latency + alpha_inter_sw[inter]
    alpha[intra] = (level_lat + alpha_intra_sw)[intra]

    nic_table = np.array(
        [nic_of(i, g, machine.nic_count, machine.binding) for i in range(g)]
    )
    src_nic = nic_table[la]
    dst_nic = nic_table[lb]

    wire_bw_tx = wire_bw_rx = flow_bw_rx = intra_bw_rx = None
    if rates is None:
        flow_bw = min(machine.nic_bandwidth, machine.injection_bandwidth) * eff_inter
        intra_bw = level_bw * eff_intra
    else:
        # Element-wise the same float expressions as the degraded branch of
        # price_op, so scalar and batch pricing stay bit-identical.
        nic_rate = machine.nic_bandwidth * rates.nic_scale
        inj_rate = machine.injection_bandwidth * rates.inj_scale
        wire_bw_tx = nic_rate[src_node, src_nic]
        wire_bw_rx = nic_rate[dst_node, dst_nic]
        flow_bw = np.minimum(wire_bw_tx, inj_rate[src]) * eff_inter
        flow_bw_rx = np.minimum(wire_bw_rx, inj_rate[dst]) * eff_inter
        intra_bw = (level_bw * rates.link_scale[src, lvl_safe]) * eff_intra
        intra_bw_rx = (level_bw * rates.link_scale[dst, lvl_safe]) * eff_intra
    bad_flow = inter & (flow_bw <= 0)
    if rates is not None:
        bad_flow |= inter & (flow_bw_rx <= 0)
    if bad_flow.any():
        # Raises the canonical single-op error message.
        price_op(op_at(int(np.argmax(bad_flow))), machine, libraries, elem_bytes)
    bad_intra = intra & (intra_bw <= 0)
    if rates is not None:
        bad_intra |= intra & (intra_bw_rx <= 0)
    if bad_intra.any():
        # Raises the canonical single-op error message.
        price_op(op_at(int(np.argmax(bad_intra))), machine, libraries, elem_bytes)

    return _StaticCosts(
        local=local, inter=inter, intra=intra,
        src_node=src_node, dst_node=dst_node,
        src_nic=src_nic, dst_nic=dst_nic,
        lvl_idx=lvl_idx, alpha=alpha, kernel_scale=kernel_scale,
        flow_bw=flow_bw, intra_bw=intra_bw,
        wire_bw_tx=wire_bw_tx, wire_bw_rx=wire_bw_rx,
        flow_bw_rx=flow_bw_rx, intra_bw_rx=intra_bw_rx,
    )


def _dynamic_costs(
    st: _StaticCosts,
    count: np.ndarray,
    reduces: np.ndarray,
    machine: MachineSpec,
    elem_bytes: int,
) -> _DynamicCosts:
    """Payload-dependent half of the pricing core (durations and gamma)."""
    n = count.shape[0]
    gb = (count * elem_bytes) / 1.0e9  # same order as _gb(count * elem_bytes)

    red_time = gb / machine.reduce_bandwidth
    gamma = np.zeros(n)
    gamma = np.where(reduces & st.local, red_time + machine.kernel_latency, gamma)
    gamma = np.where(
        reduces & ~st.local,
        red_time + machine.kernel_latency * st.kernel_scale, gamma,
    )

    dur_local = gb / machine.copy_bandwidth
    if st.wire_bw_tx is None:
        wire = gb / machine.nic_bandwidth
        with np.errstate(divide="ignore"):
            endpoint = np.where(
                st.flow_bw > 0, gb / np.where(st.flow_bw > 0, st.flow_bw, 1.0), 0.0
            )
        dur_intra = gb / np.where(st.intra_bw > 0, st.intra_bw, 1.0)
        return _DynamicCosts(gamma=gamma, dur_local=dur_local, wire=wire,
                             endpoint=endpoint, dur_intra=dur_intra)

    # Degraded machine: tx and rx sides priced at their own rates.
    wire = gb / st.wire_bw_tx
    wire_rx = gb / st.wire_bw_rx
    endpoint = gb / np.where(st.flow_bw > 0, st.flow_bw, 1.0)
    endpoint_rx = gb / np.where(st.flow_bw_rx > 0, st.flow_bw_rx, 1.0)
    dur_intra = gb / np.where(st.intra_bw > 0, st.intra_bw, 1.0)
    dur_intra_rx = gb / np.where(st.intra_bw_rx > 0, st.intra_bw_rx, 1.0)
    return _DynamicCosts(gamma=gamma, dur_local=dur_local, wire=wire,
                         endpoint=endpoint, dur_intra=dur_intra,
                         wire_rx=wire_rx, endpoint_rx=endpoint_rx,
                         dur_intra_rx=dur_intra_rx)


def _price_arrays(
    source,
    src: np.ndarray,
    dst: np.ndarray,
    count: np.ndarray,
    level: np.ndarray,
    reduces: np.ndarray,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Shared vectorized pricing core; ``source`` only feeds error paths."""
    n = src.shape[0]
    st = _static_costs(source, src, dst, level, machine, libraries, elem_bytes)
    dyn = _dynamic_costs(st, count, reduces, machine, elem_bytes)

    # Assemble the PricedOp records from plain python scalars (one .tolist()
    # per array beats a quarter-million numpy scalar __getitem__ calls).
    src_l, dst_l = src.tolist(), dst.tolist()
    src_node_l, dst_node_l = st.src_node.tolist(), st.dst_node.tolist()
    src_nic_l, dst_nic_l = st.src_nic.tolist(), st.dst_nic.tolist()
    alpha_l, gamma_l = st.alpha.tolist(), dyn.gamma.tolist()
    dur_local_l, wire_l = dyn.dur_local.tolist(), dyn.wire.tolist()
    endpoint_l, dur_intra_l = dyn.endpoint.tolist(), dyn.dur_intra.tolist()
    wire_rx_l = wire_l if dyn.wire_rx is None else dyn.wire_rx.tolist()
    endpoint_rx_l = (endpoint_l if dyn.endpoint_rx is None
                     else dyn.endpoint_rx.tolist())
    dur_intra_rx_l = (dur_intra_l if dyn.dur_intra_rx is None
                      else dyn.dur_intra_rx.tolist())
    lvl_idx_l = st.lvl_idx.tolist()
    local_l, inter_l = st.local.tolist(), st.inter.tolist()

    out: list[PricedOp] = []
    for i in range(n):
        if local_l[i]:
            resources: tuple = ((("copy", src_l[i]), dur_local_l[i]),)
        elif inter_l[i]:
            resources = (
                (("nic_tx", src_node_l[i], src_nic_l[i]), wire_l[i]),
                (("nic_rx", dst_node_l[i], dst_nic_l[i]), wire_rx_l[i]),
                (("inj_tx", src_l[i]), endpoint_l[i]),
                (("inj_rx", dst_l[i]), endpoint_rx_l[i]),
            )
        else:
            li = lvl_idx_l[i]
            resources = (
                (("link_tx", src_l[i], li), dur_intra_l[i]),
                (("link_rx", dst_l[i], li), dur_intra_rx_l[i]),
            )
        out.append(PricedOp(resources, alpha_l[i], gamma_l[i]))
    return out


def _assemble_columns(
    src: np.ndarray,
    dst: np.ndarray,
    st: _StaticCosts,
    dyn: _DynamicCosts,
) -> PricedColumns:
    """Pack static + dynamic pricing into slot-form resource columns.

    Slot layout mirrors the tuple order of :func:`price_op` exactly: local
    ops book ``copy`` in slot 0; inter-node ops book ``nic_tx``/``nic_rx``/
    ``inj_tx``/``inj_rx`` in slots 0-3; intra-node ops book ``link_tx``/
    ``link_rx`` in slots 0-1.
    """
    n = src.shape[0]
    res_id = np.full((n, 4), -1, dtype=np.int64)
    res_dur = np.zeros((n, 4))

    loc = st.local
    res_id[loc, 0] = _encode_resource(_KIND_CODES["copy"], src[loc])
    res_dur[loc, 0] = dyn.dur_local[loc]

    wire_rx = dyn.wire if dyn.wire_rx is None else dyn.wire_rx
    endpoint_rx = dyn.endpoint if dyn.endpoint_rx is None else dyn.endpoint_rx
    dur_intra_rx = (dyn.dur_intra if dyn.dur_intra_rx is None
                    else dyn.dur_intra_rx)

    itr = st.inter
    res_id[itr, 0] = _encode_resource(
        _KIND_CODES["nic_tx"], st.src_node[itr], st.src_nic[itr])
    res_id[itr, 1] = _encode_resource(
        _KIND_CODES["nic_rx"], st.dst_node[itr], st.dst_nic[itr])
    res_id[itr, 2] = _encode_resource(_KIND_CODES["inj_tx"], src[itr])
    res_id[itr, 3] = _encode_resource(_KIND_CODES["inj_rx"], dst[itr])
    res_dur[itr, 0] = dyn.wire[itr]
    res_dur[itr, 1] = wire_rx[itr]
    res_dur[itr, 2] = dyn.endpoint[itr]
    res_dur[itr, 3] = endpoint_rx[itr]

    ita = st.intra
    res_id[ita, 0] = _encode_resource(
        _KIND_CODES["link_tx"], src[ita], st.lvl_idx[ita])
    res_id[ita, 1] = _encode_resource(
        _KIND_CODES["link_rx"], dst[ita], st.lvl_idx[ita])
    res_dur[ita, 0] = dyn.dur_intra[ita]
    res_dur[ita, 1] = dur_intra_rx[ita]

    return PricedColumns(alpha=st.alpha, gamma=dyn.gamma,
                         res_id=res_id, res_dur=res_dur)


def _schedule_pricing_inputs(schedule):
    """Schedule columns widened to the dtypes the pricing core expects."""
    return (
        schedule.src.astype(np.int64),
        schedule.dst.astype(np.int64),
        schedule.count.astype(np.float64),
        schedule.level.astype(np.int64),
        schedule.reduce >= 0,
    )


def price_schedule_columns(
    schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> PricedColumns:
    """Price a schedule into array columns for the levelized engine.

    Same float64 values through the same operations as
    :func:`price_schedule`, just laid out as arrays instead of
    :class:`PricedOp` objects — the levelized engine's timing math is
    bit-identical to the event loop's because both consume these numbers.
    """
    n = len(schedule)
    if n == 0:
        return PricedColumns(
            alpha=np.zeros(0), gamma=np.zeros(0),
            res_id=np.full((0, 4), -1, dtype=np.int64),
            res_dur=np.zeros((0, 4)),
        )
    src, dst, count, level, reduces = _schedule_pricing_inputs(schedule)
    st = _static_costs(schedule, src, dst, level, machine, libraries, elem_bytes)
    dyn = _dynamic_costs(st, count, reduces, machine, elem_bytes)
    return _assemble_columns(src, dst, st, dyn)


def price_schedule_sweep(
    schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
    scales,
) -> list[PricedColumns]:
    """Price one schedule at many payload sizes, sharing the static half.

    ``scales`` multiplies each op's element count; masks, resource ids,
    alpha, and effective rates are computed once and only the durations and
    gamma are repriced per grid point.  When a scale is an exact power of
    two, scaling the counts commutes with float64 rounding, so the grid
    point is bit-identical to pricing a schedule lowered with the scaled
    counts — provided lowering at that payload would produce the same op
    structure (fig8/fig9's power-of-two payload grids and the planner's
    truncation rungs are exactly this case).

    The returned columns share the ``res_id`` array; treat it as read-only.
    """
    n = len(schedule)
    if n == 0:
        return [price_schedule_columns(schedule, machine, libraries, elem_bytes)
                for _ in scales]
    src, dst, count, level, reduces = _schedule_pricing_inputs(schedule)
    st = _static_costs(schedule, src, dst, level, machine, libraries, elem_bytes)
    out = []
    shared_ids: np.ndarray | None = None
    for scale in scales:
        dyn = _dynamic_costs(st, count * float(scale), reduces,
                             machine, elem_bytes)
        cols = _assemble_columns(src, dst, st, dyn)
        if shared_ids is None:
            shared_ids = cols.res_id
        else:
            cols.res_id = shared_ids
        out.append(cols)
    return out


# ----------------------------------------------------------- booking replay
@dataclass(frozen=True)
class BookingColumns:
    """Start-independent flattening of a pricing's resource bookings.

    Everything about a booking except its start time — which resource it
    occupies and for how long — is a function of the pricing alone.  The
    serving replay engine prices each distinct plan once, captures this
    static part, and then materializes concrete booking streams per arrival
    with :func:`bookings_at`; the levelized certificate uses the same
    flatten, so both consume identical float64 occupancies.
    """

    slots: int  # columns of the (n, s) resource-slot grid
    mask: np.ndarray  # (n * slots,) bool; True where a slot is booked
    rid: np.ndarray  # (k,) int64 booked resource ids, row-major slot order
    occ: np.ndarray  # (k,) float64 occupancy (overhead + duration)


def booking_columns(cols: PricedColumns) -> BookingColumns:
    """The start-independent booking flatten of ``cols`` (computed once)."""
    flat = cols.res_id.reshape(-1)
    mask = flat >= 0
    occ = (cols.overhead()[:, None] + cols.res_dur).reshape(-1)[mask]
    return BookingColumns(slots=int(cols.res_id.shape[1]), mask=mask,
                          rid=flat[mask], occ=occ)


def bookings_at(static: BookingColumns, start: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Booking streams at concrete op ``start`` times, certificate-sorted.

    Returns ``(rid, start, occ)`` sorted by resource id first, start second
    — the order the levelized certificate expects.  Because the primary sort
    key is the start-independent ``rid``, the post-sort resource sequence
    (and hence the per-resource segment structure) is identical for every
    ``start`` vector, which is what lets the replay engine precompute
    per-resource segments once per plan.
    """
    st = np.repeat(start, static.slots)[static.mask]
    order = np.lexsort((st, static.rid))
    return static.rid[order], st[order], static.occ[order]


def columns_from_priced(priced: list[PricedOp]) -> PricedColumns | None:
    """Interned column form of already-priced ops (merged workload graphs).

    Resource keys are interned into sequential ids with an explicit decode
    table instead of the packed arithmetic encoding, since workload graphs
    carry virtual gate ops and arbitrary key tuples.  Returns ``None`` when
    any op books more than the four slots the column form holds.
    """
    n = len(priced)
    alpha = np.fromiter((c.alpha for c in priced), np.float64, n)
    gamma = np.fromiter((c.gamma for c in priced), np.float64, n)
    res_id = np.full((n, 4), -1, dtype=np.int64)
    res_dur = np.zeros((n, 4))
    ids: dict[ResourceKey, int] = {}
    keys: dict[int, ResourceKey] = {}
    for i, cost in enumerate(priced):
        if len(cost.resources) > 4:
            return None
        for j, (key, dur) in enumerate(cost.resources):
            rid = ids.get(key)
            if rid is None:
                rid = ids[key] = len(ids)
                keys[rid] = key
            res_id[i, j] = rid
            res_dur[i, j] = dur
    return PricedColumns(alpha=alpha, gamma=gamma, res_id=res_id,
                         res_dur=res_dur, keys=keys)
