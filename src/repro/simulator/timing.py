"""alpha-beta-gamma cost model for point-to-point operations.

Every lowered op is priced against the *physical* machine (which links it
really crosses, which NIC serves each endpoint) and the *virtual* plan (which
library the crossed hierarchy level was assigned, per Listing 2 line 14):

* **alpha** — wire latency of the physical path plus the library's
  per-message software latency;
* **beta** — serialization time on each shared resource the transfer
  occupies: NIC tx/rx timelines for inter-node hops, per-GPU per-level link
  timelines for intra-node hops, the copy engine for local moves.  NICs are
  booked at wire rate while endpoints are booked at the (slower) single-flow
  rate, so several flows from one node can keep a NIC busier than any single
  GPU could — the effect multi-NIC striping exploits;
* **gamma** — reduction-kernel time at the destination when the op combines
  data, scaled by the library's kernel fusion quality (NCCL hides most of
  this; Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import P2POp
from ..machine.nic import nic_of
from ..machine.spec import INTER_NODE, MachineSpec
from ..transport.library import Library
from ..transport.profiles import profile

#: Resource keys are hashable tuples; the first element names the kind.
ResourceKey = tuple

#: Fraction of a message's software latency that occupies the link/NIC
#: resource itself (per-message processing).  The rest of alpha is
#: pipelineable: it delays *this* message's completion but lets other
#: messages use the wire meanwhile, as real NICs and GPU DMA engines do.
RESOURCE_ALPHA_FRACTION = 0.2


@dataclass(frozen=True)
class PricedOp:
    """Simulation costs of one op: per-resource occupancy + latency + kernel."""

    resources: tuple[tuple[ResourceKey, float], ...]  # (key, seconds busy)
    alpha: float  # seconds of latency before data lands
    gamma: float  # seconds of reduction compute after the transfer

    @property
    def overhead(self) -> float:
        """Per-message occupancy added to every resource this op touches."""
        return self.alpha * RESOURCE_ALPHA_FRACTION

    @property
    def transfer_time(self) -> float:
        """Serialization time on the op's slowest resource (the beta term)."""
        return max((dur for _, dur in self.resources), default=0.0)

    @property
    def total_time(self) -> float:
        """End-to-end op latency: alpha + slowest-resource beta + gamma."""
        return self.alpha + self.transfer_time + self.gamma


def _gb(bytes_: float) -> float:
    return bytes_ / 1.0e9


def price_op(
    op: P2POp,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> PricedOp:
    """Price one op for the event engine."""
    nbytes = op.count * elem_bytes
    path = machine.path(op.src, op.dst)

    if op.is_local:
        gamma = 0.0
        if op.reduce_op is not None:
            gamma = _gb(nbytes) / machine.reduce_bandwidth + machine.kernel_latency
        duration = _gb(nbytes) / machine.copy_bandwidth
        resources = ((("copy", op.src), duration),)
        return PricedOp(resources, machine.copy_latency, gamma)

    if op.level is None or not 0 <= op.level < len(libraries):
        raise ValueError(f"op {op.uid} has no valid library level: {op.level}")
    lib = libraries[op.level]
    prof = profile(lib, machine.name)

    gamma = 0.0
    if op.reduce_op is not None:
        gamma = (
            _gb(nbytes) / machine.reduce_bandwidth
            + machine.kernel_latency * prof.kernel_scale
        )

    if path.kind == INTER_NODE:
        flow_bw = min(machine.nic_bandwidth, machine.injection_bandwidth) * prof.eff_inter
        if flow_bw <= 0:
            raise ValueError(
                f"op {op.uid}: {lib.name} cannot carry inter-node traffic "
                f"({op.src} -> {op.dst}); was a node-local library scheduled "
                "across nodes (e.g. by a permuted placement)?"
            )
        wire = _gb(nbytes) / machine.nic_bandwidth
        endpoint = _gb(nbytes) / flow_bw
        src_node, dst_node = machine.node_of(op.src), machine.node_of(op.dst)
        resources = (
            (("nic_tx", src_node, machine.nic_of(op.src)), wire),
            (("nic_rx", dst_node, machine.nic_of(op.dst)), wire),
            (("inj_tx", op.src), endpoint),
            (("inj_rx", op.dst), endpoint),
        )
        alpha = path.latency + prof.alpha_inter
        return PricedOp(resources, alpha, gamma)

    # Intra-node link at some physical level.
    bw = path.bandwidth * prof.eff_intra
    duration = _gb(nbytes) / bw
    lvl = path.level_index
    resources = (
        (("link_tx", op.src, lvl), duration),
        (("link_rx", op.dst, lvl), duration),
    )
    alpha = path.latency + prof.alpha_intra
    return PricedOp(resources, alpha, gamma)


#: Below this op count the per-array setup of the batch path costs more than
#: it saves; small schedules take the scalar path.
BATCH_MIN_OPS = 64


def price_ops(
    ops: list[P2POp],
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Price a list of op records at once.

    Bit-identical to mapping :func:`price_op` over ``ops`` (the arithmetic is
    performed in the same order on the same float64 values), but the per-op
    cost-model evaluation is vectorized with numpy.  Prefer
    :func:`price_schedule` for a :class:`~repro.core.schedule.Schedule` —
    it reads the schedule's array columns directly instead of materializing
    per-op objects.
    """
    n = len(ops)
    if n < BATCH_MIN_OPS:
        return [price_op(op, machine, libraries, elem_bytes) for op in ops]

    src = np.fromiter((op.src for op in ops), np.int64, n)
    dst = np.fromiter((op.dst for op in ops), np.int64, n)
    count = np.fromiter((op.count for op in ops), np.float64, n)
    level = np.fromiter(
        (-1 if op.level is None else op.level for op in ops), np.int64, n
    )
    reduces = np.fromiter((op.reduce_op is not None for op in ops), np.bool_, n)
    return _price_arrays(ops, src, dst, count, level, reduces,
                         machine, libraries, elem_bytes)


def price_schedule(
    schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Price a whole schedule straight from its array columns.

    Bit-identical to :func:`price_ops` over ``schedule.ops`` (same float64
    values through the same operations) without materializing any
    :class:`~repro.core.schedule.P2POp` views; this is what lets the event
    engine price six-figure op counts in well under a second.
    """
    n = len(schedule)
    if n < BATCH_MIN_OPS:
        return [price_op(op, machine, libraries, elem_bytes)
                for op in schedule.ops]
    src = schedule.src.astype(np.int64)
    dst = schedule.dst.astype(np.int64)
    count = schedule.count.astype(np.float64)
    level = schedule.level.astype(np.int64)
    reduces = schedule.reduce >= 0
    return _price_arrays(schedule, src, dst, count, level, reduces,
                         machine, libraries, elem_bytes)


def _price_arrays(
    source,
    src: np.ndarray,
    dst: np.ndarray,
    count: np.ndarray,
    level: np.ndarray,
    reduces: np.ndarray,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> list[PricedOp]:
    """Shared vectorized pricing core; ``source`` only feeds error paths."""
    n = src.shape[0]

    def op_at(i: int) -> P2POp:
        ops = source.ops if hasattr(source, "ops") else source
        return ops[i]

    local = src == dst
    bad_level = ~local & ((level < 0) | (level >= len(libraries)))
    if bad_level.any():
        bad = op_at(int(np.argmax(bad_level)))
        raise ValueError(f"op {bad.uid} has no valid library level: {bad.level}")

    gb = (count * elem_bytes) / 1.0e9  # same order as _gb(count * elem_bytes)
    g = machine.gpus_per_node
    src_node = src // g
    dst_node = dst // g
    inter = ~local & (src_node != dst_node)
    intra = ~local & ~inter

    profs = [profile(lib, machine.name) for lib in libraries]
    lvl_of_op = np.where(local, 0, level)  # safe gather index; masked later
    eff_inter = np.array([p.eff_inter for p in profs])[lvl_of_op]
    eff_intra = np.array([p.eff_intra for p in profs])[lvl_of_op]
    alpha_inter_sw = np.array([p.alpha_inter for p in profs])[lvl_of_op]
    alpha_intra_sw = np.array([p.alpha_intra for p in profs])[lvl_of_op]
    kernel_scale = np.array([p.kernel_scale for p in profs])[lvl_of_op]

    red_time = gb / machine.reduce_bandwidth
    gamma = np.zeros(n)
    gamma = np.where(reduces & local, red_time + machine.kernel_latency, gamma)
    gamma = np.where(
        reduces & ~local, red_time + machine.kernel_latency * kernel_scale, gamma
    )

    # Physical intra-node level separating each same-node pair (the
    # vectorized equivalent of MachineSpec.intra_level_index).
    la = src % g
    lb = dst % g
    lvl_idx = np.full(n, -1, dtype=np.int64)
    block = g
    for idx, level_spec in enumerate(machine.levels):
        block //= level_spec.extent
        hit = intra & (lvl_idx < 0) & (la // block != lb // block)
        lvl_idx[hit] = idx
    lvl_safe = np.where(lvl_idx < 0, 0, lvl_idx)
    level_bw = np.array([lv.bandwidth for lv in machine.levels])[lvl_safe]
    level_lat = np.array([lv.latency for lv in machine.levels])[lvl_safe]

    alpha = np.full(n, machine.copy_latency)
    alpha[inter] = machine.nic_latency + alpha_inter_sw[inter]
    alpha[intra] = (level_lat + alpha_intra_sw)[intra]

    flow_bw = min(machine.nic_bandwidth, machine.injection_bandwidth) * eff_inter
    bad_flow = inter & (flow_bw <= 0)
    if bad_flow.any():
        # Raises the canonical single-op error message.
        price_op(op_at(int(np.argmax(bad_flow))), machine, libraries, elem_bytes)
    dur_local = gb / machine.copy_bandwidth
    wire = gb / machine.nic_bandwidth
    with np.errstate(divide="ignore"):
        endpoint = np.where(flow_bw > 0, gb / np.where(flow_bw > 0, flow_bw, 1.0), 0.0)
    intra_bw = level_bw * eff_intra
    bad_intra = intra & (intra_bw <= 0)
    if bad_intra.any():
        # Raises the canonical single-op error message.
        price_op(op_at(int(np.argmax(bad_intra))), machine, libraries, elem_bytes)
    dur_intra = gb / np.where(intra_bw > 0, intra_bw, 1.0)

    nic_table = np.array(
        [nic_of(i, g, machine.nic_count, machine.binding) for i in range(g)]
    )
    src_nic = nic_table[la]
    dst_nic = nic_table[lb]

    # Assemble the PricedOp records from plain python scalars (one .tolist()
    # per array beats a quarter-million numpy scalar __getitem__ calls).
    src_l, dst_l = src.tolist(), dst.tolist()
    src_node_l, dst_node_l = src_node.tolist(), dst_node.tolist()
    src_nic_l, dst_nic_l = src_nic.tolist(), dst_nic.tolist()
    alpha_l, gamma_l = alpha.tolist(), gamma.tolist()
    dur_local_l, wire_l = dur_local.tolist(), wire.tolist()
    endpoint_l, dur_intra_l = endpoint.tolist(), dur_intra.tolist()
    lvl_idx_l = lvl_idx.tolist()
    local_l, inter_l = local.tolist(), inter.tolist()

    out: list[PricedOp] = []
    for i in range(n):
        if local_l[i]:
            resources: tuple = ((("copy", src_l[i]), dur_local_l[i]),)
        elif inter_l[i]:
            w, e = wire_l[i], endpoint_l[i]
            resources = (
                (("nic_tx", src_node_l[i], src_nic_l[i]), w),
                (("nic_rx", dst_node_l[i], dst_nic_l[i]), w),
                (("inj_tx", src_l[i]), e),
                (("inj_rx", dst_l[i]), e),
            )
        else:
            d, li = dur_intra_l[i], lvl_idx_l[i]
            resources = (
                (("link_tx", src_l[i], li), d),
                (("link_rx", dst_l[i], li), d),
            )
        out.append(PricedOp(resources, alpha_l[i], gamma_l[i]))
    return out
