"""Levelized batch engine: frontier-at-a-time simulation with a certificate.

The event engine replays contention op by op off a heap — exact, but ~1.5s
for a fig8-scale schedule and hopeless for full-system Aurora/Frontier
models.  This module is the fast path behind ``simulate(engine="auto")``:

1. **Level** the CSR dependency graph once with a vectorized Kahn peel
   (:func:`repro.core.schedule.toposort_levels`).
2. **Solve optimistically**: sweep the levels in order, setting every op's
   start to the max completion of its dependencies — pure
   ``np.maximum.reduceat`` batches, no heap, no parking.  This is the
   uncontended longest-path schedule.
3. **Certify**: flatten all resource bookings implied by the optimistic
   starts and check, per resource timeline, that no two bookings overlap.
   If the certificate holds, the event loop would have made *exactly* the
   same decisions (no op ever waits on a busy resource, so the
   ``free_at`` test never fires and every op starts at its dependency
   ready time) — the levelized answer is bit-identical, down to summing
   per-resource busy totals in the same chronological order.  If it fails,
   the caller falls back to the event loop; the fast path is only ever a
   provably-safe shortcut, never an approximation.

The certificate is conservative about simultaneous same-resource bookings:
two bookings starting at the same instant are accepted only when all such
bookings are zero-width (virtual gates, zero-overhead ops), because the
event loop admits those in priority order with no observable effect.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import toposort_levels
from .timing import PricedColumns, booking_columns, bookings_at

#: Below this op count the event loop is already fast and the leveling
#: setup isn't worth it; ``engine="auto"`` skips the attempt.
LEVEL_MIN_OPS = 256

#: Deeper graphs than this serialize so heavily that frontier batching
#: degenerates to the event loop's op-at-a-time pace; give up early.
LEVEL_MAX_DEPTH = 4096


def solve_levels(
    cols: PricedColumns,
    dep_indptr: np.ndarray,
    dep_indices: np.ndarray,
    levels: np.ndarray,
    depth: int,
    ready: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimistic per-level time solve: start = max completion of deps.

    Sweeps levels in topological order; within a level every op's start and
    completion are computed in one batch.  Completion uses the event
    engine's exact expression ``((start + alpha) + transfer) + gamma`` so
    the float64 results are bit-identical when the certificate accepts.
    """
    n = len(cols)
    start = np.zeros(n) if ready is None else np.asarray(ready, float).copy()
    comp = np.zeros(n)
    transfer = cols.transfer_time()
    ndeps = np.diff(dep_indptr)
    order = np.argsort(levels, kind="stable")
    counts = np.bincount(levels, minlength=depth)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    for lvl in range(depth):
        uids = order[bounds[lvl]:bounds[lvl + 1]]
        if not uids.size:
            continue
        withdeps = uids[ndeps[uids] > 0]
        if withdeps.size:
            # reduceat cannot express empty segments, hence the filter.
            cnt = ndeps[withdeps]
            excl = np.cumsum(cnt) - cnt
            flat = np.arange(int(cnt.sum()), dtype=np.int64)
            flat = flat - np.repeat(excl, cnt) + np.repeat(
                dep_indptr[withdeps], cnt)
            dep_comp = comp[dep_indices[flat]]
            start[withdeps] = np.maximum(
                start[withdeps], np.maximum.reduceat(dep_comp, excl))
        comp[uids] = ((start[uids] + cols.alpha[uids]) + transfer[uids]
                      ) + cols.gamma[uids]
    return start, comp


def _bookings(cols: PricedColumns, start: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-op resource slots into (id, start, occupancy) streams,
    sorted by resource then chronologically — certificate order.  Delegates
    to the shared :func:`repro.simulator.timing.bookings_at` flatten so the
    serving replay engine certifies against the exact same streams."""
    return bookings_at(booking_columns(cols), start)


def certificate_ok(rid: np.ndarray, st: np.ndarray, occ: np.ndarray) -> bool:
    """True iff no resource timeline has overlapping bookings.

    Inputs are (resource, start)-sorted.  Consecutive bookings on the same
    resource must satisfy ``start[i+1] >= start[i] + occ[i]``; bookings at
    the *same* instant are only accepted when the later one is zero-width
    (zero-width bookings never block the event loop's ``free_at > now``
    test and add exactly 0.0 to busy totals, so admission order is
    unobservable).  Since an accepted pairwise check makes ends
    nondecreasing per resource, checking consecutive pairs is equivalent
    to checking against the running max end.
    """
    if rid.shape[0] < 2:
        return True
    end = st + occ
    same = rid[1:] == rid[:-1]
    ok = (st[1:] >= end[:-1]) & ((st[1:] > st[:-1]) | (occ[1:] == 0.0))
    return bool((ok | ~same).all())


def busy_totals(cols: PricedColumns, rid: np.ndarray, occ: np.ndarray
                ) -> dict:
    """Per-resource busy seconds, accumulated chronologically.

    A plain python loop on purpose: the event engine accumulates each
    resource's occupancies one ``+=`` at a time in start order, and float
    addition is not associative — pairwise-summing numpy reductions would
    drift in the last ulp.  The input is (resource, start)-sorted, so each
    resource's additions happen in exactly the event loop's order.
    """
    busy: dict = {}
    key_of: dict = {}
    for r, o in zip(rid.tolist(), occ.tolist()):
        key = key_of.get(r)
        if key is None:
            key = key_of[r] = cols.resource_key(r)
        busy[key] = busy.get(key, 0.0) + o
    return busy


def attempt_level(
    cols: PricedColumns,
    dep_indptr: np.ndarray,
    dep_indices: np.ndarray,
    leveling: tuple[np.ndarray, int] | None,
    ready: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, dict] | None:
    """Run the levelized solve and certify it; ``None`` means fall back.

    ``leveling`` is the precomputed ``(levels, depth)`` pair (pass ``None``
    to decline, e.g. when the peel already failed).  On success returns
    ``(start, completion, resource_busy)`` carrying exactly the values the
    event loop would have produced.
    """
    if leveling is None:
        return None
    levels, depth = leveling
    start, comp = solve_levels(cols, dep_indptr, dep_indices,
                               levels, depth, ready)
    rid, st, occ = _bookings(cols, start)
    if not certificate_ok(rid, st, occ):
        return None
    return start, comp, busy_totals(cols, rid, occ)


def schedule_leveling(schedule) -> tuple[np.ndarray, int] | None:
    """Leveling of a schedule's dep graph under the engine's depth cap."""
    return schedule.dep_levels(LEVEL_MAX_DEPTH)


def graph_leveling(dep_rows: list, num_ops: int
                   ) -> tuple[np.ndarray, np.ndarray, tuple | None]:
    """CSR + leveling for an ad-hoc dependency-row graph (workload merges).

    ``dep_rows[i]`` lists the predecessors of node ``i`` (indices < i).
    Returns ``(dep_indptr, dep_indices, leveling)`` where ``leveling``
    follows the :func:`toposort_levels` contract.
    """
    lens = np.fromiter((len(d) for d in dep_rows), np.int64, num_ops)
    indptr = np.zeros(num_ops + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    indices = np.fromiter(
        (d for deps in dep_rows for d in deps), np.int64, int(indptr[-1]))
    counts = np.bincount(indices, minlength=num_ops)
    dpt_indptr = np.zeros(num_ops + 1, dtype=np.int64)
    np.cumsum(counts, out=dpt_indptr[1:])
    owners = np.repeat(np.arange(num_ops, dtype=np.int64), lens)
    dpt_indices = owners[np.argsort(indices, kind="stable")]
    leveling = toposort_levels(lens, dpt_indptr, dpt_indices, num_ops,
                               max_depth=LEVEL_MAX_DEPTH)
    return indptr, indices, leveling
