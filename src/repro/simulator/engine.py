"""Discrete-event engine: prices schedules on a machine model.

An event-driven priority list scheduler over the op dependency graph.  Each
op becomes *ready* when all of its dependencies complete; it *starts* when
every resource it occupies is free, holds each resource for that resource's
own duration (NICs at wire rate, endpoints at flow rate — see
:mod:`repro.simulator.timing`), and *completes* after latency + transfer +
reduction-kernel time.  The makespan of the graph is the simulated elapsed
time of the collective, matching the paper's measurement definition: "the
elapsed time from a global synchronization to the moment that the
communication buffers on all GPUs are safe to be reused" (Section 6.2).

Scheduling discipline: among ops that are ready at the same instant, the one
with the longest remaining dependency chain (upward rank) wins the resources;
ops that cannot start are *parked* on the resource currently blocking them
and are reconsidered the moment it frees.  This gives proper backfilling —
an idle link is never held hostage by a blocked higher-priority op — while
every wake-up is O(1) amortized, so large schedules (hundreds of thousands
of ops) price in seconds.

The scheduler is deterministic (ties broken by uid), so repeated measurement
rounds of a memoized schedule return identical times.

Two entry points share one event loop:

* :func:`simulate` prices a single :class:`~repro.core.schedule.Schedule` on
  an otherwise idle machine — the paper's setting of one collective at a
  time;
* :func:`simulate_workload` prices *several* schedules (a list of
  :class:`JobSpec`, each with a launch offset and optional dependencies on
  earlier jobs) against **one shared set** of NIC/link/copy-engine resource
  timelines, so concurrent collectives contend for the wires exactly as
  concurrent ML-job traffic does.  See DESIGN.md Section 7 for the workload
  contract built on top of it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.schedule import Schedule
from ..errors import ExecutionError
from ..machine.faults import resource_rate
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .level import (LEVEL_MIN_OPS, attempt_level, graph_leveling,
                    schedule_leveling)
from .timing import (PricedOp, columns_from_priced, price_schedule,
                     price_schedule_columns, price_schedule_sweep)

#: Engine selectors accepted by :func:`simulate` / :func:`simulate_workload`.
#: ``auto`` tries the levelized fast path on graphs worth the setup and
#: falls back transparently; ``level`` always attempts it (still falling
#: back when the certificate fails); ``event`` never tries.
ENGINES = ("auto", "event", "level")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ExecutionError(
            f"unknown engine {engine!r}; choose one of {ENGINES}"
        )

#: Event kinds, ordered so resource-free events at time T are handled before
#: op-ready events at the same T (freshly freed links are offered to parked
#: high-priority ops before newly-ready ones are considered).
_RES_FREED = 0
_OP_READY = 1


def rank_resources(by_resource: dict[tuple, float], n: int) -> list[tuple[tuple, float]]:
    """The ``n`` highest-valued resources of an occupancy map, busiest first.

    Ties break on the stringified resource key, so every report surface
    (timing results, workload results) ranks identically and renders
    deterministically.
    """
    return sorted(by_resource.items(), key=lambda kv: (-kv[1], str(kv[0])))[:n]


def busy_gigabytes(resource_busy: dict[tuple, float],
                   machine: MachineSpec) -> dict[tuple, float]:
    """Convert per-resource busy totals (seconds) into serialized GB.

    Each busy total converts at that resource's *own* rated bandwidth via
    :func:`repro.machine.faults.resource_rate` — never at the machine's
    uniform healthy NIC rate.  On a degraded machine a derated NIC is busy
    *longer* for the same traffic, so pricing its timeline at the uniform
    rate would overstate its throughput by exactly the derate factor; with
    the per-resource rate the wire portion of the traffic summarizes
    identically on healthy and degraded machines.  Busy totals also include
    the per-message alpha occupancy (which converts at the — possibly
    derated — rate), so the figure slightly overstates pure payload bytes
    for latency-bound resources.
    """
    return {
        key: busy * resource_rate(machine, key)
        for key, busy in resource_busy.items()
    }


@dataclass
class TimingResult:
    """Outcome of simulating one schedule."""

    elapsed: float  # makespan in seconds
    start_times: list[float]
    completion_times: list[float]
    resource_busy: dict[tuple, float]  # per-resource total occupancy
    engine: str = "event"  # which engine produced the numbers

    def throughput(self, payload_bytes: float) -> float:
        """GB/s given the collective's payload definition (Section 6.2)."""
        if self.elapsed <= 0:
            return float("inf")
        return payload_bytes / 1.0e9 / self.elapsed

    def busiest_resources(self, n: int = 8) -> list[tuple[tuple, float]]:
        """The ``n`` resources with the highest total occupancy, busiest first."""
        return rank_resources(self.resource_busy, n)

    def moved_gigabytes(self, machine: MachineSpec) -> dict[tuple, float]:
        """Serialized GB per resource at its own (possibly derated) rate."""
        return busy_gigabytes(self.resource_busy, machine)


def compute_upward_ranks(priced: list[PricedOp], dependents: list[list[int]]) -> list[float]:
    """Critical-path time from each op to the sink (HEFT-style urgency)."""
    upward = [0.0] * len(priced)
    for uid in range(len(priced) - 1, -1, -1):
        tail = max((upward[d] for d in dependents[uid]), default=0.0)
        upward[uid] = priced[uid].total_time + tail
    return upward


def _run_graph(
    priced: list[PricedOp],
    dependents: list[list[int]],
    indegree: list[int],
    ready_time: list[float],
) -> tuple[list[float], list[float], dict[tuple, float], int]:
    """Run the backfilling event loop over one priced dependency graph.

    ``ready_time[uid]`` seeds the earliest instant each initially-ready op
    (indegree zero) may start — :func:`simulate` passes all zeros, while
    :func:`simulate_workload` uses it to realize per-job launch offsets.
    The arrays are shared state between both public entry points; mutating
    ``indegree``/``ready_time`` in place is intentional.

    Returns ``(start_times, completion_times, resource_busy, done_count)``;
    the caller is responsible for diagnosing ``done_count`` mismatches.
    """
    n = len(priced)
    upward = compute_upward_ranks(priced, dependents)

    free_at: dict[tuple, float] = {}
    busy: dict[tuple, float] = {}
    start_times = [0.0] * n
    completion = [0.0] * n
    done = 0

    # Parked ops per resource: the op is waiting for this resource to free.
    parked: dict[tuple, list[tuple[float, int]]] = {}
    # Global event heap: (time, kind, priority, payload).
    events: list[tuple[float, int, float, object]] = [
        (ready_time[uid], _OP_READY, -upward[uid], uid)
        for uid in range(n)
        if indegree[uid] == 0
    ]
    heapq.heapify(events)

    def try_start(uid: int, now: float) -> bool:
        """Book the op if all its resources are free; else park it."""
        nonlocal done
        cost = priced[uid]
        blocker = None
        blocker_free = now
        for key, _dur in cost.resources:
            t_free = free_at.get(key, 0.0)
            if t_free > now and t_free > blocker_free:
                blocker, blocker_free = key, t_free
        if blocker is not None:
            heapq.heappush(parked.setdefault(blocker, []), (-upward[uid], uid))
            return False
        finish = now + cost.alpha + cost.transfer_time + cost.gamma
        for key, dur in cost.resources:
            occupied = cost.overhead + dur
            free_at[key] = now + occupied
            busy[key] = busy.get(key, 0.0) + occupied
            heapq.heappush(events, (now + occupied, _RES_FREED, 0.0, key))
        start_times[uid] = now
        completion[uid] = finish
        done += 1
        for nxt in dependents[uid]:
            ready_time[nxt] = max(ready_time[nxt], finish)
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(
                    events, (ready_time[nxt], _OP_READY, -upward[nxt], nxt)
                )
        return True

    while events:
        now, kind, _prio, payload = heapq.heappop(events)
        if kind == _OP_READY:
            try_start(payload, now)  # parks itself if blocked
            continue
        # A resource freed: offer it (and anything else now free) to parked
        # ops in priority order until it is busy again or the queue empties.
        queue = parked.get(payload)
        while queue:
            _neg, uid = queue[0]
            cost = priced[uid]
            startable = True
            migrate_to = None
            migrate_free = now
            for key, _dur in cost.resources:
                t_free = free_at.get(key, 0.0)
                if t_free > now:
                    startable = False
                    if t_free > migrate_free:
                        migrate_to, migrate_free = key, t_free
            heapq.heappop(queue)
            if startable:
                try_start(uid, now)
                # The booking re-busied this resource; further parked ops
                # must wait for its next free event.
                if free_at.get(payload, 0.0) > now:
                    break
            else:
                # Blocked on a different resource now; migrate the parking.
                heapq.heappush(
                    parked.setdefault(migrate_to, []), (-upward[uid], uid)
                )
                if migrate_to == payload:
                    break  # it re-parked here; this resource is busy again

    return start_times, completion, busy, done


def _graph_arrays(schedule: Schedule) -> tuple[list[int], list[list[int]]]:
    """Indegree and dependents arrays from a schedule's CSR columns."""
    n = len(schedule)
    indegree = np.diff(schedule.dep_indptr).tolist()
    dependents: list[list[int]] = [[] for _ in range(n)]
    owners = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(schedule.dep_indptr)
    ).tolist()
    for dep, owner in zip(schedule.dep_indices.tolist(), owners):
        dependents[dep].append(owner)
    return indegree, dependents


def _level_result(cols, dep_indptr, dep_indices, leveling) -> TimingResult | None:
    """Certified levelized solve packaged as a TimingResult, or ``None``."""
    solved = attempt_level(cols, dep_indptr, dep_indices, leveling)
    if solved is None:
        return None
    start, comp, busy = solved
    return TimingResult(
        elapsed=float(comp.max()),
        start_times=start.tolist(),
        completion_times=comp.tolist(),
        resource_busy=busy,
        engine="level",
    )


def simulate(
    schedule: Schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
    engine: str = "auto",
) -> TimingResult:
    """Simulate ``schedule`` on an idle machine; per-op timing + makespan.

    ``engine`` selects the implementation, never the answer: the levelized
    fast path only returns when its no-contention certificate proves the
    event loop would produce bit-identical times (see
    :mod:`repro.simulator.level`), so all three selectors yield the same
    numbers.  Check ``TimingResult.engine`` for which path actually ran.
    """
    _check_engine(engine)
    n = len(schedule)
    if not n:
        return TimingResult(0.0, [], [], {})

    if engine == "level" or (engine == "auto" and n >= LEVEL_MIN_OPS):
        cols = price_schedule_columns(schedule, machine, libraries, elem_bytes)
        result = _level_result(cols, schedule.dep_indptr,
                               schedule.dep_indices, schedule_leveling(schedule))
        if result is not None:
            return result

    priced: list[PricedOp] = price_schedule(schedule, machine, libraries,
                                            elem_bytes)
    indegree, dependents = _graph_arrays(schedule)
    start_times, completion, busy, done = _run_graph(
        priced, dependents, indegree, [0.0] * n
    )
    if done != n:
        raise ExecutionError(
            f"dependency deadlock: only {done}/{n} ops executed"
        )

    return TimingResult(
        elapsed=max(completion),
        start_times=start_times,
        completion_times=completion,
        resource_busy=busy,
    )


def simulate_sweep(
    schedule: Schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
    scales,
    engine: str = "auto",
) -> list[TimingResult]:
    """Simulate one schedule at many payload scales, one leveling shared.

    Prices the whole payload grid through
    :func:`~repro.simulator.timing.price_schedule_sweep` (static pricing
    computed once) and levels the dependency graph once; each grid point
    then costs only a per-level solve plus the certificate.  Grid points
    whose certificate fails fall back to the event loop individually.
    Every returned result is bit-identical to ``simulate`` on a schedule
    carrying the scaled counts whenever the scale is a power of two (see
    ``price_schedule_sweep``); structure is payload-independent here by
    construction since all points share one lowering.
    """
    _check_engine(engine)
    n = len(schedule)
    scales = list(scales)
    if not n:
        return [TimingResult(0.0, [], [], {}) for _ in scales]

    cols_grid = price_schedule_sweep(schedule, machine, libraries,
                                     elem_bytes, scales)
    leveling = schedule_leveling(schedule) if engine != "event" else None
    results = []
    for cols in cols_grid:
        result = None
        if leveling is not None:
            result = _level_result(cols, schedule.dep_indptr,
                                   schedule.dep_indices, leveling)
        if result is None:
            indegree, dependents = _graph_arrays(schedule)
            start_times, completion, busy, done = _run_graph(
                cols.to_priced(), dependents, indegree, [0.0] * n
            )
            if done != n:
                raise ExecutionError(
                    f"dependency deadlock: only {done}/{n} ops executed"
                )
            result = TimingResult(max(completion), start_times,
                                  completion, busy)
        results.append(result)
    return results


# ------------------------------------------------------- concurrent workloads
#: Virtual graph node (job entry/exit gate): occupies nothing, takes no time.
_VIRTUAL_OP = PricedOp((), 0.0, 0.0)


@dataclass(frozen=True)
class JobSpec:
    """One schedule entering a shared-timeline workload simulation.

    ``schedule`` must be expressed in the machine's global rank space (a
    :class:`~repro.core.communicator.SubCommunicator` provides this via its
    ``global_schedule``).  ``offset`` delays the job's launch by simulated
    seconds; ``after`` lists indices of *earlier* jobs in the workload that
    must fully complete before this one may start (launch offsets and job
    dependencies combine: the job starts at the later of the two).
    """

    schedule: Schedule
    libraries: tuple[Library, ...]
    elem_bytes: int = 4
    offset: float = 0.0
    after: tuple[int, ...] = ()
    name: str = ""


@dataclass
class JobTiming:
    """Realized window of one job inside a workload simulation.

    ``start`` is the instant the job's gate opened (its launch offset and
    every ``after`` dependency satisfied); ``finish`` is the completion of
    its last op.  ``op_start_times``/``op_completion_times`` are indexed by
    the job schedule's op uids and carry *absolute* workload-timeline
    instants, so trace tooling can join them with the schedule directly.
    """

    name: str
    start: float
    finish: float
    op_start_times: list[float] = field(repr=False, default_factory=list)
    op_completion_times: list[float] = field(repr=False, default_factory=list)

    @property
    def elapsed(self) -> float:
        """Seconds from gate-open to last-op completion (contended duration)."""
        return self.finish - self.start


@dataclass
class WorkloadTimingResult:
    """Outcome of simulating several schedules on one shared machine timeline."""

    makespan: float
    jobs: list[JobTiming]
    resource_busy: dict[tuple, float]
    engine: str = "event"  # which engine produced the numbers

    def utilization(self) -> dict[tuple, float]:
        """Busy fraction of the workload makespan per machine resource."""
        if self.makespan <= 0:
            return {}
        return {k: b / self.makespan for k, b in self.resource_busy.items()}

    def busiest_resources(self, n: int = 8) -> list[tuple[tuple, float]]:
        """The ``n`` resources with the highest total occupancy, busiest first."""
        return rank_resources(self.resource_busy, n)

    def moved_gigabytes(self, machine: MachineSpec) -> dict[tuple, float]:
        """Serialized GB per resource at its own (possibly derated) rate."""
        return busy_gigabytes(self.resource_busy, machine)


def simulate_workload(jobs, machine: MachineSpec,
                      engine: str = "auto") -> WorkloadTimingResult:
    """Price several schedules against one shared set of resource timelines.

    Unlike mapping :func:`simulate` over the jobs — where each schedule
    assumes an idle machine — every op of every job here books the *same*
    NIC/link/copy-engine timelines, so concurrent jobs slow each other down
    exactly as far as they share resources, and not at all when they are
    disjoint.  Within the merged graph the scheduling discipline (upward-rank
    priority, backfilling, deterministic ties) is unchanged; a workload with
    a single zero-offset job therefore reproduces :func:`simulate` exactly.

    Each job contributes two zero-cost virtual graph nodes: an *entry* gate
    (ready at ``offset``, and dependent on the exit gates of every job named
    in ``after``) feeding the job's root ops, and an *exit* gate joining its
    sink ops.  ``after`` may only reference earlier list positions, which
    keeps the merged graph topologically ordered by construction.

    Returns a :class:`WorkloadTimingResult`; per-job contended durations are
    in its ``jobs`` list, in input order.  ``engine`` follows the
    :func:`simulate` contract: the levelized path only answers when its
    certificate proves bit-identity with the event loop.
    """
    _check_engine(engine)
    jobs = list(jobs)
    if not jobs:
        return WorkloadTimingResult(0.0, [], {})

    priced: list[PricedOp] = []
    dep_rows: list[tuple] = []
    dependents: list[list[int]] = []
    indegree: list[int] = []
    ready: list[float] = []

    def push(cost: PricedOp, deps, t0: float = 0.0) -> int:
        uid = len(priced)
        priced.append(cost)
        dep_rows.append(deps)
        dependents.append([])
        indegree.append(len(deps))
        ready.append(t0)
        for dep in deps:
            dependents[dep].append(uid)
        return uid

    entry_idx: list[int] = []
    exit_idx: list[int] = []
    spans: list[tuple[int, int]] = []
    for j, job in enumerate(jobs):
        label = job.name or f"job{j}"
        if job.offset < 0:
            raise ExecutionError(f"job {label!r}: launch offset must be >= 0")
        for k in job.after:
            if not 0 <= k < j:
                raise ExecutionError(
                    f"job {label!r} (index {j}) can only depend on earlier "
                    f"jobs, got after={tuple(job.after)}"
                )
        if job.schedule.world_size != machine.world_size:
            raise ExecutionError(
                f"job {label!r}: schedule spans {job.schedule.world_size} "
                f"ranks but {machine.name} has {machine.world_size}; embed "
                "group schedules into machine rank space first"
            )
        sched = job.schedule
        nops = len(sched)
        entry = push(
            _VIRTUAL_OP, tuple(exit_idx[k] for k in job.after), job.offset
        )
        base = len(priced)
        job_priced = price_schedule(sched, machine, job.libraries,
                                    job.elem_bytes)
        indptr = sched.dep_indptr.tolist()
        indices = sched.dep_indices.tolist()
        is_sink = [True] * nops
        for dep in indices:
            is_sink[dep] = False
        for uid in range(nops):
            deps = tuple(
                base + d for d in indices[indptr[uid]:indptr[uid + 1]]
            ) or (entry,)
            push(job_priced[uid], deps)
        sinks = [base + i for i, s in enumerate(is_sink) if s] or [entry]
        exit_ = push(_VIRTUAL_OP, tuple(sinks))
        entry_idx.append(entry)
        exit_idx.append(exit_)
        spans.append((base, base + nops))

    engine_used = "event"
    solved = None
    if engine == "level" or (engine == "auto" and len(priced) >= LEVEL_MIN_OPS):
        cols = columns_from_priced(priced)
        if cols is not None:
            indptr, indices, leveling = graph_leveling(dep_rows, len(priced))
            if leveling is not None:
                solved = attempt_level(cols, indptr, indices, leveling,
                                       ready=np.asarray(ready))
    if solved is not None:
        start_a, completion_a, busy = solved
        start = start_a.tolist()
        completion = completion_a.tolist()
        engine_used = "level"
    else:
        start, completion, busy, done = _run_graph(
            priced, dependents, indegree, ready
        )
        if done != len(priced):
            raise ExecutionError(
                f"dependency deadlock: only {done}/{len(priced)} workload "
                "nodes executed"
            )

    timings = []
    for j, job in enumerate(jobs):
        lo, hi = spans[j]
        timings.append(JobTiming(
            name=job.name or f"job{j}",
            start=start[entry_idx[j]],
            finish=completion[exit_idx[j]],
            op_start_times=start[lo:hi],
            op_completion_times=completion[lo:hi],
        ))
    return WorkloadTimingResult(
        makespan=max(t.finish for t in timings),
        jobs=timings,
        resource_busy=busy,
        engine=engine_used,
    )
