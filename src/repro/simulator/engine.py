"""Discrete-event engine: prices a schedule on a machine model.

An event-driven priority list scheduler over the op dependency graph.  Each
op becomes *ready* when all of its dependencies complete; it *starts* when
every resource it occupies is free, holds each resource for that resource's
own duration (NICs at wire rate, endpoints at flow rate — see
:mod:`repro.simulator.timing`), and *completes* after latency + transfer +
reduction-kernel time.  The makespan of the graph is the simulated elapsed
time of the collective, matching the paper's measurement definition: "the
elapsed time from a global synchronization to the moment that the
communication buffers on all GPUs are safe to be reused" (Section 6.2).

Scheduling discipline: among ops that are ready at the same instant, the one
with the longest remaining dependency chain (upward rank) wins the resources;
ops that cannot start are *parked* on the resource currently blocking them
and are reconsidered the moment it frees.  This gives proper backfilling —
an idle link is never held hostage by a blocked higher-priority op — while
every wake-up is O(1) amortized, so large schedules (hundreds of thousands
of ops) price in seconds.

The scheduler is deterministic (ties broken by uid), so repeated measurement
rounds of a memoized schedule return identical times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.schedule import Schedule
from ..errors import ExecutionError
from ..machine.spec import MachineSpec
from ..transport.library import Library
from .timing import PricedOp, price_ops

#: Event kinds, ordered so resource-free events at time T are handled before
#: op-ready events at the same T (freshly freed links are offered to parked
#: high-priority ops before newly-ready ones are considered).
_RES_FREED = 0
_OP_READY = 1


@dataclass
class TimingResult:
    """Outcome of simulating one schedule."""

    elapsed: float  # makespan in seconds
    start_times: list[float]
    completion_times: list[float]
    resource_busy: dict[tuple, float]  # per-resource total occupancy

    def throughput(self, payload_bytes: float) -> float:
        """GB/s given the collective's payload definition (Section 6.2)."""
        if self.elapsed <= 0:
            return float("inf")
        return payload_bytes / 1.0e9 / self.elapsed

    def busiest_resources(self, n: int = 8) -> list[tuple[tuple, float]]:
        return sorted(self.resource_busy.items(), key=lambda kv: -kv[1])[:n]


def compute_upward_ranks(priced: list[PricedOp], dependents: list[list[int]]) -> list[float]:
    """Critical-path time from each op to the sink (HEFT-style urgency)."""
    upward = [0.0] * len(priced)
    for uid in range(len(priced) - 1, -1, -1):
        tail = max((upward[d] for d in dependents[uid]), default=0.0)
        upward[uid] = priced[uid].total_time + tail
    return upward


def simulate(
    schedule: Schedule,
    machine: MachineSpec,
    libraries: tuple[Library, ...],
    elem_bytes: int,
) -> TimingResult:
    """Simulate ``schedule`` and return per-op timing and the makespan."""
    ops = schedule.ops
    if not ops:
        return TimingResult(0.0, [], [], {})

    priced: list[PricedOp] = price_ops(ops, machine, libraries, elem_bytes)

    indegree = [len(op.deps) for op in ops]
    dependents: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for dep in op.deps:
            dependents[dep].append(op.uid)
    upward = compute_upward_ranks(priced, dependents)

    free_at: dict[tuple, float] = {}
    busy: dict[tuple, float] = {}
    start_times = [0.0] * len(ops)
    completion = [0.0] * len(ops)
    ready_time = [0.0] * len(ops)
    done = 0

    # Parked ops per resource: the op is waiting for this resource to free.
    parked: dict[tuple, list[tuple[float, int]]] = {}
    # Global event heap: (time, kind, priority, payload).
    events: list[tuple[float, int, float, object]] = [
        (0.0, _OP_READY, -upward[op.uid], op.uid)
        for op in ops
        if indegree[op.uid] == 0
    ]
    heapq.heapify(events)

    def try_start(uid: int, now: float) -> bool:
        """Book the op if all its resources are free; else park it."""
        nonlocal done
        cost = priced[uid]
        blocker = None
        blocker_free = now
        for key, _dur in cost.resources:
            t_free = free_at.get(key, 0.0)
            if t_free > now and t_free > blocker_free:
                blocker, blocker_free = key, t_free
        if blocker is not None:
            heapq.heappush(parked.setdefault(blocker, []), (-upward[uid], uid))
            return False
        finish = now + cost.alpha + cost.transfer_time + cost.gamma
        for key, dur in cost.resources:
            occupied = cost.overhead + dur
            free_at[key] = now + occupied
            busy[key] = busy.get(key, 0.0) + occupied
            heapq.heappush(events, (now + occupied, _RES_FREED, 0.0, key))
        start_times[uid] = now
        completion[uid] = finish
        done += 1
        for nxt in dependents[uid]:
            ready_time[nxt] = max(ready_time[nxt], finish)
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(
                    events, (ready_time[nxt], _OP_READY, -upward[nxt], nxt)
                )
        return True

    while events:
        now, kind, _prio, payload = heapq.heappop(events)
        if kind == _OP_READY:
            try_start(payload, now)  # parks itself if blocked
            continue
        # A resource freed: offer it (and anything else now free) to parked
        # ops in priority order until it is busy again or the queue empties.
        queue = parked.get(payload)
        while queue:
            _neg, uid = queue[0]
            cost = priced[uid]
            startable = True
            migrate_to = None
            migrate_free = now
            for key, _dur in cost.resources:
                t_free = free_at.get(key, 0.0)
                if t_free > now:
                    startable = False
                    if t_free > migrate_free:
                        migrate_to, migrate_free = key, t_free
            heapq.heappop(queue)
            if startable:
                try_start(uid, now)
                # The booking re-busied this resource; further parked ops
                # must wait for its next free event.
                if free_at.get(payload, 0.0) > now:
                    break
            else:
                # Blocked on a different resource now; migrate the parking.
                heapq.heappush(
                    parked.setdefault(migrate_to, []), (-upward[uid], uid)
                )
                if migrate_to == payload:
                    break  # it re-parked here; this resource is busy again

    if done != len(ops):
        raise ExecutionError(
            f"dependency deadlock: only {done}/{len(ops)} ops executed"
        )

    return TimingResult(
        elapsed=max(completion),
        start_times=start_times,
        completion_times=completion,
        resource_busy=busy,
    )
