"""Simulated per-rank GPU memory.

Each simulated GPU (one per rank) owns a set of named numpy buffers.  User
buffers are symmetric — the same name and element count on every rank —
while scratch buffers created during lowering exist only on the ranks that
stage data.  The pool is what the functional executor reads and writes, and
what tests inspect to compare against numpy references.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError


class MemoryPool:
    """Named numpy buffers for every rank of a simulated machine."""

    def __init__(self, world_size: int, dtype=np.float32) -> None:
        if world_size < 1:
            raise ExecutionError("world size must be at least 1")
        self.world_size = world_size
        self.dtype = np.dtype(dtype)
        self._buffers: dict[tuple[int, str], np.ndarray] = {}
        self._symmetric: dict[str, int] = {}

    # ------------------------------------------------------------ allocation
    def alloc_symmetric(self, name: str, count: int) -> None:
        """Allocate ``count`` elements under ``name`` on every rank."""
        if name in self._symmetric:
            raise ExecutionError(f"buffer {name!r} already allocated")
        self._symmetric[name] = count
        for rank in range(self.world_size):
            self._buffers[(rank, name)] = np.zeros(count, dtype=self.dtype)

    def ensure_scratch(self, name: str, rank: int, count: int) -> None:
        """Materialize a lowering scratch buffer on one rank (idempotent)."""
        key = (rank, name)
        existing = self._buffers.get(key)
        if existing is None or existing.size < count:
            self._buffers[key] = np.zeros(count, dtype=self.dtype)

    def free_scratch(self) -> None:
        """Drop all non-symmetric buffers (between schedule runs)."""
        keep = {
            key: arr for key, arr in self._buffers.items() if key[1] in self._symmetric
        }
        self._buffers = keep

    # -------------------------------------------------------------- access
    def array(self, rank: int, name: str) -> np.ndarray:
        """The numpy array backing ``name`` on ``rank`` (read/write)."""
        try:
            return self._buffers[(rank, name)]
        except KeyError:
            raise ExecutionError(
                f"buffer {name!r} does not exist on rank {rank}"
            ) from None

    def slice(self, rank: int, name: str, offset: int, count: int) -> np.ndarray:
        """A bounds-checked ``count``-element view at ``offset`` of a buffer."""
        arr = self.array(rank, name)
        if offset < 0 or offset + count > arr.size:
            raise ExecutionError(
                f"access [{offset}:{offset + count}] out of bounds for buffer "
                f"{name!r} ({arr.size} elements) on rank {rank}"
            )
        return arr[offset : offset + count]

    def gather_all(self, name: str) -> np.ndarray:
        """Stack one symmetric buffer across ranks -> (p, count) array."""
        if name not in self._symmetric:
            raise ExecutionError(f"{name!r} is not a symmetric buffer")
        return np.stack([self.array(rank, name) for rank in range(self.world_size)])

    def set_all(self, name: str, values: np.ndarray) -> None:
        """Fill a symmetric buffer from a (p, count) array."""
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != (self.world_size, self._symmetric.get(name, -1)):
            raise ExecutionError(
                f"shape {values.shape} does not match buffer {name!r} across "
                f"{self.world_size} ranks"
            )
        for rank in range(self.world_size):
            self.array(rank, name)[:] = values[rank]

    @property
    def symmetric_buffers(self) -> dict[str, int]:
        """Name -> element count of every symmetric (user) buffer."""
        return dict(self._symmetric)
