"""Functional interpreter for lowered schedules.

Executes every :class:`~repro.core.schedule.P2POp` against real numpy buffers
in a :class:`~repro.simulator.process.MemoryPool`, in an order consistent
with the dependency graph.  This is the *correctness* half of the simulator:
after execution, tests compare buffer contents against numpy references for
each collective.

Ops are stored in uid order, and the builder guarantees every dependency
points backward, so uid order is one valid linearization.  For dependency-
completeness testing the executor can also run any other topological order
(``order=...``), which must produce identical results if and only if the
schedule's dependencies capture every conflict — a property the test suite
exercises with randomized linearizations.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import accumulate
from ..core.schedule import Schedule
from ..errors import ExecutionError
from .process import MemoryPool


def materialize_scratch(schedule: Schedule, pool: MemoryPool) -> None:
    """Allocate the schedule's scratch buffers in the pool."""
    for name, per_rank in schedule.scratch.items():
        for rank, count in per_rank.items():
            pool.ensure_scratch(name, rank, count)


def execute(schedule: Schedule, pool: MemoryPool, order=None) -> None:
    """Run the schedule's data movement on the pool.

    ``order`` optionally supplies an alternative linearization (sequence of
    uids); it is validated to be topological before running.
    """
    materialize_scratch(schedule, pool)
    ops = schedule.ops
    if order is None:
        sequence = ops
    else:
        order = list(order)
        if sorted(order) != list(range(len(ops))):
            raise ExecutionError("order must be a permutation of all op uids")
        done: set[int] = set()
        for uid in order:
            if any(dep not in done for dep in ops[uid].deps):
                raise ExecutionError(
                    f"order is not topological: op {uid} runs before a dependency"
                )
            done.add(uid)
        sequence = [ops[uid] for uid in order]

    for op in sequence:
        src = pool.slice(op.src, op.src_buf, op.src_off, op.count)
        dst = pool.slice(op.dst, op.dst_buf, op.dst_off, op.count)
        if op.reduce_op is None:
            dst[...] = src
        else:
            accumulate(op.reduce_op, dst, src)


def random_topological_order(schedule: Schedule, rng: np.random.Generator) -> list[int]:
    """A uniformly-shuffled valid linearization (for dependency testing)."""
    ops = schedule.ops
    indegree = [len(op.deps) for op in ops]
    dependents: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for dep in op.deps:
            dependents[dep].append(op.uid)
    ready = [uid for uid, deg in enumerate(indegree) if deg == 0]
    order: list[int] = []
    while ready:
        idx = int(rng.integers(len(ready)))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        uid = ready.pop()
        order.append(uid)
        for nxt in dependents[uid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(ops):
        raise ExecutionError("schedule contains a dependency cycle")
    return order


def critical_path_length(schedule: Schedule) -> int:
    """Longest dependency chain (op count) — a latency proxy used in tests."""
    depth: dict[int, int] = {}
    for op in schedule.ops:  # uid order: deps resolved before use
        depth[op.uid] = 1 + max((depth[d] for d in op.deps), default=0)
    return max(depth.values(), default=0)
