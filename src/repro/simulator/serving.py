"""Streaming replay engine: price a plan once, replay it per arrival.

Serving traffic is a stream of small, latency-bound requests, each running
one of a handful of distinct plans.  Mapping ``simulate_workload`` over
every arrival re-prices, re-merges, and re-heaps the same schedule
thousands of times; this module amortizes all of that.  Each distinct
``(plan, size-class, group)`` becomes a :class:`ReplayTemplate`: its
schedule is lowered and priced exactly once
(:func:`~repro.simulator.timing.price_schedule_columns`), simulated once
through the exact event engine at time zero, and compiled into a *replay
program* — the realized per-resource booking order is recorded as
serialization edges next to the dependency edges, and the augmented graph
is leveled.  Every arrival at time ``t`` then re-evaluates that program
with one vectorized level sweep at ``ready = t`` onto shared per-resource
calendars.

**Why the replayed times are the event engine's times.**  Given that the
event engine makes the same *decisions* (the same per-resource booking
order and the same blocking relations), every realized op start is a pure
float ``max`` over its dependency completions and the booking ends of its
resource predecessors, and ``max`` is exact — no rounding, order
irrelevant.  Completions and booking ends are then single sums evaluated
in the engine's own association order (``((start + alpha) + transfer) +
gamma`` and ``start + occupancy``).  The replay program evaluates exactly
these expressions, so identical decisions imply bit-identical times.
The program is verified at build time: evaluating it at ``t = 0`` must
reproduce the event engine's realized starts and completions float for
float, or the template is marked non-replayable and every arrival falls
back.

**Replay certificate.**  Decisions are a function of how the op-ready and
resource-free instants interleave, and shifting a schedule to ``t`` does
not shift float timestamps exactly — orderings within rounding distance
of a tie could flip.  An arrival's sweep is therefore *certified* before
acceptance:

1. **Order-pattern check** (within the request): on every resource, each
   consecutive pair of the realized booking order must either stay exactly
   glued (zero gap at build time and zero gap now — a contended hand-off
   the engine reproduces by construction) or stay separated by at least a
   drift margin of ``REPLAY_MARGIN_ULPS`` ulps of the epoch horizon, which
   dominates the worst-case rounding drift a time shift can introduce.
   Gaps that change category mean the engine could reorder — reject.
2. **Frontier check** (across requests): on every resource the template
   touches, its earliest booking must start strictly after the calendar
   frontier — the latest booking end any earlier request of the current
   epoch placed there.  Earlier requests then provably cannot delay,
   reorder, or be delayed by this one, so the merged event engine realizes
   exactly the isolated replay.

Whenever either check fails — real contention — the engine falls back to
the exact event engine (the same accept-or-fallback contract as the
levelized engine): it re-simulates the *entire epoch* through
:func:`~repro.simulator.engine.simulate_workload`, superseding the
tentative replay results (a contending arrival can change earlier
requests' latencies), rebuilds the frontier from the realized bookings,
and resumes replaying.

**Epochs.**  Arrivals must come in nondecreasing time order.  A new epoch
opens when an arrival lands strictly after every booking of the previous
one has ended (``t > epoch_end``): nothing earlier can interact with it,
so the frontier resets and earlier results become final.  Per-request
latencies are float-for-float identical to one brute-force
``simulate_workload`` over the merged job set of the whole trace
(:mod:`tests.sim` locks this down differentially); resource busy totals
may differ from the event engine's in the last ulp (replay folds
per-template subtotals in template order, the event loop accumulates
chronologically), which is why the exactness guarantee is stated for
latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import JobSpec, simulate, simulate_workload
from .level import graph_leveling
from .timing import booking_columns, decode_resource, price_schedule_columns

#: Drift margin of the order-pattern check, in ulps of the epoch horizon.
#: A time shift perturbs every replayed instant by at most a few ulps per
#: addition along its critical chain; 4096 ulps comfortably dominates the
#: deepest committed templates while staying far below real scheduling
#: gaps (machine-model op times are 1e-7 s and up).
REPLAY_MARGIN_ULPS = 4096.0


@dataclass(frozen=True)
class ReplayProgram:
    """Compiled replay of one schedule: augmented graph + realized order.

    Everything lives in *level order* — ops permuted so each augmented
    level is a contiguous slice, bookings likewise — which keeps the
    per-arrival sweep on slice views instead of fancy indexing.  The value
    vector of a sweep holds op completions at ``[0, n)`` and booking ends
    at ``[n, n + k)``; ``level_plan`` drives the sweep, the ``cert_*`` /
    ``front_*`` arrays index certificate and frontier reads directly in
    level space, and the ``fb_*`` arrays keep the original op-uid view the
    fallback path needs to digest merged event-engine timings.
    """

    n: int  # ops
    k: int  # bookings
    alpha: np.ndarray  # (n,) level-ordered
    transfer: np.ndarray  # (n,) level-ordered
    gamma: np.ndarray  # (n,) level-ordered
    book_src: np.ndarray  # (k,) level-space op position of each booking
    book_occ: np.ndarray  # (k,) level-ordered occupancy (overhead + dur)
    #: One entry per non-empty level: ``(a, b, wp, gather, excl, ba, bb)``
    #: — ops ``[a:b)`` and bookings ``[ba:bb)`` of the level, ``wp`` the
    #: ops with predecessors, ``gather``/``excl`` their flattened
    #: predecessor value indices with exclusive segment offsets.
    level_plan: tuple
    cert_next: np.ndarray  # (P,) start index of each realized pair's later op
    cert_prev: np.ndarray  # (P,) end index of each realized pair's earlier booking
    glue0: np.ndarray  # (P,) True where the realized pair had zero gap
    front_min: np.ndarray  # (m,) start index of each segment's first booking
    front_max: np.ndarray  # (m,) end index of each segment's last booking
    seg_rid: np.ndarray  # (m,) resource id per segment
    seg_busy: np.ndarray  # (m,) per-resource busy seconds (t-independent)
    fb_book_op: np.ndarray  # (k,) original op uid per original booking
    fb_book_occ: np.ndarray  # (k,) occupancy per original booking
    fb_ord: np.ndarray  # (k,) original bookings in realized order
    fb_seg_first: np.ndarray  # (m,) segment starts, indices into ``fb_ord``
    span: float  # isolated makespan (finish - start at t = 0)

    def evaluate(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """One vectorized level sweep at ``ready = t``.

        Returns ``(start, values)`` in level space: per-op starts, and the
        value vector carrying completions at ``[0, n)`` and booking ends
        at ``[n, n + k)`` — all in the event engine's own float
        expressions (see the module docstring for why that makes them
        bit-identical whenever the engine's decisions match).
        """
        n = self.n
        values = np.empty(n + self.k)
        start = np.full(n, t)
        for a, b, wp, gather, excl, ba, bb in self.level_plan:
            if wp.size:
                start[wp] = np.maximum(
                    t, np.maximum.reduceat(values[gather], excl))
            # The event engine's exact association: ((s + alpha) + tr) + gamma.
            np.add(start[a:b], self.alpha[a:b], out=values[a:b])
            values[a:b] += self.transfer[a:b]
            values[a:b] += self.gamma[a:b]
            if bb > ba:
                np.add(start[self.book_src[ba:bb]], self.book_occ[ba:bb],
                       out=values[n + ba:n + bb])
        return start, values

    def certify_order(self, start: np.ndarray, values: np.ndarray,
                      horizon: float) -> bool:
        """True iff the realized booking order provably survives the shift.

        Checks every consecutive pair of the per-resource realized order:
        exactly-glued pairs must stay exactly glued, separated pairs must
        stay separated by the drift margin (see the module docstring).
        """
        if self.cert_prev.size == 0:
            return True
        gap = start[self.cert_next] - values[self.n + self.cert_prev]
        margin = REPLAY_MARGIN_ULPS * np.spacing(horizon)
        return bool(np.all(np.where(self.glue0, gap == 0.0, gap >= margin)))


@dataclass(frozen=True)
class ReplayTemplate:
    """One distinct (plan, size-class, group), priced and compiled once."""

    name: str
    schedule: object
    libraries: tuple
    elem_bytes: int
    program: ReplayProgram | None  # None: template always falls back

    @property
    def replayable(self) -> bool:
        """False when the template can only go through the event engine."""
        return self.program is not None

    def spec(self, offset: float, name: str = "") -> JobSpec:
        """A ``simulate_workload`` job of this template launched at ``offset``."""
        return JobSpec(schedule=self.schedule, libraries=self.libraries,
                       elem_bytes=self.elem_bytes, offset=offset,
                       name=name or self.name)


def _compile_program(schedule, machine, libraries,
                     elem_bytes: int) -> ReplayProgram | None:
    """Price, simulate at zero, and compile; ``None`` when not replayable."""
    cols = price_schedule_columns(schedule, machine, libraries, elem_bytes)
    n = len(cols)
    if n == 0:
        return None
    event = simulate(schedule, machine, libraries, elem_bytes,
                     engine="event")
    start0 = np.asarray(event.start_times)
    comp0 = np.asarray(event.completion_times)

    static = booking_columns(cols)
    book_op = np.repeat(np.arange(n, dtype=np.int64),
                        static.slots)[static.mask]
    book_occ = static.occ
    k = book_op.size

    # Realized order: per resource, bookings sorted by realized start with
    # uid as the deterministic tiebreak (the engine breaks ties by uid).
    ordered = np.lexsort((book_op, start0[book_op], static.rid))
    rid_sorted = static.rid[ordered]
    if k:
        firsts = np.flatnonzero(np.diff(rid_sorted) != 0) + 1
        seg_first = np.concatenate(([0], firsts))
        seg_last = np.concatenate((firsts - 1, [k - 1]))
    else:
        seg_first = seg_last = np.zeros(0, dtype=np.int64)
    seg_rid = rid_sorted[seg_first] if k else np.zeros(0, dtype=np.int64)
    seg_busy = np.add.reduceat(book_occ[ordered], seg_first) if k \
        else np.zeros(0)

    # Serialization edges: booking ord[i] -> op of booking ord[i + 1]
    # within each resource segment.
    inner = np.ones(max(k - 1, 0), dtype=bool)
    if seg_rid.size > 1:
        inner[seg_last[:-1]] = False
    pair_prev = ordered[:-1][inner] if k > 1 else np.zeros(0, dtype=np.int64)
    pair_next = ordered[1:][inner] if k > 1 else np.zeros(0, dtype=np.int64)

    # Augmented predecessor rows: dependency completions + booking ends.
    rows: list[list[int]] = [[] for _ in range(n)]
    indptr = schedule.dep_indptr
    indices = schedule.dep_indices
    for j in range(n):
        rows[j].extend(int(d) for d in indices[indptr[j]:indptr[j + 1]])
    for b_prev, b_next in zip(pair_prev.tolist(), pair_next.tolist()):
        rows[int(book_op[b_next])].append(n + b_prev)

    # Level the augmented *op* graph (serialization edges collapse to
    # op -> op for leveling purposes).
    level_rows = [
        [src if src < n else int(book_op[src - n]) for src in row]
        for row in rows
    ]
    _, _, leveling = graph_leveling([tuple(r) for r in level_rows], n)
    if leveling is None:
        return None
    levels, depth = leveling

    # Level-order permutations: ``perm`` maps level position -> op uid,
    # ``pos`` op uid -> level position; likewise for bookings.
    perm = np.argsort(levels, kind="stable")
    pos = np.empty(n, dtype=np.int64)
    pos[perm] = np.arange(n, dtype=np.int64)
    op_bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(levels, minlength=depth))))
    book_levels = levels[book_op]
    bperm = np.argsort(book_levels, kind="stable")
    bpos = np.empty(k, dtype=np.int64)
    bpos[bperm] = np.arange(k, dtype=np.int64)
    book_bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(book_levels, minlength=depth))))

    lens = np.fromiter((len(r) for r in rows), np.int64, n)
    level_plan = []
    for lvl in range(depth):
        a, b = int(op_bounds[lvl]), int(op_bounds[lvl + 1])
        if a == b:
            continue
        uids = perm[a:b]
        withpreds = uids[lens[uids] > 0]
        if withpreds.size:
            # reduceat cannot express empty segments, hence the filter.
            cnt = lens[withpreds]
            excl = np.cumsum(cnt) - cnt
            gather = np.fromiter(
                (pos[src] if src < n else n + bpos[src - n]
                 for uid in withpreds.tolist() for src in rows[uid]),
                np.int64, int(cnt.sum()))
        else:
            gather = excl = np.zeros(0, dtype=np.int64)
        level_plan.append((a, b, pos[withpreds], gather, excl,
                           int(book_bounds[lvl]), int(book_bounds[lvl + 1])))

    ends0 = start0[book_op] + book_occ
    glue0 = (start0[book_op[pair_next]] - ends0[pair_prev]) == 0.0

    program = ReplayProgram(
        n=n, k=k, alpha=cols.alpha[perm], transfer=cols.transfer_time()[perm],
        gamma=cols.gamma[perm], book_src=pos[book_op[bperm]],
        book_occ=book_occ[bperm], level_plan=tuple(level_plan),
        cert_next=pos[book_op[pair_next]], cert_prev=bpos[pair_prev],
        glue0=glue0,
        front_min=pos[book_op[ordered[seg_first]]],
        front_max=bpos[ordered[seg_last]],
        seg_rid=seg_rid, seg_busy=seg_busy,
        fb_book_op=book_op, fb_book_occ=book_occ, fb_ord=ordered,
        fb_seg_first=seg_first, span=float(event.elapsed),
    )
    # Build-time verification: the program at t = 0 must reproduce the
    # event engine bit for bit, else the serialization-edge model missed a
    # decision and the template may not replay.
    start, values = program.evaluate(0.0)
    if not (np.array_equal(start, start0[perm])
            and np.array_equal(values[:n], comp0[perm])):
        return None
    return program


def make_template(name: str, schedule, machine, libraries,
                  elem_bytes: int = 4) -> ReplayTemplate:
    """Price, simulate, verify, and compile ``schedule`` into a template."""
    if schedule.world_size != machine.world_size:
        raise ValueError(
            f"template {name!r}: schedule spans {schedule.world_size} ranks, "
            f"machine has {machine.world_size}")
    return ReplayTemplate(
        name=name, schedule=schedule, libraries=tuple(libraries),
        elem_bytes=int(elem_bytes),
        program=_compile_program(schedule, machine, libraries, elem_bytes),
    )


@dataclass(frozen=True)
class RequestTiming:
    """Final timing of one served request on the shared timeline."""

    index: int  # submission order
    template: str
    arrival: float  # request arrival (gate-open) time, seconds
    start: float  # == arrival (requests start the moment they arrive)
    finish: float  # last-op completion
    latency: float  # finish - arrival
    engine: str  # "replay", or the merged engine ("event"/"level")


@dataclass
class ReplayStats:
    """Counters of one streaming run (how often the fast path held)."""

    arrivals: int = 0
    accepted: int = 0  # certificate accepts at attempt time
    rejected: int = 0  # certificate rejections (order pattern or frontier)
    fallbacks: int = 0  # merged event-engine simulations run
    merged_requests: int = 0  # requests whose *final* result is merged
    replayed: int = 0  # requests whose final result came from a replay
    epochs: int = 0

    def as_dict(self) -> dict:
        """JSON-safe counter dict (for benchmarks and the CLI)."""
        return {
            "arrivals": self.arrivals, "accepted": self.accepted,
            "rejected": self.rejected, "fallbacks": self.fallbacks,
            "merged_requests": self.merged_requests,
            "replayed": self.replayed, "epochs": self.epochs,
        }


@dataclass(frozen=True)
class ServingTimingResult:
    """Outcome of a streaming run: per-request timings plus counters."""

    requests: tuple[RequestTiming, ...]
    resource_busy: dict
    stats: ReplayStats

    def latencies(self) -> np.ndarray:
        """Per-request latencies in submission order."""
        return np.array([r.latency for r in self.requests])


@dataclass
class _Pending:
    """One not-yet-final epoch member (tentative until the epoch closes)."""

    index: int
    template_index: int
    arrival: float


class ServingEngine:
    """Shared resource calendars serving a stream of template arrivals.

    Submit arrivals in nondecreasing time order with :meth:`submit`; call
    :meth:`finish` to close the last epoch and collect the results.  See
    the module docstring for the certificate and fallback contract.
    """

    def __init__(self, machine, templates, fallback_engine: str = "auto"):
        """Build the shared frontier over ``templates``' resource ids."""
        self.machine = machine
        self.templates = list(templates)
        self.fallback_engine = fallback_engine
        rids = [t.program.seg_rid for t in self.templates
                if t.program is not None and t.program.seg_rid.size]
        self._slot_rids = (np.unique(np.concatenate(rids)) if rids
                           else np.zeros(0, dtype=np.int64))
        # Per-template gather indices: segment -> global frontier slot.
        self._slot_idx = [
            np.searchsorted(self._slot_rids, t.program.seg_rid)
            if t.program is not None else np.zeros(0, dtype=np.int64)
            for t in self.templates
        ]
        self._frontier = np.full(self._slot_rids.size, -np.inf)
        self._busy: dict = {}
        self._epoch_busy_arr = np.zeros(self._slot_rids.size)
        self._epoch_busy_dict: dict = {}
        self._epoch: list[_Pending] = []
        self._epoch_end = -np.inf
        self._last_t = -np.inf
        self._records: list[RequestTiming | None] = []
        self.stats = ReplayStats()
        self._finished = False

    # ------------------------------------------------------------- epochs
    def _close_epoch(self) -> None:
        """Finalize the current epoch: fold busy totals, reset the frontier."""
        if not self._epoch:
            return
        self.stats.epochs += 1
        for i in np.flatnonzero(self._epoch_busy_arr):
            key = decode_resource(int(self._slot_rids[i]))
            self._busy[key] = (self._busy.get(key, 0.0)
                               + float(self._epoch_busy_arr[i]))
        for key, value in self._epoch_busy_dict.items():
            self._busy[key] = self._busy.get(key, 0.0) + value
        self._epoch_busy_arr[:] = 0.0
        self._epoch_busy_dict = {}
        self._epoch = []
        self._frontier.fill(-np.inf)
        self._epoch_end = -np.inf

    # ------------------------------------------------------------- replay
    def _attempt_replay(self, k: int, t: float) -> RequestTiming | None:
        """Sweep one arrival at ``ready = t`` and certify it; None = fall back."""
        tmpl = self.templates[k]
        prog = tmpl.program
        start, values = prog.evaluate(t)
        if not prog.certify_order(start, values, t + prog.span):
            return None
        slot_idx = self._slot_idx[k]
        seg_min = start[prog.front_min]
        if not np.all(seg_min > self._frontier[slot_idx]):
            return None
        # Accepted: within a segment ends are nondecreasing (each booking
        # starts at or after its predecessor's end), so the last booking
        # carries the segment's max end.
        seg_max = values[prog.n + prog.front_max]
        self._frontier[slot_idx] = np.maximum(self._frontier[slot_idx],
                                              seg_max)
        if seg_max.size:
            self._epoch_end = max(self._epoch_end, float(seg_max.max()))
        self._epoch_busy_arr[slot_idx] += prog.seg_busy
        finish = float(values[:prog.n].max())
        return RequestTiming(index=-1, template=tmpl.name, arrival=t,
                             start=t, finish=finish, latency=finish - t,
                             engine="replay")

    # ----------------------------------------------------------- fallback
    def _fallback(self) -> None:
        """Re-simulate the whole epoch exactly; supersede tentative results.

        A contending arrival can change *earlier* epoch members' latencies,
        so every epoch result stays tentative until the epoch closes; the
        merged simulation is authoritative for all of them.  The frontier
        and epoch horizon are rebuilt from the realized bookings so later
        arrivals can resume the fast path.
        """
        specs = [self.templates[p.template_index].spec(p.arrival,
                                                       f"req{p.index}")
                 for p in self._epoch]
        timing = simulate_workload(specs, self.machine,
                                   engine=self.fallback_engine)
        self.stats.fallbacks += 1
        self._frontier.fill(-np.inf)
        self._epoch_end = -np.inf
        self._epoch_busy_arr[:] = 0.0
        self._epoch_busy_dict = dict(timing.resource_busy)
        for pending, job in zip(self._epoch, timing.jobs):
            tmpl = self.templates[pending.template_index]
            self._records[pending.index] = RequestTiming(
                index=pending.index, template=tmpl.name,
                arrival=pending.arrival, start=job.start, finish=job.finish,
                latency=job.elapsed, engine=timing.engine)
            if job.finish > self._epoch_end:
                self._epoch_end = job.finish
            prog = tmpl.program
            if prog is None or not prog.k:
                continue
            # Contention may have reordered bookings within a segment, so
            # take the max end per segment rather than trusting the order.
            starts = np.asarray(job.op_start_times)
            ends = (starts[prog.fb_book_op] + prog.fb_book_occ)[prog.fb_ord]
            seg_max = np.maximum.reduceat(ends, prog.fb_seg_first)
            idx = self._slot_idx[pending.template_index]
            self._frontier[idx] = np.maximum(self._frontier[idx], seg_max)
            self._epoch_end = max(self._epoch_end, float(ends.max()))

    # ---------------------------------------------------------------- api
    def submit(self, template_index: int, t) -> int:
        """Serve one arrival of ``templates[template_index]`` at time ``t``.

        Arrivals must be submitted in nondecreasing time order.  Returns
        the request's submission index; its timing is available from
        :meth:`finish` (results stay tentative until their epoch closes).
        """
        if self._finished:
            raise RuntimeError("ServingEngine.finish() was already called")
        t = float(t)
        if t < self._last_t:
            raise ValueError(
                f"arrivals must be nondecreasing: got {t} after {self._last_t}")
        self._last_t = t
        if self._epoch and t > self._epoch_end:
            self._close_epoch()
        index = len(self._records)
        self._records.append(None)
        self._epoch.append(_Pending(index=index, template_index=template_index,
                                    arrival=t))
        self.stats.arrivals += 1
        tmpl = self.templates[template_index]
        record = self._attempt_replay(template_index, t) if tmpl.replayable \
            else None
        if record is not None:
            self.stats.accepted += 1
            self._records[index] = RequestTiming(
                index=index, template=record.template, arrival=record.arrival,
                start=record.start, finish=record.finish,
                latency=record.latency, engine=record.engine)
        else:
            if tmpl.replayable:
                self.stats.rejected += 1
            self._fallback()
        return index

    def finish(self) -> ServingTimingResult:
        """Close the last epoch and return every request's final timing."""
        if not self._finished:
            self._close_epoch()
            self._finished = True
        records = tuple(self._records)  # type: ignore[arg-type]
        self.stats.replayed = sum(1 for r in records if r.engine == "replay")
        self.stats.merged_requests = len(records) - self.stats.replayed
        return ServingTimingResult(requests=records,
                                   resource_busy=dict(self._busy),
                                   stats=self.stats)
