"""Discrete-event + functional simulation substrate."""

from .engine import TimingResult, simulate
from .executor import critical_path_length, execute, materialize_scratch, random_topological_order
from .process import MemoryPool
from .timing import PricedOp, price_op, price_ops
from .trace import (
    TraceEvent,
    ascii_gantt,
    build_trace,
    chrome_trace,
    resource_timeline,
    utilization_report,
)

__all__ = [
    "MemoryPool",
    "PricedOp",
    "TimingResult",
    "critical_path_length",
    "execute",
    "materialize_scratch",
    "price_op",
    "price_ops",
    "random_topological_order",
    "simulate",
    "TraceEvent",
    "ascii_gantt",
    "build_trace",
    "chrome_trace",
    "resource_timeline",
    "utilization_report",
]
