"""Discrete-event + levelized-batch + functional simulation substrate."""

from .engine import (
    ENGINES,
    JobSpec,
    TimingResult,
    WorkloadTimingResult,
    busy_gigabytes,
    simulate,
    simulate_sweep,
    simulate_workload,
)
from .executor import critical_path_length, execute, materialize_scratch, random_topological_order
from .process import MemoryPool
from .timing import (
    PricedColumns,
    PricedOp,
    price_op,
    price_ops,
    price_schedule,
    price_schedule_columns,
    price_schedule_sweep,
)
from .trace import (
    TraceEvent,
    ascii_gantt,
    build_trace,
    chrome_trace,
    resource_timeline,
    utilization_report,
)

__all__ = [
    "ENGINES",
    "JobSpec",
    "MemoryPool",
    "PricedColumns",
    "PricedOp",
    "TimingResult",
    "WorkloadTimingResult",
    "busy_gigabytes",
    "critical_path_length",
    "execute",
    "materialize_scratch",
    "price_op",
    "price_ops",
    "price_schedule",
    "price_schedule_columns",
    "price_schedule_sweep",
    "random_topological_order",
    "simulate",
    "simulate_sweep",
    "simulate_workload",
    "TraceEvent",
    "ascii_gantt",
    "build_trace",
    "chrome_trace",
    "resource_timeline",
    "utilization_report",
]
