"""Analytic performance model and throughput bounds."""

from .bounds import (
    BOUND_KIND,
    EmpiricalBounds,
    achievable_bound,
    binding_utilization,
    empirical_bounds,
    measure_bidirectional,
    measure_intra_node,
    measure_unidirectional,
    theoretical_bound,
)
from .perf_model import (
    ModelParams,
    optimal_pipeline_depth,
    ring_asymptote,
    t_ring,
    t_tree,
    tree_asymptote,
)

__all__ = [
    "BOUND_KIND",
    "EmpiricalBounds",
    "ModelParams",
    "achievable_bound",
    "binding_utilization",
    "empirical_bounds",
    "measure_bidirectional",
    "measure_intra_node",
    "measure_unidirectional",
    "optimal_pipeline_depth",
    "ring_asymptote",
    "t_ring",
    "t_tree",
    "theoretical_bound",
    "tree_asymptote",
]
