"""Analytic performance model (Section 4.6, Equations 1-2).

For a Broadcast pipelined over ``m`` channels across ``n`` conceptual nodes
with ``k`` NICs of ``f`` GB/s each and message length ``d`` bytes:

.. math::

    t_{ring} = (alpha + d / (k f m)) (n + m - 2) + O(d/m)

    t_{tree} = (alpha m + d / (k f)) \\log_2 n + O(d/m)

Asymptotically (``m -> inf``, ``alpha = 0``) the ring costs ``d/(kf)``
independent of node count — O(1) — while the tree pays a ``log n`` factor,
which is why the paper's ring Broadcast is ~2x faster on four nodes
(Section 6.3.4) and why Figure 10's ring-pipelined All-reduce scales flat.

The intra-node term is modeled as ``c_intra * d / m``: pipelining hides all
but one channel's worth of intra-node traffic (Figure 7's red stages).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ModelParams:
    """Inputs of Equations (1)-(2)."""

    alpha: float  # per-message latency, seconds
    nic_count: int  # k
    nic_bandwidth: float  # f, GB/s
    nodes: int  # n
    pipeline: int  # m
    intra_coefficient: float = 0.0  # c_intra: residual intra-node seconds/GB


def t_ring(d_bytes: float, p: ModelParams) -> float:
    """Equation (1): pipelined ring broadcast time in seconds."""
    if p.pipeline < 1 or p.nodes < 1:
        raise ValueError("pipeline depth and node count must be >= 1")
    kf = p.nic_count * p.nic_bandwidth * 1.0e9  # bytes/s
    per_channel = p.alpha + d_bytes / (kf * p.pipeline)
    stages = p.nodes + p.pipeline - 2
    intra = p.intra_coefficient * (d_bytes / 1.0e9) / p.pipeline
    return per_channel * max(stages, 1) + intra


def t_tree(d_bytes: float, p: ModelParams) -> float:
    """Equation (2): pipelined tree broadcast time in seconds."""
    if p.pipeline < 1 or p.nodes < 1:
        raise ValueError("pipeline depth and node count must be >= 1")
    kf = p.nic_count * p.nic_bandwidth * 1.0e9
    depth = math.log2(p.nodes) if p.nodes > 1 else 0.0
    intra = p.intra_coefficient * (d_bytes / 1.0e9) / p.pipeline
    return (p.alpha * p.pipeline + d_bytes / kf) * max(depth, 0.0) + intra


def ring_asymptote(p: ModelParams) -> float:
    """GB/s of an infinitely deep, zero-latency ring: ``k f`` — O(1) in n."""
    return p.nic_count * p.nic_bandwidth


def tree_asymptote(p: ModelParams) -> float:
    """GB/s of an ideal tree: ``k f / log2 n`` — O(log n) in n."""
    depth = math.log2(p.nodes) if p.nodes > 1 else 1.0
    return p.nic_count * p.nic_bandwidth / max(depth, 1.0)


def optimal_pipeline_depth(d_bytes: float, p: ModelParams, topology: str = "ring",
                           candidates=(1, 2, 4, 8, 16, 32, 64, 128)) -> int:
    """Depth minimizing the model time — the paper's Section 6.4 trade-off.

    Deep pipelines shrink the per-stage payload until the latency term
    dominates (Figure 9's drooping small-message curves); shallow pipelines
    leave warm-up/wind-down stages exposed.
    """
    cost = t_ring if topology == "ring" else t_tree
    best = min(
        candidates,
        key=lambda m: cost(
            d_bytes,
            ModelParams(
                alpha=p.alpha,
                nic_count=p.nic_count,
                nic_bandwidth=p.nic_bandwidth,
                nodes=p.nodes,
                pipeline=m,
                intra_coefficient=p.intra_coefficient,
            ),
        ),
    )
    return best
