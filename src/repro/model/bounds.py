"""Throughput upper bounds (Table 3) and empirical in-simulator bounds.

**Theoretical bounds** (Table 3) depend only on the number of participating
GPUs ``p``, GPUs per node ``g``, NICs per node ``k``, and rated NIC
bandwidth ``f``:

================================  =======================
Collective                        Bound (GB/s)
================================  =======================
Broadcast / Reduce                ``k f``
Gather / Scatter /                ``k f p / (p - g)``
All-gather / Reduce-scatter
All-reduce                        ``k f p / (2 (p - g))``
All-to-all                        ``k f p / (g (p - g))``
================================  =======================

The *achievable* bound additionally multiplies in the NIC binding
utilization (Section 6.3.5): Aurora's 12-on-8 round-robin caps it at 75%.

**Empirical bounds** (the triangles of Figure 8) come from measuring the
fabric in isolation rather than trusting the spec sheet.  Here "isolation
measurement" means running minimal two-node uni/bidirectional exchange
schedules and an intra-node distribution schedule through the same event
engine the collectives use, so the bounds inherit the library envelopes and
binding effects exactly as the paper's microbenchmarks inherit the real
systems'.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import ScheduleBuilder
from ..machine.nic import utilization
from ..machine.spec import MachineSpec
from ..simulator.engine import simulate
from ..transport.library import Library

#: Payload (bytes) used for the empirical microbenchmarks.
_PROBE_BYTES = 1 << 28


def theoretical_bound(machine: MachineSpec, collective: str) -> float:
    """Table 3 upper bound in GB/s for ``collective`` on ``machine``."""
    p = machine.world_size
    g = machine.gpus_per_node
    kf = machine.nic_count * machine.nic_bandwidth
    if machine.nodes < 2:
        return float("inf")  # no network crossing; intra-node only
    remote = p - g
    table = {
        "broadcast": kf,
        "reduce": kf,
        "gather": kf * p / remote,
        "scatter": kf * p / remote,
        "all_gather": kf * p / remote,
        "reduce_scatter": kf * p / remote,
        "all_reduce": kf * p / (2 * remote),
        "all_to_all": kf * p / (g * remote),
    }
    return table[collective]


def achievable_bound(machine: MachineSpec, collective: str) -> float:
    """Theoretical bound scaled by the NIC-binding utilization ceiling."""
    util = utilization(machine.gpus_per_node, machine.nic_count, machine.binding)
    return theoretical_bound(machine, collective) * util


def binding_utilization(machine: MachineSpec) -> float:
    """Achievable fraction of aggregate NIC bandwidth under this binding."""
    return utilization(machine.gpus_per_node, machine.nic_count, machine.binding)


@dataclass(frozen=True)
class EmpiricalBounds:
    """In-simulator fabric microbenchmarks (Figure 8's triangle marks)."""

    unidirectional: float  # GB/s, node A -> node B, all GPUs striped
    bidirectional: float  # GB/s per direction during full exchange
    intra_node: float  # GB/s one GPU's payload distributed within a node


def _probe_elems(machine: MachineSpec, elem_bytes: int = 4) -> int:
    return max(1, _PROBE_BYTES // elem_bytes // machine.gpus_per_node)


def measure_unidirectional(machine: MachineSpec,
                           library: Library = Library.MPI) -> float:
    """All GPUs of node 0 send to their node-1 peers simultaneously."""
    if machine.nodes < 2:
        return float("inf")
    g = machine.gpus_per_node
    n = _probe_elems(machine)
    b = ScheduleBuilder(machine.world_size)
    for local in range(g):
        b.send(local, g + local, ("buf", 0), ("buf", 0), n, level=0, tag="uni")
    result = simulate(b.build(), machine, (library,), 4)
    return (g * n * 4 / 1.0e9) / result.elapsed


def measure_bidirectional(machine: MachineSpec,
                          library: Library = Library.MPI) -> float:
    """Nodes 0 and 1 exchange simultaneously; per-direction GB/s."""
    if machine.nodes < 2:
        return float("inf")
    g = machine.gpus_per_node
    n = _probe_elems(machine)
    b = ScheduleBuilder(machine.world_size)
    for local in range(g):
        b.send(local, g + local, ("buf", 0), ("buf", 0), n, level=0, tag="fwd")
        b.send(g + local, local, ("buf2", 0), ("buf2", 0), n, level=0, tag="rev")
    result = simulate(b.build(), machine, (library,), 4)
    return (g * n * 4 / 1.0e9) / result.elapsed


def measure_intra_node(machine: MachineSpec,
                       library: Library = Library.IPC) -> float:
    """GPU 0 distributes distinct chunks to every node peer (worst leaf stage)."""
    g = machine.gpus_per_node
    if g < 2:
        return float("inf")
    n = _probe_elems(machine)
    b = ScheduleBuilder(machine.world_size)
    for local in range(1, g):
        b.send(0, local, ("buf", 0), ("buf", 0), n, level=0, tag="intra")
    result = simulate(b.build(), machine, (library,), 4)
    return ((g - 1) * n * 4 / 1.0e9) / result.elapsed


def empirical_bounds(machine: MachineSpec,
                     inter_library: Library = Library.MPI,
                     intra_library: Library = Library.IPC) -> EmpiricalBounds:
    """Figure 8's triangles: isolated fabric measurements on this machine."""
    return EmpiricalBounds(
        unidirectional=measure_unidirectional(machine, inter_library),
        bidirectional=measure_bidirectional(machine, inter_library),
        intra_node=measure_intra_node(machine, intra_library),
    )


#: Which empirical bound gates each collective (Section 6.3.5): Gather and
#: Scatter bottleneck on a root node moving data in one direction; the rest
#: send and receive simultaneously.
BOUND_KIND = {
    "broadcast": "unidirectional",
    "reduce": "unidirectional",
    "gather": "unidirectional",
    "scatter": "unidirectional",
    "all_gather": "bidirectional",
    "reduce_scatter": "bidirectional",
    "all_reduce": "bidirectional",
    "all_to_all": "bidirectional",
}
