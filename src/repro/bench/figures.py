"""Data generators for every figure and table of the paper's evaluation.

Each ``figN_*`` function returns plain data (dicts / lists of
:class:`~repro.bench.runner.Measurement`) plus a ``render_*`` helper that
formats it as the text analogue of the paper's plot.  The pytest-benchmark
files under ``benchmarks/`` call these and print the rendered output, so
running ``pytest benchmarks/ --benchmark-only -s`` regenerates the entire
evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.ccl_like import ccl_collective
from ..core.communicator import Communicator
from ..core.composition import FIGURE8_ORDER
from ..machine.nic import binding_table, nic_loads, utilization
from ..machine.spec import MachineSpec
from ..machine.topology import TreeTopology
from ..model.bounds import (
    BOUND_KIND,
    achievable_bound,
    empirical_bounds,
    theoretical_bound,
)
from ..transport.library import Library
from .configs import (
    best_config,
    direct_config,
    hierarchical_config,
    pipelined_config,
    ring_config,
    striped_config,
    tree_config,
)
from .runner import Measurement, payload_count, run_baseline, run_hiccl

# --------------------------------------------------------------------- Fig 1
def fig1_broadcast_volume(nodes: int = 2, gpus_per_node: int = 3,
                          count: int = 1024) -> dict[str, dict[str, int]]:
    """Direct vs hierarchical broadcast volume (Figure 1).

    Returns inter/intra-node element volumes for both strategies; the direct
    strategy redundantly moves ``(p - g)`` copies across nodes while the
    hierarchical one moves exactly ``nodes - 1``.
    """
    from ..machine.machines import generic

    machine = generic(nodes, gpus_per_node, 1, name="fig1")
    out = {}
    for label, hierarchy, libs in (
        ("direct", [machine.world_size], [Library.MPI]),
        ("hierarchical", [nodes, gpus_per_node], [Library.MPI, Library.IPC]),
    ):
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_multicast(send, recv, count, 0, list(range(machine.world_size)))
        comm.init(hierarchy=hierarchy, library=libs)
        out[label] = comm.schedule.volume_by_kind(machine)
    return out


def render_fig1(data: dict[str, dict[str, int]], count: int = 1024) -> str:
    """Text rendering of Figure 1's volume comparison."""
    lines = ["Figure 1: broadcast volume across 2 nodes x 3 GPUs (units of d)"]
    for label, vols in data.items():
        inter = vols["inter-node"] / count
        intra = vols["intra-node"] / count
        lines.append(f"  {label:13s} inter-node={inter:.0f}d intra-node={intra:.0f}d")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 2
def fig2_bindings() -> list[dict]:
    """The three binding examples of Figure 2 with their utilizations."""
    cases = [
        ("packed", 3, 1, "a"),
        ("round-robin", 3, 2, "b"),
        ("bijective", 3, 3, "c"),
    ]
    out = []
    from ..machine.nic import Binding

    policy_of = {"packed": Binding.PACKED, "round-robin": Binding.ROUND_ROBIN,
                 "bijective": Binding.BIJECTIVE}
    for policy, g, k, panel in cases:
        pol = policy_of[policy]
        out.append({
            "panel": panel,
            "policy": policy,
            "g": g,
            "k": k,
            "table": binding_table(g, k, pol),
            "loads": nic_loads(g, k, pol),
            "utilization": utilization(g, k, pol),
        })
    return out


def render_fig2(data: list[dict]) -> str:
    """Text rendering of Figure 2's binding diagrams."""
    lines = ["Figure 2: GPU-to-NIC bindings"]
    for case in data:
        arrows = " ".join(f"g{g}->n{n}" for g, n in case["table"])
        lines.append(
            f"  ({case['panel']}) {case['policy']:12s} g={case['g']} k={case['k']}: "
            f"{arrows}  loads={case['loads']} util={case['utilization']:.0%}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 5
FIG5_FACTORIZATIONS = [
    ("a", [3, 8]),
    ("b", [4, 6]),
    ("c", [3, 2, 4]),
    ("d", [2, 2, 6]),
    ("e", [3, 2, 2, 2]),
    ("f", [2, 2, 2, 3]),
]


def fig5_trees() -> list[tuple[str, TreeTopology]]:
    """The six 24-GPU factorizations of Figure 5."""
    return [(panel, TreeTopology(factors, 24)) for panel, factors in FIG5_FACTORIZATIONS]


def render_fig5() -> str:
    """Text rendering of Figure 5's six tree structures."""
    lines = ["Figure 5: tree structures across 24 GPUs"]
    for panel, topo in fig5_trees():
        lines.append(f"({panel}) {topo.ascii_tree()}")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 6
def fig6_stage_counts(count: int = 1 << 12) -> dict[str, int]:
    """Stage counts of the striped tree (4) and striped ring (5) of Figure 6.

    12 GPUs as 4 nodes x 3 GPUs; broadcast from GPU 0 with stripe(3).
    """
    from ..machine.machines import generic

    machine = generic(4, 3, 1, name="fig6")
    out = {}
    for label, hierarchy, ring in (
        ("tree {2,2,3}", [2, 2, 3], 1),
        ("ring {4,3}", [4, 3], 4),
    ):
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_multicast(send, recv, count, 0, list(range(12)))
        comm.init(hierarchy=hierarchy,
                  library=[Library.MPI] * (len(hierarchy) - 1) + [Library.IPC],
                  ring=ring, stripe=3, pipeline=1)
        out[label] = comm.schedule.stage_count()
    return out


# --------------------------------------------------------------------- Fig 7
def fig7_matrices(count: int = 1 << 12) -> dict[str, dict]:
    """Hierarchical communication matrices of Figure 7 (bottom).

    (a) broadcast on {2,2,3} with {MPI, NCCL, IPC} and stripe(3);
    (b) broadcast on {4,3} + ring(4) with {NCCL, IPC} and stripe(3).
    Returns per-case the 12x12 volume matrix and the library label matrix.
    """
    from ..machine.machines import generic

    machine = generic(4, 3, 1, name="fig7")
    cases = {
        "tree": dict(hierarchy=[2, 2, 3],
                     library=[Library.MPI, Library.NCCL, Library.IPC],
                     ring=1, stripe=3, pipeline=5),
        "ring": dict(hierarchy=[4, 3],
                     library=[Library.NCCL, Library.IPC],
                     ring=4, stripe=3, pipeline=5),
    }
    out = {}
    for label, kwargs in cases.items():
        comm = Communicator(machine, materialize=False)
        send = comm.alloc(count, "sendbuf")
        recv = comm.alloc(count, "recvbuf")
        comm.add_multicast(send, recv, count, 0, list(range(12)))
        comm.init(**kwargs)
        out[label] = {
            "volume": comm.schedule.comm_matrix(),
            "library": comm.schedule.library_matrix(comm.plan.libraries),
        }
    return out


def render_fig7(matrices: dict[str, dict]) -> str:
    """Text rendering of Figure 7's communication matrices."""
    lines = ["Figure 7 (bottom): hierarchical communication matrices"]
    for label, mats in matrices.items():
        lines.append(f"  [{label}] sending GPU x receiving GPU (library initial)")
        lib = mats["library"]
        for src, row in enumerate(lib):
            cells = "".join((cell[0] if cell else ".") for cell in row)
            lines.append(f"    {src:2d} {cells}")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 8
#: Implementations shown per collective in Figure 8, in bar order.
FIG8_VARIANTS = ("mpi", "vendor", "direct", "hierarchical", "striped", "pipelined")


def fig8_points(machine: MachineSpec, payload_bytes: int = 1 << 29,
                collectives=FIGURE8_ORDER) -> list:
    """The Figure 8 measurement grid as sweep points, in bar order."""
    from .parallel import SweepPoint

    points = []
    for name in collectives:
        for family in ("mpi", "vendor"):
            points.append(SweepPoint(machine, name, family=family,
                                     payload_bytes=payload_bytes))
        for cfg_fn in (direct_config, hierarchical_config, striped_config):
            points.append(SweepPoint(machine, name, config=cfg_fn(machine),
                                     payload_bytes=payload_bytes))
        points.append(SweepPoint(machine, name, config=best_config(machine, name),
                                 payload_bytes=payload_bytes))
        # Broadcast/Reduce additionally show the tree-topology bar.
        if name in ("broadcast", "reduce"):
            points.append(SweepPoint(machine, name,
                                     config=pipelined_config(machine, "tree"),
                                     payload_bytes=payload_bytes))
    return points


def fig8_system(machine: MachineSpec, payload_bytes: int = 1 << 29,
                collectives=FIGURE8_ORDER, jobs: int = 1,
                cache_dir=None) -> list[Measurement]:
    """One panel of Figure 8: every collective x every implementation.

    ``jobs > 1`` fans the grid out to worker processes through
    :func:`repro.bench.parallel.run_sweep`; the row order is identical to the
    serial run (baselines a library does not offer are dropped either way).
    """
    from .parallel import run_sweep

    points = fig8_points(machine, payload_bytes, collectives)
    results = run_sweep(points, jobs=jobs, cache_dir=cache_dir)
    return [m for m in results if m is not None]


def fig8_bounds(machine: MachineSpec) -> dict[str, dict[str, float]]:
    """Theoretical frames + empirical triangles per collective."""
    from .configs import INTER_LIBRARY

    inter = INTER_LIBRARY.get(machine.name, Library.MPI)
    emp = empirical_bounds(machine, inter_library=inter)
    out = {}
    for name in FIGURE8_ORDER:
        kind = BOUND_KIND[name]
        out[name] = {
            "theoretical": theoretical_bound(machine, name),
            "achievable": achievable_bound(machine, name),
            "empirical": getattr(emp, kind.replace("-", "_")),
            "empirical_kind": kind,
            "intra_node": emp.intra_node,
        }
    return out


def render_fig8(machine: MachineSpec, rows: list[Measurement],
                bounds: dict[str, dict[str, float]]) -> str:
    """Text rendering of one Figure 8 panel (bars + bound frames)."""
    by_coll: dict[str, list[Measurement]] = {}
    for m in rows:
        by_coll.setdefault(m.collective, []).append(m)
    lines = [
        f"Figure 8 ({machine.name}): peak collective throughput, GB/s "
        f"({machine.describe()})"
    ]
    for name in FIGURE8_ORDER:
        if name not in by_coll:
            continue
        b = bounds[name]
        lines.append(
            f"  {name} [theoretical {b['theoretical']:.1f}, achievable "
            f"{b['achievable']:.1f}, empirical({b['empirical_kind']}) "
            f"{b['empirical']:.1f}]"
        )
        for m in by_coll[name]:
            bar = "#" * max(1, int(m.throughput / max(b["achievable"], 1e-9) * 40))
            lines.append(f"    {m.implementation:18s} {m.throughput:8.2f}  {bar}")
    return "\n".join(lines)


# --------------------------------------------------------------------- Fig 9
FIG9_CASES = {
    # (collective, topology): Figure 9's four panels on Perlmutter.
    "gather": "tree",
    "scatter": "tree",
    "broadcast": "ring",
    "reduce": "ring",
}

FIG9_DEPTHS = (1, 2, 4, 8, 16, 32, 64, 128)


def fig9_curves(machine: MachineSpec, collective: str,
                payloads_bytes=None,
                depths=FIG9_DEPTHS) -> dict[int, list[Measurement]]:
    """Throughput vs buffer size for each pipeline depth (one Fig 9 panel)."""
    if payloads_bytes is None:
        payloads_bytes = [1 << s for s in range(14, 31, 2)]  # 16 KB .. 1 GB
    topology = FIG9_CASES[collective]
    out: dict[int, list[Measurement]] = {}
    for m_depth in depths:
        if topology == "ring":
            cfg = ring_config(machine, pipeline=m_depth)
        else:
            cfg = tree_config(machine, pipeline=m_depth)
        out[m_depth] = [
            run_hiccl(machine, collective, cfg, payload_bytes=pb,
                      warmup=0, rounds=1)
            for pb in payloads_bytes
        ]
    return out


def fig9_references(machine: MachineSpec, collective: str,
                    payloads_bytes) -> dict[str, list[Measurement]]:
    """MPICH and NCCL (or NCCL-p2p) reference curves for a Fig 9 panel."""
    out: dict[str, list[Measurement]] = {"mpich": [], "nccl": []}
    for pb in payloads_bytes:
        m = run_baseline(machine, collective, "mpi", payload_bytes=pb,
                         warmup=0, rounds=1)
        if m:
            out["mpich"].append(m)
        count = payload_count(machine, pb)
        try:
            vrun = ccl_collective(machine, collective, count,
                                  materialize=False, include_p2p=True)
        except Exception:
            continue
        seconds = vrun.measure(warmup=0, rounds=1)
        out["nccl"].append(Measurement(machine.name, collective, "nccl",
                                       count * machine.world_size * 4, seconds))
    return out


def render_fig9(collective: str, curves: dict[int, list[Measurement]]) -> str:
    """Text rendering of one Figure 9 panel (GB/s by size and depth)."""
    lines = [f"Figure 9 ({collective}, {FIG9_CASES[collective]}): GB/s by "
             "buffer size (rows) and pipeline depth m (columns)"]
    depths = sorted(curves)
    payloads = [m.payload_bytes for m in curves[depths[0]]]
    header = f"{'payload':>10s}" + "".join(f"  m={d:<5d}" for d in depths)
    lines.append(header)
    for i, pb in enumerate(payloads):
        label = f"{pb / (1 << 20):.2g}MB" if pb < (1 << 30) else f"{pb / (1 << 30):.2g}GB"
        cells = "".join(f"{curves[d][i].throughput:8.2f}" for d in depths)
        lines.append(f"{label:>10s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------- Workload scenarios
def workload_scenarios_table(machine: MachineSpec,
                             payload_bytes: int | None = None,
                             names=None, jobs: int = 1) -> list:
    """Run the ML traffic scenario suite on one machine (workload layer).

    Returns one :class:`~repro.workloads.workload.WorkloadResult` per
    scenario, in registry order; ``names`` restricts the suite and ``jobs``
    fans whole scenarios out to worker processes (a single scenario always
    prices on one shared timeline in one process).
    """
    from ..workloads.scenarios import (
        DEFAULT_PAYLOAD_BYTES,
        applicable_scenarios,
        run_scenarios,
    )

    if payload_bytes is None:
        payload_bytes = DEFAULT_PAYLOAD_BYTES
    if names is None:
        names = applicable_scenarios(machine)
    return run_scenarios(names, machine, payload_bytes, jobs=jobs)


def render_workloads(machine: MachineSpec, results) -> str:
    """Text rendering of the scenario suite (the committed baseline format)."""
    lines = [
        f"Workload scenarios ({machine.name}): concurrent collectives on one "
        f"shared timeline ({machine.describe()})"
    ]
    for result in results:
        lines.append("")
        lines.append(result.render())
    return "\n".join(lines)


# ------------------------------------------------------- Simulation engines
def fig9_sweep_curves(machine: MachineSpec, collective: str,
                      payloads_bytes=None,
                      depths=FIG9_DEPTHS,
                      engine: str = "auto") -> dict[int, list[Measurement]]:
    """One Figure 9 panel priced as a payload *sweep* (one lowering per depth).

    Instead of re-composing and re-lowering the collective at every buffer
    size like :func:`fig9_curves`, each pipeline depth is lowered once at the
    largest payload and the rest of the x-axis comes from
    :func:`repro.simulator.engine.simulate_sweep` — the static pricing and
    (on the level engine) the leveling are shared across the whole grid.
    Grid points match :func:`fig9_curves` bit-for-bit whenever the lowered
    structure is payload-invariant, which holds for the committed Figure 9
    configurations' power-of-two sizes; ``benchmarks/`` keeps calling
    :func:`fig9_curves` so the committed baselines are independent of this
    path.
    """
    import numpy as np

    from ..core.composition import compose
    from ..simulator.engine import simulate_sweep

    if payloads_bytes is None:
        payloads_bytes = [1 << s for s in range(14, 31, 2)]  # 16 KB .. 1 GB
    topology = FIG9_CASES[collective]
    base_pb = max(payloads_bytes)
    base_count = payload_count(machine, base_pb)
    scales = tuple(pb / base_pb for pb in payloads_bytes)
    out: dict[int, list[Measurement]] = {}
    for m_depth in depths:
        if topology == "ring":
            cfg = ring_config(machine, pipeline=m_depth)
        else:
            cfg = tree_config(machine, pipeline=m_depth)
        comm = Communicator(machine, dtype=np.float32, materialize=False)
        compose(comm, collective, base_count)
        comm.init(**cfg.init_kwargs())
        results = simulate_sweep(comm.schedule, machine, comm.plan.libraries,
                                 4, scales, engine=engine)
        out[m_depth] = [
            Measurement(machine.name, collective, f"hiccl-{cfg.name}",
                        int(round(base_count * scale)) * machine.world_size * 4,
                        r.elapsed)
            for scale, r in zip(scales, results)
        ]
    return out


def pipeline_stage_schedule(machine: MachineSpec, microbatches: int = 4,
                            count: int = 1 << 20):
    """Dependency-chained pipeline-parallel traffic (one schedule, no fences
    crossed by concurrent flows).

    Per microbatch and node, the node's non-leader ranks reduce into the
    leader over an explicit chain of intra-node sends, and each leader then
    forwards the accumulated activation to the next node's leader — also
    chained on the previous stage's forward.  Every shared resource therefore
    carries at most one flow at a time, which is exactly the schedule class
    the levelized engine's optimistic certificate accepts; contended
    collectives (striping, tree fan-out) instead fall back to the event loop.
    Used by the engine benchmarks and the EXPERIMENTS event-vs-level table.
    """
    from ..core.ops import ReduceOp
    from ..core.schedule import ScheduleBuilder

    g = machine.gpus_per_node
    nodes = machine.world_size // g
    b = ScheduleBuilder(machine.world_size)
    for _mb in range(microbatches):
        prev_stage = None
        for node in range(nodes):
            leader = node * g
            prev = None
            for k in range(1, g):
                deps = (prev,) if prev is not None else ()
                prev = b.send(leader + k, leader, ("buf", 0), ("acc", 0),
                              count, deps=deps, level=1, tag="pp-gather",
                              reduce_op=ReduceOp.SUM)
            if node + 1 < nodes:
                deps = (prev,) if prev is not None else ()
                if prev_stage is not None:
                    deps = deps + (prev_stage,)
                prev_stage = b.send(leader, (node + 1) * g, ("acc", 0),
                                    ("buf", 0), count, deps=deps, level=0,
                                    tag="pp-fwd")
        b.end_step()
    return b.build()


@dataclass(frozen=True)
class EngineComparison:
    """Event vs level wall-clock on one schedule (one row of the table)."""

    label: str
    system: str
    ranks: int
    ops: int
    event_wall: float
    level_wall: float
    engine_used: str
    makespan: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Event wall-clock over level wall-clock (>1 means level is faster)."""
        return self.event_wall / max(self.level_wall, 1e-12)


def compare_engines(label: str, schedule, machine: MachineSpec, libraries,
                    elem_bytes: int = 4, repeat: int = 1) -> EngineComparison:
    """Run one schedule through both engines; best-of-``repeat`` wall times.

    ``engine_used`` reports what the ``engine="level"`` request actually ran
    (a schedule whose certificate is rejected falls back to ``"event"``), and
    ``identical`` checks the two per-op timelines bit-for-bit.
    """
    import time

    from ..simulator.engine import simulate

    def best(engine):
        walls, result = [], None
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            result = simulate(schedule, machine, libraries, elem_bytes,
                              engine=engine)
            walls.append(time.perf_counter() - t0)
        return min(walls), result

    event_wall, event_res = best("event")
    level_wall, level_res = best("level")
    identical = (
        event_res.start_times == level_res.start_times
        and event_res.completion_times == level_res.completion_times
    )
    return EngineComparison(
        label=label, system=machine.name, ranks=machine.world_size,
        ops=len(schedule), event_wall=event_wall, level_wall=level_wall,
        engine_used=level_res.engine, makespan=level_res.elapsed,
        identical=identical,
    )


def sim_engine_table(rows: list[EngineComparison]) -> str:
    """Text table of event-vs-level comparisons (EXPERIMENTS.md format)."""
    lines = [
        f"{'case':28s} {'ranks':>7s} {'ops':>8s} {'event(s)':>9s} "
        f"{'level(s)':>9s} {'speedup':>8s} {'ran':>6s} {'identical':>9s}"
    ]
    for r in rows:
        lines.append(
            f"{r.label:28s} {r.ranks:>7d} {r.ops:>8d} {r.event_wall:>9.3f} "
            f"{r.level_wall:>9.3f} {r.speedup:>7.1f}x {r.engine_used:>6s} "
            f"{str(r.identical):>9s}"
        )
    return "\n".join(lines)


# -------------------------------------------------------------------- Fig 10
FIG10_DEPTHS = (1, 2, 4, 8, 16, 32)


def fig10_scaling(machine_factory, node_counts=(2, 4, 8, 16, 32, 64),
                  payload_bytes: int = 1 << 30,
                  depths=FIG10_DEPTHS,
                  mpi_cap_bytes: int = 1 << 30) -> dict[str, dict[int, float]]:
    """All-reduce scaling (Figure 10): GB/s per node count per series.

    Series: ``hiccl-m{depth}`` for each pipeline depth, plus the vendor ring
    and MPI baselines.  MPI is measured at a capped 1 GB payload, matching
    the paper's note about MPI's large-count limitations [17].
    """
    series: dict[str, dict[int, float]] = {f"hiccl-m{d}": {} for d in depths}
    series["vendor"] = {}
    series["mpi"] = {}
    for nodes in node_counts:
        machine = machine_factory(nodes)
        count = payload_count(machine, payload_bytes)
        for d in depths:
            cfg = ring_config(machine, pipeline=d)
            meas = run_hiccl(machine, "all_reduce", cfg,
                             payload_bytes=payload_bytes, warmup=0, rounds=1)
            series[f"hiccl-m{d}"][nodes] = meas.throughput
        vendor = run_baseline(machine, "all_reduce", "vendor",
                              payload_bytes=payload_bytes, warmup=0, rounds=1)
        if vendor:
            series["vendor"][nodes] = vendor.throughput
        mpi = run_baseline(machine, "all_reduce", "mpi",
                           payload_bytes=min(payload_bytes, mpi_cap_bytes),
                           warmup=0, rounds=1)
        if mpi:
            series["mpi"][nodes] = mpi.throughput
    return series


def render_fig10(system: str, series: dict[str, dict[int, float]]) -> str:
    """Text rendering of one Figure 10 panel (GB/s by node count)."""
    lines = [f"Figure 10 ({system}): All-reduce throughput (GB/s) vs nodes"]
    names = sorted(series)
    node_counts = sorted({n for s in series.values() for n in s})
    header = f"{'series':>12s}" + "".join(f"{n:>9d}" for n in node_counts)
    lines.append(header)
    for name in names:
        cells = "".join(
            f"{series[name].get(n, float('nan')):>9.2f}" for n in node_counts
        )
        lines.append(f"{name:>12s}{cells}")
    return "\n".join(lines)
