"""Parallel sweep engine: fan a grid of measurement points out to workers.

The evaluation figures are embarrassingly parallel — Figure 8 alone prices
~77 independent (collective, implementation, payload) points, each a full
``Communicator.init()`` synthesis.  This module runs such grids through a
``concurrent.futures.ProcessPoolExecutor``:

* every grid point is a picklable :class:`SweepPoint` (machine + collective +
  either a :class:`~repro.bench.configs.HicclConfig` or a baseline family);
* each worker process warms its *own* in-process plan cache
  (:mod:`repro.core.plancache`), and all workers can share plans through the
  cache's disk layer when ``cache_dir`` is given, so a warm sweep prices each
  distinct configuration exactly once per machine rather than once per
  process;
* results are merged deterministically: :func:`run_sweep` returns them in the
  exact order of the input points regardless of which worker finished first,
  with un-runnable baselines (a library that lacks the collective, Table 1)
  reported as ``None`` just as the serial runner does.

``repro bench --jobs N`` on the CLI and the ``jobs=`` parameter of
:func:`repro.bench.figures.fig8_system` are thin wrappers over
:func:`run_sweep`; :func:`run_tasks` is the generic engine underneath it
(any picklable object with a ``run()`` method), which is how the planner
(:mod:`repro.planner.search`) fans candidate evaluations out to the same
worker pool.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass

from ..machine.spec import MachineSpec
from .configs import HicclConfig
from .runner import DEFAULT_PAYLOAD_BYTES, Measurement, run_baseline, run_hiccl

#: Baseline families understood by :class:`SweepPoint` (see ``run_baseline``).
BASELINE_FAMILIES = ("mpi", "vendor", "direct")


@dataclass(frozen=True)
class SweepPoint:
    """One independent measurement of a sweep grid.

    ``config`` selects a HiCCL run; ``family`` selects a baseline.  Exactly
    one of the two must be set.
    """

    machine: MachineSpec
    collective: str
    config: HicclConfig | None = None
    family: str | None = None
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    warmup: int = 0
    rounds: int = 1

    def __post_init__(self) -> None:
        if (self.config is None) == (self.family is None):
            raise ValueError("SweepPoint needs exactly one of config= or family=")
        if self.family is not None and self.family not in BASELINE_FAMILIES:
            raise ValueError(f"unknown baseline family {self.family!r}")

    @property
    def label(self) -> str:
        impl = self.family if self.family else f"hiccl-{self.config.name}"
        return (f"{self.machine.name}/{self.collective}/{impl}"
                f"@{self.payload_bytes}")

    def run(self) -> Measurement | None:
        """Measure this point in the current process."""
        if self.family is not None:
            return run_baseline(
                self.machine, self.collective, self.family,
                payload_bytes=self.payload_bytes,
                warmup=self.warmup, rounds=self.rounds,
            )
        return run_hiccl(
            self.machine, self.collective, self.config,
            payload_bytes=self.payload_bytes,
            warmup=self.warmup, rounds=self.rounds,
        )


def _run_indexed(index: int, task) -> tuple[int, object]:
    return index, task.run()


def _worker_init(cache_dir: str | None) -> None:
    """Process-pool initializer: point each worker at the shared disk layer.

    With a shared ``cache_dir`` the workers read/write the persistent layer,
    so plans synthesized by one worker are hits for every other worker (and
    for later sweeps).  Without one, the worker's cache is left exactly as
    inherited — including any ``REPRO_PLAN_CACHE`` env configuration and any
    plans warmed in the parent before the fork.
    """
    if cache_dir is not None:
        from ..core import plancache

        plancache.get_cache().set_disk_dir(cache_dir)


def default_jobs() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (all cores)."""
    return max(1, os.cpu_count() or 1)


def run_tasks(
    tasks,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list:
    """Run picklable ``.run()`` tasks, ``jobs`` at a time; results in order.

    The generic engine under :func:`run_sweep`: a *task* is any picklable
    object with a ``run()`` method (sweep :class:`SweepPoint`\\ s, planner
    candidate evaluations, ...).  ``jobs <= 1`` runs serially in this
    process (and therefore shares this process's plan cache); ``cache_dir``
    points the plan cache — the workers' or, for a serial run, this
    process's — at a shared on-disk layer; the in-process layer and its
    statistics are kept either way.  Results are returned in input order
    regardless of which worker finished first.
    """
    tasks = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        if cache_dir is None:
            return [t.run() for t in tasks]
        # Serial runs honor the shared disk layer exactly as a worker would,
        # so mixed serial/parallel sweeps see the same persisted plans — but
        # the repointing is scoped to the sweep: the process-wide cache gets
        # its previous disk layer back afterwards.
        from ..core import plancache

        cache = plancache.get_cache()
        previous = cache.disk_dir
        cache.set_disk_dir(cache_dir)
        try:
            return [t.run() for t in tasks]
        finally:
            cache.set_disk_dir(previous)
    results: list = [None] * len(tasks)
    cache_arg = str(cache_dir) if cache_dir is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_worker_init, initargs=(cache_arg,),
    ) as pool:
        futures = [
            pool.submit(_run_indexed, i, t) for i, t in enumerate(tasks)
        ]
        for fut in as_completed(futures):
            index, result = fut.result()
            results[index] = result
    return results


def _run_task(task):
    return task.run()


class TaskPool:
    """Persistent worker pool running ``.run()`` tasks with async completion.

    :func:`run_tasks` is a batch API: it blocks until the whole grid is
    priced.  Long-running callers — the plan service's batcher
    (:mod:`repro.service.batcher`) foremost — instead need to *submit* work
    as it arrives and react per task; this class wraps the same worker
    semantics (picklable ``.run()`` tasks, per-worker plan caches, optional
    shared ``cache_dir`` disk layer) behind ``submit() -> Future``.

    ``jobs <= 1`` degrades to a single *thread* rather than a process: the
    task runs in-process (sharing this process's plan cache) but completion
    stays asynchronous, so callers never block on submission.  The pool is
    lazy — workers start on first submit — and reusable across submissions;
    call :meth:`shutdown` (or use it as a context manager) when done.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        if jobs == 0:
            jobs = default_jobs()
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._executor = None

    def _ensure(self):
        if self._executor is None:
            if self.jobs <= 1:
                self._executor = ThreadPoolExecutor(max_workers=1)
                _worker_init(self.cache_dir)
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_worker_init, initargs=(self.cache_dir,),
                )
        return self._executor

    def submit(self, task) -> Future:
        """Schedule one ``.run()`` task; the future resolves to its result."""
        return self._ensure().submit(_run_task, task)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (idempotent); pending tasks finish when ``wait``."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "TaskPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shut the workers down."""
        self.shutdown()


def run_sweep(
    points,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[Measurement | None]:
    """Measure every point, ``jobs`` at a time; results in input order.

    A thin, measurement-typed wrapper over :func:`run_tasks`; see there for
    the worker-pool and plan-cache semantics.
    """
    return run_tasks(points, jobs=jobs, cache_dir=cache_dir)


def hiccl_grid(
    machine: MachineSpec,
    collectives,
    configs,
    payloads_bytes=(DEFAULT_PAYLOAD_BYTES,),
    warmup: int = 0,
    rounds: int = 1,
) -> list[SweepPoint]:
    """Cartesian HiCCL grid: collectives x configs x payloads, in that order."""
    return [
        SweepPoint(machine, collective, config=cfg, payload_bytes=pb,
                   warmup=warmup, rounds=rounds)
        for collective in collectives
        for cfg in configs
        for pb in payloads_bytes
    ]
