"""Table 5: hierarchical factorizations and per-level libraries per system.

============ =========== ================= ==========================
System       Topology    Hierarchy         Libraries
============ =========== ================= ==========================
Delta /      Tree        {2, 2, 4}         {NCCL, NCCL, IPC}
Perlmutter   Ring+Tree   {4, 4}            {NCCL, IPC}
Frontier     Tree        {2, 2, 4, 2}      {MPI, MPI, IPC, IPC}
             Ring+Tree   {4, 4, 2}         {MPI, IPC, IPC}
Aurora       Tree        {2, 2, 6, 2}      {MPI, MPI, IPC, IPC}
             Ring+Tree   {4, 6, 2}         {MPI, IPC, IPC}
============ =========== ================= ==========================

Bold (intra-node) factors come from the node architecture (dual-die devices
contribute the trailing ``{.., 2}``); the leading factors tile the nodes with
a multi-rail binary tree or a ring.  The builders below generalize the 4-node
table rows to any power-of-two node count, which is what the Figure 10
scaling sweep needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import InitializationError
from ..machine.spec import MachineSpec
from ..transport.library import Library

#: Default inter-node point-to-point backend per system (Table 5).
INTER_LIBRARY = {
    "delta": Library.NCCL,
    "perlmutter": Library.NCCL,
    "frontier": Library.MPI,
    "aurora": Library.MPI,
}

#: Pipeline depths used for Figure 8's fully-optimized bars.  Section 6.4:
#: trees saturate with shallow pipelines (~k stages); rings need ~32.
TREE_PIPELINE = 16
RING_PIPELINE = 32


@dataclass(frozen=True)
class HicclConfig:
    """One column of Table 5, ready to feed ``Communicator.init``."""

    name: str
    hierarchy: tuple[int, ...]
    libraries: tuple[Library, ...]
    stripe: int = 1
    ring: int = 1
    pipeline: int = 1

    def init_kwargs(self) -> dict:
        return {
            "hierarchy": list(self.hierarchy),
            "library": list(self.libraries),
            "stripe": self.stripe,
            "ring": self.ring,
            "pipeline": self.pipeline,
        }

    def with_pipeline(self, m: int) -> "HicclConfig":
        return replace(self, pipeline=m)

    def with_stripe(self, s: int) -> "HicclConfig":
        return replace(self, stripe=s)


def _binary_factors(n: int) -> list[int]:
    """Factor a power-of-two node count into 2s (multi-rail binary tree)."""
    factors = []
    while n > 1:
        if n % 2:
            raise InitializationError(
                f"tree config generalization needs a power-of-two node count, got {n}"
            )
        factors.append(2)
        n //= 2
    return factors


def _intra_factors(machine: MachineSpec) -> list[int]:
    return [level.extent for level in machine.levels]


def tree_config(machine: MachineSpec, pipeline: int = TREE_PIPELINE,
                stripe: int | None = None) -> HicclConfig:
    """Table 5 tree row for this machine, scaled to its node count."""
    inter = INTER_LIBRARY.get(machine.name, Library.MPI)
    inter_factors = _binary_factors(machine.nodes)
    intra = _intra_factors(machine)
    libraries = [inter] * len(inter_factors) + [Library.IPC] * len(intra)
    if not inter_factors:
        # Single node: purely intra-node tree.
        libraries = [Library.IPC] * len(intra)
    return HicclConfig(
        name="tree",
        hierarchy=tuple(inter_factors + intra),
        libraries=tuple(libraries),
        stripe=stripe if stripe is not None else machine.gpus_per_node,
        ring=1,
        pipeline=pipeline,
    )


def ring_config(machine: MachineSpec, pipeline: int = RING_PIPELINE,
                stripe: int | None = None) -> HicclConfig:
    """Table 5 ring+tree row: a ring over nodes, a tree within."""
    if machine.nodes < 2:
        raise InitializationError("ring topology needs at least two nodes")
    inter = INTER_LIBRARY.get(machine.name, Library.MPI)
    intra = _intra_factors(machine)
    return HicclConfig(
        name="ring",
        hierarchy=tuple([machine.nodes] + intra),
        libraries=tuple([inter] + [Library.IPC] * len(intra)),
        stripe=stripe if stripe is not None else machine.gpus_per_node,
        ring=machine.nodes,
        pipeline=pipeline,
    )


def direct_config(machine: MachineSpec) -> HicclConfig:
    """Figure 8's red bars: flat hierarchy, no optimizations."""
    from ..transport.library import DIRECT_LIBRARY

    return HicclConfig(
        name="direct",
        hierarchy=(machine.world_size,),
        libraries=(DIRECT_LIBRARY.get(machine.name, Library.MPI),),
        stripe=1,
        ring=1,
        pipeline=1,
    )


def hierarchical_config(machine: MachineSpec) -> HicclConfig:
    """Figure 8's orange bars: tree factorization only (no stripe/pipeline)."""
    cfg = tree_config(machine, pipeline=1, stripe=1)
    return replace(cfg, name="hierarchical")


def striped_config(machine: MachineSpec) -> HicclConfig:
    """Figure 8's green bars: + multi-NIC striping (still unpipelined)."""
    cfg = tree_config(machine, pipeline=1)
    return replace(cfg, name="striped")


def pipelined_config(machine: MachineSpec, topology: str = "tree") -> HicclConfig:
    """Figure 8's yellow bars: all optimizations on."""
    if topology == "ring":
        cfg = ring_config(machine)
    else:
        cfg = tree_config(machine)
    return replace(cfg, name=f"pipelined-{topology}")


def workload_config(machine: MachineSpec, pipeline: int = 4) -> HicclConfig:
    """Default configuration for one communicator of a workload scenario.

    ``machine`` may be the full system or the group machine of a
    :class:`~repro.core.communicator.SubCommunicator` (a single node for
    tensor-parallel groups, one GPU per node for data-parallel groups, a node
    block for pipeline stages): :func:`tree_config` already generalizes to
    every such shape.  The pipeline depth defaults shallow because scenario
    payloads are per-layer slices, not the GB-scale peak-throughput buffers
    of Figure 8.
    """
    cfg = tree_config(machine, pipeline=pipeline)
    return replace(cfg, name="workload")


def best_config(machine: MachineSpec, collective: str) -> HicclConfig:
    """The configuration HiCCL's Figure 8 bars use per collective.

    Broadcast and Reduce win with ring+tree (Section 6.3.4); every other
    collective uses the tree topology.
    """
    if collective in ("broadcast", "reduce") and machine.nodes >= 2:
        return pipelined_config(machine, "ring")
    cfg = pipelined_config(machine, "tree")
    if collective in ("gather", "scatter", "all_to_all"):
        # Tree pipelines saturate with ~k stages (Section 6.4: "converges to
        # the empirical bound with a pipeline with only k = 4 stages"), and
        # all-to-all's per-pair payloads are small; deeper pipelines only
        # add per-message latency.
        cfg = cfg.with_pipeline(4)
    return cfg
