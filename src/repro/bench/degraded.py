"""Degraded-scenario probes: seeded replan + elastic shrink, rendered.

Backs the committed ``benchmarks/output/faults_{system}.txt`` baselines and
``tools/bench_faults.py``.  Every probe is a deterministic function of
``(machine shape, seed, payload)`` — the fault sets come from
:meth:`repro.machine.faults.FaultSet.random`, the searches are
deterministic, and the renders exclude wall-clock times — so regeneration
is byte-identical run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.communicator import Communicator
from ..core.composition import compose
from ..machine.faults import FaultSet
from ..machine.machines import by_name
from ..planner.replan import ReplanReport, replan
from ..workloads.elastic import ElasticShrinkReport, elastic_shrink
from .configs import best_config

#: Probe payload (Section 6.2 convention): 64 MiB total.
PAYLOAD_BYTES = 1 << 26

#: Seed of the random fault set applied to the replan probe.
SEED = 7

#: Node count of the replan probe.  Two nodes keep the degraded plan search
#: affordable in the committed-baseline regeneration (the same trade
#: ``benchmarks/test_planner.py`` makes); the machine *models* are still the
#: committed Delta/Perlmutter specs.
REPLAN_NODES = 2

#: The elastic-shrink probe drops the last node of a 4-node machine.
SHRINK_NODES = 4


@dataclass(frozen=True)
class DegradedProbe:
    """One system's degraded-scenario measurements."""

    system: str
    replan_report: ReplanReport
    shrink_report: ElasticShrinkReport

    def render(self) -> str:
        """Deterministic baseline text (no wall-clock values)."""
        lines = [
            f"Degraded-topology probes ({self.system}): seeded fault replan "
            f"at {PAYLOAD_BYTES >> 20} MiB on {REPLAN_NODES} nodes, elastic "
            f"shrink {SHRINK_NODES} -> {SHRINK_NODES - 1} nodes",
            "",
            f"-- replan under FaultSet.random(seed={SEED}) --",
            self.replan_report.render(),
            "",
            "-- elastic shrink (all_reduce, drained last node) --",
            self.shrink_report.render(),
        ]
        return "\n".join(lines)


def replan_probe(system: str, *, payload_bytes: int = PAYLOAD_BYTES,
                 seed: int = SEED, nodes: int = REPLAN_NODES,
                 collective: str = "all_reduce") -> ReplanReport:
    """Plan one collective healthy, then replan it under a seeded fault set."""
    machine = by_name(system, nodes=nodes)
    comm = Communicator(machine, materialize=False)
    count = max(1, payload_bytes // (machine.world_size * comm.dtype.itemsize))
    compose(comm, collective, count)
    comm.init(**best_config(machine, collective).init_kwargs())
    return replan(comm, FaultSet.random(machine, seed))


def shrink_probe(system: str, *, payload_bytes: int = PAYLOAD_BYTES,
                 nodes: int = SHRINK_NODES,
                 collective: str = "all_reduce") -> ElasticShrinkReport:
    """Elastic-shrink probe: drop the machine's last node and re-plan."""
    machine = by_name(system, nodes=nodes)
    return elastic_shrink(machine, collective, payload_bytes,
                          (machine.nodes - 1,))


def degraded_probe(system: str) -> DegradedProbe:
    """Both committed probes of one system (the baseline-file content)."""
    return DegradedProbe(
        system=system,
        replan_report=replan_probe(system),
        shrink_report=shrink_probe(system),
    )


__all__ = [
    "PAYLOAD_BYTES",
    "REPLAN_NODES",
    "SEED",
    "SHRINK_NODES",
    "DegradedProbe",
    "degraded_probe",
    "replan_probe",
    "shrink_probe",
]
