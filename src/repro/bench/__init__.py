"""Benchmark harness: configs (Table 5), runner (Section 6.2), figures."""

from .configs import (
    HicclConfig,
    best_config,
    direct_config,
    hierarchical_config,
    pipelined_config,
    ring_config,
    striped_config,
    tree_config,
)
from .degraded import DegradedProbe, degraded_probe, replan_probe, shrink_probe
from .parallel import SweepPoint, hiccl_grid, run_sweep
from .report import SpeedupReport, geomean, render_throughput_table, speedups
from .runner import (
    DEFAULT_PAYLOAD_BYTES,
    Measurement,
    payload_count,
    peak_throughput,
    run_baseline,
    run_hiccl,
    sweep_payloads,
)

__all__ = [
    "DEFAULT_PAYLOAD_BYTES",
    "DegradedProbe",
    "HicclConfig",
    "Measurement",
    "SpeedupReport",
    "SweepPoint",
    "best_config",
    "degraded_probe",
    "direct_config",
    "geomean",
    "hiccl_grid",
    "hierarchical_config",
    "payload_count",
    "peak_throughput",
    "pipelined_config",
    "render_throughput_table",
    "replan_probe",
    "ring_config",
    "run_baseline",
    "run_hiccl",
    "run_sweep",
    "shrink_probe",
    "speedups",
    "striped_config",
    "tree_config",
]
