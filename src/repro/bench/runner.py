"""Measurement harness implementing the paper's protocol (Section 6.2).

"We measure the peak throughput of each collective function on each system.
We run the end-to-end collective function in multiple rounds: 5 warmup
rounds and 10 measurement rounds. [...] We run collectives with buffer sizes
of pd bytes.  If a collective requires t seconds to execute, the throughput
is dp/t (GB/s).  We vary d across large message sizes until the throughput
saturates."

Throughput runs use timing-only communicators (simulated timing is
independent of buffer contents), so GB-scale payloads cost no memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.ccl_like import ccl_collective
from ..baselines.direct import direct_collective
from ..baselines.mpi_like import mpi_collective
from ..baselines.oneccl_like import ONECCL_OFFERED, oneccl_collective
from ..core.communicator import Communicator
from ..core.composition import compose
from ..errors import CompositionError
from ..machine.spec import MachineSpec
from ..transport.library import VENDOR_LIBRARY, Library
from .configs import HicclConfig

#: Default payload for peak-throughput measurements: 1 GiB total.
DEFAULT_PAYLOAD_BYTES = 1 << 30

WARMUP_ROUNDS = 5
MEASURE_ROUNDS = 10


@dataclass(frozen=True)
class Measurement:
    """One measured point: a collective under one implementation."""

    system: str
    collective: str
    implementation: str
    payload_bytes: int
    seconds: float

    @property
    def throughput(self) -> float:
        """GB/s by the paper's definition (payload ``dp`` over elapsed)."""
        return self.payload_bytes / 1.0e9 / self.seconds


def payload_count(machine: MachineSpec, payload_bytes: int,
                  elem_bytes: int = 4) -> int:
    """Per-chunk element count ``d`` such that total payload = ``p * d``."""
    return max(1, payload_bytes // (machine.world_size * elem_bytes))


def run_hiccl(machine: MachineSpec, collective: str, config: HicclConfig,
              payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
              warmup: int = WARMUP_ROUNDS, rounds: int = MEASURE_ROUNDS,
              dtype=np.float32) -> Measurement:
    """Measure a HiCCL collective under ``config`` (timing-only)."""
    count = payload_count(machine, payload_bytes, np.dtype(dtype).itemsize)
    comm = Communicator(machine, dtype=dtype, materialize=False)
    compose(comm, collective, count)
    comm.init(**config.init_kwargs())
    seconds = comm.measure(warmup=warmup, rounds=rounds)
    actual = count * machine.world_size * np.dtype(dtype).itemsize
    return Measurement(machine.name, collective, f"hiccl-{config.name}",
                       actual, seconds)


def run_baseline(machine: MachineSpec, collective: str, family: str,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 warmup: int = WARMUP_ROUNDS, rounds: int = MEASURE_ROUNDS,
                 dtype=np.float32) -> Measurement | None:
    """Measure a baseline; returns None when the library lacks the collective.

    ``family`` is one of ``mpi``, ``vendor`` (NCCL / RCCL / OneCCL depending
    on the system), or ``direct``.
    """
    itemsize = np.dtype(dtype).itemsize
    count = payload_count(machine, payload_bytes, itemsize)
    try:
        if family == "mpi":
            run = mpi_collective(machine, collective, count, dtype=dtype,
                                 materialize=False)
            label = "mpi"
        elif family == "direct":
            run = direct_collective(machine, collective, count, dtype=dtype,
                                    materialize=False)
            label = "direct"
        elif family == "vendor":
            vendor = VENDOR_LIBRARY.get(machine.name, Library.NCCL)
            if vendor is Library.ONECCL:
                if collective not in ONECCL_OFFERED:
                    return None
                run = oneccl_collective(machine, collective, count,
                                        dtype=dtype, materialize=False)
            else:
                run = ccl_collective(machine, collective, count, dtype=dtype,
                                     materialize=False, library=vendor)
            label = vendor.value
        else:
            raise ValueError(f"unknown baseline family {family!r}")
    except CompositionError:
        return None  # collective not offered by this library (Table 1)
    seconds = run.measure(warmup=warmup, rounds=rounds)
    actual = count * machine.world_size * itemsize
    return Measurement(machine.name, collective, label, actual, seconds)


def sweep_payloads(machine: MachineSpec, collective: str, config: HicclConfig,
                   payloads_bytes, dtype=np.float32) -> list[Measurement]:
    """Buffer-size sweep (Figure 9's x-axis)."""
    return [
        run_hiccl(machine, collective, config, payload_bytes=pb,
                  warmup=1, rounds=1, dtype=dtype)
        for pb in payloads_bytes
    ]


def peak_throughput(measurements) -> float:
    """Peak GB/s across a sweep (Section 6.2's saturation criterion)."""
    return max(m.throughput for m in measurements)
