"""Speedup aggregation (the paper's Section 6.3.1 headline numbers)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .runner import Measurement


def geomean(values) -> float:
    """Geometric mean of positive values (the paper's speedup aggregate)."""
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class SpeedupReport:
    """HiCCL vs one baseline family across collectives on one system."""

    system: str
    baseline: str
    per_collective: dict[str, float]

    @property
    def geomean_speedup(self) -> float:
        return geomean(self.per_collective.values())

    def render(self) -> str:
        rows = [f"{self.system}: HiCCL speedup over {self.baseline}"]
        for name, ratio in sorted(self.per_collective.items()):
            rows.append(f"  {name:16s} {ratio:8.2f}x")
        rows.append(f"  {'geomean':16s} {self.geomean_speedup:8.2f}x")
        return "\n".join(rows)


def speedups(hiccl: dict[str, Measurement], baseline: dict[str, Measurement],
             system: str, baseline_name: str) -> SpeedupReport:
    """Per-collective HiCCL / baseline throughput ratios.

    Only collectives measured in *both* maps contribute (vendor libraries
    lack several collectives; the paper's geomeans likewise only cover the
    offered ones).
    """
    ratios = {
        name: hiccl[name].throughput / baseline[name].throughput
        for name in hiccl
        if name in baseline
    }
    return SpeedupReport(system, baseline_name, ratios)


def render_throughput_table(rows: list[Measurement], title: str = "") -> str:
    """Tabulate measurements grouped by collective (Figure 8 as text)."""
    by_collective: dict[str, dict[str, float]] = {}
    impls: list[str] = []
    for m in rows:
        by_collective.setdefault(m.collective, {})[m.implementation] = m.throughput
        if m.implementation not in impls:
            impls.append(m.implementation)
    width = max(len(i) for i in impls) + 2
    out = []
    if title:
        out.append(title)
    header = f"{'collective':16s}" + "".join(f"{i:>{width}s}" for i in impls)
    out.append(header)
    for name, vals in by_collective.items():
        cells = "".join(
            f"{vals.get(i, float('nan')):>{width}.2f}" for i in impls
        )
        out.append(f"{name:16s}{cells}")
    return "\n".join(out)
