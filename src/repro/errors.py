"""Exception hierarchy for the HiCCL reproduction.

Every error raised by the library derives from :class:`HicclError` so callers
can catch library failures with a single ``except`` clause.  The concrete
subclasses mirror the phases of the library: composition (registering
primitives), initialization (factorization / optimization synthesis), and
execution (running the lowered schedule).
"""

from __future__ import annotations


class HicclError(Exception):
    """Base class for all errors raised by this library."""


class CompositionError(HicclError):
    """Invalid primitive registration (bad ranks, counts, or buffer views)."""


class RaceConditionError(CompositionError):
    """Two primitives in the same step write overlapping buffer regions.

    The paper (Section 3.2) declares the result of such compositions
    *undefined*; this reproduction detects the overlap during synthesis and
    refuses to build the schedule rather than silently producing
    nondeterministic results.
    """


class InitializationError(HicclError):
    """Invalid optimization parameters passed to ``Communicator.init``."""


class HierarchyError(InitializationError):
    """Hierarchy factor vector does not describe the participating ranks."""


class LibraryAssignmentError(InitializationError):
    """A per-level library assignment is unusable on the target machine.

    For example, assigning the IPC backend to a hierarchy level whose groups
    span physical node boundaries: IPC put/get only works through shared
    memory within a node (Section 5.1).
    """


class FaultError(InitializationError):
    """A fault set is invalid for the machine, or a schedule touches a
    drained node.

    Raised when fault declarations reference resources the machine does not
    have (NIC/link/node indices out of range, derate scales outside
    ``(0, 1]``), when a drained-node shrink is handed an invalid survivor
    rank map, and when pricing encounters an op whose endpoint lives on a
    drained node (drained nodes carry no traffic; re-plan on the shrunk
    machine instead).
    """


class ExecutionError(HicclError):
    """Schedule execution failed (engine or functional executor)."""


class ScheduleError(HicclError):
    """The lowered dependency graph is malformed (cycle, dangling dep)."""
