"""Picklable planning tasks the service batches onto the worker pool.

A :class:`PlanTask` is the unit of work behind one coalesced request key:
everything needed to run :func:`repro.planner.plan_collective` travels in
the task (machine, collective, payload, search options, warm-start donors),
and ``run()`` returns a small JSON-shaped outcome dict — no live
``Schedule``/``Communicator`` objects cross the pool boundary, so the same
task runs identically on the in-process thread (``jobs <= 1``) and in a
``ProcessPoolExecutor`` worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..machine.spec import MachineSpec
from ..planner.search import SearchBudget, plan_collective
from ..planner.space import PlanCandidate, SearchSpace
from .similarity import translate_candidate

#: Default pipeline depths the service searches.  Deliberately narrower
#: than the library default (1, 4, 16, 32): a service answering fleets of
#: requests trades a sliver of plan quality for a much smaller cold-plan
#: latency; callers opt back into the full grid via request options.
SERVICE_PIPELINES = (1, 4)


def candidate_to_dict(cand: PlanCandidate) -> dict:
    """JSON-shaped candidate (library enums become their string values)."""
    return {
        "hierarchy": list(cand.hierarchy),
        "libraries": [lib.value for lib in cand.libraries],
        "stripe": cand.stripe,
        "ring": cand.ring,
        "pipeline": cand.pipeline,
    }


def candidate_from_dict(doc: dict) -> PlanCandidate:
    """Inverse of :func:`candidate_to_dict`."""
    from ..transport.library import Library

    return PlanCandidate(
        hierarchy=tuple(int(f) for f in doc["hierarchy"]),
        libraries=tuple(Library(v) for v in doc["libraries"]),
        stripe=int(doc["stripe"]),
        ring=int(doc["ring"]),
        pipeline=int(doc["pipeline"]),
    )


def table_to_dict(table) -> dict:
    """JSON-shaped :class:`~repro.planner.table.PlanTable` document."""
    return {
        "machine_name": table.machine_name,
        "collective": table.collective,
        "dtype": table.dtype_name,
        "entries": [
            {
                "size_class": e.size_class,
                "payload_bytes": e.payload_bytes,
                "candidate": candidate_to_dict(e.candidate),
                "plan_seconds": e.plan_seconds,
                "baseline_seconds": e.baseline_seconds,
            }
            for e in table.entries
        ],
    }


def table_from_dict(doc: dict):
    """Inverse of :func:`table_to_dict`."""
    from ..planner.table import PlanTable, PlanTableEntry

    return PlanTable(
        machine_name=str(doc["machine_name"]),
        collective=str(doc["collective"]),
        dtype_name=str(doc["dtype"]),
        entries=tuple(
            PlanTableEntry(
                size_class=str(e["size_class"]),
                payload_bytes=int(e["payload_bytes"]),
                candidate=candidate_from_dict(e["candidate"]),
                plan_seconds=float(e["plan_seconds"]),
                baseline_seconds=float(e["baseline_seconds"]),
            )
            for e in doc["entries"]
        ),
    )


@dataclass(frozen=True)
class PlanTask:
    """One collective-planning job, picklable end to end.

    ``warm_donors`` are winning candidates from *similar* machines (the
    service's nearest-fingerprint index); ``run()`` translates each into
    this machine's search space and seeds the staged search with them.
    """

    machine: MachineSpec
    collective: str
    payload_bytes: int
    dtype_name: str = "float32"
    pipelines: tuple[int, ...] = SERVICE_PIPELINES
    search_libraries: bool = False
    max_full: int | None = None
    warm_donors: tuple[PlanCandidate, ...] = ()

    def run(self) -> dict:
        """Plan the collective; returns a JSON-shaped outcome document."""
        began = time.perf_counter()
        space = SearchSpace.build(
            self.machine,
            pipelines=self.pipelines,
            search_libraries=self.search_libraries,
        )
        warm = []
        for donor in self.warm_donors:
            translated = translate_candidate(space, donor)
            if translated is not None and translated not in warm:
                warm.append(translated)
        budget = SearchBudget(max_full=self.max_full)
        result = plan_collective(
            self.machine,
            self.collective,
            self.payload_bytes,
            dtype=self.dtype_name,
            space=space,
            budget=budget,
            warm_start=tuple(warm),
        )
        wall = time.perf_counter() - began
        best = result.best
        return {
            "winner": candidate_to_dict(best.candidate),
            "plan_seconds": best.seconds,
            "plan_wall_seconds": wall,
            "warm_seeds": result.stats.warm_seeds,
            "stats": {
                "generated": result.stats.generated,
                "pruned": result.stats.pruned,
                "truncated_evals": result.stats.truncated_evals,
                "full_evals": result.stats.full_evals,
            },
            "top": [
                {"candidate": candidate_to_dict(e.candidate),
                 "seconds": e.seconds}
                for e in result.top(3)
            ],
        }


@dataclass(frozen=True)
class PlanTableTask:
    """One size-classed plan-table job, picklable end to end.

    Runs :func:`repro.planner.plan_table` — a baseline search at the
    largest size class plus one warm-started search per smaller class —
    and ships the table back as a JSON-shaped document
    (:func:`table_to_dict`), so serving drivers on the client side rebuild
    it with :func:`table_from_dict` and materialize entries through their
    own plan cache.
    """

    machine: MachineSpec
    collective: str
    size_classes: tuple[tuple[str, int], ...]
    dtype_name: str = "float32"
    pipelines: tuple[int, ...] = SERVICE_PIPELINES
    search_libraries: bool = False
    max_full: int | None = None

    def run(self) -> dict:
        """Plan the table; returns a JSON-shaped outcome document."""
        from ..planner.table import plan_table

        began = time.perf_counter()
        space = SearchSpace.build(
            self.machine,
            pipelines=self.pipelines,
            search_libraries=self.search_libraries,
        )
        budget = SearchBudget(max_full=self.max_full)
        table = plan_table(
            self.machine,
            self.collective,
            self.size_classes,
            dtype=self.dtype_name,
            space=space,
            budget=budget,
        )
        return {
            "table": table_to_dict(table),
            "plan_wall_seconds": time.perf_counter() - began,
        }
