"""Sharded response cache with frequency-sketch admission (TinyLFU-style).

The daemon's hot path is a cache lookup, so its cache is engineered for
concurrent skewed traffic rather than raw capacity:

* **Sharding** — entries partition by *machine fingerprint digest*
  (:func:`repro.service.protocol.machine_digest`): every request for one
  machine lands on one shard, so a burst from a single fleet contends on
  one lock while requests for other machines proceed in parallel, and the
  per-shard counters read as per-machine-population statistics.
* **Per-shard LRU + byte budget** — each shard is a
  :class:`~repro.core.plancache.ByteBudgetLRU` over JSON response bodies,
  charged their encoded size.
* **Frequency-sketch admission** — Zipf-skewed traffic has a long tail of
  one-shot keys; plain LRU lets each of them evict a member of the hot
  set.  A count-min sketch (4 rows, periodically halved so history ages
  out) estimates each key's request frequency, and an insert that would
  evict is *rejected* when the incumbent LRU victim is estimated hotter —
  scan-resistance for a few kilobytes of sketch.

This layer caches the service's *response documents*; the plans themselves
also land in the ordinary :mod:`repro.core.plancache` via the planner, so
a shard miss that coalesces onto a planning task can still hit warm
schedule synthesis underneath.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.plancache import ByteBudgetLRU

#: Default shard count; a small power of two keeps the digest->shard map
#: balanced without burning memory on empty shards.
DEFAULT_SHARDS = 4

#: Default per-shard budgets.  Response bodies are a few KB each, so these
#: admit thousands of distinct (machine, collective, payload) keys.
DEFAULT_SHARD_CAPACITY = 512
DEFAULT_SHARD_BYTES = 8 << 20


class FrequencySketch:
    """Count-min sketch with periodic aging (the TinyLFU frequency filter).

    ``width`` counters x 4 rows of uint32; :meth:`increment` bumps one
    counter per row, :meth:`estimate` reads the minimum.  After
    ``sample_size`` increments every counter is halved, so estimates track
    *recent* popularity and a formerly hot key can age out.  Not
    thread-safe on its own (the owning shard's lock covers it).
    """

    ROWS = 4

    def __init__(self, width: int = 1024, sample_size: int | None = None) -> None:
        if width < 16:
            raise ValueError(f"sketch width must be >= 16, got {width}")
        self.width = int(width)
        self.sample_size = (
            int(sample_size) if sample_size is not None else 8 * self.width
        )
        self._table = np.zeros((self.ROWS, self.width), dtype=np.uint32)
        self._increments = 0
        # Fixed odd multipliers give 4 independent-enough row hashes from
        # one Python hash; determinism matters more than hash quality here.
        self._salts = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)

    def _slots(self, key: str) -> list[int]:
        h = int.from_bytes(key.encode()[:8].ljust(8, b"\0"), "little")
        return [((h * salt) >> 16) % self.width for salt in self._salts]

    def increment(self, key: str) -> None:
        """Record one occurrence of ``key`` (ages the sketch periodically)."""
        for row, slot in enumerate(self._slots(key)):
            if self._table[row, slot] < np.iinfo(np.uint32).max:
                self._table[row, slot] += 1
        self._increments += 1
        if self._increments >= self.sample_size:
            self._table >>= 1
            self._increments //= 2

    def estimate(self, key: str) -> int:
        """Estimated occurrence count of ``key`` (never underestimates)."""
        return int(min(
            self._table[row, slot]
            for row, slot in enumerate(self._slots(key))
        ))


@dataclass
class ShardStats:
    """Counters of one shard, surfaced by ``repro cache --json``."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    admission_rejected: int = 0

    def to_dict(self) -> dict:
        """JSON-shaped snapshot (plus derived hit rate)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "admission_rejected": self.admission_rejected,
            "hit_rate": self.hits / self.lookups if self.lookups else 0.0,
        }


@dataclass
class _Shard:
    """One lock + LRU + sketch + counters partition."""

    lru: ByteBudgetLRU
    sketch: FrequencySketch
    stats: ShardStats = field(default_factory=ShardStats)
    lock: threading.Lock = field(default_factory=threading.Lock)


def response_nbytes(body: dict) -> int:
    """Byte charge of one cached response: its compact-JSON encoding."""
    return len(json.dumps(body, sort_keys=True, separators=(",", ":")))


class ShardedPlanCache:
    """Machine-fingerprint-sharded cache of plan response documents."""

    def __init__(
        self,
        num_shards: int = DEFAULT_SHARDS,
        capacity: int = DEFAULT_SHARD_CAPACITY,
        max_bytes: int = DEFAULT_SHARD_BYTES,
        admission: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = int(num_shards)
        self.admission = bool(admission)
        self._shards = [
            _Shard(ByteBudgetLRU(capacity, max_bytes), FrequencySketch())
            for _ in range(self.num_shards)
        ]

    def shard_index(self, machine_digest: str) -> int:
        """Shard serving one machine fingerprint digest."""
        return int(machine_digest[:8], 16) % self.num_shards

    def _shard(self, machine_digest: str) -> _Shard:
        return self._shards[self.shard_index(machine_digest)]

    def get(self, machine_digest: str, key: str) -> dict | None:
        """Cached response body for ``key``, else ``None``.

        Every lookup — hit or miss — feeds the frequency sketch, which is
        what lets a repeatedly *missed* key earn admission later.
        """
        shard = self._shard(machine_digest)
        with shard.lock:
            shard.stats.lookups += 1
            shard.sketch.increment(key)
            body = shard.lru.get(key)
            if body is not None:
                shard.stats.hits += 1
                return body
            shard.stats.misses += 1
            return None

    def put(self, machine_digest: str, key: str, body: dict) -> bool:
        """Insert a response body; returns False when admission rejects it.

        With admission on, an insert that would evict is allowed only if
        the new key's sketch estimate is at least the LRU victim's — cold
        one-shot keys bounce off a hot working set instead of churning it.
        """
        shard = self._shard(machine_digest)
        nbytes = response_nbytes(body)
        with shard.lock:
            would_evict = (
                shard.lru.get(key) is None
                and (len(shard.lru) + 1 > shard.lru.capacity
                     or shard.lru.total_bytes() + nbytes
                     > shard.lru.max_total_bytes)
            )
            if self.admission and would_evict:
                victim = shard.lru.peek_oldest()
                if victim is not None and (
                    shard.sketch.estimate(key)
                    < shard.sketch.estimate(victim[0])
                ):
                    shard.stats.admission_rejected += 1
                    return False
            evicted = shard.lru.put(key, body, nbytes)
            shard.stats.stores += 1
            shard.stats.evictions += len(evicted)
            return True

    def stats(self) -> dict:
        """Per-shard and aggregate counters, JSON-shaped."""
        shards = []
        totals = ShardStats()
        total_bytes = 0
        total_entries = 0
        for shard in self._shards:
            with shard.lock:
                doc = shard.stats.to_dict()
                doc["entries"] = len(shard.lru)
                doc["bytes"] = shard.lru.total_bytes()
                for name in ("lookups", "hits", "misses", "stores",
                             "evictions", "admission_rejected"):
                    setattr(totals, name, getattr(totals, name) + doc[name])
                total_bytes += doc["bytes"]
                total_entries += doc["entries"]
            shards.append(doc)
        aggregate = totals.to_dict()
        aggregate["entries"] = total_entries
        aggregate["bytes"] = total_bytes
        return {"shards": shards, "total": aggregate}
