"""The planning daemon: service engine + Unix-socket frame server.

:class:`PlanService` is the transport-free engine — it owns the sharded
response cache, the coalescing batcher, the nearest-machine warm-start
index, and the service counters, and exposes ``handle(frame) -> frame``.
:class:`PlanServer` wraps it in a threaded Unix-domain-socket server
speaking the line-delimited JSON protocol (:mod:`repro.service.protocol`);
``repro serve`` runs one in the foreground, and tests drive one in-process
on a temp-dir socket.

Request flow for ``type: "plan"``:

1. decode + rebuild the machine (drained-node machines are rejected with a
   ``FaultError`` frame up front, mirroring the replanner's contract — the
   planner cannot price traffic through a drained node);
2. shard-cache lookup by request key → ``source: "hit"``;
3. miss → look up the nearest *other* machine fingerprint that already has
   a winner for this collective and seed the planner with its translated
   candidates (``source: "warm"``), else plan cold (``source: "cold"``);
4. identical concurrent keys coalesce onto one in-flight planning future
   (``source: "coalesced"`` for the joiners), and the outcome is stored
   back in the shard and the warm-start index.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..bench.parallel import TaskPool
from ..errors import FaultError, HicclError
from .batcher import PlanBatcher
from .jobs import (
    SERVICE_PIPELINES,
    PlanTableTask,
    PlanTask,
    candidate_from_dict,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    machine_digest,
    machine_from_dict,
    request_key,
)
from .shards import (
    DEFAULT_SHARD_BYTES,
    DEFAULT_SHARD_CAPACITY,
    DEFAULT_SHARDS,
    ShardedPlanCache,
)
from .similarity import MachineIndex

#: Environment override for the default socket path.
ENV_SOCKET = "REPRO_SERVICE_SOCKET"

#: How many nearest machines donate warm-start candidates per cold plan.
WARM_NEIGHBORS = 2


def default_socket_path() -> Path:
    """Default Unix socket path (honors ``REPRO_SERVICE_SOCKET``)."""
    env = os.environ.get(ENV_SOCKET)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "plan-service.sock"


@dataclass
class ServiceStats:
    """Top-level request counters of one daemon."""

    requests: int = 0
    hits: int = 0
    planned: int = 0
    coalesced: int = 0
    warm_started: int = 0
    errors: int = 0

    def to_dict(self) -> dict:
        """JSON-shaped snapshot."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "planned": self.planned,
            "coalesced": self.coalesced,
            "warm_started": self.warm_started,
            "errors": self.errors,
        }


class PlanService:
    """Transport-free planning engine: cache, batcher, warm-start index."""

    def __init__(
        self,
        jobs: int = 1,
        num_shards: int = DEFAULT_SHARDS,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
        warm_start: bool = True,
        admission: bool = True,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self.cache = ShardedPlanCache(
            num_shards=num_shards,
            capacity=shard_capacity,
            max_bytes=shard_bytes,
            admission=admission,
        )
        self.pool = TaskPool(jobs=jobs, cache_dir=cache_dir)
        self.batcher = PlanBatcher(self.pool)
        self.warm_start = bool(warm_start)
        self.stats = ServiceStats()
        self._lock = threading.Lock()
        self._index = MachineIndex()
        # digest -> {collective: winner candidate dict}; feeds warm starts.
        self._winners: dict[str, dict[str, dict]] = {}

    # ------------------------------------------------------------- warm start
    def _warm_donors(self, digest: str, machine, collective) -> tuple:
        """Translated winner candidates from the nearest other machines."""
        if not self.warm_start:
            return ()
        donors = []
        with self._lock:
            neighbors = self._index.nearest(
                machine, exclude=digest, k=WARM_NEIGHBORS
            )
            for other_digest, _other, _dist in neighbors:
                winner = self._winners.get(other_digest, {}).get(collective)
                if winner is not None:
                    donors.append(candidate_from_dict(winner))
        return tuple(donors)

    def _record(self, digest: str, machine, collective, outcome: dict) -> None:
        """Register the machine + winning candidate for future warm starts."""
        with self._lock:
            self._index.add(digest, machine)
            self._winners.setdefault(digest, {})[collective] = dict(
                outcome["winner"]
            )

    # --------------------------------------------------------------- handlers
    def handle(self, frame: dict) -> dict:
        """Answer one decoded request frame with a response frame."""
        request_id = frame.get("id")
        try:
            kind = frame.get("type")
            if kind == "ping":
                return {
                    "id": request_id, "status": "ok",
                    "protocol": PROTOCOL_VERSION,
                }
            if kind == "stats":
                with self._lock:
                    service = self.stats.to_dict()
                return {
                    "id": request_id, "status": "ok",
                    "service": service,
                    "batcher": self.batcher.snapshot(),
                    "cache": self.cache.stats(),
                }
            if kind == "plan":
                return self._handle_plan(frame)
            if kind == "plan_table":
                return self._handle_plan_table(frame)
            raise ProtocolError(f"unknown request type {kind!r}")
        except HicclError as exc:
            with self._lock:
                self.stats.errors += 1
            return error_frame(request_id, exc)

    def _handle_plan(self, frame: dict) -> dict:
        with self._lock:
            self.stats.requests += 1
        request_id = frame.get("id")
        try:
            machine = machine_from_dict(frame["machine"])
            collective = str(frame["collective"])
            payload_bytes = int(frame["payload_bytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed plan request: {exc}") from exc
        if machine.faults is not None and machine.faults.drained_nodes:
            # Same contract as planner.replan: a drained node carries no
            # traffic, so there is no plan to serve — shrink the job onto
            # the survivors (workloads.elastic) and ask again.
            raise FaultError(
                f"machine {machine.name!r} has drained node(s) "
                f"{list(machine.faults.drained_nodes)}; plan for the "
                "shrunk survivor machine instead"
            )
        dtype = str(frame.get("dtype", "float32"))
        options = frame.get("options") or {}
        key = request_key(machine, collective, payload_bytes, dtype, options)
        digest = machine_digest(machine)

        began = time.perf_counter()
        cached = self.cache.get(digest, key)
        if cached is not None:
            with self._lock:
                self.stats.hits += 1
            return self._respond(request_id, cached, "hit", began)

        donors = self._warm_donors(digest, machine, collective)

        def make_task() -> PlanTask:
            return PlanTask(
                machine=machine,
                collective=collective,
                payload_bytes=payload_bytes,
                dtype_name=dtype,
                pipelines=tuple(options.get("pipelines", SERVICE_PIPELINES)),
                search_libraries=bool(options.get("search_libraries", False)),
                max_full=options.get("max_full"),
                warm_donors=donors,
            )

        future, mine = self.batcher.submit(key, make_task)
        try:
            outcome = future.result()
        except HicclError:
            raise
        except Exception as exc:  # pool failures surface as error frames
            raise ProtocolError(f"planning failed: {exc}") from exc

        if mine:
            with self._lock:
                self.stats.planned += 1
                if outcome.get("warm_seeds"):
                    self.stats.warm_started += 1
            self.cache.put(digest, key, outcome)
            self._record(digest, machine, collective, outcome)
            source = "warm" if outcome.get("warm_seeds") else "cold"
        else:
            with self._lock:
                self.stats.coalesced += 1
            source = "coalesced"
        return self._respond(request_id, outcome, source, began)

    def _handle_plan_table(self, frame: dict) -> dict:
        """Serve one size-classed plan table (cached + coalesced like plans).

        The request key folds the size classes in through the options
        channel, so a table request can never collide with a single-plan
        request for the same collective; the table itself is produced by
        :class:`~repro.service.jobs.PlanTableTask` on the worker pool.
        """
        with self._lock:
            self.stats.requests += 1
        request_id = frame.get("id")
        try:
            machine = machine_from_dict(frame["machine"])
            collective = str(frame["collective"])
            size_classes = tuple(
                (str(name), int(payload))
                for name, payload in frame["size_classes"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed plan_table request: {exc}") from exc
        if not size_classes:
            raise ProtocolError("plan_table needs at least one size class")
        if machine.faults is not None and machine.faults.drained_nodes:
            raise FaultError(
                f"machine {machine.name!r} has drained node(s) "
                f"{list(machine.faults.drained_nodes)}; plan for the "
                "shrunk survivor machine instead"
            )
        dtype = str(frame.get("dtype", "float32"))
        options = dict(frame.get("options") or {})
        key_options = dict(options)
        key_options["kind"] = "plan_table"
        key_options["size_classes"] = [list(sc) for sc in size_classes]
        key = request_key(machine, collective,
                          max(payload for _, payload in size_classes),
                          dtype, key_options)
        digest = machine_digest(machine)

        began = time.perf_counter()
        cached = self.cache.get(digest, key)
        if cached is not None:
            with self._lock:
                self.stats.hits += 1
            return self._respond(request_id, cached, "hit", began)

        def make_task() -> PlanTableTask:
            return PlanTableTask(
                machine=machine,
                collective=collective,
                size_classes=size_classes,
                dtype_name=dtype,
                pipelines=tuple(options.get("pipelines", SERVICE_PIPELINES)),
                search_libraries=bool(options.get("search_libraries", False)),
                max_full=options.get("max_full"),
            )

        future, mine = self.batcher.submit(key, make_task)
        try:
            outcome = future.result()
        except HicclError:
            raise
        except Exception as exc:  # pool failures surface as error frames
            raise ProtocolError(f"planning failed: {exc}") from exc

        if mine:
            with self._lock:
                self.stats.planned += 1
            self.cache.put(digest, key, outcome)
            source = "cold"
        else:
            with self._lock:
                self.stats.coalesced += 1
            source = "coalesced"
        return self._respond(request_id, outcome, source, began)

    @staticmethod
    def _respond(request_id, outcome: dict, source: str, began: float) -> dict:
        body = dict(outcome)
        body.update({
            "id": request_id,
            "status": "ok",
            "source": source,
            "seconds": time.perf_counter() - began,
        })
        return body

    def close(self) -> None:
        """Shut the worker pool down."""
        self.pool.shutdown()


class _Handler(socketserver.StreamRequestHandler):
    """Per-connection line loop: one frame in, one frame out."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return
            try:
                frame = decode_frame(line)
            except ProtocolError as exc:
                self.wfile.write(encode_frame(error_frame(None, exc)))
                continue
            if frame.get("type") == "shutdown":
                self.wfile.write(encode_frame(
                    {"id": frame.get("id"), "status": "ok", "stopping": True}
                ))
                self.server.initiate_shutdown()
                return
            response = self.server.service.handle(frame)
            try:
                self.wfile.write(encode_frame(response))
            except (ConnectionError, OSError):
                return


class PlanServer(socketserver.ThreadingUnixStreamServer):
    """Threaded Unix-socket frame server around a :class:`PlanService`.

    Each connection gets its own thread, so N clients block only inside
    the engine's locks (shard lock, batcher table) or on their own plan
    future — never on each other's socket I/O.  Use as a context manager
    or call :meth:`serve_forever` / :meth:`shutdown` like any
    ``socketserver``; :meth:`initiate_shutdown` is the async variant the
    ``shutdown`` frame uses (calling ``shutdown()`` from a handler thread
    would deadlock).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str | os.PathLike, service: PlanService):
        self.socket_path = Path(socket_path)
        self.service = service
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        super().__init__(str(self.socket_path), _Handler)

    def initiate_shutdown(self) -> None:
        """Stop the serve loop from a handler thread (non-blocking)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def server_close(self) -> None:
        """Close the listener, remove the socket file, stop the pool."""
        super().server_close()
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        self.service.close()


def serve(
    socket_path: str | os.PathLike | None = None,
    service: PlanService | None = None,
    ready: threading.Event | None = None,
) -> None:
    """Run a daemon in the foreground until a ``shutdown`` frame arrives."""
    path = Path(socket_path) if socket_path is not None else default_socket_path()
    with PlanServer(path, service or PlanService()) as server:
        if ready is not None:
            ready.set()
        server.serve_forever(poll_interval=0.05)


def socket_alive(socket_path: str | os.PathLike) -> bool:
    """True when something accepts connections on ``socket_path``."""
    path = Path(socket_path)
    if not path.exists():
        return False
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.5)
        probe.connect(str(path))
        return True
    except OSError:
        return False
    finally:
        probe.close()
