"""Request coalescing and batching onto the shared worker pool.

Fleet traffic is bursty *and* redundant: when a 512-node job launches, all
of its ranks' launchers ask for the same plan within milliseconds.  The
batcher guarantees that burst costs exactly one synthesis:

* **Coalescing** — ``submit(key, make_task)`` keeps one in-flight future
  per request key; a duplicate key joins the existing future instead of
  spawning a second planning task (counted, so tests can *prove* the plan
  ran once).
* **Batching** — distinct keys go straight onto a
  :class:`~repro.bench.parallel.TaskPool` with async completion: the
  server's request threads never block each other on submission, and with
  ``jobs > 1`` distinct plans price concurrently in pool workers.

``make_task`` is a zero-argument callable building the picklable task —
deferred so the (possibly expensive) task construction only happens for
the first requester of a key.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from ..bench.parallel import TaskPool


class PlanBatcher:
    """Keyed, coalescing front of a :class:`~repro.bench.parallel.TaskPool`.

    Thread-safe; the counters (``planned``, ``coalesced``) mutate under the
    same lock as the in-flight table, so a stats snapshot is consistent.
    """

    def __init__(self, pool: TaskPool) -> None:
        self.pool = pool
        self.planned = 0
        self.coalesced = 0
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}

    def submit(self, key: str, make_task) -> tuple[Future, bool]:
        """The in-flight future for ``key`` plus whether this call made it.

        Duplicate keys return the *same* future object (created ``False``);
        its result is shared by every waiter.  The key is retired from the
        in-flight table when the future resolves (success or failure), so a
        later request for the same key — e.g. after an eviction — plans
        afresh.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self.coalesced += 1
                return existing, False
            self.planned += 1
            task = make_task()
            future = self.pool.submit(task)
            self._inflight[key] = future

        def _retire(_fut, *, key=key):
            with self._lock:
                self._inflight.pop(key, None)

        future.add_done_callback(_retire)
        return future, True

    def inflight(self) -> int:
        """Number of distinct keys currently being planned."""
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> dict:
        """Consistent counter snapshot for the stats frame."""
        with self._lock:
            return {
                "planned": self.planned,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight),
            }
