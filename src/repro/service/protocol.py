"""Line-delimited JSON protocol of the plan service.

One request or response per line, each a single JSON object terminated by
``"\\n"`` — trivially framable over any stream socket and greppable in a
capture.  The protocol is deliberately value-only: a request carries the
*full machine description* (not a name the server must resolve), so the
daemon can serve machines its own registry has never heard of, and the
request key is built on the same :func:`repro.core.plancache.machine_fingerprint`
the plan cache uses — two requests that would lower identically share one
cache entry by construction.

Request types (the ``type`` field):

``plan``
    ``{"id", "type": "plan", "collective", "machine": {...},
    "payload_bytes", "dtype", "options": {...}}`` — plan one named
    collective on the described machine.  ``options`` tunes the search
    (``pipelines``, ``search_libraries``, ``max_full``) and is part of the
    request key.
``plan_table``
    ``{"id", "type": "plan_table", "collective", "machine": {...},
    "size_classes": [["small", 65536], ...], "dtype", "options": {...}}``
    — plan one winner per payload size class
    (:func:`repro.planner.plan_table`): a baseline search at the largest
    class, warm-started searches at the smaller ones.  The response's
    ``table`` document rebuilds client-side via
    :func:`repro.service.jobs.table_from_dict`.  Cached and coalesced
    exactly like ``plan`` requests, with the size classes folded into the
    request key so table and single-plan requests never collide.
``stats``
    Snapshot of the service counters and per-shard cache statistics.
``ping``
    Liveness probe; echoes the protocol version.
``shutdown``
    Ask the daemon to stop accepting connections and exit its serve loop.

Responses always echo the request ``id`` and carry ``status`` (``ok`` |
``error``).  Error frames name the exception class (e.g. ``FaultError``
for a drained-node machine, mirroring :func:`repro.planner.replan.replan`)
plus a human-readable message, so clients can re-raise faithfully.
"""

from __future__ import annotations

import hashlib
import json

from ..errors import HicclError
from ..core.plancache import machine_fingerprint
from ..machine.faults import FaultSet
from ..machine.nic import Binding
from ..machine.spec import LevelSpec, MachineSpec

#: Bumped on any wire-visible change; ``ping`` echoes it so clients can
#: detect a mismatched daemon before sending work.
PROTOCOL_VERSION = 1


class ProtocolError(HicclError):
    """A frame that cannot be decoded or fails structural validation."""


def encode_frame(obj: dict) -> bytes:
    """One wire frame: compact, key-sorted JSON plus the line terminator."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def error_frame(request_id, exc: BaseException) -> dict:
    """Error response carrying the exception class name and message."""
    return {
        "id": request_id,
        "status": "error",
        "error": type(exc).__name__,
        "message": str(exc),
    }


# --------------------------------------------------------- machine transport
def machine_to_dict(machine: MachineSpec) -> dict:
    """JSON-serializable description of a machine, faults included.

    The inverse of :func:`machine_from_dict`; round-tripping preserves the
    machine fingerprint exactly (asserted by the protocol tests), which is
    what makes the service's cache keys agree with in-process ones.
    """
    doc: dict = {
        "name": machine.name,
        "nodes": machine.nodes,
        "levels": [
            {
                "name": lv.name,
                "extent": lv.extent,
                "bandwidth": lv.bandwidth,
                "latency": lv.latency,
            }
            for lv in machine.levels
        ],
        "nic_count": machine.nic_count,
        "nic_bandwidth": machine.nic_bandwidth,
        "nic_latency": machine.nic_latency,
        "binding": machine.binding.value,
        "copy_bandwidth": machine.copy_bandwidth,
        "copy_latency": machine.copy_latency,
        "reduce_bandwidth": machine.reduce_bandwidth,
        "kernel_latency": machine.kernel_latency,
        "gpu_injection_bandwidth": machine.gpu_injection_bandwidth,
    }
    if machine.faults is not None:
        f = machine.faults
        doc["faults"] = {
            "down_nics": [list(e) for e in f.down_nics],
            "down_links": [list(e) for e in f.down_links],
            "drained_nodes": list(f.drained_nodes),
            "nic_derate": [list(e) for e in f.nic_derate],
            "link_derate": [list(e) for e in f.link_derate],
            "stragglers": [list(e) for e in f.stragglers],
        }
    return doc


def machine_from_dict(doc: dict) -> MachineSpec:
    """Rebuild a :class:`MachineSpec` from :func:`machine_to_dict` output.

    Faults are reattached through ``FaultSet.apply``, so every declared
    index is re-validated against the described shape — a corrupt frame
    cannot smuggle an out-of-range fault past the server.
    """
    try:
        spec = MachineSpec(
            name=str(doc["name"]),
            nodes=int(doc["nodes"]),
            levels=tuple(
                LevelSpec(
                    name=str(lv["name"]),
                    extent=int(lv["extent"]),
                    bandwidth=float(lv["bandwidth"]),
                    latency=float(lv["latency"]),
                )
                for lv in doc["levels"]
            ),
            nic_count=int(doc["nic_count"]),
            nic_bandwidth=float(doc["nic_bandwidth"]),
            nic_latency=float(doc["nic_latency"]),
            binding=Binding(doc["binding"]),
            copy_bandwidth=float(doc["copy_bandwidth"]),
            copy_latency=float(doc["copy_latency"]),
            reduce_bandwidth=float(doc["reduce_bandwidth"]),
            kernel_latency=float(doc["kernel_latency"]),
            gpu_injection_bandwidth=(
                None if doc.get("gpu_injection_bandwidth") is None
                else float(doc["gpu_injection_bandwidth"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed machine description: {exc}") from exc
    faults = doc.get("faults")
    if faults:
        fault_set = FaultSet(
            down_nics=tuple(tuple(e) for e in faults.get("down_nics", ())),
            down_links=tuple(tuple(e) for e in faults.get("down_links", ())),
            drained_nodes=tuple(faults.get("drained_nodes", ())),
            nic_derate=tuple(tuple(e) for e in faults.get("nic_derate", ())),
            link_derate=tuple(tuple(e) for e in faults.get("link_derate", ())),
            stragglers=tuple(tuple(e) for e in faults.get("stragglers", ())),
        )
        spec = fault_set.apply(spec)
    return spec


# ------------------------------------------------------------------- keying
def machine_digest(machine: MachineSpec) -> str:
    """SHA-256 hex digest of the machine fingerprint (the sharding key)."""
    return hashlib.sha256(
        repr(machine_fingerprint(machine)).encode()
    ).hexdigest()


def _canon(value):
    """Canonical hashable form of a JSON value (lists become tuples)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    return value


def request_key(
    machine: MachineSpec,
    collective: str,
    payload_bytes: int,
    dtype: str = "float32",
    options: dict | None = None,
) -> str:
    """Content address of one plan request (coalescing + shard-cache key).

    Built on the same machine fingerprint the plan cache keys on, plus the
    planning inputs; two requests with equal keys are guaranteed to produce
    identical plans, which is what makes collapsing them onto one planning
    task sound.  JSON-shaped ``options`` are canonicalized (lists and
    tuples key identically), so a key computed client-side from Python
    tuples matches the server's recomputation from the decoded frame.
    """
    parts = (
        ("machine", machine_fingerprint(machine)),
        ("collective", str(collective)),
        ("payload_bytes", int(payload_bytes)),
        ("dtype", str(dtype)),
        ("options", _canon(options or {})),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()
