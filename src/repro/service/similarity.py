"""Nearest-machine-fingerprint index: warm-start seeds from similar machines.

Synthesis cost amortizes across a fleet only if plans transfer: a winning
configuration for Perlmutter at 4 nodes is an excellent *candidate* for
Perlmutter at 6 nodes (same node architecture, same backends, slightly
different inter-node fan-out), and often for any machine with a similar
bandwidth profile.  This module gives the plan service that notion of
"similar":

* :func:`machine_features` embeds a :class:`~repro.machine.spec.MachineSpec`
  into a fixed-length numeric vector — log-scaled structural axes (node
  count, GPUs/node, NICs/node), log-scaled bandwidth axes (NIC, per-level
  intra-node, copy/reduce), and a fault-content axis — so distances are
  scale-free (4 vs 8 nodes is as far as 8 vs 16);
* :class:`MachineIndex` holds every machine the service has planned for and
  answers ``nearest(machine)`` by weighted L1 distance over those features;
* :func:`translate_candidate` maps a neighbor's winning
  :class:`~repro.planner.space.PlanCandidate` into the *target* machine's
  search space by structural similarity, guaranteeing the warm seed handed
  to :func:`repro.planner.search.search_program` is valid on the target.

Warm seeds only ever *add* fully priced candidates to the search (see
``search_program(warm_start=...)``), so a bad nearest-neighbor match costs
one extra evaluation and can never worsen the winner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..machine.spec import MachineSpec
from ..planner.space import PlanCandidate, SearchSpace

#: Number of intra-node levels the feature vector reserves slots for.
_MAX_LEVELS = 3

#: Per-axis weights of the L1 distance.  Structure (node count, GPUs/node,
#: NICs) dominates: a plan's hierarchy/stripe/ring parameters transfer only
#: between structurally similar machines, while bandwidth differences mostly
#: reorder candidates without invalidating them.  Faults weigh in last so a
#: degraded twin is preferred over a healthy stranger but a healthy twin
#: beats a heavily degraded one.
_WEIGHTS = (
    4.0,  # log2 nodes
    4.0,  # log2 gpus/node
    2.0,  # log2 nic_count
    1.0,  # log2 nic_bandwidth
    1.0,  # log2 injection bandwidth
) + (1.0,) * _MAX_LEVELS + (  # per-level intra-node bandwidths
    0.5,  # log2 copy bandwidth
    0.5,  # log2 reduce bandwidth
    2.0,  # fault content magnitude
)


def _fault_magnitude(machine: MachineSpec) -> float:
    """Scalar fault-content severity: 0 when healthy, grows per entry."""
    f = machine.faults
    if f is None:
        return 0.0
    return float(
        len(f.down_nics) + len(f.down_links) + 2 * len(f.drained_nodes)
        + sum(1.0 - s for *_ , s in f.nic_derate)
        + sum(1.0 - s for *_ , s in f.link_derate)
        + sum(1.0 - s for _, s in f.stragglers)
    )


def machine_features(machine: MachineSpec) -> tuple[float, ...]:
    """Fixed-length numeric embedding of a machine for distance queries."""
    levels = [math.log2(lv.bandwidth) for lv in machine.levels[:_MAX_LEVELS]]
    while len(levels) < _MAX_LEVELS:
        # Pad with the last (finest) level so 1-level and 2-level nodes of
        # similar link speed stay close.
        levels.append(levels[-1] if levels else 0.0)
    return (
        math.log2(machine.nodes),
        math.log2(machine.gpus_per_node),
        math.log2(machine.nic_count),
        math.log2(machine.nic_bandwidth),
        math.log2(machine.injection_bandwidth),
        *levels,
        math.log2(machine.copy_bandwidth),
        math.log2(machine.reduce_bandwidth),
        _fault_magnitude(machine),
    )


def machine_distance(a: MachineSpec, b: MachineSpec) -> float:
    """Weighted L1 distance between two machines' feature vectors."""
    fa, fb = machine_features(a), machine_features(b)
    return sum(w * abs(x - y) for w, x, y in zip(_WEIGHTS, fa, fb))


@dataclass
class MachineIndex:
    """Registry of planned-for machines, queried by structured distance.

    Entries are keyed by the machine digest (one entry per distinct
    fingerprint); insertion order breaks distance ties deterministically.
    Not thread-safe on its own — the service mutates it under its lock.
    """

    _machines: dict[str, MachineSpec] = field(default_factory=dict)

    def add(self, digest: str, machine: MachineSpec) -> None:
        """Register a machine under its fingerprint digest (idempotent)."""
        self._machines.setdefault(digest, machine)

    def __len__(self) -> int:
        return len(self._machines)

    def nearest(
        self, machine: MachineSpec, exclude: str | None = None, k: int = 1
    ) -> list[tuple[str, MachineSpec, float]]:
        """The ``k`` closest registered machines (digest, spec, distance).

        ``exclude`` drops the query machine's own digest, so the caller gets
        genuinely *other* machines to borrow plans from.
        """
        scored = [
            (machine_distance(machine, m), i, digest, m)
            for i, (digest, m) in enumerate(self._machines.items())
            if digest != exclude
        ]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [(digest, m, dist) for dist, _, digest, m in scored[:k]]


def translate_candidate(
    space: SearchSpace, donor: PlanCandidate
) -> PlanCandidate | None:
    """The target space's candidate most similar to a donor machine's winner.

    Donor parameters rarely apply verbatim (a 6-node hierarchy vector is
    invalid on 4 nodes), so the donor is matched against ``space``'s own
    valid candidates on the *transferable* structure: library vector first
    (the dominant cost factor), then pipeline depth, stripe, ring usage, and
    hierarchy shape.  Returns ``None`` only for an empty space — otherwise
    some nearest valid candidate always exists, and it is valid on the
    target by construction.
    """
    candidates = space.candidates()
    if not candidates:
        return None
    donor_libs = tuple(lib.value for lib in donor.libraries)

    def mismatch(cand: PlanCandidate) -> tuple:
        cand_libs = tuple(lib.value for lib in cand.libraries)
        return (
            # Library *set* mismatch dominates: using NCCL vs MPI between
            # nodes changes pricing far more than any discrete parameter.
            0 if set(cand_libs) == set(donor_libs) else 1,
            abs(math.log2(cand.pipeline) - math.log2(donor.pipeline)),
            abs(math.log2(cand.stripe) - math.log2(donor.stripe)),
            # Ring usage transfers as a boolean (the node count differs).
            0 if (cand.ring > 1) == (donor.ring > 1) else 1,
            abs(len(cand.hierarchy) - len(donor.hierarchy)),
            cand.sort_key(),
        )

    return min(candidates, key=mismatch)
