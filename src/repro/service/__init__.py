"""Concurrent plan service: a batched, sharded, warm-starting daemon.

The planner (:mod:`repro.planner`) and plan cache (:mod:`repro.core.plancache`)
are library calls inside one process; this package turns them into a
long-running local service so a fleet's ``init_tuned()`` becomes a
cache-or-plan RPC:

* :mod:`~repro.service.protocol` — line-delimited JSON frames, machine
  descriptions by value, content-addressed request keys;
* :mod:`~repro.service.batcher` — in-flight coalescing (identical keys plan
  once) over the async :class:`~repro.bench.parallel.TaskPool`;
* :mod:`~repro.service.shards` — machine-fingerprint-sharded response cache
  (per-shard LRU + byte budget + frequency-sketch admission);
* :mod:`~repro.service.similarity` — nearest-machine index whose winners
  warm-start the planner's successive-halving search;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the daemon
  (``repro serve``) and its client (``repro request``);
* :mod:`~repro.service.traffic` — deterministic Zipf-skewed synthetic fleet
  traffic for the benchmark (``tools/bench_planservice.py``).
"""

from .batcher import PlanBatcher
from .client import PlanClient
from .jobs import PlanTableTask, PlanTask, table_from_dict, table_to_dict
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    machine_digest,
    machine_from_dict,
    machine_to_dict,
    request_key,
)
from .server import PlanServer, PlanService, default_socket_path, serve
from .shards import FrequencySketch, ShardedPlanCache
from .similarity import MachineIndex, machine_distance, translate_candidate
from .traffic import TrafficRequest, synthetic_traffic, traffic_universe

__all__ = [
    "PROTOCOL_VERSION",
    "FrequencySketch",
    "MachineIndex",
    "PlanBatcher",
    "PlanClient",
    "PlanServer",
    "PlanService",
    "PlanTableTask",
    "PlanTask",
    "ProtocolError",
    "ShardedPlanCache",
    "TrafficRequest",
    "default_socket_path",
    "machine_digest",
    "machine_distance",
    "machine_from_dict",
    "machine_to_dict",
    "request_key",
    "serve",
    "synthetic_traffic",
    "table_from_dict",
    "table_to_dict",
    "traffic_universe",
    "translate_candidate",
]
