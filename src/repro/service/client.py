"""Client side of the plan service: one socket, frames in and out.

:class:`PlanClient` wraps a connected Unix-domain stream socket in the
line-delimited JSON protocol: ``plan()``/``stats()``/``ping()``/
``shutdown()`` send one frame and block for the matching response line.
Error frames re-raise as the exception class the server named when it is
one of ours (``FaultError`` for drained machines, ``ProtocolError`` for
malformed requests, ...), so service and in-process planning fail
identically from the caller's point of view.

One client is one connection and is *not* thread-safe — the protocol has
no frame interleaving — but clients are cheap; concurrent callers (the
benchmark's closed-loop clients, one per thread) each open their own.
"""

from __future__ import annotations

import itertools
import socket
from pathlib import Path

from .. import errors as _errors
from ..machine.spec import MachineSpec
from .protocol import ProtocolError, decode_frame, encode_frame, machine_to_dict


def _raise_error_frame(frame: dict) -> None:
    name = frame.get("error", "HicclError")
    message = frame.get("message", "plan service error")
    exc_type = getattr(_errors, name, None)
    if exc_type is None or not (
        isinstance(exc_type, type) and issubclass(exc_type, Exception)
    ):
        exc_type = ProtocolError if name == "ProtocolError" else _errors.HicclError
    raise exc_type(message)


class PlanClient:
    """One connection to a running plan daemon."""

    def __init__(self, socket_path: str | Path, timeout: float | None = 60.0):
        self.socket_path = Path(socket_path)
        self._ids = itertools.count(1)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(self.socket_path))
        except OSError:
            self._sock.close()
            raise
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------ frames
    def call(self, frame: dict) -> dict:
        """Send one frame and block for its response (error frames raise)."""
        frame = dict(frame)
        frame.setdefault("id", next(self._ids))
        self._sock.sendall(encode_frame(frame))
        line = self._reader.readline()
        if not line:
            raise ProtocolError("plan service closed the connection")
        response = decode_frame(line)
        if response.get("status") == "error":
            _raise_error_frame(response)
        return response

    def plan(
        self,
        machine: MachineSpec,
        collective: str,
        payload_bytes: int,
        dtype: str = "float32",
        options: dict | None = None,
    ) -> dict:
        """Request a plan for one collective on one described machine."""
        frame: dict = {
            "type": "plan",
            "machine": machine_to_dict(machine),
            "collective": collective,
            "payload_bytes": int(payload_bytes),
            "dtype": dtype,
        }
        if options:
            frame["options"] = options
        return self.call(frame)

    def plan_table(
        self,
        machine: MachineSpec,
        collective: str,
        size_classes,
        dtype: str = "float32",
        options: dict | None = None,
    ) -> dict:
        """Request a size-classed plan table for one collective.

        ``size_classes`` is an iterable of ``(name, payload_bytes)`` pairs
        (or :class:`~repro.planner.SizeClass` instances).  The response's
        ``table`` document rebuilds into a
        :class:`~repro.planner.PlanTable` via
        :func:`repro.service.jobs.table_from_dict`.
        """
        frame: dict = {
            "type": "plan_table",
            "machine": machine_to_dict(machine),
            "collective": collective,
            "size_classes": [
                [sc.name, sc.payload_bytes] if hasattr(sc, "payload_bytes")
                else [str(sc[0]), int(sc[1])]
                for sc in size_classes
            ],
            "dtype": dtype,
        }
        if options:
            frame["options"] = options
        return self.call(frame)

    def stats(self) -> dict:
        """Service, batcher, and per-shard cache counters."""
        return self.call({"type": "stats"})

    def ping(self) -> dict:
        """Liveness probe; the response carries the protocol version."""
        return self.call({"type": "ping"})

    def shutdown(self) -> dict:
        """Ask the daemon to stop its serve loop."""
        return self.call({"type": "shutdown"})

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PlanClient":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the connection."""
        self.close()
