"""Deterministic synthetic fleet traffic for the plan-service benchmark.

Fleet request streams are *skewed*: a handful of production machine shapes
and collectives dominate while a long tail of odd node counts, degraded
topologies, and unusual payloads trickles in.  This module builds such a
stream reproducibly:

* the request *universe* is the cross product of the committed paper
  systems at a few node counts (plus seeded degraded variants of each)
  with the stock collectives and a payload ladder — every request is a
  :class:`TrafficRequest` that can rebuild its machine spec on demand;
* draws follow a Zipf-like distribution over that universe via
  ``numpy.random.default_rng(seed)`` — same seed, same request sequence,
  byte for byte — with the universe *shuffled* under the same seed so rank
  popularity is not correlated with machine size.

The benchmark (``tools/bench_planservice.py``) and the end-to-end tests
replay these streams against a daemon; determinism here is what makes the
committed ``BENCH_planservice.json`` plan outcomes byte-identical across
regenerations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.faults import FaultSet
from ..machine.machines import by_name
from ..machine.spec import MachineSpec

#: Systems the default universe draws from (committed paper models).
TRAFFIC_SYSTEMS = ("delta", "perlmutter")

#: Node counts per system; small on purpose — the benchmark wants many
#: distinct *keys*, not many distinct gigantic machines.
TRAFFIC_NODES = (2, 3, 4)

#: Collectives requested by the synthetic fleet.
TRAFFIC_COLLECTIVES = ("all_reduce", "all_gather", "reduce_scatter")

#: Payload ladder (bytes).
TRAFFIC_PAYLOADS = (1 << 24, 1 << 26)

#: Fault seeds mixed into the universe; ``None`` is the healthy machine.
TRAFFIC_FAULT_SEEDS = (None, 7)


@dataclass(frozen=True)
class TrafficRequest:
    """One synthetic plan request, machine described by value."""

    system: str
    nodes: int
    fault_seed: int | None
    collective: str
    payload_bytes: int

    def machine(self) -> MachineSpec:
        """Build the (possibly degraded) machine spec for this request."""
        spec = by_name(self.system, nodes=self.nodes)
        if self.fault_seed is not None:
            spec = FaultSet.random(spec, seed=self.fault_seed).apply(spec)
        return spec

    def describe(self) -> str:
        """Compact deterministic label (used in benchmark outcome keys)."""
        fault = f"+f{self.fault_seed}" if self.fault_seed is not None else ""
        return (
            f"{self.system}:{self.nodes}{fault}"
            f"/{self.collective}@{self.payload_bytes}"
        )


def traffic_universe(
    systems=TRAFFIC_SYSTEMS,
    nodes=TRAFFIC_NODES,
    fault_seeds=TRAFFIC_FAULT_SEEDS,
    collectives=TRAFFIC_COLLECTIVES,
    payloads=TRAFFIC_PAYLOADS,
) -> list[TrafficRequest]:
    """Every distinct request of the synthetic fleet, deterministic order."""
    return [
        TrafficRequest(system, n, fault_seed, collective, payload)
        for system in systems
        for n in nodes
        for fault_seed in fault_seeds
        for collective in collectives
        for payload in payloads
    ]


def synthetic_traffic(
    seed: int,
    n_requests: int,
    universe: list[TrafficRequest] | None = None,
    zipf_a: float = 1.3,
) -> list[TrafficRequest]:
    """A seeded Zipf-skewed request stream over the universe.

    ``zipf_a`` is the Zipf exponent (> 1; larger = more skew).  Draws
    beyond the universe size wrap via modulo, preserving the skew shape;
    the universe itself is shuffled under the same seed, so which request
    is "rank 1 popular" varies by seed but never by run.
    """
    if universe is None:
        universe = traffic_universe()
    if not universe:
        raise ValueError("traffic universe is empty")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(universe))
    draws = rng.zipf(zipf_a, size=n_requests)
    return [universe[order[(d - 1) % len(universe)]] for d in draws]
