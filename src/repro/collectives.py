"""One-call collective API — the convenience layer over the Communicator.

For users who want results rather than communicators::

    import repro.collectives as coll
    out = coll.all_reduce(machine, data)           # data: (p, n) array
    out = coll.broadcast(machine, vector, root=2)  # -> (p, n) replicated

Each call composes, optimizes (with the Table 5 configuration for the
machine, or an explicit :class:`~repro.bench.configs.HicclConfig`), runs the
functional simulation, verifies buffer shapes, and returns numpy results
plus the simulated time via the ``return_time`` flag.

This is also the layer application-style examples build on; the heavy
research API (explicit primitives, fences, plans) stays in ``repro.core``.
"""

from __future__ import annotations

import numpy as np

from .bench.configs import HicclConfig, best_config
from .core.communicator import Communicator
from .core.composition import compose
from .core.ops import ReduceOp
from .errors import CompositionError
from .machine.spec import MachineSpec


def _run(machine: MachineSpec, name: str, count: int, data: np.ndarray,
         config: HicclConfig | None, dtype, return_time: bool, **kwargs):
    comm = Communicator(machine, dtype=dtype)
    send, recv = compose(comm, name, count, **kwargs)
    cfg = config if config is not None else best_config(machine, name)
    comm.init(**cfg.init_kwargs())
    comm.set_all(send, data)
    elapsed = comm.run()
    out = comm.gather_all(recv)
    if return_time:
        return out, elapsed
    return out


def _as_matrix(machine: MachineSpec, data, per_rank_elems: int,
               name: str) -> np.ndarray:
    arr = np.asarray(data)
    p = machine.world_size
    if arr.ndim != 2 or arr.shape[0] != p:
        raise CompositionError(
            f"{name}: expected a (p, n) array with p={p} rows, got {arr.shape}"
        )
    if arr.shape[1] % per_rank_elems != 0:
        raise CompositionError(
            f"{name}: row length {arr.shape[1]} not divisible by {per_rank_elems}"
        )
    return arr


def broadcast(machine: MachineSpec, data, root: int = 0, *,
              config: HicclConfig | None = None, return_time: bool = False):
    """Replicate ``data[root]`` to every rank.  ``data``: (p, n) array."""
    arr = _as_matrix(machine, data, machine.world_size, "broadcast")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "broadcast", count, arr, config, arr.dtype,
                return_time, root=root)


def reduce(machine: MachineSpec, data, root: int = 0,
           op: ReduceOp = ReduceOp.SUM, *,
           config: HicclConfig | None = None, return_time: bool = False):
    """Elementwise-reduce all rows onto ``root``.  ``data``: (p, n)."""
    arr = _as_matrix(machine, data, machine.world_size, "reduce")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "reduce", count, arr, config, arr.dtype,
                return_time, root=root, op=op)


def all_reduce(machine: MachineSpec, data, op: ReduceOp = ReduceOp.SUM, *,
               config: HicclConfig | None = None, return_time: bool = False):
    """Elementwise-reduce all rows, result on every rank.  ``data``: (p, n)."""
    arr = _as_matrix(machine, data, machine.world_size, "all_reduce")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "all_reduce", count, arr, config, arr.dtype,
                return_time, op=op)


def scatter(machine: MachineSpec, data, root: int = 0, *,
            config: HicclConfig | None = None, return_time: bool = False):
    """Deal row-chunks of ``data[root]`` across ranks."""
    arr = _as_matrix(machine, data, machine.world_size, "scatter")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "scatter", count, arr, config, arr.dtype,
                return_time, root=root)


def gather(machine: MachineSpec, data, root: int = 0, *,
           config: HicclConfig | None = None, return_time: bool = False):
    """Concatenate every rank's row on the root.  ``data``: (p, n)."""
    arr = np.asarray(data)
    p = machine.world_size
    if arr.ndim != 2 or arr.shape[0] != p:
        raise CompositionError(f"gather: expected (p, n) array, got {arr.shape}")
    return _run(machine, "gather", arr.shape[1], arr, config, arr.dtype,
                return_time, root=root)


def all_gather(machine: MachineSpec, data, *,
               config: HicclConfig | None = None, return_time: bool = False):
    """Concatenate every rank's row on every rank.  ``data``: (p, n)."""
    arr = np.asarray(data)
    p = machine.world_size
    if arr.ndim != 2 or arr.shape[0] != p:
        raise CompositionError(f"all_gather: expected (p, n) array, got {arr.shape}")
    return _run(machine, "all_gather", arr.shape[1], arr, config, arr.dtype,
                return_time)


def reduce_scatter(machine: MachineSpec, data, op: ReduceOp = ReduceOp.SUM, *,
                   config: HicclConfig | None = None, return_time: bool = False):
    """Reduce all rows, then deal chunk ``j`` to rank ``j``."""
    arr = _as_matrix(machine, data, machine.world_size, "reduce_scatter")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "reduce_scatter", count, arr, config, arr.dtype,
                return_time, op=op)


def all_to_all(machine: MachineSpec, data, *,
               config: HicclConfig | None = None, return_time: bool = False):
    """Transpose chunk ownership: rank i's chunk j -> rank j's chunk i."""
    arr = _as_matrix(machine, data, machine.world_size, "all_to_all")
    count = arr.shape[1] // machine.world_size
    return _run(machine, "all_to_all", count, arr, config, arr.dtype,
                return_time)
