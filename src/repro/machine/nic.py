"""GPU-to-NIC binding policies (paper Figure 2).

Multi-GPU nodes carry multiple NICs, and on all of the paper's test systems
each GPU's inter-node traffic is statically routed through a single NIC
(Section 2.3).  The association between the ``g`` GPUs and ``k`` NICs of a
node follows one of three policies:

* **packed** — contiguous blocks of GPUs share a NIC (Figure 2a);
* **round-robin** — ``gpu % k`` (Figure 2b), used when ``g`` is not a
  multiple of ``k`` and the source of Aurora's 75% utilization ceiling
  (Section 6.3.5);
* **bijective** — one GPU per NIC, requires ``g == k`` (Figure 2c).

``AUTO`` picks packed when ``k`` divides ``g``, bijective when ``g == k``
(which packed also covers), and round-robin otherwise — matching how the test
systems are wired.
"""

from __future__ import annotations

import enum
from collections import Counter

from ..errors import HierarchyError


class Binding(enum.Enum):
    """GPU-to-NIC association policy."""

    PACKED = "packed"
    ROUND_ROBIN = "round-robin"
    BIJECTIVE = "bijective"
    AUTO = "auto"


def resolve(policy: Binding, g: int, k: int) -> Binding:
    """Resolve ``AUTO`` to a concrete policy for ``g`` GPUs and ``k`` NICs."""
    if policy is not Binding.AUTO:
        _validate(policy, g, k)
        return policy
    if g == k:
        return Binding.BIJECTIVE
    if g % k == 0:
        return Binding.PACKED
    return Binding.ROUND_ROBIN


def _validate(policy: Binding, g: int, k: int) -> None:
    if g < 1 or k < 1:
        raise HierarchyError("need at least one GPU and one NIC per node")
    if k > g:
        raise HierarchyError(f"more NICs ({k}) than GPUs ({g}) is not modeled")
    if policy is Binding.BIJECTIVE and g != k:
        raise HierarchyError(f"bijective binding requires g == k, got g={g} k={k}")


def nic_of(local_gpu: int, g: int, k: int, policy: Binding = Binding.AUTO) -> int:
    """NIC index serving GPU ``local_gpu`` (0-based within the node)."""
    if not 0 <= local_gpu < g:
        raise HierarchyError(f"local GPU index {local_gpu} out of range for g={g}")
    concrete = resolve(policy, g, k)
    if concrete is Binding.PACKED:
        return local_gpu * k // g
    if concrete is Binding.ROUND_ROBIN:
        return local_gpu % k
    return local_gpu  # bijective


def nic_loads(g: int, k: int, policy: Binding = Binding.AUTO) -> list[int]:
    """Number of GPUs bound to each NIC under ``policy``."""
    counts = Counter(nic_of(i, g, k, policy) for i in range(g))
    return [counts.get(n, 0) for n in range(k)]


def utilization(g: int, k: int, policy: Binding = Binding.AUTO) -> float:
    """Achievable fraction of aggregate NIC bandwidth under equal GPU load.

    When every GPU injects the same volume, the finish time is set by the
    most-loaded NIC, so the achievable aggregate bandwidth is
    ``(g / k) / max(loads)`` of the rated ``k * f``.  Round-robin with
    ``g = 12, k = 8`` yields loads ``[2,2,2,2,1,1,1,1]`` and therefore
    ``(12/8)/2 = 0.75`` — the paper's Aurora ceiling.
    """
    loads = nic_loads(g, k, policy)
    busiest = max(loads)
    if busiest == 0:
        return 0.0
    return (g / k) / busiest


def binding_table(g: int, k: int, policy: Binding = Binding.AUTO) -> list[tuple[int, int]]:
    """(gpu, nic) pairs — the arrows of Figure 2."""
    return [(i, nic_of(i, g, k, policy)) for i in range(g)]
