"""Fault & degraded-topology layer: declarative health state for a machine.

Real clusters never run the healthy topology the cost model assumes: links
flap, NICs fail, nodes get drained mid-job, and stragglers inject slower
than their peers.  A :class:`FaultSet` declares such a health state and
applies it to any committed :class:`~repro.machine.spec.MachineSpec`,
producing a *degraded* spec whose machine fingerprint differs from the
healthy one — so degraded plans get their own plan-cache entries and never
alias healthy ones.

Semantics (see DESIGN.md Section 11 for the full contract):

* **Down ≠ removed.**  A down NIC or link is modeled as a severe derate to
  :data:`DOWN_SCALE` of its rated bandwidth (a residual maintenance path),
  not as a topology change.  The degraded machine therefore books exactly
  the same resource timelines as the healthy one — only the per-resource
  *rates* differ — which keeps every simulated time finite and the
  levelized engine's certificate contract untouched.
* **Stragglers slow communication, not compute.**  A straggler scale
  applies to the rank's injection endpoints and intra-node link endpoints;
  local copies and reduction kernels are unchanged.
* **Monotonicity.**  Every fault only *lowers* a rate (scales are
  validated into ``(0, 1]``), so degrading a machine never decreases any
  op's priced duration; the metamorphic suite in ``tests/sim`` asserts the
  resulting makespan never decreases either.
* **Drained nodes carry no traffic.**  Pricing an op whose endpoint lives
  on a drained node raises :class:`~repro.errors.FaultError`; jobs shrink
  onto the survivors via :mod:`repro.workloads.elastic` instead.

An *empty* fault set is a strict identity: ``FaultSet().apply(m)`` returns
``m`` itself (same object, same fingerprint, byte-identical timelines).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from ..errors import FaultError
from .spec import MachineSpec

#: Residual bandwidth fraction of a *down* NIC or link: the maintenance
#: path a drained-but-cabled resource still offers.  Modeling "down" as a
#: severe derate (rather than removing the resource) keeps the degraded
#: machine's resource set identical to the healthy one's, so both engines
#: and the certificate work unchanged and every fault stays monotone.
DOWN_SCALE = 0.05


def _scale_ok(scale: float) -> bool:
    return 0.0 < scale <= 1.0


@dataclass(frozen=True)
class FaultSet:
    """Declarative health state applied to a machine spec.

    Every entry names a physical resource by the same indices the
    simulator's resource keys use: NICs as ``(node, nic)``, intra-node
    links as ``(rank, level)`` (level indexes ``machine.levels``), and
    stragglers/drains by rank or node.  Derate scales are bandwidth
    multipliers in ``(0, 1]``; *down* entries force the resource to
    :data:`DOWN_SCALE`.  Instances are frozen, hashable, and
    shape-agnostic — validation against a concrete machine happens in
    :meth:`apply`.
    """

    down_nics: tuple[tuple[int, int], ...] = ()  # (node, nic)
    down_links: tuple[tuple[int, int], ...] = ()  # (rank, level)
    drained_nodes: tuple[int, ...] = ()
    nic_derate: tuple[tuple[int, int, float], ...] = ()  # (node, nic, scale)
    link_derate: tuple[tuple[int, int, float], ...] = ()  # (rank, lvl, scale)
    stragglers: tuple[tuple[int, float], ...] = ()  # (rank, scale)

    def __post_init__(self) -> None:
        # Coerce any iterable input into canonical nested tuples so equal
        # fault sets hash equally and repr deterministically.
        object.__setattr__(self, "down_nics", tuple(
            (int(n), int(i)) for n, i in self.down_nics))
        object.__setattr__(self, "down_links", tuple(
            (int(r), int(l)) for r, l in self.down_links))
        object.__setattr__(self, "drained_nodes", tuple(
            int(n) for n in self.drained_nodes))
        object.__setattr__(self, "nic_derate", tuple(
            (int(n), int(i), float(s)) for n, i, s in self.nic_derate))
        object.__setattr__(self, "link_derate", tuple(
            (int(r), int(l), float(s)) for r, l, s in self.link_derate))
        object.__setattr__(self, "stragglers", tuple(
            (int(r), float(s)) for r, s in self.stragglers))
        for kind, entries in (("nic_derate", self.nic_derate),
                              ("link_derate", self.link_derate)):
            for entry in entries:
                if not _scale_ok(entry[-1]):
                    raise FaultError(
                        f"{kind} entry {entry}: scale must be in (0, 1]"
                    )
        for rank, scale in self.stragglers:
            if not _scale_ok(scale):
                raise FaultError(
                    f"straggler entry ({rank}, {scale}): scale must be "
                    "in (0, 1]"
                )

    def is_empty(self) -> bool:
        """True when this fault set declares nothing (the identity)."""
        return not (self.down_nics or self.down_links or self.drained_nodes
                    or self.nic_derate or self.link_derate or self.stragglers)

    def fingerprint(self) -> tuple:
        """Stable value tuple; feeds the degraded machine fingerprint.

        Depends only on the declared *content* (sorted), never on how the
        set was produced — two seeds of :meth:`random` that happen to draw
        the same faults fingerprint identically.
        """
        return (
            ("down_nics", tuple(sorted(self.down_nics))),
            ("down_links", tuple(sorted(self.down_links))),
            ("drained_nodes", tuple(sorted(self.drained_nodes))),
            ("nic_derate", tuple(sorted(self.nic_derate))),
            ("link_derate", tuple(sorted(self.link_derate))),
            ("stragglers", tuple(sorted(self.stragglers))),
        )

    def describe(self) -> str:
        """Compact deterministic one-line summary."""
        parts = []
        if self.down_nics:
            parts.append("down-nics=" + ",".join(
                f"{n}:{i}" for n, i in sorted(self.down_nics)))
        if self.down_links:
            parts.append("down-links=" + ",".join(
                f"{r}:{l}" for r, l in sorted(self.down_links)))
        if self.drained_nodes:
            parts.append("drained=" + ",".join(
                str(n) for n in sorted(self.drained_nodes)))
        if self.nic_derate:
            parts.append("nic-derate=" + ",".join(
                f"{n}:{i}@{s:g}" for n, i, s in sorted(self.nic_derate)))
        if self.link_derate:
            parts.append("link-derate=" + ",".join(
                f"{r}:{l}@{s:g}" for r, l, s in sorted(self.link_derate)))
        if self.stragglers:
            parts.append("stragglers=" + ",".join(
                f"{r}@{s:g}" for r, s in sorted(self.stragglers)))
        return " ".join(parts) if parts else "healthy"

    def validate(self, machine: MachineSpec) -> None:
        """Check every declared index against ``machine``'s shape."""
        nodes, k = machine.nodes, machine.nic_count
        world, nlv = machine.world_size, len(machine.levels)
        for node, nic in list(self.down_nics) + [
                (n, i) for n, i, _ in self.nic_derate]:
            if not 0 <= node < nodes:
                raise FaultError(
                    f"NIC fault names node {node}, but {machine.name} has "
                    f"{nodes} node(s)"
                )
            if not 0 <= nic < k:
                raise FaultError(
                    f"NIC fault names NIC {nic} on node {node}, but "
                    f"{machine.name} has {k} NIC(s) per node"
                )
        for rank, lvl in list(self.down_links) + [
                (r, l) for r, l, _ in self.link_derate]:
            if not 0 <= rank < world:
                raise FaultError(
                    f"link fault names rank {rank}, but {machine.name} has "
                    f"{world} rank(s)"
                )
            if not 0 <= lvl < nlv:
                raise FaultError(
                    f"link fault names intra-node level {lvl}, but "
                    f"{machine.name} has {nlv} level(s)"
                )
        for node in self.drained_nodes:
            if not 0 <= node < nodes:
                raise FaultError(
                    f"drained node {node} out of range for {machine.name} "
                    f"with {nodes} node(s)"
                )
        if len(set(self.drained_nodes)) >= nodes:
            raise FaultError(
                f"cannot drain all {nodes} node(s) of {machine.name}"
            )
        for rank, _scale in self.stragglers:
            if not 0 <= rank < world:
                raise FaultError(
                    f"straggler rank {rank} out of range for "
                    f"{machine.name} with {world} rank(s)"
                )

    def apply(self, machine: MachineSpec) -> MachineSpec:
        """The degraded spec: ``machine`` with this health state attached.

        The empty fault set is a strict identity — ``machine`` itself is
        returned, so spec, fingerprint, and timelines are byte-identical
        by construction.  Otherwise the entries are validated against the
        machine's shape and a new spec is returned whose ``faults`` field
        (and hence machine fingerprint and plan keys) reflects them.
        Applying on an already-degraded spec replaces its fault set.
        """
        if self.is_empty():
            return machine if machine.faults is None else replace(
                machine, faults=None)
        base = machine if machine.faults is None else replace(
            machine, faults=None)
        self.validate(base)
        return replace(base, faults=self)

    @classmethod
    def random(
        cls,
        machine: MachineSpec,
        seed: int,
        *,
        down_nics: int = 1,
        link_derates: int = 2,
        stragglers: int = 2,
        scale_range: tuple[float, float] = (0.5, 0.95),
        drained: int = 0,
    ) -> "FaultSet":
        """A seeded random fault set shaped to ``machine``.

        Draws ``down_nics`` down NICs, ``link_derates`` intra-node link
        derates, and ``stragglers`` straggler ranks (derate scales uniform
        in ``scale_range``), plus optionally ``drained`` drained nodes —
        all from ``np.random.default_rng(seed)``, so a given ``(machine
        shape, seed)`` always produces the same set.  The seed is *not*
        stored: fingerprints depend only on the drawn content.
        """
        rng = np.random.default_rng(seed)
        lo, hi = scale_range
        if not (_scale_ok(lo) and _scale_ok(hi) and lo <= hi):
            raise FaultError(
                f"scale_range {scale_range!r} must satisfy 0 < lo <= hi <= 1"
            )
        nics = [(n, i) for n in range(machine.nodes)
                for i in range(machine.nic_count)]
        down = [
            nics[j] for j in sorted(
                rng.choice(len(nics), size=min(down_nics, len(nics)),
                           replace=False).tolist())
        ] if down_nics > 0 else []
        links = []
        for _ in range(link_derates):
            links.append((
                int(rng.integers(machine.world_size)),
                int(rng.integers(len(machine.levels))),
                float(rng.uniform(lo, hi)),
            ))
        slow = []
        if stragglers > 0:
            picks = rng.choice(machine.world_size,
                               size=min(stragglers, machine.world_size),
                               replace=False)
            slow = [(int(r), float(rng.uniform(lo, hi)))
                    for r in sorted(picks.tolist())]
        drain: list[int] = []
        if drained > 0:
            if drained >= machine.nodes:
                raise FaultError(
                    f"cannot drain {drained} of {machine.nodes} node(s)"
                )
            drain = sorted(rng.choice(
                machine.nodes, size=drained, replace=False).tolist())
        return cls(
            down_nics=tuple(down),
            link_derate=tuple(links),
            stragglers=tuple(slow),
            drained_nodes=tuple(drain),
        )


@dataclass(frozen=True)
class FaultRates:
    """Compiled per-resource bandwidth scales of one degraded machine.

    The pricing core's view of a :class:`FaultSet`: plain arrays indexed
    exactly like the simulator's resource keys.  All scales are in
    ``(0, 1]``; drained nodes are a boolean rank mask (their scales are
    irrelevant — pricing refuses their traffic outright).
    """

    nic_scale: np.ndarray  # (nodes, nic_count) float64
    link_scale: np.ndarray  # (world, levels) float64
    inj_scale: np.ndarray  # (world,) float64
    drained: np.ndarray  # (world,) bool


@lru_cache(maxsize=256)
def _compile(faults: FaultSet, nodes: int, gpus_per_node: int,
             nic_count: int, num_levels: int) -> FaultRates:
    """Turn a fault set into rate arrays for one machine shape (memoized)."""
    world = nodes * gpus_per_node
    nic_scale = np.ones((nodes, nic_count))
    link_scale = np.ones((world, num_levels))
    inj_scale = np.ones(world)
    drained = np.zeros(world, dtype=bool)
    # Downs first (absolute), then derates (multiplicative), then straggler
    # jitter (multiplicative on the rank's endpoints) — a deterministic
    # composition order, so equal fault sets compile to equal rates.
    for node, nic in faults.down_nics:
        nic_scale[node, nic] = DOWN_SCALE
    for rank, lvl in faults.down_links:
        link_scale[rank, lvl] = DOWN_SCALE
    for node, nic, scale in faults.nic_derate:
        nic_scale[node, nic] *= scale
    for rank, lvl, scale in faults.link_derate:
        link_scale[rank, lvl] *= scale
    for rank, scale in faults.stragglers:
        inj_scale[rank] *= scale
        link_scale[rank, :] *= scale
    for node in faults.drained_nodes:
        drained[node * gpus_per_node:(node + 1) * gpus_per_node] = True
    nic_scale.setflags(write=False)
    link_scale.setflags(write=False)
    inj_scale.setflags(write=False)
    drained.setflags(write=False)
    return FaultRates(nic_scale=nic_scale, link_scale=link_scale,
                      inj_scale=inj_scale, drained=drained)


def rates_for(machine: MachineSpec) -> FaultRates | None:
    """Compiled rate arrays of ``machine``'s fault set (``None`` = healthy).

    The healthy fast path: pricing branches on this returning ``None`` and
    then runs the exact code (and float expressions) it always has, so
    healthy machines stay byte-identical to the pre-fault-layer engine.
    """
    if machine.faults is None:
        return None
    return _compile(machine.faults, machine.nodes, machine.gpus_per_node,
                    machine.nic_count, len(machine.levels))


def resource_rate(machine: MachineSpec, key: tuple) -> float:
    """Rated bandwidth (GB/s) of one resource timeline, honoring derates.

    Maps a simulator resource key — ``("nic_tx", node, nic)``,
    ``("inj_rx", rank)``, ``("link_tx", rank, lvl)``, ``("copy", rank)``,
    and their mirrors — to the (possibly derated/straggler-scaled) rate the
    pricing core books transfers at.  This is what workload summaries use
    so per-resource busy totals are interpreted at each resource's *own*
    rate rather than assuming the uniform healthy bandwidth.
    """
    rates = rates_for(machine)
    kind = key[0]
    if kind == "copy":
        return machine.copy_bandwidth
    if kind in ("nic_tx", "nic_rx"):
        node, nic = key[1], key[2]
        scale = 1.0 if rates is None else float(rates.nic_scale[node, nic])
        return machine.nic_bandwidth * scale
    if kind in ("inj_tx", "inj_rx"):
        rank = key[1]
        scale = 1.0 if rates is None else float(rates.inj_scale[rank])
        return machine.injection_bandwidth * scale
    if kind in ("link_tx", "link_rx"):
        rank, lvl = key[1], key[2]
        scale = 1.0 if rates is None else float(rates.link_scale[rank, lvl])
        return machine.levels[lvl].bandwidth * scale
    raise FaultError(f"unknown resource kind in key {key!r}")


__all__ = [
    "DOWN_SCALE",
    "FaultRates",
    "FaultSet",
    "rates_for",
    "resource_rate",
]
